file(REMOVE_RECURSE
  "CMakeFiles/test_multilog.dir/test_multilog.cpp.o"
  "CMakeFiles/test_multilog.dir/test_multilog.cpp.o.d"
  "test_multilog"
  "test_multilog.pdb"
  "test_multilog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
