file(REMOVE_RECURSE
  "CMakeFiles/test_edge_log.dir/test_edge_log.cpp.o"
  "CMakeFiles/test_edge_log.dir/test_edge_log.cpp.o.d"
  "test_edge_log"
  "test_edge_log.pdb"
  "test_edge_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
