# Empty compiler generated dependencies file for test_edge_log.
# This may be replaced when dependencies are built.
