file(REMOVE_RECURSE
  "CMakeFiles/test_performance_properties.dir/test_performance_properties.cpp.o"
  "CMakeFiles/test_performance_properties.dir/test_performance_properties.cpp.o.d"
  "test_performance_properties"
  "test_performance_properties.pdb"
  "test_performance_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_performance_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
