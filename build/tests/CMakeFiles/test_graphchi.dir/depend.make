# Empty dependencies file for test_graphchi.
# This may be replaced when dependencies are built.
