
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_graphchi.cpp" "tests/CMakeFiles/test_graphchi.dir/test_graphchi.cpp.o" "gcc" "tests/CMakeFiles/test_graphchi.dir/test_graphchi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/mlvc_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlvc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/multilog/CMakeFiles/mlvc_multilog.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mlvc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graphchi/CMakeFiles/mlvc_graphchi.dir/DependInfo.cmake"
  "/root/repo/build/src/grafboost/CMakeFiles/mlvc_grafboost.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/mlvc_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
