file(REMOVE_RECURSE
  "CMakeFiles/test_graphchi.dir/test_graphchi.cpp.o"
  "CMakeFiles/test_graphchi.dir/test_graphchi.cpp.o.d"
  "test_graphchi"
  "test_graphchi.pdb"
  "test_graphchi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
