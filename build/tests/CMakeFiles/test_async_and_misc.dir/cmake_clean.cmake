file(REMOVE_RECURSE
  "CMakeFiles/test_async_and_misc.dir/test_async_and_misc.cpp.o"
  "CMakeFiles/test_async_and_misc.dir/test_async_and_misc.cpp.o.d"
  "test_async_and_misc"
  "test_async_and_misc.pdb"
  "test_async_and_misc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_async_and_misc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
