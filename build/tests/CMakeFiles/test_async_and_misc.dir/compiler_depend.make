# Empty compiler generated dependencies file for test_async_and_misc.
# This may be replaced when dependencies are built.
