# Empty dependencies file for test_grafboost.
# This may be replaced when dependencies are built.
