file(REMOVE_RECURSE
  "CMakeFiles/test_grafboost.dir/test_grafboost.cpp.o"
  "CMakeFiles/test_grafboost.dir/test_grafboost.cpp.o.d"
  "test_grafboost"
  "test_grafboost.pdb"
  "test_grafboost[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grafboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
