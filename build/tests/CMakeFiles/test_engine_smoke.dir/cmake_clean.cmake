file(REMOVE_RECURSE
  "CMakeFiles/test_engine_smoke.dir/test_engine_smoke.cpp.o"
  "CMakeFiles/test_engine_smoke.dir/test_engine_smoke.cpp.o.d"
  "test_engine_smoke"
  "test_engine_smoke.pdb"
  "test_engine_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
