# Empty dependencies file for test_engine_smoke.
# This may be replaced when dependencies are built.
