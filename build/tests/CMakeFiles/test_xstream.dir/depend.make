# Empty dependencies file for test_xstream.
# This may be replaced when dependencies are built.
