file(REMOVE_RECURSE
  "CMakeFiles/test_xstream.dir/test_xstream.cpp.o"
  "CMakeFiles/test_xstream.dir/test_xstream.cpp.o.d"
  "test_xstream"
  "test_xstream.pdb"
  "test_xstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_xstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
