file(REMOVE_RECURSE
  "CMakeFiles/test_stored_csr.dir/test_stored_csr.cpp.o"
  "CMakeFiles/test_stored_csr.dir/test_stored_csr.cpp.o.d"
  "test_stored_csr"
  "test_stored_csr.pdb"
  "test_stored_csr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stored_csr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
