# Empty dependencies file for test_stored_csr.
# This may be replaced when dependencies are built.
