# Empty compiler generated dependencies file for test_apps_extended.
# This may be replaced when dependencies are built.
