file(REMOVE_RECURSE
  "CMakeFiles/test_apps_extended.dir/test_apps_extended.cpp.o"
  "CMakeFiles/test_apps_extended.dir/test_apps_extended.cpp.o.d"
  "test_apps_extended"
  "test_apps_extended.pdb"
  "test_apps_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
