# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_engine_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_engine_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_grafboost[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_ssd[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_stored_csr[1]_include.cmake")
include("/root/repo/build/tests/test_multilog[1]_include.cmake")
include("/root/repo/build/tests/test_edge_log[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_graphchi[1]_include.cmake")
include("/root/repo/build/tests/test_engine_features[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_property_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_apps_extended[1]_include.cmake")
include("/root/repo/build/tests/test_serialization[1]_include.cmake")
include("/root/repo/build/tests/test_xstream[1]_include.cmake")
include("/root/repo/build/tests/test_geometry_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_performance_properties[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_async_and_misc[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
