file(REMOVE_RECURSE
  "libmlvc_graphchi.a"
)
