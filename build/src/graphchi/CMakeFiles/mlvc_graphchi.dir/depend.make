# Empty dependencies file for mlvc_graphchi.
# This may be replaced when dependencies are built.
