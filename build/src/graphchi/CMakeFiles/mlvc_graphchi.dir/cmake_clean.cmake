file(REMOVE_RECURSE
  "CMakeFiles/mlvc_graphchi.dir/sharded_graph.cpp.o"
  "CMakeFiles/mlvc_graphchi.dir/sharded_graph.cpp.o.d"
  "libmlvc_graphchi.a"
  "libmlvc_graphchi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_graphchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
