file(REMOVE_RECURSE
  "libmlvc_grafboost.a"
)
