# Empty compiler generated dependencies file for mlvc_grafboost.
# This may be replaced when dependencies are built.
