file(REMOVE_RECURSE
  "CMakeFiles/mlvc_grafboost.dir/external_sorter.cpp.o"
  "CMakeFiles/mlvc_grafboost.dir/external_sorter.cpp.o.d"
  "libmlvc_grafboost.a"
  "libmlvc_grafboost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_grafboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
