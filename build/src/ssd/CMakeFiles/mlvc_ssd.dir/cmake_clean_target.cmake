file(REMOVE_RECURSE
  "libmlvc_ssd.a"
)
