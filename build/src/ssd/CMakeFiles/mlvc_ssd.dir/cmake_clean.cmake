file(REMOVE_RECURSE
  "CMakeFiles/mlvc_ssd.dir/storage.cpp.o"
  "CMakeFiles/mlvc_ssd.dir/storage.cpp.o.d"
  "libmlvc_ssd.a"
  "libmlvc_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
