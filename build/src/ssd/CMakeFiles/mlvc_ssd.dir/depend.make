# Empty dependencies file for mlvc_ssd.
# This may be replaced when dependencies are built.
