# Empty dependencies file for mlvc_metrics.
# This may be replaced when dependencies are built.
