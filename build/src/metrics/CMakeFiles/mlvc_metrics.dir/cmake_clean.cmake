file(REMOVE_RECURSE
  "CMakeFiles/mlvc_metrics.dir/json_export.cpp.o"
  "CMakeFiles/mlvc_metrics.dir/json_export.cpp.o.d"
  "CMakeFiles/mlvc_metrics.dir/report.cpp.o"
  "CMakeFiles/mlvc_metrics.dir/report.cpp.o.d"
  "libmlvc_metrics.a"
  "libmlvc_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
