file(REMOVE_RECURSE
  "libmlvc_metrics.a"
)
