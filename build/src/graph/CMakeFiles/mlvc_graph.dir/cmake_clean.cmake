file(REMOVE_RECURSE
  "CMakeFiles/mlvc_graph.dir/csr.cpp.o"
  "CMakeFiles/mlvc_graph.dir/csr.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/edge_list.cpp.o"
  "CMakeFiles/mlvc_graph.dir/edge_list.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/external_builder.cpp.o"
  "CMakeFiles/mlvc_graph.dir/external_builder.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/generators.cpp.o"
  "CMakeFiles/mlvc_graph.dir/generators.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/graph_stats.cpp.o"
  "CMakeFiles/mlvc_graph.dir/graph_stats.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/intervals.cpp.o"
  "CMakeFiles/mlvc_graph.dir/intervals.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/serialization.cpp.o"
  "CMakeFiles/mlvc_graph.dir/serialization.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/snap_loader.cpp.o"
  "CMakeFiles/mlvc_graph.dir/snap_loader.cpp.o.d"
  "CMakeFiles/mlvc_graph.dir/stored_csr.cpp.o"
  "CMakeFiles/mlvc_graph.dir/stored_csr.cpp.o.d"
  "libmlvc_graph.a"
  "libmlvc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
