
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/csr.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/csr.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/edge_list.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/edge_list.cpp.o.d"
  "/root/repo/src/graph/external_builder.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/external_builder.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/external_builder.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph_stats.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/graph_stats.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/graph_stats.cpp.o.d"
  "/root/repo/src/graph/intervals.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/intervals.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/intervals.cpp.o.d"
  "/root/repo/src/graph/serialization.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/serialization.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/serialization.cpp.o.d"
  "/root/repo/src/graph/snap_loader.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/snap_loader.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/snap_loader.cpp.o.d"
  "/root/repo/src/graph/stored_csr.cpp" "src/graph/CMakeFiles/mlvc_graph.dir/stored_csr.cpp.o" "gcc" "src/graph/CMakeFiles/mlvc_graph.dir/stored_csr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/mlvc_ssd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
