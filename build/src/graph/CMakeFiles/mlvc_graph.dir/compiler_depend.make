# Empty compiler generated dependencies file for mlvc_graph.
# This may be replaced when dependencies are built.
