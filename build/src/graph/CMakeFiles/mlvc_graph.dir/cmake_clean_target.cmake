file(REMOVE_RECURSE
  "libmlvc_graph.a"
)
