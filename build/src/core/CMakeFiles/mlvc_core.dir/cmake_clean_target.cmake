file(REMOVE_RECURSE
  "libmlvc_core.a"
)
