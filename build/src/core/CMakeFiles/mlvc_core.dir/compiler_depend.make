# Empty compiler generated dependencies file for mlvc_core.
# This may be replaced when dependencies are built.
