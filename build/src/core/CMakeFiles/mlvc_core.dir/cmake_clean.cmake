file(REMOVE_RECURSE
  "CMakeFiles/mlvc_core.dir/graph_loader.cpp.o"
  "CMakeFiles/mlvc_core.dir/graph_loader.cpp.o.d"
  "libmlvc_core.a"
  "libmlvc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
