file(REMOVE_RECURSE
  "libmlvc_multilog.a"
)
