# Empty compiler generated dependencies file for mlvc_multilog.
# This may be replaced when dependencies are built.
