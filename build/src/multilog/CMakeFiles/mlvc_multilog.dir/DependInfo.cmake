
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multilog/edge_log.cpp" "src/multilog/CMakeFiles/mlvc_multilog.dir/edge_log.cpp.o" "gcc" "src/multilog/CMakeFiles/mlvc_multilog.dir/edge_log.cpp.o.d"
  "/root/repo/src/multilog/multilog_store.cpp" "src/multilog/CMakeFiles/mlvc_multilog.dir/multilog_store.cpp.o" "gcc" "src/multilog/CMakeFiles/mlvc_multilog.dir/multilog_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mlvc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/mlvc_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mlvc_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
