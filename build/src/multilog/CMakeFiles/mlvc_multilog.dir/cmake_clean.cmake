file(REMOVE_RECURSE
  "CMakeFiles/mlvc_multilog.dir/edge_log.cpp.o"
  "CMakeFiles/mlvc_multilog.dir/edge_log.cpp.o.d"
  "CMakeFiles/mlvc_multilog.dir/multilog_store.cpp.o"
  "CMakeFiles/mlvc_multilog.dir/multilog_store.cpp.o.d"
  "libmlvc_multilog.a"
  "libmlvc_multilog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_multilog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
