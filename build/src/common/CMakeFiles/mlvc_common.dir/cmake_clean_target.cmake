file(REMOVE_RECURSE
  "libmlvc_common.a"
)
