file(REMOVE_RECURSE
  "CMakeFiles/mlvc_common.dir/args.cpp.o"
  "CMakeFiles/mlvc_common.dir/args.cpp.o.d"
  "CMakeFiles/mlvc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mlvc_common.dir/thread_pool.cpp.o.d"
  "libmlvc_common.a"
  "libmlvc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
