# Empty dependencies file for mlvc_common.
# This may be replaced when dependencies are built.
