# Empty compiler generated dependencies file for mlvc_gen.
# This may be replaced when dependencies are built.
