file(REMOVE_RECURSE
  "CMakeFiles/mlvc_gen.dir/mlvc_gen.cpp.o"
  "CMakeFiles/mlvc_gen.dir/mlvc_gen.cpp.o.d"
  "mlvc_gen"
  "mlvc_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
