file(REMOVE_RECURSE
  "CMakeFiles/mlvc_convert.dir/mlvc_convert.cpp.o"
  "CMakeFiles/mlvc_convert.dir/mlvc_convert.cpp.o.d"
  "mlvc_convert"
  "mlvc_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
