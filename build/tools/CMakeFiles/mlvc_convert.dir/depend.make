# Empty dependencies file for mlvc_convert.
# This may be replaced when dependencies are built.
