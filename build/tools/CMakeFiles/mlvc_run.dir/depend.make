# Empty dependencies file for mlvc_run.
# This may be replaced when dependencies are built.
