file(REMOVE_RECURSE
  "CMakeFiles/mlvc_run.dir/mlvc_run.cpp.o"
  "CMakeFiles/mlvc_run.dir/mlvc_run.cpp.o.d"
  "mlvc_run"
  "mlvc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
