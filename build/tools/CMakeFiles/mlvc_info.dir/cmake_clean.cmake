file(REMOVE_RECURSE
  "CMakeFiles/mlvc_info.dir/mlvc_info.cpp.o"
  "CMakeFiles/mlvc_info.dir/mlvc_info.cpp.o.d"
  "mlvc_info"
  "mlvc_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlvc_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
