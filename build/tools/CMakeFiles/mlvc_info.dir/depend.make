# Empty dependencies file for mlvc_info.
# This may be replaced when dependencies are built.
