# Empty compiler generated dependencies file for road_reachability.
# This may be replaced when dependencies are built.
