# Empty dependencies file for bench_fig3_page_util.
# This may be replaced when dependencies are built.
