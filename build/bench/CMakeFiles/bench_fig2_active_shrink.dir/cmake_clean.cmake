file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_active_shrink.dir/bench_fig2_active_shrink.cpp.o"
  "CMakeFiles/bench_fig2_active_shrink.dir/bench_fig2_active_shrink.cpp.o.d"
  "bench_fig2_active_shrink"
  "bench_fig2_active_shrink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_active_shrink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
