# Empty compiler generated dependencies file for bench_fig2_active_shrink.
# This may be replaced when dependencies are built.
