# Empty compiler generated dependencies file for bench_related_engines.
# This may be replaced when dependencies are built.
