file(REMOVE_RECURSE
  "CMakeFiles/bench_related_engines.dir/bench_related_engines.cpp.o"
  "CMakeFiles/bench_related_engines.dir/bench_related_engines.cpp.o.d"
  "bench_related_engines"
  "bench_related_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
