# Empty dependencies file for bench_fig8_grafboost.
# This may be replaced when dependencies are built.
