file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_grafboost.dir/bench_fig8_grafboost.cpp.o"
  "CMakeFiles/bench_fig8_grafboost.dir/bench_fig8_grafboost.cpp.o.d"
  "bench_fig8_grafboost"
  "bench_fig8_grafboost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_grafboost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
