file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_supersteps.dir/bench_fig7_supersteps.cpp.o"
  "CMakeFiles/bench_fig7_supersteps.dir/bench_fig7_supersteps.cpp.o.d"
  "bench_fig7_supersteps"
  "bench_fig7_supersteps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_supersteps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
