# Empty dependencies file for bench_fig7_supersteps.
# This may be replaced when dependencies are built.
