# Empty dependencies file for bench_fig9_predictor.
# This may be replaced when dependencies are built.
