file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_predictor.dir/bench_fig9_predictor.cpp.o"
  "CMakeFiles/bench_fig9_predictor.dir/bench_fig9_predictor.cpp.o.d"
  "bench_fig9_predictor"
  "bench_fig9_predictor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_predictor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
