file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_memory.dir/bench_fig10_memory.cpp.o"
  "CMakeFiles/bench_fig10_memory.dir/bench_fig10_memory.cpp.o.d"
  "bench_fig10_memory"
  "bench_fig10_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
