# Empty dependencies file for bench_fig5_bfs.
# This may be replaced when dependencies are built.
