// mlvc_run — run any built-in application on any engine over a graph file.
//
//   mlvc_run --graph g.mlvc --app bfs --source 0
//   mlvc_run --graph g.mlvc --app cdlp --engine graphchi --budget 64M
//   mlvc_run --graph g.mlvc --app pagerank --engine grafboost --supersteps 15
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/kcore.hpp"
#include "apps/mis.hpp"
#include "apps/pagerank.hpp"
#include "apps/pagerank_delta.hpp"
#include "apps/random_walk.hpp"
#include "apps/sssp.hpp"
#include "apps/wcc.hpp"
#include "common/args.hpp"
#include "core/engine.hpp"
#include "grafboost/engine.hpp"
#include "graph/serialization.hpp"
#include "graphchi/engine.hpp"
#include "metrics/json_export.hpp"
#include "metrics/report.hpp"
#include "ssd/io_backend.hpp"

namespace {

using namespace mlvc;

struct RunConfig {
  std::string engine;
  std::size_t budget;
  Superstep supersteps;
  std::uint64_t seed;
  std::size_t page_size;
  unsigned channels;
  std::string json_path;  // empty = no JSON dump
  unsigned staging;       // produce-path staging depth (mlvc engine)
  std::size_t adj_cache;  // adjacency page-cache bytes (mlvc engine)
  ssd::IoBackendKind io_backend;  // hot-path I/O substrate (mlvc engine)
  unsigned io_depth;              // io_uring ring size
  OnDiskFormat format;            // stored-CSR / message-log layout
  core::ComputationModel model;   // message delivery (mlvc engine)
  SchedulePolicy schedule;        // superstep-internal interval order (mlvc)
  unsigned devices;               // striped backing devices for the store
  std::size_t stripe_unit;        // stripe unit bytes (0 = default)
  CombinePlacement combine_placement;  // §V.D combine site (mlvc engine)
};

/// Per-layer on-disk vs logical byte split — makes bytes/edge (and the v2
/// compression ratio) observable straight from the CLI.
void print_bytes_per_edge(const core::RunStats& stats, EdgeIndex num_edges) {
  if (num_edges == 0) return;
  const auto line = [&](const char* name, ssd::IoCategory cat) {
    const auto c = stats.category_bytes(cat);
    const std::uint64_t physical = c.bytes_read + c.bytes_written;
    const std::uint64_t logical = c.logical_bytes_read + c.logical_bytes_written;
    if (physical == 0 && logical == 0) return;
    std::cout << "  " << name << ": "
              << static_cast<double>(physical) / static_cast<double>(num_edges)
              << " B/edge on-disk, "
              << static_cast<double>(logical) / static_cast<double>(num_edges)
              << " B/edge logical";
    if (physical > 0 && logical > 0) {
      std::cout << " (ratio "
                << static_cast<double>(logical) / static_cast<double>(physical)
                << "x)";
    }
    std::cout << "\n";
  };
  std::cout << "bytes/edge by layer:\n";
  line("adjacency", ssd::IoCategory::kCsrColIdx);
  line("message_log", ssd::IoCategory::kMessageLog);
  line("checkpoint", ssd::IoCategory::kMisc);
}

template <core::VertexApp App>
int run_app(const graph::CsrGraph& csr, App app, const RunConfig& cfg) {
  ssd::TempDir workdir("mlvc_run");
  ssd::DeviceConfig device;
  device.page_size = cfg.page_size;
  device.num_channels = cfg.channels;
  device.num_devices = cfg.devices;
  if (cfg.stripe_unit > 0) device.stripe_unit_bytes = cfg.stripe_unit;
  ssd::Storage storage(workdir.path(), device);

  core::RunStats stats;
  if (cfg.engine == "mlvc") {
    core::EngineOptions opts;
    opts.memory_budget_bytes = cfg.budget;
    opts.max_supersteps = cfg.supersteps;
    opts.seed = cfg.seed;
    opts.scatter_staging_records = cfg.staging;
    opts.adjacency_cache_bytes = cfg.adj_cache;
    opts.io_backend = cfg.io_backend;
    opts.io_queue_depth = cfg.io_depth;
    opts.on_disk_format = cfg.format;
    opts.model = cfg.model;
    opts.schedule_policy = cfg.schedule;
    opts.combine_placement = cfg.combine_placement;
    graph::StoredCsrGraph stored(storage, "g", csr,
                                 core::partition_for_app<App>(csr, opts),
                                 {.with_weights = App::kNeedsWeights,
                                  .format = cfg.format});
    core::MultiLogVCEngine<App> engine(stored, app, opts);
    stats = engine.run();
    // Streamed over the value store; the export never materializes the
    // O(V) values() vector.
    stats.values_hash = metrics::streamed_values_hash(engine);
    stats.has_values_hash = true;
  } else if (cfg.engine == "graphchi") {
    graphchi::GraphChiOptions opts;
    opts.memory_budget_bytes = cfg.budget;
    opts.max_supersteps = cfg.supersteps;
    opts.seed = cfg.seed;
    graphchi::GraphChiEngine<App> engine(storage, csr, app, opts);
    stats = engine.run();
  } else if (cfg.engine == "grafboost") {
    core::EngineOptions popts;
    popts.memory_budget_bytes = cfg.budget;
    graph::StoredCsrGraph stored(storage, "g", csr,
                                 core::partition_for_app<App>(csr, popts),
                                 {.with_weights = App::kNeedsWeights,
                                  .format = cfg.format});
    grafboost::GraFBoostOptions opts;
    opts.memory_budget_bytes = cfg.budget;
    opts.max_supersteps = cfg.supersteps;
    opts.seed = cfg.seed;
    grafboost::GraFBoostEngine<App> engine(stored, app, opts);
    stats = engine.run();
  } else {
    std::cerr << "unknown --engine '" << cfg.engine
              << "' (mlvc | graphchi | grafboost)\n";
    return 2;
  }

  std::cout << metrics::summarize(stats) << "\n";
  print_bytes_per_edge(stats, csr.num_edges());
  std::cout << "\n";
  metrics::print_superstep_table(stats);
  if (!cfg.json_path.empty()) {
    std::ofstream json(cfg.json_path);
    metrics::write_json(stats, json);
    std::cout << "\nwrote " << cfg.json_path << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("mlvc_run", "run a vertex-centric application on a graph");
  args.option("graph", "binary MLVC graph file (see mlvc_gen/mlvc_convert)")
      .option("app",
              "bfs | sssp | pagerank | prdelta | cdlp | coloring | mis | rw | "
              "kcore | wcc")
      .option("engine", "mlvc | graphchi | grafboost", "mlvc")
      .option("budget", "host memory budget, e.g. 64M or 1G", "64M")
      .option("supersteps", "superstep cap", "15")
      .option("source", "source vertex (bfs/sssp)", "0")
      .option("k", "core order (kcore)", "3")
      .option("stride", "source stride (rw)", "1000")
      .option("seed", "random seed", "1")
      .option("page-size", "modeled SSD page size", "16K")
      .option("channels", "modeled SSD channels", "8")
      .option("staging", "produce-path staging depth in records, 0 = locked",
              "64")
      .option("adj-cache", "adjacency page-cache bytes, 0 = off", "0")
      .option("io-backend", "threadpool | uring (falls back if unsupported)",
              "threadpool")
      .option("io-depth", "io_uring submission queue depth", "64")
      .option("format", "on-disk layout: v1 | v2 (default MLVC_FORMAT or v2)",
              "-")
      .option("model", "message delivery: sync | async (mlvc engine)", "sync")
      .option("schedule",
              "interval order: bsp | fifo | hub-degree | log-bytes "
              "(default MLVC_SCHEDULE or bsp; mlvc engine)",
              "-")
      .option("devices",
              "striped backing devices for the run's store "
              "(default MLVC_DEVICES or 1)",
              "-")
      .option("stripe", "stripe unit bytes, e.g. 128K (striped stores)", "-")
      .option("combine-placement",
              "combine site: host | device (default MLVC_COMBINE_PLACEMENT "
              "or host; mlvc engine, striped stores)",
              "-")
      .option("direction",
              "execution direction: push | pull | adaptive (default "
              "MLVC_DIRECTION or push; mlvc engine, sync model)",
              "-")
      .option("json", "write run statistics to this JSON file", "-");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    const std::string backend_arg =
        args.get_string("io-backend", "threadpool");
    const auto backend = ssd::parse_io_backend(backend_arg);
    if (!backend) {
      std::cerr << "unknown --io-backend '" << backend_arg
                << "' (threadpool | uring)\n";
      return 2;
    }
    // Resolve the MLVC_FORMAT env override first; --format wins over both
    // it and the built-in default. (The engine re-applies env overrides at
    // construction, but the stored CSR below needs the resolved value too.)
    OnDiskFormat format =
        core::apply_env_overrides(core::EngineOptions{}).on_disk_format;
    const std::string format_arg = args.get_string("format", "-");
    if (format_arg != "-") {
      if (!parse_on_disk_format(format_arg.c_str(), &format)) {
        std::cerr << "unknown --format '" << format_arg << "' (v1 | v2)\n";
        return 2;
      }
      // The engine re-applies MLVC_FORMAT at construction; pin it so an
      // explicit --format can't be half-overridden into a mixed config.
      setenv("MLVC_FORMAT", to_string(format), /*overwrite=*/1);
    }
    // --schedule follows the same resolve-then-pin pattern as --format.
    SchedulePolicy schedule =
        core::apply_env_overrides(core::EngineOptions{}).schedule_policy;
    const std::string schedule_arg = args.get_string("schedule", "-");
    if (schedule_arg != "-") {
      if (!parse_schedule_policy(schedule_arg.c_str(), &schedule)) {
        std::cerr << "unknown --schedule '" << schedule_arg
                  << "' (bsp | fifo | hub-degree | log-bytes)\n";
        return 2;
      }
      setenv("MLVC_SCHEDULE", to_string(schedule), /*overwrite=*/1);
    }
    // --devices / --stripe / --combine-placement: resolve-then-pin again,
    // because Storage construction re-reads MLVC_DEVICES/MLVC_STRIPE_UNIT
    // and the engine re-reads MLVC_COMBINE_PLACEMENT.
    unsigned devices = 1;
    if (const char* env = std::getenv("MLVC_DEVICES")) {
      const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
      if (n > 0) devices = n;
    }
    const std::string devices_arg = args.get_string("devices", "-");
    if (devices_arg != "-") {
      devices =
          static_cast<unsigned>(std::strtoul(devices_arg.c_str(), nullptr, 10));
      if (devices == 0) {
        std::cerr << "--devices must be >= 1\n";
        return 2;
      }
      setenv("MLVC_DEVICES", devices_arg.c_str(), /*overwrite=*/1);
    }
    std::size_t stripe_unit = 0;
    const std::string stripe_arg = args.get_string("stripe", "-");
    if (stripe_arg != "-") {
      stripe_unit = static_cast<std::size_t>(args.get_bytes("stripe", 0));
      setenv("MLVC_STRIPE_UNIT", std::to_string(stripe_unit).c_str(),
             /*overwrite=*/1);
    }
    CombinePlacement placement =
        core::apply_env_overrides(core::EngineOptions{}).combine_placement;
    const std::string placement_arg =
        args.get_string("combine-placement", "-");
    if (placement_arg != "-") {
      if (!parse_combine_placement(placement_arg.c_str(), &placement)) {
        std::cerr << "unknown --combine-placement '" << placement_arg
                  << "' (host | device)\n";
        return 2;
      }
      setenv("MLVC_COMBINE_PLACEMENT", to_string(placement), /*overwrite=*/1);
    }
    // --direction: resolve-then-pin like --schedule; the engine re-reads
    // MLVC_DIRECTION at construction.
    const std::string direction_arg = args.get_string("direction", "-");
    if (direction_arg != "-") {
      DirectionMode direction;
      if (!parse_direction_mode(direction_arg.c_str(), &direction)) {
        std::cerr << "unknown --direction '" << direction_arg
                  << "' (push | pull | adaptive)\n";
        return 2;
      }
      setenv("MLVC_DIRECTION", to_string(direction), /*overwrite=*/1);
    }
    const std::string model_arg = args.get_string("model", "sync");
    core::ComputationModel model;
    if (model_arg == "sync") {
      model = core::ComputationModel::kSynchronous;
    } else if (model_arg == "async") {
      model = core::ComputationModel::kAsynchronous;
    } else {
      std::cerr << "unknown --model '" << model_arg << "' (sync | async)\n";
      return 2;
    }
    const auto csr = graph::load_csr(args.get_string("graph"));
    const RunConfig cfg{
        args.get_string("engine", "mlvc"),
        static_cast<std::size_t>(args.get_bytes("budget", 64_MiB)),
        static_cast<Superstep>(args.get_int("supersteps", 15)),
        static_cast<std::uint64_t>(args.get_int("seed", 1)),
        static_cast<std::size_t>(args.get_bytes("page-size", 16_KiB)),
        static_cast<unsigned>(args.get_int("channels", 8)),
        args.get_string("json", "-") == "-" ? std::string{}
                                            : args.get_string("json", "-"),
        static_cast<unsigned>(args.get_int("staging", 64)),
        static_cast<std::size_t>(args.get_bytes("adj-cache", 0)),
        *backend,
        static_cast<unsigned>(args.get_int("io-depth", 64)),
        format,
        model,
        schedule,
        devices,
        stripe_unit,
        placement,
    };
    const auto source = static_cast<VertexId>(args.get_int("source", 0));
    const std::string app = args.get_string("app");

    if (app == "bfs") return run_app(csr, apps::Bfs{.source = source}, cfg);
    if (app == "sssp") return run_app(csr, apps::Sssp{.source = source}, cfg);
    if (app == "pagerank") return run_app(csr, apps::PageRank{}, cfg);
    if (app == "prdelta") return run_app(csr, apps::PageRankDelta{}, cfg);
    if (app == "cdlp") return run_app(csr, apps::Cdlp{}, cfg);
    if (app == "coloring") return run_app(csr, apps::GraphColoring{}, cfg);
    if (app == "mis") return run_app(csr, apps::Mis{}, cfg);
    if (app == "wcc") return run_app(csr, apps::Wcc{}, cfg);
    if (app == "kcore") {
      return run_app(
          csr, apps::KCore{.k = static_cast<std::uint32_t>(args.get_int("k", 3))},
          cfg);
    }
    if (app == "rw") {
      apps::RandomWalk rw;
      rw.source_stride =
          static_cast<VertexId>(args.get_int("stride", 1000));
      return run_app(csr, rw, cfg);
    }
    std::cerr << "unknown --app '" << app << "'\n" << args.usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
