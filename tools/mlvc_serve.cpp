// mlvc_serve — a long-lived multi-tenant query daemon over one shared graph.
//
// One RuntimeContext owns the storage, the io-backend choice, a shared
// adjacency PageCache, the memory-budget arbiter, and the checkpoint
// snapshot table; every query is a cheap per-query MultiLogVCEngine over
// that substrate, run on a bounded worker pool. Queries arrive as lines —
// from a script file, stdin, or self-generated (--random) — and each
// reports its own latency, supersteps, value hash, and per-query cache
// split. This is the FlashGraph serving model over the MultiLogVC engine.
//
//   mlvc_serve --graph g.mlvc --random 100 --concurrency 32
//   mlvc_serve --graph g.mlvc --script queries.txt --verify
//   echo "bfs 0" | mlvc_serve --graph g.mlvc
//
// Query language (one query per line, '#' comments):
//   bfs <source> | sssp <source> | wcc | cdlp | pagerank | prdelta |
//   rw <stride> | quit
// Any query may end with "schedule=<fifo|hub-degree|log-bytes>", which runs
// it under the asynchronous model with that interval schedule policy —
// async delta-PageRank queries share the RuntimeContext with BSP queries.
//
// --verify re-runs each distinct order-independent query (bfs/sssp/wcc —
// min-combines, so bit-identical regardless of message arrival order)
// serially on a one-shot engine over the same graph and compares value
// hashes. pagerank/prdelta (float-sum combine) and rw (walker/draw pairing)
// are arrival-order-sensitive by nature and are checked for completion
// only; so are scheduled queries (the serial replay would run BSP order,
// and e.g. async BFS legally reaches vertices in fewer supersteps).
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/pagerank.hpp"
#include "apps/pagerank_delta.hpp"
#include "apps/random_walk.hpp"
#include "apps/sssp.hpp"
#include "apps/wcc.hpp"
#include "common/args.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "core/runtime_context.hpp"
#include "graph/serialization.hpp"
#include "metrics/json_export.hpp"
#include "ssd/io_backend.hpp"

namespace {

using namespace mlvc;

// FNV-1a over the raw value bytes: the "results bit-identical" check.
// Streams the values in id-ascending chunks via Engine::for_each_value_chunk
// instead of materializing the O(V) vector values() returns, so --verify
// stays within the memory budget on big graphs.
template <typename Engine>
std::uint64_t hash_values(const Engine& engine) {
  return metrics::streamed_values_hash(engine);
}

struct Spec {
  std::string app;   // bfs | sssp | wcc | cdlp | pagerank | prdelta | rw
  VertexId arg = 0;  // source (bfs/sssp) or stride (rw)
  /// Non-kBsp runs the query under the asynchronous model with this
  /// interval schedule (same-wave delivery + priority order).
  SchedulePolicy schedule = SchedulePolicy::kBsp;
  std::string text;  // canonical form, also the verify-dedup key

  /// Order-independent message combine → bit-identical under concurrency.
  /// Scheduled queries are excluded even for min-combine apps: the serial
  /// verify replay runs BSP order, and async delivery legally changes
  /// per-superstep results (e.g. BFS levels settle in fewer rounds).
  bool deterministic() const {
    return (app == "bfs" || app == "sssp" || app == "wcc") &&
           schedule == SchedulePolicy::kBsp;
  }
};

struct QueryResult {
  std::uint64_t query_id = 0;
  Spec spec;
  bool ok = false;
  std::string error;
  std::uint64_t value_hash = 0;
  double wall_seconds = 0;
  std::size_t supersteps = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypasses = 0;
};

struct ServeConfig {
  core::EngineOptions engine;
  bool weights = false;
};

std::optional<Spec> parse_spec(const std::string& line, VertexId n_vertices) {
  std::istringstream is(line);
  Spec s;
  if (!(is >> s.app)) return std::nullopt;  // blank line
  if (s.app.front() == '#') return std::nullopt;
  if (s.app == "bfs" || s.app == "sssp" || s.app == "rw") {
    std::uint64_t arg = 0;
    if (!(is >> arg)) {
      throw InvalidArgument("query '" + line + "' needs a numeric argument");
    }
    if (s.app == "rw") {
      if (arg == 0) throw InvalidArgument("rw stride must be > 0");
    } else if (arg >= n_vertices) {
      throw InvalidArgument("source " + std::to_string(arg) +
                            " out of range (graph has " +
                            std::to_string(n_vertices) + " vertices)");
    }
    s.arg = static_cast<VertexId>(arg);
    s.text = s.app + " " + std::to_string(arg);
  } else if (s.app == "wcc" || s.app == "cdlp" || s.app == "pagerank" ||
             s.app == "prdelta") {
    s.text = s.app;
  } else {
    throw InvalidArgument(
        "unknown query '" + line +
        "' (bfs S | sssp S | wcc | cdlp | pagerank | prdelta | rw N"
        " [schedule=POLICY])");
  }
  std::string tok;
  if (is >> tok) {
    constexpr const char* kPrefix = "schedule=";
    if (tok.rfind(kPrefix, 0) != 0 ||
        !parse_schedule_policy(tok.c_str() + 9, &s.schedule)) {
      throw InvalidArgument(
          "bad query suffix '" + tok +
          "' (expected schedule=bsp|fifo|hub-degree|log-bytes)");
    }
    if (s.schedule != SchedulePolicy::kBsp) {
      s.text += " ";
      s.text += kPrefix;
      s.text += to_string(s.schedule);
    }
  }
  return s;
}

template <core::VertexApp App>
QueryResult run_query(core::RuntimeContext& ctx, graph::StoredCsrGraph& graph,
                      App app, const Spec& spec, const ServeConfig& cfg) {
  QueryResult r;
  r.spec = spec;
  WallTimer wall;
  // Per-query engine options: a scheduled query flips this engine (and only
  // this engine) to the asynchronous model with the requested interval
  // order; BSP queries sharing the RuntimeContext are untouched.
  core::EngineOptions opts = cfg.engine;
  if (spec.schedule != SchedulePolicy::kBsp) {
    opts.schedule_policy = spec.schedule;
    opts.model = core::ComputationModel::kAsynchronous;
  }
  core::MultiLogVCEngine<App> engine(ctx, graph, app, opts);
  r.query_id = engine.query_id();
  const core::RunStats stats = engine.run();
  r.wall_seconds = wall.elapsed_seconds();
  r.supersteps = stats.supersteps.size();
  r.value_hash = hash_values(engine);
  r.cache_hits = stats.query_cache_hit_pages;
  r.cache_misses = stats.query_cache_miss_pages;
  r.cache_bypasses = stats.query_cache_bypass_pages;
  r.ok = true;
  ctx.merge_run(stats);
  return r;
}

/// Serial ground truth: a one-shot engine over the same stored graph (after
/// the concurrent phase has drained). adjacency_cache_bytes is cleared so
/// the one-shot constructor does not swap the graph's shared cache for a
/// private one.
template <core::VertexApp App>
std::uint64_t serial_hash(graph::StoredCsrGraph& graph, App app,
                          const ServeConfig& cfg) {
  core::EngineOptions opts = cfg.engine;
  opts.adjacency_cache_bytes = 0;
  core::MultiLogVCEngine<App> engine(graph, app, opts);
  engine.run();
  return hash_values(engine);
}

QueryResult dispatch(core::RuntimeContext& ctx, graph::StoredCsrGraph& graph,
                     const Spec& spec, const ServeConfig& cfg) {
  if (spec.app == "bfs") {
    return run_query(ctx, graph, apps::Bfs{.source = spec.arg}, spec, cfg);
  }
  if (spec.app == "sssp") {
    if (!cfg.weights) {
      QueryResult r;
      r.spec = spec;
      r.error = "graph has no weights";
      return r;
    }
    return run_query(ctx, graph, apps::Sssp{.source = spec.arg}, spec, cfg);
  }
  if (spec.app == "wcc") return run_query(ctx, graph, apps::Wcc{}, spec, cfg);
  if (spec.app == "cdlp") {
    return run_query(ctx, graph, apps::Cdlp{}, spec, cfg);
  }
  if (spec.app == "pagerank") {
    return run_query(ctx, graph, apps::PageRank{}, spec, cfg);
  }
  if (spec.app == "prdelta") {
    return run_query(ctx, graph, apps::PageRankDelta{}, spec, cfg);
  }
  apps::RandomWalk rw;
  rw.source_stride = spec.arg;
  return run_query(ctx, graph, rw, spec, cfg);
}

std::uint64_t dispatch_serial(graph::StoredCsrGraph& graph, const Spec& spec,
                              const ServeConfig& cfg) {
  if (spec.app == "bfs") {
    return serial_hash(graph, apps::Bfs{.source = spec.arg}, cfg);
  }
  if (spec.app == "sssp") {
    return serial_hash(graph, apps::Sssp{.source = spec.arg}, cfg);
  }
  return serial_hash(graph, apps::Wcc{}, cfg);
}

std::vector<Spec> random_specs(std::size_t count, std::uint64_t seed,
                               VertexId n_vertices, bool weights) {
  SplitMix64 rng(seed);
  std::vector<Spec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Traversal-heavy mix: mostly point queries from distinct sources, a
    // sprinkle of whole-graph analytics and walks.
    const std::uint64_t roll = rng.next_below(10);
    std::ostringstream line;
    if (roll < 5 || (roll < 7 && !weights)) {
      line << "bfs " << rng.next_below(n_vertices);
    } else if (roll < 7) {
      line << "sssp " << rng.next_below(n_vertices);
    } else if (roll == 7) {
      line << "wcc";
    } else if (roll == 8) {
      line << "pagerank";
    } else {
      line << "rw " << (1 + rng.next_below(std::max<VertexId>(
                                1, n_vertices / 4)));
    }
    specs.push_back(*parse_spec(line.str(), n_vertices));
  }
  return specs;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("mlvc_serve",
                 "serve concurrent graph queries over one shared graph");
  args.option("graph", "binary MLVC graph file (see mlvc_gen/mlvc_convert)")
      .option("script", "query script file; '-' = stdin", "-")
      .option("random", "self-generate this many mixed queries (0 = off)",
              "0")
      .option("concurrency", "worker threads (max concurrent queries)", "8")
      .option("budget", "per-query host memory budget", "32M")
      .option("pool", "context memory pool the arbiter leases from", "256M")
      .option("cache", "shared adjacency cache bytes", "8M")
      .option("adj-quota",
              "per-query cache admission quota bytes, 0 = whole cache", "0")
      .option("supersteps", "superstep cap per query", "30")
      .option("seed", "random seed (query gen + apps)", "1")
      .option("page-size", "modeled SSD page size", "16K")
      .option("channels", "modeled SSD channels", "8")
      .option("io-backend", "threadpool | uring (falls back if unsupported)",
              "threadpool")
      .option("io-depth", "io_uring submission queue depth", "64")
      .option("verify",
              "re-run distinct deterministic queries serially and compare "
              "value hashes (0/1)",
              "0");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    const std::string backend_arg =
        args.get_string("io-backend", "threadpool");
    const auto backend = ssd::parse_io_backend(backend_arg);
    if (!backend) {
      std::cerr << "unknown --io-backend '" << backend_arg
                << "' (threadpool | uring)\n";
      return 2;
    }

    const auto csr = graph::load_csr(args.get_string("graph"));

    core::RuntimeContextOptions ctx_opts;
    ctx_opts.device.page_size =
        static_cast<std::size_t>(args.get_bytes("page-size", 16_KiB));
    ctx_opts.device.num_channels =
        static_cast<unsigned>(args.get_int("channels", 8));
    ctx_opts.io_backend = *backend;
    ctx_opts.io_queue_depth =
        static_cast<unsigned>(args.get_int("io-depth", 64));
    ctx_opts.memory_pool_bytes =
        static_cast<std::size_t>(args.get_bytes("pool", 256_MiB));
    ctx_opts.shared_cache_bytes =
        static_cast<std::size_t>(args.get_bytes("cache", 8_MiB));

    ServeConfig cfg;
    cfg.engine.memory_budget_bytes =
        static_cast<std::size_t>(args.get_bytes("budget", 32_MiB));
    cfg.engine.max_supersteps =
        static_cast<Superstep>(args.get_int("supersteps", 30));
    cfg.engine.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    cfg.engine.adjacency_cache_bytes =
        static_cast<std::size_t>(args.get_bytes("adj-quota", 0));
    cfg.engine.io_backend = *backend;
    cfg.weights = csr.has_weights();

    ssd::TempDir workdir("mlvc_serve");
    core::RuntimeContext ctx(workdir.path(), ctx_opts);
    if (!ctx.io_backend_fallback().empty()) {
      std::cerr << "note: io backend fell back to " << ctx.io_backend_name()
                << " (" << ctx.io_backend_fallback() << ")\n";
    }

    // All served apps use 8-byte records, so one §V.A.1 partition fits all.
    graph::StoredCsrGraph stored(
        ctx.storage(), "g", csr,
        core::partition_for_app<apps::Bfs>(csr, cfg.engine),
        {.with_weights = cfg.weights});
    ctx.adopt_graph(stored);

    // ---- collect the workload ------------------------------------------
    std::vector<Spec> specs;
    const auto n_random =
        static_cast<std::size_t>(args.get_int("random", 0));
    if (n_random > 0) {
      specs = random_specs(n_random, cfg.engine.seed, csr.num_vertices(),
                          cfg.weights);
    } else {
      const std::string script = args.get_string("script", "-");
      std::ifstream file;
      if (script != "-") {
        file.open(script);
        if (!file) {
          std::cerr << "cannot open --script '" << script << "'\n";
          return 2;
        }
      }
      std::istream& in = script == "-" ? std::cin : file;
      std::string line;
      while (std::getline(in, line)) {
        if (line == "quit") break;
        if (auto spec = parse_spec(line, csr.num_vertices())) {
          specs.push_back(std::move(*spec));
        }
      }
    }
    if (specs.empty()) {
      std::cerr << "no queries\n";
      return 2;
    }

    // ---- bounded worker pool -------------------------------------------
    const auto concurrency = std::max<std::size_t>(
        1, static_cast<std::size_t>(args.get_int("concurrency", 8)));
    std::vector<QueryResult> results(specs.size());
    std::atomic<std::size_t> next{0};
    std::mutex out_mutex;
    WallTimer serve_wall;
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size()) return;
        QueryResult r;
        try {
          r = dispatch(ctx, stored, specs[i], cfg);
        } catch (const std::exception& e) {
          r.spec = specs[i];
          r.error = e.what();
        }
        {
          std::lock_guard<std::mutex> lock(out_mutex);
          if (r.ok) {
            std::cout << "query " << r.query_id << " [" << r.spec.text
                      << "] ok wall=" << r.wall_seconds
                      << "s supersteps=" << r.supersteps << " hash=0x"
                      << std::hex << r.value_hash << std::dec
                      << " cache_hit=" << r.cache_hits
                      << " cache_miss=" << r.cache_misses
                      << " cache_bypass=" << r.cache_bypasses << "\n";
          } else {
            std::cout << "query - [" << r.spec.text
                      << "] FAILED: " << r.error << "\n";
          }
        }
        results[i] = std::move(r);
      }
    };
    std::vector<std::thread> workers;
    workers.reserve(concurrency);
    for (std::size_t w = 0; w < concurrency; ++w) {
      workers.emplace_back(worker);
    }
    for (auto& t : workers) t.join();
    const double serve_seconds = serve_wall.elapsed_seconds();

    // ---- verify against serial one-shot runs ---------------------------
    std::size_t verify_failures = 0;
    if (args.get_int("verify", 0) != 0) {
      std::map<std::string, std::uint64_t> concurrent_hash;
      for (const auto& r : results) {
        if (r.ok && r.spec.deterministic()) {
          concurrent_hash[r.spec.text] = r.value_hash;
        }
      }
      for (const auto& [text, hash] : concurrent_hash) {
        const Spec spec = *parse_spec(text, csr.num_vertices());
        const std::uint64_t serial = dispatch_serial(stored, spec, cfg);
        if (serial != hash) {
          ++verify_failures;
          std::cout << "VERIFY MISMATCH [" << text << "] concurrent=0x"
                    << std::hex << hash << " serial=0x" << serial << std::dec
                    << "\n";
        }
      }
      std::cout << "verify: " << concurrent_hash.size() << " distinct "
                << "deterministic queries, " << verify_failures
                << " mismatches\n";
    }

    // ---- summary --------------------------------------------------------
    std::size_t failed = 0;
    std::vector<double> latencies;
    for (const auto& r : results) {
      if (r.ok) {
        latencies.push_back(r.wall_seconds);
      } else {
        ++failed;
      }
    }
    std::sort(latencies.begin(), latencies.end());
    const auto agg = ctx.aggregates();
    const auto& cache = *ctx.shared_cache();
    const std::uint64_t lookups = cache.hits() + cache.misses();
    std::cout << "served " << latencies.size() << "/" << specs.size()
              << " queries in " << serve_seconds << "s (" << failed
              << " failed, concurrency " << concurrency << ")\n"
              << "latency p50=" << percentile(latencies, 0.5)
              << "s p99=" << percentile(latencies, 0.99) << "s\n"
              << "shared cache: hits=" << cache.hits()
              << " misses=" << cache.misses()
              << " bypasses=" << cache.bypasses()
              << " hit_rate="
              << (lookups > 0
                      ? static_cast<double>(cache.hits()) /
                            static_cast<double>(lookups)
                      : 0.0)
              << " high_water=" << cache.bytes_high_water() << "/"
              << cache.capacity_bytes() << " bytes\n"
              << "context: supersteps=" << agg.supersteps
              << " messages=" << agg.messages
              << " pages_read=" << agg.pages_read
              << " pages_written=" << agg.pages_written << "\n";
    if (cache.bytes_high_water() > cache.capacity_bytes()) {
      std::cout << "ERROR: shared cache exceeded its budget\n";
      return 1;
    }
    return (failed == 0 && verify_failures == 0) ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
