// mlvc_crashtest — kill-and-recover harness for the fault-injection
// substrate.
//
// The driver re-executes itself (fork + execv of /proc/self/exe) in three
// child modes sharing one working directory:
//
//   --mode clean    run the workload with no faults, dump vertex values
//   --mode victim   run with MLVC_FAULT_* armed (checkpointing "latest"
//                   every superstep) until the injected crash failpoint
//                   kills the process (exit 37), possibly mid-write with a
//                   torn trailing page
//   --mode recover  reopen the directory, load the "latest" checkpoint (or
//                   start fresh if the crash predated the first one),
//                   finish the run, dump vertex values
//
// A cycle passes when the recovered values match the clean run's: exactly
// for integer-valued apps (BFS), within a small relative tolerance for
// float-valued ones (PageRank — the parallel scatter makes float reduction
// order run-dependent even without faults).
//
//   mlvc_crashtest --profile torn-page --seed 303 --crash-after 25
//   mlvc_crashtest --sweep --crash-points 8
//
// --sweep runs, per CI fault profile: an in-process equivalence check
// (faulted run vs clean run, no crash) and, for the tearing profiles, a
// crash-point sweep of full victim/recover cycles. Exit 0 = no silent
// divergence; any injected-fault run either matched the clean values or
// failed with a typed IoError.
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "common/args.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "ssd/fault_injector.hpp"

namespace {

using namespace mlvc;

constexpr const char* kFaultEnvVars[] = {
    "MLVC_FAULT_PROFILE", "MLVC_FAULT_RATE", "MLVC_FAULT_SEED",
    "MLVC_FAULT_CRASH_AFTER"};

// The fixed crashtest workload: a small power-law graph, budget tight
// enough that logs and values live on storage.
graph::CsrGraph make_graph() {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 5;
  p.seed = 7;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

/// Set once in main from --schedule and forwarded to every child spawn, so
/// one clean/victim/recover cycle runs entirely under one interval schedule.
/// Non-bsp also flips the children to the asynchronous model — that is the
/// schedule's intended pairing and the path the torn-log profiles must
/// cover (same-wave redelivery appends to the log generations the crash
/// tears).
SchedulePolicy g_schedule = SchedulePolicy::kBsp;

core::EngineOptions crashtest_options() {
  core::EngineOptions opts;
  opts.memory_budget_bytes = 4_MiB;
  opts.max_supersteps = 40;
  opts.seed = 5;
  opts.schedule_policy = g_schedule;
  if (g_schedule != SchedulePolicy::kBsp) {
    opts.model = core::ComputationModel::kAsynchronous;
  }
  return opts;
}

template <typename Value>
bool values_match(const std::vector<Value>& a, const std::vector<Value>& b,
                  std::string& why) {
  if (a.size() != b.size()) {
    why = "size mismatch: " + std::to_string(a.size()) + " vs " +
          std::to_string(b.size());
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    bool ok;
    if constexpr (std::is_floating_point_v<Value>) {
      const double denom = std::max(1e-12, static_cast<double>(
                                               std::abs(a[i]) + std::abs(b[i])));
      ok = std::abs(a[i] - b[i]) / denom < 1e-3;
    } else {
      ok = a[i] == b[i];
    }
    if (!ok) {
      why = "vertex " + std::to_string(i) + ": " + std::to_string(a[i]) +
            " vs " + std::to_string(b[i]);
      return false;
    }
  }
  return true;
}

template <typename Value>
std::vector<Value> read_values_file(const std::filesystem::path& path) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  MLVC_CHECK_MSG(f.good(), "cannot open values file " << path);
  const auto bytes = static_cast<std::size_t>(f.tellg());
  MLVC_CHECK_MSG(bytes % sizeof(Value) == 0, "values file size not a whole "
                                             "number of values");
  std::vector<Value> out(bytes / sizeof(Value));
  f.seekg(0);
  f.read(reinterpret_cast<char*>(out.data()), bytes);
  return out;
}

// ---- child modes ----------------------------------------------------------

template <core::VertexApp App>
int run_mode(const std::string& mode, const std::filesystem::path& workdir,
             App app, const std::string& out_path) {
  const auto csr = make_graph();
  const auto opts = crashtest_options();
  ssd::Storage storage(workdir);
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts),
                               {.with_weights = App::kNeedsWeights});
  core::MultiLogVCEngine<App> engine(stored, app, opts);

  if (mode == "victim") {
    engine.run_with_callback([&](const core::SuperstepStats&) {
      engine.save_checkpoint("latest");
      return true;
    });
    // Reaching here means the armed crash point was past the end of the run.
    return 0;
  }
  if (mode == "recover") {
    try {
      engine.load_checkpoint("latest");
    } catch (const InvalidArgument&) {
      // Crashed before the first checkpoint — re-run from scratch.
    }
  }
  engine.run();
  const auto values = engine.values();
  std::ofstream f(out_path, std::ios::binary);
  f.write(reinterpret_cast<const char*>(values.data()),
          static_cast<std::streamsize>(values.size() *
                                       sizeof(typename App::Value)));
  return f.good() ? 0 : 1;
}

int run_child_mode(const std::string& mode, const std::string& app,
                   const std::filesystem::path& workdir,
                   const std::string& out_path) {
  if (app == "bfs") {
    return run_mode(mode, workdir, apps::Bfs{.source = 0}, out_path);
  }
  if (app == "pagerank") {
    return run_mode(mode, workdir, apps::PageRank{}, out_path);
  }
  std::cerr << "unknown --app '" << app << "'\n";
  return 2;
}

// ---- driver ---------------------------------------------------------------

struct ChildEnv {
  std::string profile;
  std::uint64_t seed = 1;
  double rate = 0.02;
  std::uint64_t crash_after = 0;
};

/// fork + execv this binary with `args`; victim children additionally get
/// the MLVC_FAULT_* environment, other modes run with it scrubbed.
int spawn(const std::vector<std::string>& args, const ChildEnv* env) {
  const pid_t pid = ::fork();
  if (pid < 0) throw IoError("fork", "mlvc_crashtest", errno);
  if (pid == 0) {
    for (const char* var : kFaultEnvVars) ::unsetenv(var);
    if (env != nullptr) {
      ::setenv("MLVC_FAULT_PROFILE", env->profile.c_str(), 1);
      ::setenv("MLVC_FAULT_SEED", std::to_string(env->seed).c_str(), 1);
      ::setenv("MLVC_FAULT_RATE", std::to_string(env->rate).c_str(), 1);
      ::setenv("MLVC_FAULT_CRASH_AFTER",
               std::to_string(env->crash_after).c_str(), 1);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const auto& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv("/proc/self/exe", argv.data());
    std::_Exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 128 + (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
}

/// Run the workload in-process, optionally under an injector, and return
/// the final vertex values.
template <core::VertexApp App>
std::vector<typename App::Value> run_values(
    App app, std::shared_ptr<ssd::FaultInjector> injector) {
  const auto csr = make_graph();
  const auto opts = crashtest_options();
  ssd::TempDir dir("mlvc_crash");
  ssd::Storage storage(dir.path());
  storage.set_fault_injector(std::move(injector));
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts),
                               {.with_weights = App::kNeedsWeights});
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  engine.run();
  return engine.values();
}

/// Faulted-but-uncrashed run vs clean run, both in-process. Every profile
/// must converge to the clean values: the injector's consecutive-transient
/// cap keeps all faults inside the retry budget.
template <core::VertexApp App>
bool equivalence_check(const std::string& label, App app,
                       const std::string& profile, std::uint64_t seed,
                       double rate) {
  const auto clean = run_values(app, nullptr);
  auto injector = std::make_shared<ssd::FaultInjector>(
      ssd::FaultInjector::named_profile(profile, rate), seed);
  std::vector<typename App::Value> faulted;
  try {
    faulted = run_values(app, injector);
  } catch (const IoError& e) {
    // A typed failure is an acceptable outcome; silent divergence is not.
    std::cout << "  [ok] " << label << ": typed IoError (" << e.what()
              << ")\n";
    return true;
  }
  std::string why;
  if (!values_match(clean, faulted, why)) {
    std::cout << "  [FAIL] " << label << ": values diverged — " << why
              << " (injected transient=" << injector->injected_transient()
              << " short=" << injector->injected_short() << ")\n";
    return false;
  }
  std::cout << "  [ok] " << label << ": values match clean run (transient="
            << injector->injected_transient()
            << " short=" << injector->injected_short() << ")\n";
  return true;
}

struct CycleResult {
  bool passed = false;
  int victim_exit = -1;
};

/// One full victim/recover cycle at a fixed crash point; the recovered
/// values must match the clean child's.
CycleResult crash_cycle(const std::string& app, const std::string& profile,
                        std::uint64_t seed, std::uint64_t crash_after,
                        const std::filesystem::path& clean_values) {
  ssd::TempDir workdir("mlvc_crashcycle");
  const std::string label = app + "/" + profile + " seed=" +
                            std::to_string(seed) +
                            " crash-after=" + std::to_string(crash_after);

  ChildEnv env{profile, seed, 0.02, crash_after};
  const int victim = spawn({"mlvc_crashtest", "--mode", "victim", "--app", app,
                            "--workdir", workdir.path().string(), "--schedule",
                            to_string(g_schedule)},
                           &env);
  if (victim != ssd::kCrashExitCode && victim != 0 && victim != 3) {
    std::cout << "  [FAIL] " << label << ": victim exit " << victim
              << " (expected crash " << ssd::kCrashExitCode
              << ", clean 0, or typed-error 3)\n";
    return {false, victim};
  }

  const auto recovered_path = workdir.path() / "recovered.bin";
  const int recover = spawn({"mlvc_crashtest", "--mode", "recover", "--app",
                             app, "--workdir", workdir.path().string(),
                             "--out", recovered_path.string(), "--schedule",
                             to_string(g_schedule)},
                            nullptr);
  if (recover != 0) {
    std::cout << "  [FAIL] " << label << ": recover exit " << recover << "\n";
    return {false, victim};
  }

  bool match;
  std::string why;
  if (app == "pagerank") {
    match = values_match(read_values_file<float>(clean_values),
                         read_values_file<float>(recovered_path), why);
  } else {
    match = values_match(read_values_file<std::uint32_t>(clean_values),
                         read_values_file<std::uint32_t>(recovered_path), why);
  }
  if (!match) {
    std::cout << "  [FAIL] " << label << ": recovered values diverged — "
              << why << "\n";
    return {false, victim};
  }
  std::cout << "  [ok] " << label << " (victim exit " << victim << ")\n";
  return {true, victim};
}

int run_sweep(std::uint64_t base_seed, unsigned crash_points) {
  const struct {
    const char* profile;
    std::uint64_t seed_offset;
  } kProfiles[] = {
      {"transient", 100}, {"short-io", 200}, {"torn-page", 300}, {"mixed", 400}};

  bool ok = true;
  std::cout << "== completion equivalence (no crash) ==\n";
  for (const auto& p : kProfiles) {
    const std::uint64_t seed = base_seed + p.seed_offset;
    ok &= equivalence_check(std::string("bfs/") + p.profile, apps::Bfs{},
                            p.profile, seed, 0.05);
    ok &= equivalence_check(std::string("pagerank/") + p.profile,
                            apps::PageRank{}, p.profile, seed, 0.05);
  }

  std::cout << "== crash/recover sweep ==\n";
  ssd::TempDir clean_dir("mlvc_crashclean");
  const auto clean_bfs = clean_dir.path() / "bfs.bin";
  const auto clean_pr = clean_dir.path() / "pagerank.bin";
  ssd::TempDir bfs_work("mlvc_crashwork_bfs");
  ssd::TempDir pr_work("mlvc_crashwork_pr");
  if (spawn({"mlvc_crashtest", "--mode", "clean", "--app", "bfs", "--workdir",
             bfs_work.path().string(), "--out", clean_bfs.string(),
             "--schedule", to_string(g_schedule)},
            nullptr) != 0 ||
      spawn({"mlvc_crashtest", "--mode", "clean", "--app", "pagerank",
             "--workdir", pr_work.path().string(), "--out", clean_pr.string(),
             "--schedule", to_string(g_schedule)},
            nullptr) != 0) {
    std::cout << "  [FAIL] clean reference runs\n";
    return 1;
  }
  // Crash points start inside graph construction (~10 write decisions) and
  // grow geometrically; once a victim outlives its failpoint the run has no
  // later writes to kill, so the remaining points are skipped. Long
  // (nightly) sweeps use denser spacing to land more failpoints before the
  // ceiling. At least one cycle per app × profile must genuinely crash
  // (exit 37) or the sweep is vacuous and fails.
  const bool dense = crash_points >= 8;
  for (const std::string app : {"bfs", "pagerank"}) {
    const auto& clean = app == "pagerank" ? clean_pr : clean_bfs;
    for (const char* profile : {"torn-page", "mixed"}) {
      unsigned crashed = 0;
      std::uint64_t crash_after = 10;
      for (unsigned k = 0; k < crash_points; ++k) {
        const auto r = crash_cycle(app, profile, base_seed + 300 + k,
                                   crash_after, clean);
        ok &= r.passed;
        if (r.victim_exit == ssd::kCrashExitCode) ++crashed;
        if (r.passed && r.victim_exit == 0) break;  // past end of run
        crash_after = dense ? crash_after * 3 / 2    // ~1.5x spread
                            : crash_after * 5 / 2;   // ~2.5x spread
      }
      if (crashed == 0) {
        std::cout << "  [FAIL] " << app << "/" << profile
                  << ": no cycle reached the crash failpoint — sweep "
                     "exercised nothing\n";
        ok = false;
      }
    }
  }

  std::cout << (ok ? "SWEEP PASS\n" : "SWEEP FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("mlvc_crashtest",
                 "crash/recover harness for the fault-injection substrate");
  args.option("mode", "driver | clean | victim | recover", "driver")
      .option("app", "bfs | pagerank", "bfs")
      .option("workdir", "shared state directory (child modes)", "-")
      .option("out", "values output file (clean/recover modes)", "-")
      .option("profile", "fault profile for the single-cycle driver",
              "torn-page")
      .option("seed", "fault schedule seed", "1")
      .option("crash-after", "kill the victim after this many write decisions",
              "25")
      .option("sweep", "run the full profile × crash-point sweep", "false")
      .option("crash-points", "crash points per tearing profile in --sweep",
              "4")
      .option("schedule",
              "interval schedule for all runs (bsp | fifo | hub-degree | "
              "log-bytes); non-bsp also uses the asynchronous model",
              "bsp")
      .option("devices",
              "striped backing devices for every run's store (children "
              "inherit via MLVC_DEVICES; crash recovery must re-open the "
              "stripe set)",
              "-");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n" << args.usage();
    return 2;
  }

  try {
    const std::string sched_arg = args.get_string("schedule", "bsp");
    if (!parse_schedule_policy(sched_arg.c_str(), &g_schedule)) {
      std::cerr << "unknown --schedule '" << sched_arg
                << "' (bsp | fifo | hub-degree | log-bytes)\n";
      return 2;
    }
    // Pin the env form too so the engine's MLVC_SCHEDULE re-resolve cannot
    // half-override an explicit request (same pattern as mlvc_run --format).
    if (g_schedule != SchedulePolicy::kBsp) {
      ::setenv("MLVC_SCHEDULE", to_string(g_schedule), 1);
    }
    // Striped-store mode: every Storage this process (and, via the
    // inherited environment, every forked child) constructs resolves to an
    // N-device stripe set. The victim's manifest makes the layout durable,
    // so the recover child re-opens the same stripe set even where a torn
    // write left one device's file short.
    const std::string devices_arg = args.get_string("devices", "-");
    if (devices_arg != "-") {
      const unsigned n = static_cast<unsigned>(
          std::strtoul(devices_arg.c_str(), nullptr, 10));
      if (n == 0) {
        std::cerr << "--devices must be >= 1\n";
        return 2;
      }
      ::setenv("MLVC_DEVICES", devices_arg.c_str(), 1);
    }
    const std::string mode = args.get_string("mode", "driver");
    if (mode != "driver") {
      return run_child_mode(mode, args.get_string("app", "bfs"),
                            args.get_string("workdir"),
                            args.get_string("out", "-"));
    }
    // The driver controls the fault schedule per child; ambient MLVC_FAULT_*
    // (e.g. from a CI fault-matrix job) must not leak into clean runs.
    for (const char* var : kFaultEnvVars) ::unsetenv(var);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    if (args.get_flag("sweep")) {
      return run_sweep(seed,
                       static_cast<unsigned>(args.get_int("crash-points", 4)));
    }
    ssd::TempDir clean_dir("mlvc_crashclean");
    ssd::TempDir work("mlvc_crashwork");
    const std::string app = args.get_string("app", "bfs");
    const auto clean_values = clean_dir.path() / "clean.bin";
    if (spawn({"mlvc_crashtest", "--mode", "clean", "--app", app, "--workdir",
               work.path().string(), "--out", clean_values.string(),
               "--schedule", to_string(g_schedule)},
              nullptr) != 0) {
      std::cerr << "clean reference run failed\n";
      return 1;
    }
    const auto result = crash_cycle(
        app, args.get_string("profile", "torn-page"), seed,
        static_cast<std::uint64_t>(args.get_int("crash-after", 25)),
        clean_values);
    return result.passed ? 0 : 1;
  } catch (const IoError& e) {
    std::cerr << "I/O error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
