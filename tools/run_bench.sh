#!/usr/bin/env sh
# Run the substrate sweeps and emit BENCH_scatter.json + BENCH_io.json +
# BENCH_serve.json + BENCH_compress.json + BENCH_async.json +
# BENCH_stripe.json + BENCH_direction.json.
#
#   tools/run_bench.sh [build-dir] [scatter-out.json] [io-out.json] \
#       [serve-out.json] [compress-out.json] [async-out.json] \
#       [stripe-out.json] [direction-out.json]
#
# Environment:
#   MLVC_BENCH_MIN_TIME   per-benchmark min time in seconds (default 0.05;
#                         raise for stable numbers, e.g. MLVC_BENCH_MIN_TIME=0.5)
#   MLVC_BENCH_FILTER     benchmark_filter regex for the scatter sweep
#                         (default: BM_ScatterAppend)
#   MLVC_BENCH_BASELINE   baseline JSON for the scatter regression guard
#                         (default: bench/baselines/scatter.json next to this
#                         script; guard is skipped when the file is absent)
#   MLVC_BENCH_IO_BASELINE  baseline JSON for the io-substrate guard
#                         (default: bench/baselines/io.json; skipped if absent)
#   MLVC_BENCH_SERVE_BASELINE  baseline JSON for the serving-scaling guard
#                         (default: bench/baselines/serve.json; skipped if
#                         absent)
#   MLVC_BENCH_COMPRESS_BASELINE  baseline JSON for the on-disk-format
#                         compression guard (default:
#                         bench/baselines/compress.json; skipped if absent)
#   MLVC_BENCH_SERVE_QUERIES / MLVC_BENCH_SERVE_CONCURRENCY
#                         forwarded to bench_serve (queries per level /
#                         comma list of concurrency levels)
#   MLVC_BENCH_CHECK      set to 0 to skip the regression guards entirely
#   MLVC_BENCH_MAX_REGRESSION  allowed fractional drop in a guarded
#                         throughput ratio before failing (default 0.30)
#   MLVC_BENCH_IO_MIN_RATIO  absolute floor on the uring/threadpool geomean
#                         at enforced queue depths (default 1.5; set empty
#                         to disable the floor)
#   MLVC_BENCH_COMPRESS_MIN_RATIO  absolute floor on the v1/v2 bytes-per-edge
#                         geomean (default 2.0; set empty to disable)
#   MLVC_BENCH_ASYNC_BASELINE  baseline JSON for the async-scheduling guard
#                         (default: bench/baselines/async.json; skipped if
#                         absent)
#   MLVC_BENCH_ASYNC_MIN_GEOMEAN  absolute floor on the bsp/async geomean
#                         over the enforced configs (default 1.05; set empty
#                         to disable)
#   MLVC_BENCH_STRIPE_BASELINE  baseline JSON for the multi-device striping
#                         guard (default: bench/baselines/stripe.json;
#                         skipped if absent)
#   MLVC_BENCH_STRIPE_MIN_GEOMEAN  absolute floor on the striped/single-
#                         device geomean over the enforced configs
#                         (default 1.3; set empty to disable)
#   MLVC_BENCH_DIRECTION_BASELINE  baseline JSON for the direction-
#                         optimization guard (default:
#                         bench/baselines/direction.json; skipped if absent)
#   MLVC_BENCH_DIRECTION_MIN_GEOMEAN  absolute floor on the push/adaptive
#                         geomean over the enforced configs (default 2.0;
#                         set empty to disable). bench_direction itself
#                         additionally enforces the per-app log-byte and
#                         modeled-time floors and exits nonzero on failure.
set -eu

build_dir="${1:-build}"
out="${2:-BENCH_scatter.json}"
io_out="${3:-BENCH_io.json}"
serve_out="${4:-BENCH_serve.json}"
compress_out="${5:-BENCH_compress.json}"
async_out="${6:-BENCH_async.json}"
stripe_out="${7:-BENCH_stripe.json}"
direction_out="${8:-BENCH_direction.json}"
min_time="${MLVC_BENCH_MIN_TIME:-0.05}"
filter="${MLVC_BENCH_FILTER:-BM_ScatterAppend}"

bench="$build_dir/bench/bench_micro_substrate"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake --build $build_dir --target bench_micro_substrate)" >&2
  exit 1
fi

"$bench" \
  --benchmark_filter="$filter" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo "wrote $out"

"$bench" \
  --benchmark_filter="BM_IoRandRead" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$io_out" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo "wrote $io_out"

serve_bench="$build_dir/bench/bench_serve"
if [ ! -x "$serve_bench" ]; then
  echo "error: $serve_bench not built (cmake --build $build_dir --target bench_serve)" >&2
  exit 1
fi
"$serve_bench" "$serve_out"

compress_bench="$build_dir/bench/bench_compress"
if [ ! -x "$compress_bench" ]; then
  echo "error: $compress_bench not built (cmake --build $build_dir --target bench_compress)" >&2
  exit 1
fi
"$compress_bench" "$compress_out"

async_bench="$build_dir/bench/bench_async"
if [ ! -x "$async_bench" ]; then
  echo "error: $async_bench not built (cmake --build $build_dir --target bench_async)" >&2
  exit 1
fi
"$async_bench" "$async_out"

stripe_bench="$build_dir/bench/bench_stripe"
if [ ! -x "$stripe_bench" ]; then
  echo "error: $stripe_bench not built (cmake --build $build_dir --target bench_stripe)" >&2
  exit 1
fi
"$stripe_bench" "$stripe_out"

direction_bench="$build_dir/bench/bench_direction"
if [ ! -x "$direction_bench" ]; then
  echo "error: $direction_bench not built (cmake --build $build_dir --target bench_direction)" >&2
  exit 1
fi
"$direction_bench" "$direction_out"

# Regression guards: compare guarded throughput ratios against the committed
# baselines. Skipped when no baseline exists or MLVC_BENCH_CHECK=0.
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="${MLVC_BENCH_BASELINE:-$repo_root/bench/baselines/scatter.json}"
io_baseline="${MLVC_BENCH_IO_BASELINE:-$repo_root/bench/baselines/io.json}"
check="${MLVC_BENCH_CHECK:-1}"
max_regression="${MLVC_BENCH_MAX_REGRESSION:-0.30}"
io_min_ratio="${MLVC_BENCH_IO_MIN_RATIO-1.5}"
if [ "$check" != "0" ] && [ -f "$baseline" ]; then
  python3 "$repo_root/tools/check_bench_regression.py" "$out" "$baseline" \
    --max-regression "$max_regression"
elif [ "$check" != "0" ]; then
  echo "no baseline at $baseline, skipping scatter regression guard"
fi
if [ "$check" != "0" ] && [ -f "$io_baseline" ]; then
  if [ -n "$io_min_ratio" ]; then
    python3 "$repo_root/tools/check_bench_regression.py" "$io_out" \
      "$io_baseline" --suite io --max-regression "$max_regression" \
      --min-ratio "$io_min_ratio"
  else
    python3 "$repo_root/tools/check_bench_regression.py" "$io_out" \
      "$io_baseline" --suite io --max-regression "$max_regression"
  fi
elif [ "$check" != "0" ]; then
  echo "no baseline at $io_baseline, skipping io regression guard"
fi
serve_baseline="${MLVC_BENCH_SERVE_BASELINE:-$repo_root/bench/baselines/serve.json}"
if [ "$check" != "0" ] && [ -f "$serve_baseline" ]; then
  python3 "$repo_root/tools/check_bench_regression.py" "$serve_out" \
    "$serve_baseline" --suite serve --max-regression "$max_regression"
elif [ "$check" != "0" ]; then
  echo "no baseline at $serve_baseline, skipping serve regression guard"
fi
compress_baseline="${MLVC_BENCH_COMPRESS_BASELINE:-$repo_root/bench/baselines/compress.json}"
compress_min_ratio="${MLVC_BENCH_COMPRESS_MIN_RATIO-2.0}"
if [ "$check" != "0" ] && [ -f "$compress_baseline" ]; then
  if [ -n "$compress_min_ratio" ]; then
    python3 "$repo_root/tools/check_bench_regression.py" "$compress_out" \
      "$compress_baseline" --suite compress \
      --max-regression "$max_regression" --min-ratio "$compress_min_ratio"
  else
    python3 "$repo_root/tools/check_bench_regression.py" "$compress_out" \
      "$compress_baseline" --suite compress --max-regression "$max_regression"
  fi
elif [ "$check" != "0" ]; then
  echo "no baseline at $compress_baseline, skipping compress regression guard"
fi
async_baseline="${MLVC_BENCH_ASYNC_BASELINE:-$repo_root/bench/baselines/async.json}"
async_min_geomean="${MLVC_BENCH_ASYNC_MIN_GEOMEAN-1.05}"
if [ "$check" != "0" ] && [ -f "$async_baseline" ]; then
  if [ -n "$async_min_geomean" ]; then
    python3 "$repo_root/tools/check_bench_regression.py" "$async_out" \
      "$async_baseline" --suite async \
      --max-regression "$max_regression" --min-ratio "$async_min_geomean"
  else
    python3 "$repo_root/tools/check_bench_regression.py" "$async_out" \
      "$async_baseline" --suite async --max-regression "$max_regression"
  fi
elif [ "$check" != "0" ]; then
  echo "no baseline at $async_baseline, skipping async regression guard"
fi
stripe_baseline="${MLVC_BENCH_STRIPE_BASELINE:-$repo_root/bench/baselines/stripe.json}"
stripe_min_geomean="${MLVC_BENCH_STRIPE_MIN_GEOMEAN-1.3}"
if [ "$check" != "0" ] && [ -f "$stripe_baseline" ]; then
  if [ -n "$stripe_min_geomean" ]; then
    python3 "$repo_root/tools/check_bench_regression.py" "$stripe_out" \
      "$stripe_baseline" --suite stripe \
      --max-regression "$max_regression" --min-ratio "$stripe_min_geomean"
  else
    python3 "$repo_root/tools/check_bench_regression.py" "$stripe_out" \
      "$stripe_baseline" --suite stripe --max-regression "$max_regression"
  fi
elif [ "$check" != "0" ]; then
  echo "no baseline at $stripe_baseline, skipping stripe regression guard"
fi
direction_baseline="${MLVC_BENCH_DIRECTION_BASELINE:-$repo_root/bench/baselines/direction.json}"
direction_min_geomean="${MLVC_BENCH_DIRECTION_MIN_GEOMEAN-2.0}"
if [ "$check" != "0" ] && [ -f "$direction_baseline" ]; then
  if [ -n "$direction_min_geomean" ]; then
    python3 "$repo_root/tools/check_bench_regression.py" "$direction_out" \
      "$direction_baseline" --suite direction \
      --max-regression "$max_regression" --min-ratio "$direction_min_geomean"
  else
    python3 "$repo_root/tools/check_bench_regression.py" "$direction_out" \
      "$direction_baseline" --suite direction --max-regression "$max_regression"
  fi
elif [ "$check" != "0" ]; then
  echo "no baseline at $direction_baseline, skipping direction regression guard"
fi
