#!/usr/bin/env sh
# Run the produce-path scatter contention sweep and emit BENCH_scatter.json.
#
#   tools/run_bench.sh [build-dir] [output.json]
#
# Environment:
#   MLVC_BENCH_MIN_TIME   per-benchmark min time in seconds (default 0.05;
#                         raise for stable numbers, e.g. MLVC_BENCH_MIN_TIME=0.5)
#   MLVC_BENCH_FILTER     benchmark_filter regex (default: the scatter sweep)
set -eu

build_dir="${1:-build}"
out="${2:-BENCH_scatter.json}"
min_time="${MLVC_BENCH_MIN_TIME:-0.05}"
filter="${MLVC_BENCH_FILTER:-BM_ScatterAppend}"

bench="$build_dir/bench/bench_micro_substrate"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake --build $build_dir --target bench_micro_substrate)" >&2
  exit 1
fi

"$bench" \
  --benchmark_filter="$filter" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo "wrote $out"
