#!/usr/bin/env sh
# Run the produce-path scatter contention sweep and emit BENCH_scatter.json.
#
#   tools/run_bench.sh [build-dir] [output.json]
#
# Environment:
#   MLVC_BENCH_MIN_TIME   per-benchmark min time in seconds (default 0.05;
#                         raise for stable numbers, e.g. MLVC_BENCH_MIN_TIME=0.5)
#   MLVC_BENCH_FILTER     benchmark_filter regex (default: the scatter sweep)
#   MLVC_BENCH_BASELINE   baseline JSON for the regression guard
#                         (default: bench/baselines/scatter.json next to this
#                         script; guard is skipped when the file is absent)
#   MLVC_BENCH_CHECK      set to 0 to skip the regression guard entirely
#   MLVC_BENCH_MAX_REGRESSION  allowed fractional drop in the staged/locked
#                         throughput ratio before failing (default 0.30)
set -eu

build_dir="${1:-build}"
out="${2:-BENCH_scatter.json}"
min_time="${MLVC_BENCH_MIN_TIME:-0.05}"
filter="${MLVC_BENCH_FILTER:-BM_ScatterAppend}"

bench="$build_dir/bench/bench_micro_substrate"
if [ ! -x "$bench" ]; then
  echo "error: $bench not built (cmake --build $build_dir --target bench_micro_substrate)" >&2
  exit 1
fi

"$bench" \
  --benchmark_filter="$filter" \
  --benchmark_min_time="$min_time" \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  --benchmark_counters_tabular=true

echo "wrote $out"

# Regression guard: compare staged/locked throughput ratios against the
# committed baseline. Skipped when no baseline exists or MLVC_BENCH_CHECK=0.
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
baseline="${MLVC_BENCH_BASELINE:-$repo_root/bench/baselines/scatter.json}"
check="${MLVC_BENCH_CHECK:-1}"
max_regression="${MLVC_BENCH_MAX_REGRESSION:-0.30}"
if [ "$check" != "0" ] && [ -f "$baseline" ]; then
  python3 "$repo_root/tools/check_bench_regression.py" "$out" "$baseline" \
    --max-regression "$max_regression"
elif [ "$check" != "0" ]; then
  echo "no baseline at $baseline, skipping regression guard"
fi
