// mlvc_convert — graph format conversion and inspection.
//
// Text mode (SNAP edge list → binary MLVC file):
//   mlvc_convert --in com-friendster.txt --out cf.mlvc
//   mlvc_convert --in web.txt --out web.mlvc --directed
//
// Store mode (stored-CSR directory, on-disk format v1 <-> v2, restripe):
//   mlvc_convert --store run_dir --stats
//   mlvc_convert --store run_dir --out-store run_dir_v2 --format v2
//   mlvc_convert --store run_dir --out-store run_dir_x4 --devices 4
#include <cstdlib>
#include <filesystem>
#include <iomanip>
#include <iostream>
#include <memory>

#include "common/args.hpp"
#include "graph/csr.hpp"
#include "graph/graph_stats.hpp"
#include "graph/serialization.hpp"
#include "graph/snap_loader.hpp"
#include "graph/stored_csr.hpp"
#include "ssd/storage.hpp"

namespace {

using namespace mlvc;

/// Read a stored graph back into an in-memory edge list (interval by
/// interval, preserving stored adjacency order).
graph::EdgeList read_back(graph::StoredCsrGraph& g) {
  graph::EdgeList list;
  list.set_num_vertices(g.num_vertices());
  list.reserve(g.num_edges());
  const auto& iv = g.intervals();
  std::vector<EdgeIndex> rowptr;
  std::vector<VertexId> adj;
  std::vector<float> val;
  for (IntervalId i = 0; i < iv.count(); ++i) {
    const VertexId width = iv.width(i);
    const EdgeIndex edges = g.interval_edge_count(i);
    rowptr.assign(width + 1, 0);
    g.read_local_row_ptrs(i, 0, rowptr.size(), rowptr);
    adj.assign(edges, 0);
    if (edges > 0) g.read_adjacency(i, 0, edges, adj);
    if (g.has_weights()) {
      val.assign(edges, 0.0f);
      if (edges > 0) g.read_values(i, 0, edges, val);
    }
    for (VertexId v = 0; v < width; ++v) {
      const VertexId src = iv.begin(i) + v;
      for (EdgeIndex e = rowptr[v]; e < rowptr[v + 1]; ++e) {
        list.add(src, adj[e], g.has_weights() ? val[e] : 1.0f);
      }
    }
  }
  return list;
}

/// Per-interval adjacency compression report: stored (physical) bytes vs
/// logical bytes (4 B per edge), so the v2 ratio is observable per interval.
void print_store_stats(graph::StoredCsrGraph& g) {
  const auto& iv = g.intervals();
  std::uint64_t total_stored = 0;
  std::cout << "format " << to_string(g.format()) << ", "
            << g.num_vertices() << " vertices, " << g.num_edges()
            << " edges, " << iv.count() << " intervals"
            << (g.has_weights() ? ", weighted" : "")
            << (g.has_transpose() ? ", +transpose" : ", no transpose")
            << "\n";
  std::cout << "interval  edges       stored_B    logical_B   ratio  B/edge\n";
  for (IntervalId i = 0; i < iv.count(); ++i) {
    const std::uint64_t stored = g.adjacency_stored_bytes(i);
    const std::uint64_t edges = g.interval_edge_count(i);
    const std::uint64_t logical = edges * sizeof(VertexId);
    total_stored += stored;
    std::cout << std::left << std::setw(10) << i << std::setw(12) << edges
              << std::setw(12) << stored << std::setw(12) << logical
              << std::setw(7) << std::setprecision(3)
              << (stored ? static_cast<double>(logical) /
                               static_cast<double>(stored)
                         : 0.0)
              << std::setprecision(3)
              << (edges ? static_cast<double>(stored) /
                              static_cast<double>(edges)
                        : 0.0)
              << "\n";
  }
  const std::uint64_t total_logical = g.num_edges() * sizeof(VertexId);
  std::cout << "total: " << total_stored << " stored / " << total_logical
            << " logical adjacency bytes";
  if (total_stored > 0 && g.num_edges() > 0) {
    std::cout << " (" << std::setprecision(3)
              << static_cast<double>(total_logical) /
                     static_cast<double>(total_stored)
              << "x, " << static_cast<double>(total_stored) /
                              static_cast<double>(g.num_edges())
              << " B/edge)";
  }
  std::cout << "\n";
}

int store_mode(const ArgParser& args) {
  const std::string dir = args.get_string("store");
  const std::string prefix = args.get_string("prefix", "g");
  ssd::Storage storage{std::filesystem::path(dir)};
  auto src = graph::StoredCsrGraph::open(storage, prefix);

  if (args.get_flag("stats")) {
    print_store_stats(*src);
    return 0;
  }

  const std::string out_dir = args.get_string("out-store", "-");
  if (out_dir == "-") {
    std::cerr << "store mode needs --stats or --out-store\n";
    return 2;
  }
  OnDiskFormat format = src->format();
  const std::string format_arg = args.get_string("format", "-");
  if (format_arg != "-" &&
      !parse_on_disk_format(format_arg.c_str(), &format)) {
    std::cerr << "unknown --format '" << format_arg << "' (v1 | v2)\n";
    return 2;
  }

  // Restripe: the out-store is created with the requested device count /
  // stripe unit, so every blob written below lands striped. (The source
  // store's own layout is read back through its manifest; no flag needed.)
  ssd::DeviceConfig out_device;
  const std::string devices_arg = args.get_string("devices", "-");
  if (devices_arg != "-") {
    out_device.num_devices =
        static_cast<unsigned>(std::strtoul(devices_arg.c_str(), nullptr, 10));
    if (out_device.num_devices == 0) {
      std::cerr << "--devices must be >= 1\n";
      return 2;
    }
    // Pin: Storage construction re-reads MLVC_DEVICES, and env must not
    // override an explicit flag.
    setenv("MLVC_DEVICES", devices_arg.c_str(), /*overwrite=*/1);
  }
  const std::string stripe_arg = args.get_string("stripe", "-");
  if (stripe_arg != "-") {
    out_device.stripe_unit_bytes =
        static_cast<std::size_t>(args.get_bytes("stripe", 128_KiB));
    setenv("MLVC_STRIPE_UNIT",
           std::to_string(out_device.stripe_unit_bytes).c_str(),
           /*overwrite=*/1);
  }

  // Rebuild in memory and materialize under the new format with the same
  // interval boundaries, so engine runs over the converted store partition
  // identically.
  const auto list = read_back(*src);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  ssd::Storage out_storage{std::filesystem::path(out_dir), out_device};
  const bool transpose = args.get_int("transpose", 1) != 0;
  graph::StoredCsrGraph converted(out_storage, prefix, csr, src->intervals(),
                                  {.with_weights = src->has_weights(),
                                   .format = format,
                                   .with_transpose = transpose});
  std::cout << "wrote " << out_dir << " (" << to_string(src->format())
            << " -> " << to_string(format) << ", " << storage.num_devices()
            << " -> " << out_storage.num_devices() << " devices"
            << (converted.has_transpose() ? ", +transpose" : "") << "): "
            << converted.num_vertices() << " vertices, "
            << converted.num_edges() << " edges\n";
  print_store_stats(converted);
  return 0;
}

int text_mode(const ArgParser& args) {
  const std::string in = args.get_string("in", "-");
  const std::string out = args.get_string("out", "-");
  if (in == "-" || out == "-") {
    std::cerr << "text mode needs --in and --out (or use --store)\n";
    return 2;
  }
  graph::SnapLoadOptions opts;
  opts.make_undirected = !args.get_flag("directed");
  opts.compact_ids = !args.get_flag("no-compact");
  const auto list = graph::load_snap_edge_list(in, opts);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  graph::save_csr(csr, out);
  std::cout << "wrote " << out << ": "
            << graph::compute_stats(csr).to_string() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlvc;
  ArgParser args("mlvc_convert",
                 "convert graphs: SNAP text to binary MLVC, or a stored-CSR "
                 "directory between on-disk formats v1/v2");
  args.option("in", "input SNAP text file (src dst [weight] per line)", "-")
      .option("out", "output MLVC file", "-")
      .option("directed", "keep edges directed (default mirrors them)",
              "false")
      .option("no-compact", "keep original (possibly sparse) vertex ids",
              "false")
      .option("store", "stored-CSR storage directory to open", "-")
      .option("prefix", "stored graph name prefix inside the store", "g")
      .option("stats",
              "print per-interval adjacency compression stats and exit",
              "false")
      .option("out-store", "write a converted copy of --store here", "-")
      .option("format",
              "target on-disk format for --out-store: v1 | v2 "
              "(default keeps the source's)",
              "-")
      .option("devices",
              "restripe --out-store across this many devices (default "
              "MLVC_DEVICES or 1)",
              "-")
      .option("stripe", "stripe unit bytes for --out-store, e.g. 128K", "-")
      .option("transpose",
              "store the in-edge CSR in --out-store for pull execution: "
              "1 | 0 (conversion is also how a v1-era store gains one)",
              "1");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    if (args.get_string("store", "-") != "-") return store_mode(args);
    return text_mode(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
