// mlvc_convert — convert a SNAP text edge list into the binary MLVC format.
//
//   mlvc_convert --in com-friendster.txt --out cf.mlvc
//   mlvc_convert --in web.txt --out web.mlvc --directed
#include <iostream>

#include "common/args.hpp"
#include "graph/graph_stats.hpp"
#include "graph/serialization.hpp"
#include "graph/snap_loader.hpp"

int main(int argc, char** argv) {
  using namespace mlvc;
  ArgParser args("mlvc_convert",
                 "convert a SNAP edge-list text file to binary MLVC format");
  args.option("in", "input SNAP text file (src dst [weight] per line)")
      .option("out", "output MLVC file")
      .option("directed", "keep edges directed (default mirrors them)",
              "false")
      .option("no-compact", "keep original (possibly sparse) vertex ids",
              "false");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    graph::SnapLoadOptions opts;
    opts.make_undirected = !args.get_flag("directed");
    opts.compact_ids = !args.get_flag("no-compact");
    const auto list = graph::load_snap_edge_list(args.get_string("in"), opts);
    const auto csr = graph::CsrGraph::from_edge_list(list);
    graph::save_csr(csr, args.get_string("out"));
    std::cout << "wrote " << args.get_string("out") << ": "
              << graph::compute_stats(csr).to_string() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
