// mlvc_ioprobe — report whether the io_uring backend is usable here.
//
// Runs the same one-shot probe Storage::set_io_backend consults (ring setup
// + a real IORING_OP_READ round-trip against a memfd) and prints the result.
// Exit status 0 means io_uring is available; nonzero means a kUring request
// would fall back to the thread pool, with the reason on stdout. CI uses
// this to decide whether the uring re-run of the tier-1 suite must pass
// strictly or be skipped.
#include <iostream>

#include "ssd/uring_io.hpp"

int main() {
  const auto& probe = mlvc::ssd::UringIo::probe();
  if (probe.available) {
    std::cout << "io_uring: available\n";
    return 0;
  }
  std::cout << "io_uring: unavailable (" << probe.reason << ")\n";
  return 1;
}
