#!/usr/bin/env python3
"""Bench regression guard for the substrate sweeps.

Raw items/second is machine-dependent, so the guarded quantity is always a
*throughput ratio* between two implementations measured in the same run;
that ratio is what the optimization bought, and it is stable across hosts
in a way absolute numbers are not. Two suites:

  --suite scatter (default)
    BM_ScatterAppendStaged vs BM_ScatterAppendLocked per (threads,
    intervals) configuration — what the lock-free staging commit bought.
    Configurations with fewer than --min-threads producer threads are
    reported but not enforced: the staging win is a contention effect.

  --suite io
    BM_IoRandReadUring vs BM_IoRandReadThreadPool per (read size, queue
    depth) configuration — what batched io_uring submission bought over
    the AsyncIo thread pool. Configurations below --min-depth are reported
    but not enforced: batching needs a queue to batch. --min-ratio
    additionally enforces an absolute floor on the current geomean
    (ISSUE acceptance: >= 1.5x at depth >= 32). When the current run has
    no uring results at all (probe unavailable, benchmarks skipped with
    an error) the guard is skipped with exit 0 so kernels without
    io_uring stay green.

  --suite serve
    bench_serve's custom BENCH_serve.json (not google-benchmark format):
    qps at concurrency C vs qps at concurrency 1 — what the shared
    RuntimeContext serving path scales to. Levels below --min-concurrency
    are reported but not enforced (scaling at c<=4 is dominated by core
    count, not the serving path).

  --suite compress
    bench_compress's custom BENCH_compress.json: v1/v2 bytes-per-edge
    ratios per layer — what the delta+varint on-disk format bought.
    Entries the binary marks "enforced": false are reported only.
    --min-ratio enforces the compression floor (ISSUE acceptance: >= 2x
    on adjacency and message-log bytes/edge).

  --suite async
    bench_async's custom BENCH_async.json (same metric/ratio/enforced
    shape as compress): bsp/async ratios of effective rounds and modeled
    time for delta-PageRank under each schedule policy — what
    interval-granular async scheduling bought over the barrier wave.
    Enforced entries are the skewed-large-scale hub-degree pair;
    --min-ratio enforces the absolute floor on their geomean.

  --suite stripe
    bench_stripe's custom BENCH_stripe.json (same metric/ratio/enforced
    shape as compress): modeled-bandwidth scaling of the striped layout
    (1 vs 4 devices) and host-vs-device bytes-crossed-bus for the
    near-storage combine. --min-ratio enforces the absolute floor on the
    enforced geomean (ISSUE acceptance: >= 1.6x modeled aggregate
    bandwidth at 4 devices; device placement must cut bus bytes).

  --suite direction
    bench_direction's custom BENCH_direction.json (same
    metric/ratio/enforced shape as compress): push/adaptive ratios of
    message-log bytes and modeled work time for BFS/WCC/PageRank — what
    the direction-optimizing pull path bought over the pure push wave.
    Byte counts are deterministic, so the geomean is dominated by the
    (large) log-byte cuts and is stable across hosts; bench_direction
    itself enforces the per-app floors at generation time.

Individual configurations are noisy at CI bench durations (a single 0.02 s
run can swing ±30%), so the gate is the *geometric mean* of the ratios over
all enforced configurations: a genuine regression shifts every
configuration and moves the mean, while one noisy cell does not. Fails
(exit 1) when the geometric-mean ratio drops more than --max-regression
(default 0.30, i.e. 30%) below the baseline's, or below --min-ratio.

Usage:
    tools/check_bench_regression.py CURRENT.json BASELINE.json \
        [--suite scatter|io] [--max-regression 0.30] \
        [--min-threads 2] [--min-depth 32] [--min-ratio 1.5]
"""

import argparse
import json
import math
import sys


def load_runs(path):
    with open(path) as f:
        data = json.load(f)
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        parts = name.split("/")
        args = [p for p in parts[1:] if p.isdigit()]
        yield parts[0], args, b


def load_scatter_ratios(path, min_threads):
    """Map 'threads/intervals[/depth]' -> staged/locked items_per_second."""
    locked = {}
    staged = {}
    for bench, args, b in load_runs(path):
        ips = b.get("items_per_second")
        if ips is None:
            continue
        if bench == "BM_ScatterAppendLocked" and len(args) >= 2:
            locked[(args[0], args[1])] = ips
        elif bench == "BM_ScatterAppendStaged" and len(args) >= 3:
            staged[(args[0], args[1], args[2])] = ips
    ratios = {}
    enforced = {}
    for (t, iv, depth), s_ips in sorted(staged.items()):
        l_ips = locked.get((t, iv))
        if not l_ips:
            continue
        key = f"{t}t/{iv}iv/depth{depth}"
        ratios[key] = s_ips / l_ips
        if int(t) >= min_threads:
            enforced[key] = ratios[key]
    return ratios, enforced


def load_io_ratios(path, min_depth):
    """Map 'KiB/depth' -> uring/threadpool bytes_per_second."""
    pool = {}
    uring = {}
    for bench, args, b in load_runs(path):
        bps = b.get("bytes_per_second")
        if bps is None or len(args) < 2:
            continue
        if bench == "BM_IoRandReadThreadPool":
            pool[(args[0], args[1])] = bps
        elif bench == "BM_IoRandReadUring":
            uring[(args[0], args[1])] = bps
    ratios = {}
    enforced = {}
    for (kib, depth), u_bps in sorted(uring.items()):
        p_bps = pool.get((kib, depth))
        if not p_bps:
            continue
        key = f"{kib}K/qd{depth}"
        ratios[key] = u_bps / p_bps
        if int(depth) >= min_depth:
            enforced[key] = ratios[key]
    return ratios, enforced


def load_serve_ratios(path, min_concurrency):
    """Map 'cN' -> qps(N)/qps(1) from bench_serve's custom JSON."""
    with open(path) as f:
        data = json.load(f)
    runs = {r["concurrency"]: r for r in data.get("runs", [])}
    base = runs.get(1)
    ratios = {}
    enforced = {}
    if not base or base.get("qps", 0) <= 0:
        return ratios, enforced
    for concurrency in sorted(runs):
        if concurrency == 1:
            continue
        qps = runs[concurrency].get("qps", 0)
        key = f"c{concurrency}"
        ratios[key] = qps / base["qps"]
        if concurrency >= min_concurrency:
            enforced[key] = ratios[key]
    return ratios, enforced


def load_compress_ratios(path, _unused=None):
    """Map metric name -> v1/v2 ratio from bench_compress's custom JSON."""
    with open(path) as f:
        data = json.load(f)
    ratios = {}
    enforced = {}
    for run in data.get("runs", []):
        metric = run.get("metric")
        ratio = run.get("ratio", 0)
        if not metric or ratio <= 0:
            continue
        ratios[metric] = ratio
        if run.get("enforced"):
            enforced[metric] = ratio
    return ratios, enforced


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--suite",
                    choices=("scatter", "io", "serve", "compress", "async",
                             "stripe", "direction"),
                    default="scatter")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="fail when ratio drops by more than this fraction")
    ap.add_argument("--min-threads", type=int, default=2,
                    help="scatter: only enforce configs with at least this "
                         "many threads")
    ap.add_argument("--min-depth", type=int, default=32,
                    help="io: only enforce configs at or above this queue "
                         "depth")
    ap.add_argument("--min-concurrency", type=int, default=8,
                    help="serve: only enforce levels at or above this "
                         "concurrency")
    ap.add_argument("--min-ratio", type=float, default=None,
                    help="absolute floor on the current geomean ratio")
    args = ap.parse_args()

    if args.suite == "scatter":
        cur_all, cur = load_scatter_ratios(args.current, args.min_threads)
        base_all, base = load_scatter_ratios(args.baseline, args.min_threads)
        label = "staged/locked"
    elif args.suite == "serve":
        cur_all, cur = load_serve_ratios(args.current, args.min_concurrency)
        base_all, base = load_serve_ratios(args.baseline,
                                           args.min_concurrency)
        label = "qps-vs-c1 scaling"
    elif args.suite == "compress":
        cur_all, cur = load_compress_ratios(args.current)
        base_all, base = load_compress_ratios(args.baseline)
        label = "v1/v2 bytes-per-edge"
    elif args.suite == "async":
        # Same custom JSON shape as compress: runs[{metric, ratio, enforced}].
        cur_all, cur = load_compress_ratios(args.current)
        base_all, base = load_compress_ratios(args.baseline)
        label = "bsp/async"
    elif args.suite == "stripe":
        # Same custom JSON shape as compress: runs[{metric, ratio, enforced}].
        cur_all, cur = load_compress_ratios(args.current)
        base_all, base = load_compress_ratios(args.baseline)
        label = "striped/single-device"
    elif args.suite == "direction":
        # Same custom JSON shape as compress: runs[{metric, ratio, enforced}].
        cur_all, cur = load_compress_ratios(args.current)
        base_all, base = load_compress_ratios(args.baseline)
        label = "push/adaptive"
    else:
        cur_all, cur = load_io_ratios(args.current, args.min_depth)
        base_all, base = load_io_ratios(args.baseline, args.min_depth)
        label = "uring/threadpool"
        if not cur_all:
            print(f"no uring results in {args.current} (io_uring probe "
                  f"unavailable?); skipping io bench guard")
            return 0
    if not base:
        print(f"error: no enforceable {label} ratios in {args.baseline}",
              file=sys.stderr)
        return 2
    if not cur:
        print(f"error: no enforceable {label} ratios in {args.current}",
              file=sys.stderr)
        return 2

    floor = 1.0 - args.max_regression
    print(f"{'config':<20} {'baseline':>9} {'current':>9} {'delta':>8}")
    for key in sorted(base_all):
        b = base_all[key]
        c = cur_all.get(key)
        if c is None:
            continue
        delta = (c - b) / b
        enforced = key in base and key in cur
        marker = "" if enforced else "  (not enforced)"
        print(f"{key:<20} {b:>8.2f}x {c:>8.2f}x {delta:>+7.1%}{marker}")

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("error: no overlapping enforced configs", file=sys.stderr)
        return 2
    base_gm = geomean([base[k] for k in shared])
    cur_gm = geomean([cur[k] for k in shared])
    delta = (cur_gm - base_gm) / base_gm
    print(f"\ngeomean {label} ratio over {len(shared)} enforced "
          f"configs: baseline {base_gm:.2f}x, current {cur_gm:.2f}x "
          f"({delta:+.1%})")
    ok = True
    if cur_gm < base_gm * floor:
        print(f"FAIL: geomean ratio regressed more than "
              f"{args.max_regression:.0%} vs baseline", file=sys.stderr)
        ok = False
    if args.min_ratio is not None and cur_gm < args.min_ratio:
        print(f"FAIL: geomean ratio {cur_gm:.2f}x below the "
              f"{args.min_ratio:.2f}x floor", file=sys.stderr)
        ok = False
    if not ok:
        return 1
    print(f"OK: within {args.max_regression:.0%} of baseline"
          + (f" and above the {args.min_ratio:.2f}x floor"
             if args.min_ratio is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
