#!/usr/bin/env python3
"""Bench regression guard for the produce-path scatter sweep.

Compares a fresh BENCH_scatter.json against a committed baseline
(bench/baselines/scatter.json). Raw items/second is machine-dependent, so
the guarded quantity is the *staged-vs-locked throughput ratio* per
(threads, intervals) configuration: for each BM_ScatterAppendStaged run we
divide its items_per_second by the BM_ScatterAppendLocked run with the same
thread/interval arguments. That ratio is what the lock-free staging commit
bought, and it is stable across hosts in a way absolute numbers are not.

Individual configurations are noisy at CI bench durations (a single 0.02 s
run can swing ±30%), so the gate is the *geometric mean* of the ratios over
all enforced configurations: a genuine staged-path regression shifts every
configuration and moves the mean, while one noisy cell does not. Fails
(exit 1) when the geometric-mean ratio drops more than --max-regression
(default 0.30, i.e. 30%) below the baseline's.

Usage:
    tools/check_bench_regression.py CURRENT.json BASELINE.json \
        [--max-regression 0.30] [--min-threads 2]

Configurations with fewer than --min-threads producer threads are reported
but not enforced: single-threaded staged-vs-locked differences are noise,
the staging win is a contention effect.
"""

import argparse
import json
import math
import sys


def load_ratios(path, min_threads):
    """Map 'threads/intervals[/depth]' -> staged/locked items_per_second."""
    with open(path) as f:
        data = json.load(f)
    locked = {}
    staged = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        name = b.get("name", "")
        parts = name.split("/")
        ips = b.get("items_per_second")
        if ips is None:
            continue
        args = [p for p in parts[1:] if p.isdigit()]
        if parts[0] == "BM_ScatterAppendLocked" and len(args) >= 2:
            locked[(args[0], args[1])] = ips
        elif parts[0] == "BM_ScatterAppendStaged" and len(args) >= 3:
            staged[(args[0], args[1], args[2])] = ips
    ratios = {}
    enforced = {}
    for (t, iv, depth), s_ips in sorted(staged.items()):
        l_ips = locked.get((t, iv))
        if not l_ips:
            continue
        key = f"{t}t/{iv}iv/depth{depth}"
        ratios[key] = s_ips / l_ips
        if int(t) >= min_threads:
            enforced[key] = ratios[key]
    return ratios, enforced


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--max-regression", type=float, default=0.30,
                    help="fail when ratio drops by more than this fraction")
    ap.add_argument("--min-threads", type=int, default=2,
                    help="only enforce configs with at least this many threads")
    args = ap.parse_args()

    cur_all, cur = load_ratios(args.current, args.min_threads)
    base_all, base = load_ratios(args.baseline, args.min_threads)
    if not base:
        print(f"error: no enforceable scatter ratios in {args.baseline}",
              file=sys.stderr)
        return 2
    if not cur:
        print(f"error: no enforceable scatter ratios in {args.current}",
              file=sys.stderr)
        return 2

    floor = 1.0 - args.max_regression
    print(f"{'config':<20} {'baseline':>9} {'current':>9} {'delta':>8}")
    for key in sorted(base_all):
        b = base_all[key]
        c = cur_all.get(key)
        if c is None:
            continue
        delta = (c - b) / b
        enforced = key in base and key in cur
        marker = "" if enforced else "  (not enforced)"
        print(f"{key:<20} {b:>8.2f}x {c:>8.2f}x {delta:>+7.1%}{marker}")

    def geomean(values):
        return math.exp(sum(math.log(v) for v in values) / len(values))

    shared = sorted(set(base) & set(cur))
    if not shared:
        print("error: no overlapping enforced configs", file=sys.stderr)
        return 2
    base_gm = geomean([base[k] for k in shared])
    cur_gm = geomean([cur[k] for k in shared])
    delta = (cur_gm - base_gm) / base_gm
    print(f"\ngeomean staged/locked ratio over {len(shared)} enforced "
          f"configs: baseline {base_gm:.2f}x, current {cur_gm:.2f}x "
          f"({delta:+.1%})")
    if cur_gm < base_gm * floor:
        print(f"FAIL: geomean ratio regressed more than "
              f"{args.max_regression:.0%} vs baseline", file=sys.stderr)
        return 1
    print(f"OK: within {args.max_regression:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
