// mlvc_gen — generate a synthetic graph and save it as a binary MLVC file,
// optionally also materializing a stored-CSR directory (striped when
// --devices > 1).
//
//   mlvc_gen --type rmat --scale 18 --edge-factor 16 --seed 1 --out g.mlvc
//   mlvc_gen --type cf   --scale 16 --out cf.mlvc
//   mlvc_gen --type grid --width 512 --height 512 --out grid.mlvc
//   mlvc_gen --type rmat --scale 16 --out g.mlvc --store g_dir --devices 4
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "common/args.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/serialization.hpp"
#include "graph/stored_csr.hpp"
#include "ssd/storage.hpp"

int main(int argc, char** argv) {
  using namespace mlvc;
  ArgParser args("mlvc_gen", "generate a synthetic graph (binary MLVC format)");
  args.option("type", "rmat | er | grid | star | chain | cf | yws", "rmat")
      .option("out", "output file path")
      .option("scale", "log2 of the vertex count (rmat/cf/yws)", "16")
      .option("edge-factor", "edges per vertex before mirroring (rmat/er)",
              "16")
      .option("vertices", "vertex count (er/star/chain)", "65536")
      .option("width", "grid width", "256")
      .option("height", "grid height", "256")
      .option("seed", "generator seed", "1")
      .option("store",
              "also materialize a stored-CSR directory here (striped when "
              "--devices > 1)",
              "-")
      .option("devices",
              "striped devices for --store (default MLVC_DEVICES or 1)", "-")
      .option("stripe", "stripe unit bytes for --store, e.g. 128K", "-")
      .option("format", "on-disk format for --store: v1 | v2", "-")
      .option("transpose",
              "also store the in-edge CSR for pull execution (--store): "
              "1 | 0",
              "1");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    const std::string type = args.get_string("type", "rmat");
    const auto scale = static_cast<unsigned>(args.get_int("scale", 16));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    graph::EdgeList list;
    if (type == "rmat") {
      graph::RmatParams p;
      p.scale = scale;
      p.edge_factor = args.get_double("edge-factor", 16);
      p.seed = seed;
      list = graph::generate_rmat(p);
    } else if (type == "er") {
      const auto n = static_cast<VertexId>(args.get_int("vertices", 65536));
      const auto m = static_cast<std::uint64_t>(
          args.get_double("edge-factor", 16) * n);
      list = graph::generate_erdos_renyi(n, m, seed);
    } else if (type == "grid") {
      list = graph::generate_grid(
          static_cast<VertexId>(args.get_int("width", 256)),
          static_cast<VertexId>(args.get_int("height", 256)));
    } else if (type == "star") {
      list = graph::generate_star(
          static_cast<VertexId>(args.get_int("vertices", 65536)));
    } else if (type == "chain") {
      list = graph::generate_chain(
          static_cast<VertexId>(args.get_int("vertices", 65536)));
    } else if (type == "cf") {
      list = graph::make_cf_like(scale, seed);
    } else if (type == "yws") {
      list = graph::make_yws_like(scale, seed);
    } else {
      std::cerr << "unknown --type '" << type << "'\n" << args.usage();
      return 2;
    }

    const auto csr = graph::CsrGraph::from_edge_list(list);
    graph::save_csr(csr, args.get_string("out"));
    std::cout << "wrote " << args.get_string("out") << ": "
              << graph::compute_stats(csr).to_string() << "\n";

    // Optional stored-CSR materialization, striped when --devices > 1, so
    // a striped store can be staged once and reused across runs (and the
    // striping path is exercised straight from the CLI).
    const std::string store_dir = args.get_string("store", "-");
    if (store_dir != "-") {
      ssd::DeviceConfig device;
      const std::string devices_arg = args.get_string("devices", "-");
      if (devices_arg != "-") {
        device.num_devices = static_cast<unsigned>(
            std::strtoul(devices_arg.c_str(), nullptr, 10));
        if (device.num_devices == 0) {
          std::cerr << "--devices must be >= 1\n";
          return 2;
        }
        setenv("MLVC_DEVICES", devices_arg.c_str(), /*overwrite=*/1);
      }
      const std::string stripe_arg = args.get_string("stripe", "-");
      if (stripe_arg != "-") {
        device.stripe_unit_bytes =
            static_cast<std::size_t>(args.get_bytes("stripe", 128_KiB));
        setenv("MLVC_STRIPE_UNIT",
               std::to_string(device.stripe_unit_bytes).c_str(),
               /*overwrite=*/1);
      }
      OnDiskFormat format =
          core::apply_env_overrides(core::EngineOptions{}).on_disk_format;
      const std::string format_arg = args.get_string("format", "-");
      if (format_arg != "-" &&
          !parse_on_disk_format(format_arg.c_str(), &format)) {
        std::cerr << "unknown --format '" << format_arg << "' (v1 | v2)\n";
        return 2;
      }
      ssd::Storage storage{std::filesystem::path(store_dir), device};
      const auto in_degrees = csr.in_degrees();
      const auto intervals = graph::VertexIntervals::partition_by_in_degree(
          in_degrees, sizeof(multilog::Record<float>),
          core::EngineOptions{}.sort_budget());
      const bool transpose = args.get_int("transpose", 1) != 0;
      graph::StoredCsrGraph stored(storage, "g", csr, intervals,
                                   {.with_weights = false,
                                    .format = format,
                                    .with_transpose = transpose});
      std::cout << "wrote store " << store_dir << " ("
                << to_string(stored.format()) << ", "
                << storage.num_devices() << " device"
                << (storage.num_devices() == 1 ? "" : "s")
                << (stored.has_transpose() ? ", +transpose" : "") << ")\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
