// mlvc_gen — generate a synthetic graph and save it as a binary MLVC file.
//
//   mlvc_gen --type rmat --scale 18 --edge-factor 16 --seed 1 --out g.mlvc
//   mlvc_gen --type cf   --scale 16 --out cf.mlvc
//   mlvc_gen --type grid --width 512 --height 512 --out grid.mlvc
#include <iostream>

#include "common/args.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graph/serialization.hpp"

int main(int argc, char** argv) {
  using namespace mlvc;
  ArgParser args("mlvc_gen", "generate a synthetic graph (binary MLVC format)");
  args.option("type", "rmat | er | grid | star | chain | cf | yws", "rmat")
      .option("out", "output file path")
      .option("scale", "log2 of the vertex count (rmat/cf/yws)", "16")
      .option("edge-factor", "edges per vertex before mirroring (rmat/er)",
              "16")
      .option("vertices", "vertex count (er/star/chain)", "65536")
      .option("width", "grid width", "256")
      .option("height", "grid height", "256")
      .option("seed", "generator seed", "1");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    const std::string type = args.get_string("type", "rmat");
    const auto scale = static_cast<unsigned>(args.get_int("scale", 16));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    graph::EdgeList list;
    if (type == "rmat") {
      graph::RmatParams p;
      p.scale = scale;
      p.edge_factor = args.get_double("edge-factor", 16);
      p.seed = seed;
      list = graph::generate_rmat(p);
    } else if (type == "er") {
      const auto n = static_cast<VertexId>(args.get_int("vertices", 65536));
      const auto m = static_cast<std::uint64_t>(
          args.get_double("edge-factor", 16) * n);
      list = graph::generate_erdos_renyi(n, m, seed);
    } else if (type == "grid") {
      list = graph::generate_grid(
          static_cast<VertexId>(args.get_int("width", 256)),
          static_cast<VertexId>(args.get_int("height", 256)));
    } else if (type == "star") {
      list = graph::generate_star(
          static_cast<VertexId>(args.get_int("vertices", 65536)));
    } else if (type == "chain") {
      list = graph::generate_chain(
          static_cast<VertexId>(args.get_int("vertices", 65536)));
    } else if (type == "cf") {
      list = graph::make_cf_like(scale, seed);
    } else if (type == "yws") {
      list = graph::make_yws_like(scale, seed);
    } else {
      std::cerr << "unknown --type '" << type << "'\n" << args.usage();
      return 2;
    }

    const auto csr = graph::CsrGraph::from_edge_list(list);
    graph::save_csr(csr, args.get_string("out"));
    std::cout << "wrote " << args.get_string("out") << ": "
              << graph::compute_stats(csr).to_string() << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
