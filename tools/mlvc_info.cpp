// mlvc_info — print statistics of a binary MLVC graph file.
//
//   mlvc_info --graph g.mlvc
#include <iostream>

#include "common/args.hpp"
#include "common/format.hpp"
#include "graph/graph_stats.hpp"
#include "graph/serialization.hpp"

int main(int argc, char** argv) {
  using namespace mlvc;
  ArgParser args("mlvc_info", "inspect a binary MLVC graph file");
  args.option("graph", "MLVC graph file");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  try {
    const auto csr = graph::load_csr(args.get_string("graph"));
    const auto stats = graph::compute_stats(csr);
    std::cout << args.get_string("graph") << "\n  " << stats.to_string()
              << "\n  weights: " << (csr.has_weights() ? "yes" : "no")
              << "\n  on-disk CSR size: "
              << format_bytes((csr.num_vertices() + 1) * sizeof(EdgeIndex) +
                              csr.num_edges() * sizeof(VertexId))
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
