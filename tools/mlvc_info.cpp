// mlvc_info — print statistics of a binary MLVC graph file or a stored-CSR
// directory.
//
//   mlvc_info --graph g.mlvc
//   mlvc_info --store run_dir                 # layers, B/edge, transpose
//   mlvc_info --store run_dir --stripes       # + per-blob stripe layout
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "common/args.hpp"
#include "common/format.hpp"
#include "graph/graph_stats.hpp"
#include "graph/serialization.hpp"
#include "graph/stored_csr.hpp"
#include "ssd/storage.hpp"

namespace {

using namespace mlvc;

/// One on-disk layer of a stored graph (rowptr / colidx / skip index / val),
/// summed across its per-interval blobs.
struct LayerBytes {
  std::string label;
  std::uint64_t bytes = 0;
  std::size_t blobs = 0;
};

void tally(ssd::Storage& storage, const std::string& blob, LayerBytes& layer,
           std::vector<std::string>& blob_names) {
  if (!storage.has_blob(blob)) return;
  layer.bytes += storage.open_blob(blob).size();
  ++layer.blobs;
  blob_names.push_back(blob);
}

/// Collect the layer totals of the graph stored under `prefix` (forward CSR
/// or the `<prefix>/t` transpose — both use the same blob naming scheme).
std::vector<LayerBytes> collect_layers(ssd::Storage& storage,
                                       const std::string& prefix,
                                       IntervalId intervals,
                                       std::vector<std::string>& blob_names) {
  std::vector<LayerBytes> layers = {
      {"rowptr"}, {"colidx"}, {"colidx.skip"}, {"val"}, {"meta"}};
  for (IntervalId i = 0; i < intervals; ++i) {
    const std::string base = prefix + "/csr/" + std::to_string(i) + "/";
    tally(storage, base + "rowptr", layers[0], blob_names);
    tally(storage, base + "colidx", layers[1], blob_names);
    tally(storage, base + "colidx.skip", layers[2], blob_names);
    tally(storage, base + "val", layers[3], blob_names);
  }
  tally(storage, prefix + "/csr/meta", layers[4], blob_names);
  return layers;
}

void print_layers(const std::string& heading,
                  const std::vector<LayerBytes>& layers, EdgeIndex edges) {
  std::cout << "  " << heading << ":\n";
  for (const auto& l : layers) {
    if (l.blobs == 0) continue;
    std::cout << "    " << std::left << std::setw(12) << l.label
              << std::right << std::setw(10) << format_bytes(l.bytes) << " in "
              << std::setw(4) << l.blobs << " blobs";
    if (edges > 0) {
      std::cout << "  (" << std::setprecision(3)
                << static_cast<double>(l.bytes) / static_cast<double>(edges)
                << " B/edge)";
    }
    std::cout << "\n";
  }
}

int store_mode(const ArgParser& args) {
  const std::string dir = args.get_string("store");
  const std::string prefix = args.get_string("prefix", "g");
  ssd::Storage storage{std::filesystem::path(dir)};
  const auto g = graph::StoredCsrGraph::open(storage, prefix);

  std::cout << dir << " (prefix '" << prefix << "')\n  "
            << g->num_vertices() << " vertices, " << g->num_edges()
            << " edges, " << g->intervals().count() << " intervals, format "
            << to_string(g->format())
            << (g->has_weights() ? ", weighted" : "") << "\n  transpose: "
            << (g->has_transpose() ? "yes (in-edge CSR for pull execution)"
                                   : "no (push-only store)")
            << "\n";

  std::vector<std::string> blob_names;
  print_layers("forward CSR layers",
               collect_layers(storage, prefix, g->intervals().count(),
                              blob_names),
               g->num_edges());
  if (g->has_transpose()) {
    print_layers("transpose CSR layers",
                 collect_layers(storage, prefix + "/t",
                                g->intervals().count(), blob_names),
                 g->num_edges());
  }

  const unsigned ndev = storage.num_devices();
  std::cout << "  stripe layout: " << ndev << " device"
            << (ndev == 1 ? "" : "s");
  if (ndev > 1) {
    std::cout << ", unit " << format_bytes(storage.stripe_unit());
  }
  std::cout << "\n";
  // Per-device byte totals — and, with --stripes, the per-blob split, so an
  // imbalanced layout (e.g. many sub-unit blobs landing on device 0) is
  // visible without strace.
  std::vector<std::uint64_t> dev_bytes(ndev, 0);
  const bool per_blob = args.get_flag("stripes");
  for (const auto& name : blob_names) {
    const std::uint64_t size = storage.open_blob(name).size();
    std::vector<std::uint64_t> split(ndev, 0);
    ssd::for_each_stripe_segment(
        0, size, storage.stripe_unit(), ndev,
        [&](unsigned dev, std::uint64_t, std::size_t, std::size_t seg) {
          split[dev] += seg;
          dev_bytes[dev] += seg;
        });
    if (per_blob) {
      std::cout << "    " << std::left << std::setw(28) << name << std::right
                << std::setw(10) << format_bytes(size);
      for (unsigned d = 0; d < ndev; ++d) {
        std::cout << "  dev" << d << ":" << format_bytes(split[d]);
      }
      std::cout << "\n";
    }
  }
  std::cout << "  bytes by device:";
  for (unsigned d = 0; d < ndev; ++d) {
    std::cout << " dev" << d << ":" << format_bytes(dev_bytes[d]);
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlvc;
  ArgParser args("mlvc_info",
                 "inspect a binary MLVC graph file or a stored-CSR directory");
  args.option("graph", "MLVC graph file", "-")
      .option("store", "stored-CSR storage directory to inspect", "-")
      .option("prefix", "stored graph name prefix inside the store", "g")
      .option("stripes", "list the per-blob stripe layout (--store)",
              "false");
  try {
    args.parse(argc, argv);
  } catch (const Error& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  try {
    if (args.get_string("store", "-") != "-") return store_mode(args);
    const std::string graph_path = args.get_string("graph", "-");
    if (graph_path == "-") {
      std::cerr << "need --graph or --store\n" << args.usage();
      return 2;
    }
    const auto csr = graph::load_csr(graph_path);
    const auto stats = graph::compute_stats(csr);
    std::cout << graph_path << "\n  " << stats.to_string()
              << "\n  weights: " << (csr.has_weights() ? "yes" : "no")
              << "\n  on-disk CSR size: "
              << format_bytes((csr.num_vertices() + 1) * sizeof(EdgeIndex) +
                              csr.num_edges() * sizeof(VertexId))
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
