// Single-source shortest paths over weighted edges (Bellman-Ford style
// relaxation in BSP rounds).
//
// Not part of the paper's §VII set, but the natural companion to BFS and
// the application that exercises the framework's weighted-graph path: the
// graph must be stored with_weights, and the engines read the CSR val
// vector (or its edge-log copy) alongside the adjacency.
//
// Delivery-order safe: relaxation is a monotone min over candidate
// distances, so the same fixed point is reached under BSP, scheduled, and
// asynchronous (same-wave redelivery) execution — async merely tightens
// distances in fewer rounds. This is the "SSSP relaxation reuse" of the
// delta-convergence pair (see apps/pagerank_delta.hpp for the PageRank
// side, which needs an explicit residual formulation to get the same
// property).
#pragma once

#include <limits>

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct Sssp {
  using Value = float;    // tentative distance
  using Message = float;  // candidate distance
  static constexpr bool kHasCombine = true;
  static constexpr bool kNeedsWeights = true;
  static constexpr Value kUnreached = std::numeric_limits<float>::infinity();

  VertexId source = 0;

  const char* name() const { return "sssp"; }

  Message combine(const Message& a, const Message& b) const {
    return a < b ? a : b;
  }

  Value initial_value(VertexId) const { return kUnreached; }
  bool initially_active(VertexId v) const { return v == source; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    float candidate = kUnreached;
    if (ctx.superstep() == 0 && ctx.id() == source) candidate = 0.0f;
    for (const Message& m : msgs) candidate = std::min(candidate, m);
    if (candidate < ctx.value()) {
      ctx.set_value(candidate);
      for (std::size_t i = 0; i < ctx.out_degree(); ++i) {
        ctx.send(ctx.out_edge(i), candidate + ctx.out_weight(i));
      }
    }
    ctx.deactivate();  // re-activated by a shorter path
  }
};

}  // namespace mlvc::apps
