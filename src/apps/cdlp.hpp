// Community detection by label propagation (Raghavan et al., the paper's
// CDLP reference; §VII "merging updates not possible").
//
// Each vertex adopts the most frequent label among its neighbors' latest
// labels. The mode cannot be computed from a single merged value, so every
// message must be preserved — the workload class that motivates the
// multi-log design. Ties break toward the smaller label so results are
// deterministic across engines regardless of message order.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct Cdlp {
  using Value = VertexId;    // community label
  using Message = VertexId;  // sender's new label

  static constexpr bool kHasCombine = false;
  static constexpr bool kNeedsWeights = false;

  const char* name() const { return "cdlp"; }

  Value initial_value(VertexId v) const { return v; }
  bool initially_active(VertexId) const { return true; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    if (ctx.superstep() == 0) {
      ctx.send_to_all_neighbors(ctx.value());
      ctx.deactivate();
      return;
    }
    if (msgs.empty()) {
      ctx.deactivate();
      return;
    }
    // Most frequent incoming label; ties -> smallest label.
    std::vector<VertexId> labels;
    labels.reserve(msgs.size());
    for (const Message& m : msgs) labels.push_back(m);
    std::sort(labels.begin(), labels.end());

    VertexId best_label = labels.front();
    std::size_t best_count = 0;
    std::size_t i = 0;
    while (i < labels.size()) {
      std::size_t j = i + 1;
      while (j < labels.size() && labels[j] == labels[i]) ++j;
      if (j - i > best_count) {
        best_count = j - i;
        best_label = labels[i];
      }
      i = j;
    }

    if (best_label != ctx.value()) {
      ctx.set_value(best_label);
      ctx.send_to_all_neighbors(best_label);
    }
    ctx.deactivate();
  }
};

}  // namespace mlvc::apps
