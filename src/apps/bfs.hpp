// Breadth-first search (§VII, "merging updates acceptable").
//
// Value = distance from the source (kUnreached until discovered);
// Message = candidate distance. Combine = min, so the §V.D optimization
// path applies. Activity pattern: the frontier starts at one vertex and
// widens — the paper's Figure 5 workload.
#pragma once

#include <cstdint>
#include <limits>

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct Bfs {
  using Value = std::uint32_t;
  using Message = std::uint32_t;
  static constexpr bool kHasCombine = true;
  static constexpr bool kNeedsWeights = false;
  /// All sends are uniform broadcasts (candidate + 1 to every neighbor), so
  /// the engine's pull path may capture-and-regenerate them (§4e).
  static constexpr bool kHasPullGather = true;
  static constexpr Value kUnreached = std::numeric_limits<Value>::max();

  VertexId source = 0;

  const char* name() const { return "bfs"; }

  Message combine(const Message& a, const Message& b) const {
    return a < b ? a : b;
  }

  Value initial_value(VertexId) const { return kUnreached; }
  bool initially_active(VertexId v) const { return v == source; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    Message candidate = kUnreached;
    if (ctx.superstep() == 0 && ctx.id() == source) candidate = 0;
    for (const Message& m : msgs) {
      candidate = candidate < m ? candidate : m;
    }
    if (candidate < ctx.value()) {
      ctx.set_value(candidate);
      if (candidate + 1 != kUnreached) {
        ctx.send_to_all_neighbors(candidate + 1);
      }
    }
    ctx.deactivate();  // re-activated only by a shorter-distance message
  }
};

}  // namespace mlvc::apps
