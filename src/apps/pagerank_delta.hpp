// Delta-convergent PageRank for scheduled/asynchronous execution.
//
// The paper's PageRank (apps/pagerank.hpp) seeds by superstep number, which
// assumes BSP rounds: under the asynchronous model a vertex can legally run
// several times inside superstep 0, and a superstep-gated seed would fire
// more than once. This variant makes the residual formulation explicit and
// order-independent:
//
//   rank_v   = (1-d) + d * sum_u rank_u / outdeg_u     (the fixed point)
//   delta_v  = newly arrived residual mass; applied to rank_v on every
//              activation, pushed to neighbors as d * delta / outdeg when it
//              exceeds epsilon.
//
// Seeding is a per-vertex latch in the value ((1-d) added exactly once, on
// the vertex's first activation), so ANY delivery order — BSP, scheduled
// sync, or async with same-wave redelivery — accumulates the same absolutely
// convergent series and lands on the same fixed point, up to the epsilon
// truncation and float summation order (tests compare within tolerance).
// Lower epsilon = tighter convergence, more rounds; the default keeps
// per-vertex truncation error a couple orders below the (1-d) seed mass.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct PageRankDelta {
  struct Value {
    float rank = 0.0f;       // accumulated rank mass
    std::uint32_t seeded = 0;  // (1-d) seed applied? (activation-order latch)
  };
  using Message = float;  // residual delta
  static constexpr bool kHasCombine = true;
  static constexpr bool kNeedsWeights = false;
  /// Residual shares are uniform broadcasts per sender — pull-path eligible
  /// (§4e). (Pull only engages under the synchronous models; async keeps
  /// push.)
  static constexpr bool kHasPullGather = true;

  float damping = 0.85f;
  /// Residual mass below which a delta is absorbed without propagating.
  float epsilon = 1e-3f;

  const char* name() const { return "pagerank_delta"; }

  Message combine(const Message& a, const Message& b) const { return a + b; }

  Value initial_value(VertexId) const { return {}; }
  bool initially_active(VertexId) const { return true; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    float delta = 0.0f;
    for (const Message& m : msgs) delta += m;
    Value v = ctx.value();
    if (v.seeded == 0) {
      v.seeded = 1;
      delta += 1.0f - damping;
    }
    v.rank += delta;
    ctx.set_value(v);
    if (delta > epsilon && ctx.out_degree() > 0) {
      const float share =
          damping * delta / static_cast<float>(ctx.out_degree());
      ctx.send_to_all_neighbors(share);
    }
    ctx.deactivate();  // re-activated by incoming residual
  }
};

}  // namespace mlvc::apps
