// Random walk (after DrunkardMob, the paper's RW reference; §VII).
//
// Per the paper's setup: every 1000th vertex is a walk source; each walk
// runs for up to 10 steps. A message is one walker (its remaining hop
// budget) — walkers are individual entities, so messages cannot be merged.
// Value = number of walker visits, the quantity DrunkardMob-style engines
// aggregate.
//
// Walker moves are drawn from the deterministic (seed, vertex, superstep)
// stream, so a single engine is reproducible run-to-run; across engines the
// per-walker draws may associate differently (message order is a multiset),
// which only permutes walkers, not the visit process.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct RandomWalk {
  using Value = std::uint32_t;  // visit count

  struct Message {
    std::uint16_t hops_left;
    std::uint16_t pad = 0;
  };

  static constexpr bool kHasCombine = false;
  static constexpr bool kNeedsWeights = false;

  /// Every `source_stride`-th vertex is a walk source (paper: 1000).
  VertexId source_stride = 1000;
  /// Walks started per source — the paper's "10 iterations".
  std::uint16_t walks_per_source = 10;
  /// Maximum steps per walk (paper: 10).
  std::uint16_t max_steps = 10;

  const char* name() const { return "random_walk"; }

  Value initial_value(VertexId) const { return 0; }
  bool initially_active(VertexId v) const { return v % source_stride == 0; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    auto rng = ctx.rng();
    std::uint32_t visits = 0;

    const auto forward = [&](std::uint16_t hops_left) {
      ++visits;
      if (hops_left == 0 || ctx.out_degree() == 0) return;  // walk ends
      const std::size_t pick = static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(ctx.out_degree())));
      ctx.send(ctx.out_edge(pick),
               Message{static_cast<std::uint16_t>(hops_left - 1), 0});
    };

    if (ctx.superstep() == 0 && initially_active(ctx.id())) {
      for (std::uint16_t w = 0; w < walks_per_source; ++w) {
        forward(max_steps);  // spawn this source's walkers
      }
    }
    for (const Message& m : msgs) {
      forward(m.hops_left);
    }

    if (visits > 0) ctx.set_value(ctx.value() + visits);
    ctx.deactivate();  // re-activated when a walker arrives
  }
};

}  // namespace mlvc::apps
