// Weakly connected components by minimum-label spreading.
//
// Every vertex adopts the smallest vertex id it has heard of; labels
// converge to each component's minimum id. min is associative and
// commutative, so the §V.D combine path applies. (examples/custom_app.cpp
// walks through writing this program from scratch; this is the library
// version.)
#pragma once

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct Wcc {
  using Value = VertexId;    // component label
  using Message = VertexId;  // candidate label
  static constexpr bool kHasCombine = true;
  static constexpr bool kNeedsWeights = false;
  /// Label broadcasts are uniform per sender — pull-path eligible (§4e).
  static constexpr bool kHasPullGather = true;

  const char* name() const { return "wcc"; }

  Message combine(const Message& a, const Message& b) const {
    return a < b ? a : b;
  }

  Value initial_value(VertexId v) const { return v; }
  bool initially_active(VertexId) const { return true; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    VertexId best = ctx.value();
    for (const Message& m : msgs) best = best < m ? best : m;
    if (ctx.superstep() == 0 || best < ctx.value()) {
      ctx.set_value(best);
      ctx.send_to_all_neighbors(best);
    }
    ctx.deactivate();
  }
};

}  // namespace mlvc::apps
