// Greedy graph coloring (after PowerGraph's coloring, the paper's GC
// reference; §VII "merging updates not possible").
//
// Speculative coloring with conflict re-announcement:
//  - superstep 0: everyone takes color 0 and announces (id, color);
//  - a vertex that sees an announcement with its own color from a
//    higher-priority neighbor (smaller id) recolors to a random member of
//    {0..degree} minus the colors announced by higher-priority neighbors
//    this superstep, then announces the change;
//  - a vertex that sees a *lower*-priority neighbor announce its color
//    re-announces without changing, forcing that neighbor to move.
//
// Invariants: every color change is announced, and every announcement that
// creates/reveals a conflict triggers a response from the conflicting
// endpoint — so no conflicting edge can go permanently silent, and an
// all-quiet state is a valid coloring. The *random* candidate choice (from
// the deterministic per-(vertex, superstep) stream, so engines agree)
// breaks the livelock a smallest-color rule admits: with fixed state a
// vertex cannot remember colors of neighbors that stayed silent this
// superstep, and deterministic choices can cycle through the same
// conflicting colors forever; randomization over ≥1 candidates converges
// with probability 1 (standard distributed Δ+1-coloring argument).
// Messages carry (id, color) and must all be inspected individually — not
// combinable, the workload class the multi-log exists for.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct GraphColoring {
  using Value = std::uint32_t;  // color

  struct Message {
    VertexId src;
    std::uint32_t color;
  };

  static constexpr bool kHasCombine = false;
  static constexpr bool kNeedsWeights = false;

  const char* name() const { return "graph_coloring"; }

  Value initial_value(VertexId) const { return 0; }
  bool initially_active(VertexId) const { return true; }

  /// Smaller id = higher priority (keeps its color in a conflict).
  static bool higher_priority(VertexId other, VertexId self) {
    return other < self;
  }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    if (ctx.superstep() == 0) {
      ctx.send_to_all_neighbors(Message{ctx.id(), ctx.value()});
      ctx.deactivate();
      return;
    }

    bool conflict_with_higher = false;
    bool outranked_conflict = false;
    std::vector<std::uint32_t> taken;  // colors of higher-priority neighbors
    for (const Message& m : msgs) {
      if (higher_priority(m.src, ctx.id())) {
        taken.push_back(m.color);
        if (m.color == ctx.value()) conflict_with_higher = true;
      } else if (m.color == ctx.value()) {
        outranked_conflict = true;  // they must move; remind them we exist
      }
    }

    if (conflict_with_higher) {
      std::sort(taken.begin(), taken.end());
      taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
      // Candidates: {0..degree} minus taken. degree+1 colors always leave
      // at least one candidate free.
      std::vector<std::uint32_t> candidates;
      const std::uint32_t limit =
          static_cast<std::uint32_t>(ctx.out_degree());
      std::size_t t = 0;
      for (std::uint32_t c = 0; c <= limit; ++c) {
        while (t < taken.size() && taken[t] < c) ++t;
        if (t < taken.size() && taken[t] == c) continue;
        candidates.push_back(c);
      }
      auto rng = ctx.rng();
      const std::uint32_t color =
          candidates[rng.next_below(candidates.size())];
      ctx.set_value(color);
      ctx.send_to_all_neighbors(Message{ctx.id(), color});
    } else if (outranked_conflict) {
      ctx.send_to_all_neighbors(Message{ctx.id(), ctx.value()});
    }
    ctx.deactivate();
  }
};

}  // namespace mlvc::apps
