// k-core membership by iterative peeling.
//
// A vertex belongs to the k-core iff it survives repeated removal of all
// vertices with (residual) degree < k. Vertex-centric formulation: a removed
// vertex announces its removal once; survivors decrement their residual
// degree by the number of removal announcements received and re-check.
// Extends the paper's application set with a classic degree-pruning
// workload whose active set collapses extremely fast — peeling cascades are
// short and localized, a best case for active-vertex-selective I/O.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct KCore {
  struct Value {
    std::uint32_t residual_degree;
    std::uint8_t removed;  // 0 = still in candidate core
    std::uint8_t pad[3] = {0, 0, 0};
  };
  /// One removal announcement; count is combinable by summation.
  using Message = std::uint32_t;
  static constexpr bool kHasCombine = true;
  static constexpr bool kNeedsWeights = false;

  std::uint32_t k = 3;

  const char* name() const { return "kcore"; }

  Message combine(const Message& a, const Message& b) const { return a + b; }

  Value initial_value(VertexId) const { return {0, 0, {0, 0, 0}}; }
  bool initially_active(VertexId) const { return true; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    Value v = ctx.value();
    if (ctx.superstep() == 0) {
      v.residual_degree = static_cast<std::uint32_t>(ctx.out_degree());
    }
    if (v.removed) {
      ctx.deactivate();
      return;
    }
    std::uint32_t removals = 0;
    for (const Message& m : msgs) removals += m;
    v.residual_degree = removals >= v.residual_degree
                            ? 0
                            : v.residual_degree - removals;
    if (v.residual_degree < k) {
      v.removed = 1;
      ctx.send_to_all_neighbors(1);
    }
    ctx.set_value(v);
    ctx.deactivate();  // survivors sleep until a neighbor is peeled
  }
};

}  // namespace mlvc::apps
