// Delta-based PageRank (§VII; modeled on GraphChi's streaming pagerank,
// which the paper cites as its PR reference).
//
// Value = accumulated rank. A vertex is re-activated when it receives a
// delta; per the paper, it only propagates if the accumulated delta exceeds
// a threshold ("a vertex in pagerank gets activated if it receives a delta
// update greater than a certain threshold value (0.4)"). Combine = sum.
#pragma once

#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct PageRank {
  using Value = float;
  using Message = float;
  static constexpr bool kHasCombine = true;
  static constexpr bool kNeedsWeights = false;
  /// The per-superstep share is one uniform broadcast per sender — pull-path
  /// eligible (§4e).
  static constexpr bool kHasPullGather = true;

  float damping = 0.85f;
  /// The paper's activation threshold (0.4, §VII). Lower values run more
  /// supersteps and converge tighter.
  float threshold = 0.4f;

  const char* name() const { return "pagerank"; }

  Message combine(const Message& a, const Message& b) const { return a + b; }

  Value initial_value(VertexId) const { return 1.0f; }
  bool initially_active(VertexId) const { return true; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    float delta = 0.0f;
    for (const Message& m : msgs) delta += m;

    if (ctx.superstep() == 0) {
      // Seed propagation: push the initial rank mass once.
      delta = ctx.value();
    } else {
      ctx.set_value(ctx.value() + delta);
    }

    if (delta > threshold && ctx.out_degree() > 0) {
      const float share =
          damping * delta / static_cast<float>(ctx.out_degree());
      ctx.send_to_all_neighbors(share);
    }
    ctx.deactivate();  // re-activated by incoming deltas
  }
};

}  // namespace mlvc::apps
