// Maximal independent set — Luby's algorithm in the Pregel formulation of
// Salihoglu & Widom (the paper's MIS reference; §VII "merging updates not
// possible").
//
// Rounds of two supersteps:
//  - selection (even superstep): every undecided vertex draws a random
//    priority (deterministically from (seed, vertex, round)) and announces
//    (priority, id) to its neighbors;
//  - resolution (odd superstep): an undecided vertex whose own priority
//    strictly beats every announced undecided neighbor's joins the MIS and
//    announces that; a vertex hearing an in-MIS neighbor leaves (NotInMis).
//
// Every neighbor's priority must be inspected individually — not
// combinable. Decided vertices deactivate; the algorithm converges when all
// vertices are decided.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/message_range.hpp"

namespace mlvc::apps {

struct Mis {
  enum State : std::uint8_t { kUndecided = 0, kInMis = 1, kNotInMis = 2 };

  using Value = std::uint8_t;  // State

  struct Message {
    enum Kind : std::uint8_t { kPriority = 0, kInMisAnnounce = 1 };
    float priority;
    VertexId src;
    std::uint8_t kind;
  };

  static constexpr bool kHasCombine = false;
  static constexpr bool kNeedsWeights = false;

  std::uint64_t seed = 7;

  const char* name() const { return "mis"; }

  Value initial_value(VertexId) const { return kUndecided; }
  bool initially_active(VertexId) const { return true; }

  float priority_of(VertexId v, Superstep round) const {
    return static_cast<float>(stream_for(seed, v, round).next_double());
  }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    const Superstep round = ctx.superstep() / 2;
    const bool selection_phase = ctx.superstep() % 2 == 0;

    // Decided vertices only linger to hear stray messages; stay silent.
    if (ctx.value() != kUndecided) {
      ctx.deactivate();
      return;
    }

    if (selection_phase) {
      // Did an in-MIS announcement arrive from the previous resolution?
      for (const Message& m : msgs) {
        if (m.kind == Message::kInMisAnnounce) {
          ctx.set_value(kNotInMis);
          ctx.deactivate();
          return;
        }
      }
      ctx.send_to_all_neighbors(
          Message{priority_of(ctx.id(), round), ctx.id(), Message::kPriority});
      return;  // stay active for the resolution phase
    }

    // Resolution phase.
    for (const Message& m : msgs) {
      if (m.kind == Message::kInMisAnnounce) {
        ctx.set_value(kNotInMis);
        ctx.deactivate();
        return;
      }
    }
    const float own = priority_of(ctx.id(), round);
    bool is_max = true;
    for (const Message& m : msgs) {
      if (m.kind != Message::kPriority) continue;
      // Strict win; ties break toward the smaller vertex id.
      if (m.priority > own || (m.priority == own && m.src < ctx.id())) {
        is_max = false;
        break;
      }
    }
    if (is_max) {
      ctx.set_value(kInMis);
      ctx.send_to_all_neighbors(
          Message{0.0f, ctx.id(), Message::kInMisAnnounce});
      ctx.deactivate();
      return;
    }
    // Still undecided; stay active for the next selection phase.
  }
};

}  // namespace mlvc::apps
