// Host memory budget accounting (§V.A and Figure 4 of the paper).
//
// The paper partitions a fixed host budget (default 1 GB) into:
//   X% (75) — sort-and-group working memory,
//   A% ( 5) — multi-log write buffers (top pages),
//   B% ( 5) — edge-log buffers,
//   remainder — graph loader buffers (row pointers, adjacency pages) and
//               engine bookkeeping.
// We reproduce that split, scaled down so synthetic graphs keep the paper's
// memory:graph ratio (see DESIGN.md §2).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mlvc {

struct BudgetSplit {
  double sort_fraction = 0.75;      // X% in Figure 4
  double log_buffer_fraction = 0.05;  // A%
  double edge_log_fraction = 0.05;    // B%
  // Remainder goes to the graph loader + misc.
};

/// Tracks charges against a fixed budget. Thread-safe. Over-subscription
/// throws BudgetError — the engines size their buffers up front, so hitting
/// this at runtime is a logic error worth failing loudly on.
class MemoryBudget {
 public:
  MemoryBudget(std::string name, std::size_t total_bytes)
      : name_(std::move(name)), total_(total_bytes), used_(0) {}

  std::size_t total() const noexcept { return total_; }
  std::size_t used() const noexcept {
    return used_.load(std::memory_order_relaxed);
  }
  std::size_t available() const noexcept {
    const std::size_t u = used();
    return u >= total_ ? 0 : total_ - u;
  }

  void charge(std::size_t bytes) {
    const std::size_t prev = used_.fetch_add(bytes, std::memory_order_relaxed);
    if (prev + bytes > total_) {
      used_.fetch_sub(bytes, std::memory_order_relaxed);
      throw BudgetError("memory budget '" + name_ + "' exhausted: need " +
                        std::to_string(bytes) + " bytes, " +
                        std::to_string(total_ - std::min(total_, prev)) +
                        " available of " + std::to_string(total_));
    }
  }

  void release(std::size_t bytes) noexcept {
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::size_t total_;
  std::atomic<std::size_t> used_;
};

/// RAII charge against a budget.
class BudgetCharge {
 public:
  BudgetCharge() = default;
  BudgetCharge(MemoryBudget& budget, std::size_t bytes)
      : budget_(&budget), bytes_(bytes) {
    budget_->charge(bytes_);
  }
  ~BudgetCharge() { reset(); }

  BudgetCharge(BudgetCharge&& other) noexcept
      : budget_(other.budget_), bytes_(other.bytes_) {
    other.budget_ = nullptr;
    other.bytes_ = 0;
  }
  BudgetCharge& operator=(BudgetCharge&& other) noexcept {
    if (this != &other) {
      reset();
      budget_ = other.budget_;
      bytes_ = other.bytes_;
      other.budget_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  BudgetCharge(const BudgetCharge&) = delete;
  BudgetCharge& operator=(const BudgetCharge&) = delete;

  void reset() noexcept {
    if (budget_ != nullptr) {
      budget_->release(bytes_);
      budget_ = nullptr;
      bytes_ = 0;
    }
  }

  std::size_t bytes() const noexcept { return bytes_; }

 private:
  MemoryBudget* budget_ = nullptr;
  std::size_t bytes_ = 0;
};

class BudgetArbiter;

/// RAII grant from a BudgetArbiter. Releasing (destruction or reset()) wakes
/// queries parked in BudgetArbiter::acquire.
class BudgetLease {
 public:
  BudgetLease() = default;
  ~BudgetLease() { reset(); }

  BudgetLease(BudgetLease&& other) noexcept
      : arbiter_(other.arbiter_), bytes_(other.bytes_) {
    other.arbiter_ = nullptr;
    other.bytes_ = 0;
  }
  BudgetLease& operator=(BudgetLease&& other) noexcept {
    if (this != &other) {
      reset();
      arbiter_ = other.arbiter_;
      bytes_ = other.bytes_;
      other.arbiter_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  BudgetLease(const BudgetLease&) = delete;
  BudgetLease& operator=(const BudgetLease&) = delete;

  void reset() noexcept;
  std::size_t bytes() const noexcept { return bytes_; }
  bool active() const noexcept { return arbiter_ != nullptr; }

 private:
  friend class BudgetArbiter;
  BudgetLease(BudgetArbiter* arbiter, std::size_t bytes)
      : arbiter_(arbiter), bytes_(bytes) {}

  BudgetArbiter* arbiter_ = nullptr;
  std::size_t bytes_ = 0;
};

/// Process-level memory arbitration for multi-tenant serving. Unlike
/// MemoryBudget (whose charge() throws — over-subscription within one engine
/// is a logic error), the arbiter *blocks*: a query whose budget does not
/// currently fit parks in acquire() until enough leases are released. This
/// is the admission-control half of the Figure 4 budget when many queries
/// share one host: each engine leases its whole per-query budget up front,
/// so the sum of running queries' budgets never exceeds the pool.
///
/// A request larger than the pool can never be satisfied and throws
/// BudgetError instead of deadlocking.
class BudgetArbiter {
 public:
  BudgetArbiter(std::string name, std::size_t total_bytes)
      : name_(std::move(name)), total_(total_bytes) {}

  std::size_t total() const noexcept { return total_; }
  std::size_t used() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return used_;
  }
  std::size_t available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return total_ - used_;
  }
  /// Queries currently parked in acquire().
  std::size_t waiters() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return waiters_;
  }

  /// Block until `bytes` fit, then lease them.
  BudgetLease acquire(std::size_t bytes) {
    check_satisfiable(bytes);
    std::unique_lock<std::mutex> lock(mutex_);
    ++waiters_;
    cv_.wait(lock, [&] { return used_ + bytes <= total_; });
    --waiters_;
    used_ += bytes;
    return BudgetLease(this, bytes);
  }

  /// Lease `bytes` if they fit right now; std::nullopt otherwise.
  std::optional<BudgetLease> try_acquire(std::size_t bytes) {
    check_satisfiable(bytes);
    std::lock_guard<std::mutex> lock(mutex_);
    if (used_ + bytes > total_) return std::nullopt;
    used_ += bytes;
    return BudgetLease(this, bytes);
  }

 private:
  friend class BudgetLease;

  void check_satisfiable(std::size_t bytes) const {
    if (bytes > total_) {
      throw BudgetError("arbiter '" + name_ + "': request of " +
                        std::to_string(bytes) + " bytes exceeds the " +
                        std::to_string(total_) + "-byte pool");
    }
  }

  void release(std::size_t bytes) noexcept {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      used_ -= bytes;
    }
    cv_.notify_all();
  }

  std::string name_;
  std::size_t total_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t used_ = 0;
  std::size_t waiters_ = 0;
};

inline void BudgetLease::reset() noexcept {
  if (arbiter_ != nullptr) {
    arbiter_->release(bytes_);
    arbiter_ = nullptr;
    bytes_ = 0;
  }
}

}  // namespace mlvc
