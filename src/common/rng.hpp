// Deterministic, fast pseudo-random number generation.
//
// All randomness in the framework (R-MAT generation, MIS priorities, random
// walks) flows through SplitMix64 streams seeded explicitly, so every bench
// and test is reproducible bit-for-bit (DESIGN.md §5).
#pragma once

#include <cstdint>

namespace mlvc {

/// SplitMix64: tiny, statistically solid, and — unlike std::mt19937 —
/// cheap to seed per-vertex so parallel loops can derive an independent
/// stream from (seed, vertex) without sharing state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // our bounds are far below 2^64 so bias is negligible for simulation use.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  // UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() noexcept { return next(); }

 private:
  std::uint64_t state_;
};

/// Stateless hash of (seed, a, b) to a SplitMix64 stream. Used to give each
/// (vertex, superstep) pair an independent deterministic stream regardless
/// of processing order — essential because engines process vertices in
/// different orders but must produce identical algorithm results.
inline SplitMix64 stream_for(std::uint64_t seed, std::uint64_t a,
                             std::uint64_t b = 0) noexcept {
  SplitMix64 mix(seed ^ (a * 0xD6E8FEB86659FD93ull) ^
                 (b * 0xA5A5A5A5A5A5A5A5ull));
  mix.next();  // decorrelate nearby seeds
  return mix;
}

}  // namespace mlvc
