// CRC32 (ISO-HDLC / zlib polynomial, reflected) for integrity headers.
//
// Checkpoints and other crash-consistent artifacts carry a payload CRC so a
// torn or bit-flipped image is detected at load time and surfaces as a typed
// error instead of silently corrupting engine state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mlvc {

namespace detail {
inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}
}  // namespace detail

/// Incremental update: feed chunks in order, starting from crc32_init().
inline std::uint32_t crc32_init() { return 0xFFFFFFFFu; }

inline std::uint32_t crc32_update(std::uint32_t crc, const void* data,
                                  std::size_t len) {
  const auto& table = detail::crc32_table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

inline std::uint32_t crc32_final(std::uint32_t crc) { return crc ^ 0xFFFFFFFFu; }

/// One-shot convenience.
inline std::uint32_t crc32(const void* data, std::size_t len) {
  return crc32_final(crc32_update(crc32_init(), data, len));
}

}  // namespace mlvc
