// LEB128 varint + zigzag codec for the v2 on-disk formats.
//
// Both compressed layouts (CSR adjacency blocks in graph/stored_csr and the
// chunked multi-log record stream in multilog/) store sorted-or-clustered
// vertex ids, so the common shape is "first value absolute, then zigzag'd
// deltas". The primitives here are deliberately tiny and header-only: the
// encoder appends to a byte vector, the decoder is a bounds-checked cursor
// that funnels truncation/overflow into the typed mlvc::Error hierarchy so
// torn or corrupt input surfaces exactly like every other storage fault.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace mlvc {

/// Largest encoded size of a u64 varint (10 * 7 bits >= 64 bits).
inline constexpr std::size_t kMaxVarintBytes = 10;

/// Append `v` to `out` as an LEB128 varint (7 value bits per byte, high bit
/// = continuation). Returns the number of bytes appended.
inline std::size_t put_uvarint(std::vector<std::uint8_t>& out,
                               std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
    ++n;
  }
  out.push_back(static_cast<std::uint8_t>(v));
  return n + 1;
}

/// Encode a varint into a raw buffer with at least kMaxVarintBytes of room.
/// Returns the encoded length.
inline std::size_t put_uvarint(std::uint8_t* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

/// Decode one varint from [*cursor, end). Advances *cursor past the encoded
/// bytes. Throws mlvc::Error on truncation (ran off `end` mid-value) or
/// overflow (more than 10 bytes / bits above 2^64).
inline std::uint64_t get_uvarint(const std::uint8_t** cursor,
                                 const std::uint8_t* end) {
  const std::uint8_t* p = *cursor;
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (p == end) {
      throw Error("varint: truncated value");
    }
    const std::uint8_t byte = *p++;
    if (shift == 63 && byte > 1) {
      throw Error("varint: value overflows u64");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) {
      throw Error("varint: value overflows u64");
    }
  }
  *cursor = p;
  return v;
}

/// Non-throwing variant for hot decode loops that already validated the
/// stream (e.g. the fused scatter pass re-walking chunk bodies the torn-page
/// funnel checked). Returns false instead of throwing.
inline bool try_get_uvarint(const std::uint8_t** cursor,
                            const std::uint8_t* end,
                            std::uint64_t* out) {
  const std::uint8_t* p = *cursor;
  std::uint64_t v = 0;
  unsigned shift = 0;
  for (;;) {
    if (p == end) return false;
    const std::uint8_t byte = *p++;
    if (shift == 63 && byte > 1) return false;
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) return false;
  }
  *cursor = p;
  *out = v;
  return true;
}

/// Zigzag: map signed deltas onto small unsigned values so varint stays
/// short for negative steps (adjacency lists restart per vertex, so deltas
/// go negative at every row boundary).
inline constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

inline constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Delta+zigzag+varint encode `values[0..n)` relative to `prev` (the last
/// value of the preceding block, or the first value itself when starting a
/// stream with `absolute_first = true`). Appends to `out`.
inline void put_delta_block(std::vector<std::uint8_t>& out,
                            const std::uint32_t* values, std::size_t n,
                            std::int64_t prev, bool absolute_first) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t cur = static_cast<std::int64_t>(values[i]);
    if (i == 0 && absolute_first) {
      put_uvarint(out, static_cast<std::uint64_t>(cur));
    } else {
      put_uvarint(out, zigzag_encode(cur - prev));
    }
    prev = cur;
  }
}

/// Inverse of put_delta_block: decode exactly `n` values into `out`.
/// Advances *cursor. Throws mlvc::Error on truncation/overflow or when a
/// decoded value does not fit u32.
inline void get_delta_block(const std::uint8_t** cursor,
                            const std::uint8_t* end, std::uint32_t* out,
                            std::size_t n, std::int64_t prev,
                            bool absolute_first) {
  for (std::size_t i = 0; i < n; ++i) {
    std::int64_t cur;
    if (i == 0 && absolute_first) {
      cur = static_cast<std::int64_t>(get_uvarint(cursor, end));
    } else {
      cur = prev + zigzag_decode(get_uvarint(cursor, end));
    }
    if (cur < 0 || cur > static_cast<std::int64_t>(UINT32_MAX)) {
      throw Error("varint: delta-decoded value out of u32 range");
    }
    out[i] = static_cast<std::uint32_t>(cur);
    prev = cur;
  }
}

}  // namespace mlvc
