// Dynamic bitsets used for active-vertex tracking and the edge-log
// optimizer's activity history (§V.C of the paper).
//
// Two flavors:
//  - DynamicBitset: single-threaded, compact, fast popcount.
//  - AtomicBitset : concurrent set() so parallel vertex processing can mark
//    next-superstep activations without locks.
#pragma once

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace mlvc {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(std::size_t n, bool value = false) { resize(n, value); }

  void resize(std::size_t n, bool value = false) {
    size_ = n;
    words_.assign(word_count(n), value ? ~0ull : 0ull);
    trim();
  }

  std::size_t size() const noexcept { return size_; }

  bool test(std::size_t i) const {
    MLVC_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ull;
  }

  void set(std::size_t i, bool value = true) {
    MLVC_CHECK(i < size_);
    const std::uint64_t mask = 1ull << (i & 63);
    if (value) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void clear_all() { std::fill(words_.begin(), words_.end(), 0ull); }
  void set_all() {
    std::fill(words_.begin(), words_.end(), ~0ull);
    trim();
  }

  std::size_t count() const noexcept {
    std::size_t total = 0;
    for (std::uint64_t w : words_) total += std::popcount(w);
    return total;
  }

  bool any() const noexcept {
    for (std::uint64_t w : words_) {
      if (w) return true;
    }
    return false;
  }

  /// Calls fn(index) for every set bit, ascending.
  template <typename Fn>
  void for_each_set(Fn&& fn) const {
    for (std::size_t wi = 0; wi < words_.size(); ++wi) {
      std::uint64_t w = words_[wi];
      while (w) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Calls fn(index) for every set bit in [begin, end), ascending.
  template <typename Fn>
  void for_each_set_in_range(std::size_t begin, std::size_t end,
                             Fn&& fn) const {
    MLVC_CHECK(begin <= end && end <= size_);
    if (begin == end) return;
    const std::size_t first_word = begin / 64;
    const std::size_t last_word = (end - 1) / 64;
    for (std::size_t wi = first_word; wi <= last_word; ++wi) {
      std::uint64_t w = words_[wi];
      if (wi == first_word && begin % 64 != 0) {
        w &= ~0ull << (begin % 64);
      }
      if (wi == last_word && end % 64 != 0) {
        w &= (1ull << (end % 64)) - 1;
      }
      while (w) {
        const int bit = std::countr_zero(w);
        fn(wi * 64 + static_cast<std::size_t>(bit));
        w &= w - 1;
      }
    }
  }

  /// Popcount over [begin, end) — word-at-a-time with first/last-word
  /// masking, so interval density queries don't pay a per-bit loop.
  std::size_t count_in_range(std::size_t begin, std::size_t end) const {
    MLVC_CHECK(begin <= end && end <= size_);
    if (begin == end) return 0;
    const std::size_t first_word = begin / 64;
    const std::size_t last_word = (end - 1) / 64;
    std::size_t total = 0;
    for (std::size_t wi = first_word; wi <= last_word; ++wi) {
      std::uint64_t w = words_[wi];
      if (wi == first_word && begin % 64 != 0) {
        w &= ~0ull << (begin % 64);
      }
      if (wi == last_word && end % 64 != 0) {
        w &= (1ull << (end % 64)) - 1;
      }
      total += std::popcount(w);
    }
    return total;
  }

  /// Raw word access for serialization (checkpointing).
  std::span<const std::uint64_t> words() const noexcept { return words_; }
  void load_words(std::span<const std::uint64_t> w) {
    MLVC_CHECK(w.size() == words_.size());
    std::copy(w.begin(), w.end(), words_.begin());
    trim();
  }

  /// Bitwise OR with another bitset of the same size.
  DynamicBitset& operator|=(const DynamicBitset& other) {
    MLVC_CHECK(size_ == other.size_);
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

 private:
  static std::size_t word_count(std::size_t n) { return (n + 63) / 64; }
  void trim() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ull << (size_ % 64)) - 1;
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Concurrent-write bitset: set() from many threads is safe; readers must
/// synchronize externally (the engine reads only between supersteps).
class AtomicBitset {
 public:
  AtomicBitset() = default;
  explicit AtomicBitset(std::size_t n) { resize(n); }

  void resize(std::size_t n) {
    size_ = n;
    words_ = std::vector<std::atomic<std::uint64_t>>((n + 63) / 64);
    clear_all();
  }

  std::size_t size() const noexcept { return size_; }

  /// Returns true if the bit transitioned 0 -> 1 (first setter wins).
  bool set(std::size_t i) {
    MLVC_CHECK(i < size_);
    const std::uint64_t mask = 1ull << (i & 63);
    const std::uint64_t prev =
        words_[i >> 6].fetch_or(mask, std::memory_order_relaxed);
    return (prev & mask) == 0;
  }

  bool test(std::size_t i) const {
    MLVC_CHECK(i < size_);
    return (words_[i >> 6].load(std::memory_order_relaxed) >> (i & 63)) & 1ull;
  }

  void clear_all() {
    for (auto& w : words_) w.store(0ull, std::memory_order_relaxed);
  }

  std::size_t count() const noexcept {
    std::size_t total = 0;
    for (const auto& w : words_) {
      total += std::popcount(w.load(std::memory_order_relaxed));
    }
    return total;
  }

  /// Popcount over [begin, end), word-masked like
  /// DynamicBitset::count_in_range. Relaxed loads: exact only when no
  /// concurrent set() is in flight (between supersteps / batches), which is
  /// also all the density heuristic needs mid-superstep.
  std::size_t count_in_range(std::size_t begin, std::size_t end) const {
    MLVC_CHECK(begin <= end && end <= size_);
    if (begin == end) return 0;
    const std::size_t first_word = begin / 64;
    const std::size_t last_word = (end - 1) / 64;
    std::size_t total = 0;
    for (std::size_t wi = first_word; wi <= last_word; ++wi) {
      std::uint64_t w = words_[wi].load(std::memory_order_relaxed);
      if (wi == first_word && begin % 64 != 0) {
        w &= ~0ull << (begin % 64);
      }
      if (wi == last_word && end % 64 != 0) {
        w &= (1ull << (end % 64)) - 1;
      }
      total += std::popcount(w);
    }
    return total;
  }

  /// Snapshot into a plain bitset (called between supersteps).
  DynamicBitset snapshot() const {
    DynamicBitset out(size_);
    for (std::size_t i = 0; i < size_; ++i) {
      if (test(i)) out.set(i);
    }
    return out;
  }

 private:
  std::size_t size_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace mlvc
