// Small formatting helpers for reports and logs.
#pragma once

#include <cstdint>
#include <iomanip>
#include <sstream>
#include <string>

namespace mlvc {

/// "12.3 GiB", "640 KiB", ...
inline std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  std::ostringstream os;
  if (unit == 0) {
    os << bytes << " B";
  } else {
    os << std::fixed << std::setprecision(v < 10 ? 2 : 1) << v << " "
       << kUnits[unit];
  }
  return os.str();
}

/// "1,234,567"
inline std::string format_count(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t first = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - first) % 3 == 0 && i >= first) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

inline std::string format_fixed(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// "0x1a2b3c..." — compact fingerprint (e.g. a vertex-value hash).
inline std::string format_hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace mlvc
