// A small command-line argument parser for the tools/ binaries.
//
// Supports --name value and --name=value forms, typed getters with
// defaults, required arguments, and generated usage text.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mlvc {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_(std::move(program)), description_(std::move(description)) {}

  /// Declare an option (for usage text); `def` empty string = required.
  ArgParser& option(const std::string& name, const std::string& help,
                    const std::string& def = "") {
    declared_.push_back({name, help, def});
    return *this;
  }

  /// Parse argv; throws InvalidArgument for unknown or malformed options.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const { return values_.count(name) != 0; }

  std::string get_string(const std::string& name) const;
  std::string get_string(const std::string& name,
                         const std::string& def) const;
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  std::uint64_t get_bytes(const std::string& name, std::uint64_t def) const;
  double get_double(const std::string& name, double def) const;
  bool get_flag(const std::string& name) const;

  std::string usage() const;

 private:
  struct Declared {
    std::string name;
    std::string help;
    std::string def;
  };
  std::string program_;
  std::string description_;
  std::vector<Declared> declared_;
  std::map<std::string, std::string> values_;
};

/// Parse "64M", "1G", "4096", "512K" into bytes.
std::uint64_t parse_bytes(const std::string& text);

}  // namespace mlvc
