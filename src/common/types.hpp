// Core scalar types shared by every MultiLogVC module.
//
// The paper (§VI) uses a 4-byte vertex id and an 8-byte row-pointer entry;
// we mirror that so the on-disk CSR layout has the same density as the
// authors' implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>

namespace mlvc {

/// Vertex identifier. 4 bytes, per the paper's implementation notes (§VI).
using VertexId = std::uint32_t;

/// Index into the edge (colIdx/val) arrays. 8 bytes so graphs with more than
/// 4G edges are representable, matching the paper's 8-byte rowPtr entries.
using EdgeIndex = std::uint64_t;

/// Identifier of a vertex interval (a contiguous group of vertices that
/// shares one message log). Interval counts are small (<5000 in the paper),
/// but we keep 32 bits for headroom.
using IntervalId = std::uint32_t;

/// Superstep (BSP iteration) number.
using Superstep = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "no interval".
inline constexpr IntervalId kInvalidInterval =
    std::numeric_limits<IntervalId>::max();

/// Which implementation the sort-and-group unit (§V.B) uses to group one
/// fused interval group's message log by destination. Shared by the engine
/// options (which may force a path for ablation) and the multilog layer
/// (which reports the path actually taken).
enum class SortGroupPath : std::uint8_t {
  /// Heuristic: counting scatter unless the destination histogram would be
  /// large relative to the record count (width >> n, e.g. a nearly-empty
  /// tail-superstep log), then comparison sort.
  kAuto,
  /// Fused histogram + prefix-sum + scatter keyed by dst - interval_begin.
  kCountingScatter,
  /// Decode + comparison parallel_sort (+ combine scan) — the pre-scatter
  /// path, kept as the wide-range fallback and for ablation.
  kComparisonSort,
};

inline constexpr const char* to_string(SortGroupPath p) {
  switch (p) {
    case SortGroupPath::kAuto: return "auto";
    case SortGroupPath::kCountingScatter: return "counting_scatter";
    case SortGroupPath::kComparisonSort: return "comparison_sort";
  }
  return "?";
}

/// On-disk layout generation for the stored CSR and the multi-log record
/// stream. kV1 = fixed-width records / raw u32 adjacency (the original
/// layout, still readable). kV2 = delta+zigzag+varint-compressed adjacency
/// blocks with a skip index, and varint-compressed chunked log records
/// decoded inside the sort-and-group scatter pass.
enum class OnDiskFormat : std::uint8_t {
  kV1 = 1,
  kV2 = 2,
};

inline constexpr const char* to_string(OnDiskFormat f) {
  switch (f) {
    case OnDiskFormat::kV1: return "v1";
    case OnDiskFormat::kV2: return "v2";
  }
  return "?";
}

/// Parse "v1"/"1"/"v2"/"2". Returns false (leaving *out untouched) on
/// anything else so callers can decide between ignoring and rejecting.
inline bool parse_on_disk_format(const char* s, OnDiskFormat* out) {
  if (s == nullptr) return false;
  const std::string_view v(s);
  if (v == "v1" || v == "1") {
    *out = OnDiskFormat::kV1;
    return true;
  }
  if (v == "v2" || v == "2") {
    *out = OnDiskFormat::kV2;
    return true;
  }
  return false;
}

/// How the engine orders ready vertex intervals within a superstep wave.
/// kBsp is the paper's barrier execution (fused interval groups in id
/// order); every other policy routes through core::IntervalScheduler, which
/// releases each interval's load→sort→compute chain independently and picks
/// the next chain by estimated impact. The policy controls ordering ONLY —
/// message delivery semantics stay with ComputationModel, so a scheduled
/// synchronous run converges to the same values as BSP.
enum class SchedulePolicy : std::uint8_t {
  /// Global barrier, fused groups, id order — the default, byte-identical
  /// to the pre-scheduler engine.
  kBsp,
  /// Interval-granular chains in arrival (id) order — the scheduler's
  /// control case.
  kFifo,
  /// Hubs first: descending per-interval out-degree mass, weighted by the
  /// history predictor's expected-active set once history exists. The right
  /// signal on skewed (R-MAT/power-law) graphs.
  kHubDegree,
  /// Largest pending message-log volume first.
  kLogBytes,
};

inline constexpr const char* to_string(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::kBsp: return "bsp";
    case SchedulePolicy::kFifo: return "fifo";
    case SchedulePolicy::kHubDegree: return "hub-degree";
    case SchedulePolicy::kLogBytes: return "log-bytes";
  }
  return "?";
}

/// Parse "bsp"/"fifo"/"hub-degree"/"log-bytes" (plus the underscore
/// spellings). Returns false (leaving *out untouched) on anything else so
/// callers can decide between ignoring and rejecting.
inline bool parse_schedule_policy(const char* s, SchedulePolicy* out) {
  if (s == nullptr) return false;
  const std::string_view v(s);
  if (v == "bsp") {
    *out = SchedulePolicy::kBsp;
    return true;
  }
  if (v == "fifo") {
    *out = SchedulePolicy::kFifo;
    return true;
  }
  if (v == "hub-degree" || v == "hub_degree" || v == "hub") {
    *out = SchedulePolicy::kHubDegree;
    return true;
  }
  if (v == "log-bytes" || v == "log_bytes" || v == "bytes") {
    *out = SchedulePolicy::kLogBytes;
    return true;
  }
  return false;
}

/// Where the §V.D combine operator runs for kHasCombine apps. kHost is the
/// paper's layout: raw log records cross the bus and the host's counting
/// scatter reduces them. kDevice models computational storage: each striped
/// device reduces the log records resident on it (per-device reduction
/// tables) before results cross the bus, so bus traffic shrinks to one
/// record per live destination per device. Values are identical up to
/// combine fold order (exact for idempotent combines like min; floating
/// sums differ within rounding).
enum class CombinePlacement : std::uint8_t {
  kHost,
  kDevice,
};

inline constexpr const char* to_string(CombinePlacement p) {
  switch (p) {
    case CombinePlacement::kHost: return "host";
    case CombinePlacement::kDevice: return "device";
  }
  return "?";
}

/// Parse "host"/"device". Returns false (leaving *out untouched) on
/// anything else so callers can decide between ignoring and rejecting.
inline bool parse_combine_placement(const char* s, CombinePlacement* out) {
  if (s == nullptr) return false;
  const std::string_view v(s);
  if (v == "host") {
    *out = CombinePlacement::kHost;
    return true;
  }
  if (v == "device") {
    *out = CombinePlacement::kDevice;
    return true;
  }
  return false;
}

/// Per-interval message movement direction. kPush is the paper's multi-log
/// scatter: every active edge writes a log record that is later re-read and
/// sort-and-grouped. kPull inverts dense intervals: the engine streams the
/// stored in-edge (transpose) CSR and gathers each active in-neighbor's
/// broadcast message directly — zero log writes, decodes, or sort_and_group
/// for that interval. kAdaptive picks per interval per superstep from the
/// predicted active-edge mass (the direction-optimizing BFS idea applied to
/// the multi-log engine). Requires a stored transpose and a broadcast-send
/// app; the engine falls back to push (with a logged reason) otherwise.
enum class DirectionMode : std::uint8_t {
  kPush,
  kPull,
  kAdaptive,
};

inline constexpr const char* to_string(DirectionMode d) {
  switch (d) {
    case DirectionMode::kPush: return "push";
    case DirectionMode::kPull: return "pull";
    case DirectionMode::kAdaptive: return "adaptive";
  }
  return "?";
}

/// Parse "push"/"pull"/"adaptive". Returns false (leaving *out untouched)
/// on anything else so callers can decide between ignoring and rejecting.
inline bool parse_direction_mode(const char* s, DirectionMode* out) {
  if (s == nullptr) return false;
  const std::string_view v(s);
  if (v == "push") {
    *out = DirectionMode::kPush;
    return true;
  }
  if (v == "pull") {
    *out = DirectionMode::kPull;
    return true;
  }
  if (v == "adaptive" || v == "auto") {
    *out = DirectionMode::kAdaptive;
    return true;
  }
  return false;
}

/// Byte-size helpers.
inline constexpr std::size_t operator""_KiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 10;
}
inline constexpr std::size_t operator""_MiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 20;
}
inline constexpr std::size_t operator""_GiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 30;
}

}  // namespace mlvc
