// Core scalar types shared by every MultiLogVC module.
//
// The paper (§VI) uses a 4-byte vertex id and an 8-byte row-pointer entry;
// we mirror that so the on-disk CSR layout has the same density as the
// authors' implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace mlvc {

/// Vertex identifier. 4 bytes, per the paper's implementation notes (§VI).
using VertexId = std::uint32_t;

/// Index into the edge (colIdx/val) arrays. 8 bytes so graphs with more than
/// 4G edges are representable, matching the paper's 8-byte rowPtr entries.
using EdgeIndex = std::uint64_t;

/// Identifier of a vertex interval (a contiguous group of vertices that
/// shares one message log). Interval counts are small (<5000 in the paper),
/// but we keep 32 bits for headroom.
using IntervalId = std::uint32_t;

/// Superstep (BSP iteration) number.
using Superstep = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Sentinel for "no interval".
inline constexpr IntervalId kInvalidInterval =
    std::numeric_limits<IntervalId>::max();

/// Which implementation the sort-and-group unit (§V.B) uses to group one
/// fused interval group's message log by destination. Shared by the engine
/// options (which may force a path for ablation) and the multilog layer
/// (which reports the path actually taken).
enum class SortGroupPath : std::uint8_t {
  /// Heuristic: counting scatter unless the destination histogram would be
  /// large relative to the record count (width >> n, e.g. a nearly-empty
  /// tail-superstep log), then comparison sort.
  kAuto,
  /// Fused histogram + prefix-sum + scatter keyed by dst - interval_begin.
  kCountingScatter,
  /// Decode + comparison parallel_sort (+ combine scan) — the pre-scatter
  /// path, kept as the wide-range fallback and for ablation.
  kComparisonSort,
};

inline constexpr const char* to_string(SortGroupPath p) {
  switch (p) {
    case SortGroupPath::kAuto: return "auto";
    case SortGroupPath::kCountingScatter: return "counting_scatter";
    case SortGroupPath::kComparisonSort: return "comparison_sort";
  }
  return "?";
}

/// Byte-size helpers.
inline constexpr std::size_t operator""_KiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 10;
}
inline constexpr std::size_t operator""_MiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 20;
}
inline constexpr std::size_t operator""_GiB(unsigned long long v) {
  return static_cast<std::size_t>(v) << 30;
}

}  // namespace mlvc
