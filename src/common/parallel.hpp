// OpenMP-backed parallel loop helpers.
//
// The paper parallelizes vertex processing with OpenMP (§VI). These wrappers
// keep the engines readable and compile cleanly to serial loops when OpenMP
// is unavailable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <span>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mlvc {

inline unsigned hardware_threads() {
#ifdef _OPENMP
  return static_cast<unsigned>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// Index of the calling thread within the current parallel_for team:
/// 0 .. hardware_threads() - 1, and 0 outside any parallel region. Used to
/// index per-thread state (e.g. multi-log staging) without thread_local.
inline unsigned thread_index() {
#ifdef _OPENMP
  return static_cast<unsigned>(omp_get_thread_num());
#else
  return 0;
#endif
}

/// Parallel for over [begin, end) with dynamic scheduling. Body must be
/// thread-safe. Chunk size is tuned for skewed per-iteration cost (power-law
/// vertex degrees make static partitioning badly unbalanced).
///
/// Exception-safe: an exception escaping an OpenMP parallel region is
/// undefined behaviour (in practice std::terminate), so the first exception
/// any iteration throws is captured and rethrown after the loop joins.
template <typename Index, typename Body>
void parallel_for(Index begin, Index end, Body&& body) {
#ifdef _OPENMP
  std::exception_ptr first_error;
#pragma omp parallel for schedule(dynamic, 256) shared(first_error)
  for (long long i = static_cast<long long>(begin);
       i < static_cast<long long>(end); ++i) {
    try {
      body(static_cast<Index>(i));
    } catch (...) {
#pragma omp critical(mlvc_parallel_for_error)
      {
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
#else
  for (Index i = begin; i < end; ++i) body(i);
#endif
}

/// Split [0, n) into at most `max_chunks` contiguous chunks of roughly equal
/// size, each (except possibly the last) at least `min_chunk` items. Returns
/// the chunk boundaries: first entry 0, last entry n; n == 0 yields {0}.
/// The split is a pure function of (n, min_chunk, max_chunks), so results
/// computed per chunk are deterministic under any scheduling.
inline std::vector<std::size_t> chunk_bounds(std::size_t n,
                                             std::size_t min_chunk,
                                             std::size_t max_chunks) {
  const std::size_t by_min =
      min_chunk > 0 ? (n + min_chunk - 1) / min_chunk : n;
  const std::size_t n_chunks =
      std::max<std::size_t>(1, std::min(by_min, std::max<std::size_t>(
                                                    1, max_chunks)));
  const std::size_t chunk = (n + n_chunks - 1) / n_chunks;
  std::vector<std::size_t> bounds;
  bounds.reserve(n_chunks + 1);
  for (std::size_t off = 0; off < n; off += chunk) bounds.push_back(off);
  bounds.push_back(n);
  return bounds;
}

/// In-place exclusive prefix sum over `values`; returns the grand total.
/// Blocked two-pass scan: per-chunk totals in parallel, a serial scan over
/// the few chunk totals, then a parallel fix-up pass. The counting-scatter
/// grouping path uses this to turn a destination histogram into final group
/// offsets.
template <typename T>
T parallel_exclusive_scan(std::span<T> values) {
  const auto bounds =
      chunk_bounds(values.size(), std::size_t{1} << 15, hardware_threads());
  const std::size_t n_chunks = bounds.size() - 1;
  if (values.empty()) return T{};
  std::vector<T> sums(n_chunks, T{});
  parallel_for(std::size_t{0}, n_chunks, [&](std::size_t c) {
    T s{};
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) s += values[i];
    sums[c] = s;
  });
  T total{};
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const T s = sums[c];
    sums[c] = total;
    total += s;
  }
  parallel_for(std::size_t{0}, n_chunks, [&](std::size_t c) {
    T running = sums[c];
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      const T v = values[i];
      values[i] = running;
      running += v;
    }
  });
  return total;
}

/// Parallel sort. gcc's std::sort is serial; for the log sort (the hot path
/// of the sort-and-group unit) we split into per-thread chunks and merge.
template <typename It, typename Cmp>
void parallel_sort(It begin, It end, Cmp cmp) {
#ifdef _OPENMP
  const std::size_t n = static_cast<std::size_t>(end - begin);
  const unsigned t = hardware_threads();
  if (t <= 1 || n < 1u << 14) {
    std::sort(begin, end, cmp);
    return;
  }
  const std::vector<std::size_t> bounds =
      chunk_bounds(n, std::size_t{1} << 14, t);
#pragma omp parallel for schedule(static)
  for (long long c = 0; c < static_cast<long long>(bounds.size()) - 1; ++c) {
    std::sort(begin + bounds[c], begin + bounds[c + 1], cmp);
  }
  // Binary merge tree. The merges at one width touch disjoint ranges, so
  // each level runs in parallel; only the log2(chunks) levels are serial.
  const std::size_t n_lists = bounds.size() - 1;
  for (std::size_t width = 1; width < n_lists; width *= 2) {
    const long long n_merges =
        static_cast<long long>((n_lists - width + 2 * width - 1) / (2 * width));
#pragma omp parallel for schedule(dynamic, 1)
    for (long long m = 0; m < n_merges; ++m) {
      const std::size_t i = static_cast<std::size_t>(m) * 2 * width;
      const std::size_t mid = bounds[i + width];
      const std::size_t hi = bounds[std::min(i + 2 * width, n_lists)];
      std::inplace_merge(begin + bounds[i], begin + mid, begin + hi, cmp);
    }
  }
#else
  std::sort(begin, end, cmp);
#endif
}

template <typename It>
void parallel_sort(It begin, It end) {
  parallel_sort(begin, end, std::less<>{});
}

}  // namespace mlvc
