// OpenMP-backed parallel loop helpers.
//
// The paper parallelizes vertex processing with OpenMP (§VI). These wrappers
// keep the engines readable and compile cleanly to serial loops when OpenMP
// is unavailable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

namespace mlvc {

inline unsigned hardware_threads() {
#ifdef _OPENMP
  return static_cast<unsigned>(omp_get_max_threads());
#else
  return 1;
#endif
}

/// Parallel for over [begin, end) with dynamic scheduling. Body must be
/// thread-safe. Chunk size is tuned for skewed per-iteration cost (power-law
/// vertex degrees make static partitioning badly unbalanced).
///
/// Exception-safe: an exception escaping an OpenMP parallel region is
/// undefined behaviour (in practice std::terminate), so the first exception
/// any iteration throws is captured and rethrown after the loop joins.
template <typename Index, typename Body>
void parallel_for(Index begin, Index end, Body&& body) {
#ifdef _OPENMP
  std::exception_ptr first_error;
#pragma omp parallel for schedule(dynamic, 256) shared(first_error)
  for (long long i = static_cast<long long>(begin);
       i < static_cast<long long>(end); ++i) {
    try {
      body(static_cast<Index>(i));
    } catch (...) {
#pragma omp critical(mlvc_parallel_for_error)
      {
        if (!first_error) first_error = std::current_exception();
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
#else
  for (Index i = begin; i < end; ++i) body(i);
#endif
}

/// Parallel sort. gcc's std::sort is serial; for the log sort (the hot path
/// of the sort-and-group unit) we split into per-thread chunks and merge.
template <typename It, typename Cmp>
void parallel_sort(It begin, It end, Cmp cmp) {
#ifdef _OPENMP
  const std::size_t n = static_cast<std::size_t>(end - begin);
  const unsigned t = hardware_threads();
  if (t <= 1 || n < 1u << 14) {
    std::sort(begin, end, cmp);
    return;
  }
  const std::size_t chunk = (n + t - 1) / t;
  std::vector<std::size_t> bounds;
  for (std::size_t off = 0; off < n; off += chunk) {
    bounds.push_back(off);
  }
  bounds.push_back(n);
#pragma omp parallel for schedule(static)
  for (long long c = 0; c < static_cast<long long>(bounds.size()) - 1; ++c) {
    std::sort(begin + bounds[c], begin + bounds[c + 1], cmp);
  }
  // Binary merge tree.
  for (std::size_t width = 1; width + 1 < bounds.size(); width *= 2) {
    for (std::size_t i = 0; i + width < bounds.size() - 1; i += 2 * width) {
      const std::size_t mid = bounds[i + width];
      const std::size_t hi = bounds[std::min(i + 2 * width, bounds.size() - 1)];
      std::inplace_merge(begin + bounds[i], begin + mid, begin + hi, cmp);
    }
  }
#else
  std::sort(begin, end, cmp);
#endif
}

template <typename It>
void parallel_sort(It begin, It end) {
  parallel_sort(begin, end, std::less<>{});
}

}  // namespace mlvc
