// A small fixed-size thread pool.
//
// Used by ssd::AsyncIo to emulate the paper's asynchronous kernel I/O (§VI):
// multiple outstanding page reads are issued to the storage backend from
// dedicated I/O threads while the compute threads keep processing vertices.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mlvc {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result. Exceptions thrown by
  /// the task are captured in the future.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  unsigned size() const noexcept { return static_cast<unsigned>(threads_.size()); }

  /// Block until every task submitted so far has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> threads_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  unsigned active_ = 0;
  bool stop_ = false;
};

}  // namespace mlvc
