// Error handling utilities.
//
// Policy (see DESIGN.md §6): unrecoverable environment failures (I/O errors,
// budget misconfiguration) throw exceptions derived from mlvc::Error;
// programming errors are caught by MLVC_CHECK, which is active in all build
// types — an out-of-core engine that silently corrupts a log is worse than
// one that aborts.
#pragma once

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mlvc {

/// Base class for all MultiLogVC exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a storage backend operation fails (open/read/write/sync).
class IoError : public Error {
 public:
  IoError(std::string_view op, std::string_view path, int err)
      : Error(format(op, path, err)), errno_value_(err) {}

  int errno_value() const noexcept { return errno_value_; }

 private:
  static std::string format(std::string_view op, std::string_view path,
                            int err) {
    std::ostringstream os;
    os << "I/O error: " << op << " on '" << path << "': " << std::strerror(err)
       << " (errno " << err << ")";
    return os.str();
  }
  int errno_value_;
};

/// Raised when a configured memory budget cannot accommodate a request
/// (e.g. a single vertex's worst-case updates exceed the sort budget).
class BudgetError : public Error {
 public:
  explicit BudgetError(const std::string& what) : Error(what) {}
};

/// Raised on malformed input (bad edge list file, invalid options).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "MLVC_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace mlvc

/// Always-on invariant check. Throws mlvc::Error on failure so tests can
/// assert on violations and tools get a stack-unwound, message-bearing exit.
#define MLVC_CHECK(expr)                                                \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::mlvc::detail::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                   \
  } while (0)

#define MLVC_CHECK_MSG(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream mlvc_os_;                                      \
      mlvc_os_ << msg;                                                  \
      ::mlvc::detail::check_failed(#expr, __FILE__, __LINE__,           \
                                   mlvc_os_.str());                    \
    }                                                                   \
  } while (0)
