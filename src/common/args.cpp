#include "common/args.hpp"

#include <algorithm>
#include <sstream>

namespace mlvc {

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      throw InvalidArgument("unexpected positional argument '" + arg +
                            "'\n" + usage());
    }
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const bool is_declared_flag =
          std::any_of(declared_.begin(), declared_.end(), [&](const auto& d) {
            return d.name == name && d.def == "false";
          });
      if (is_declared_flag) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        throw InvalidArgument("option --" + name + " needs a value\n" +
                              usage());
      }
    }
    const bool known =
        std::any_of(declared_.begin(), declared_.end(),
                    [&](const auto& d) { return d.name == name; });
    if (!known && name != "help") {
      throw InvalidArgument("unknown option --" + name + "\n" + usage());
    }
    values_[name] = value;
  }
  if (values_.count("help") != 0) {
    throw InvalidArgument(usage());
  }
  for (const auto& d : declared_) {
    if (d.def.empty() && values_.count(d.name) == 0) {
      throw InvalidArgument("missing required option --" + d.name + "\n" +
                            usage());
    }
  }
}

std::string ArgParser::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  MLVC_CHECK_MSG(it != values_.end(), "required option --" << name);
  return it->second;
}

std::string ArgParser::get_string(const std::string& name,
                                  const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

std::int64_t ArgParser::get_int(const std::string& name,
                                std::int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + " expects an integer, got '" +
                          it->second + "'");
  }
}

std::uint64_t ArgParser::get_bytes(const std::string& name,
                                   std::uint64_t def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : parse_bytes(it->second);
}

double ArgParser::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + " expects a number, got '" +
                          it->second + "'");
  }
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto it = values_.find(name);
  return it != values_.end() && it->second != "false" && it->second != "0";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& d : declared_) {
    os << "  --" << d.name;
    if (d.def.empty()) {
      os << " <required>";
    } else if (d.def != "false") {
      os << " (default: " << d.def << ")";
    }
    os << "\n      " << d.help << "\n";
  }
  return os.str();
}

std::uint64_t parse_bytes(const std::string& text) {
  if (text.empty()) throw InvalidArgument("empty byte size");
  std::size_t idx = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &idx);
  } catch (const std::exception&) {
    throw InvalidArgument("bad byte size '" + text + "'");
  }
  if (idx == text.size()) return value;
  const char suffix = static_cast<char>(std::toupper(text[idx]));
  switch (suffix) {
    case 'K': return value << 10;
    case 'M': return value << 20;
    case 'G': return value << 30;
    default:
      throw InvalidArgument("bad byte-size suffix in '" + text +
                            "' (use K/M/G)");
  }
}

}  // namespace mlvc
