// Wall-clock timing helpers used by the per-superstep statistics (RunStats)
// and the bench harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace mlvc {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t elapsed_nanos() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time into a double on scope exit. Lets the engine
/// attribute wall time to phases (load, sort, compute, spill) without
/// littering the control flow with timer bookkeeping.
class ScopedAccumulator {
 public:
  explicit ScopedAccumulator(double& sink) noexcept : sink_(sink) {}
  ~ScopedAccumulator() { sink_ += timer_.elapsed_seconds(); }

  ScopedAccumulator(const ScopedAccumulator&) = delete;
  ScopedAccumulator& operator=(const ScopedAccumulator&) = delete;

 private:
  double& sink_;
  WallTimer timer_;
};

}  // namespace mlvc
