#include "grafboost/external_sorter.hpp"

#include <algorithm>
#include <cstring>
#include <queue>

#include "common/error.hpp"

namespace mlvc::grafboost {

namespace {

/// Streaming reader over one sorted run with a bounded buffer.
class RunReader {
 public:
  RunReader(const ssd::Blob& blob, std::size_t record_size,
            std::size_t buffer_records)
      : blob_(blob),
        record_size_(record_size),
        total_records_(blob.size() / record_size),
        buffer_records_(std::max<std::size_t>(1, buffer_records)) {
    refill();
  }

  bool exhausted() const {
    return pos_ >= buffered_ && next_record_ >= total_records_;
  }
  const std::byte* peek() const { return buffer_.data() + pos_ * record_size_; }
  void advance() {
    ++pos_;
    if (pos_ >= buffered_ && next_record_ < total_records_) refill();
  }

 private:
  void refill() {
    buffered_ = static_cast<std::size_t>(std::min<std::uint64_t>(
        buffer_records_, total_records_ - next_record_));
    buffer_.resize(buffered_ * record_size_);
    blob_.read(next_record_ * record_size_, buffer_.data(), buffer_.size());
    next_record_ += buffered_;
    pos_ = 0;
  }

  const ssd::Blob& blob_;
  std::size_t record_size_;
  std::uint64_t total_records_;
  std::size_t buffer_records_;
  std::vector<std::byte> buffer_;
  std::uint64_t next_record_ = 0;
  std::size_t buffered_ = 0;
  std::size_t pos_ = 0;
};

std::uint32_t key_at(const std::byte* rec, std::size_t key_offset) {
  std::uint32_t k;
  std::memcpy(&k, rec + key_offset, 4);
  return k;
}

/// K-way merge over run readers with optional combine of equal keys.
class MergeStream final : public ExternalSorter::Stream {
 public:
  MergeStream(std::vector<std::unique_ptr<RunReader>> readers,
              std::size_t record_size, std::size_t key_offset,
              ExternalSorter::CombineFn combine)
      : readers_(std::move(readers)),
        record_size_(record_size),
        key_offset_(key_offset),
        combine_(std::move(combine)),
        scratch_(record_size) {
    for (std::size_t r = 0; r < readers_.size(); ++r) {
      if (!readers_[r]->exhausted()) {
        heap_.push({key_at(readers_[r]->peek(), key_offset_), r});
      }
    }
  }

  bool peek_key(std::uint32_t& key) override {
    if (!pending_valid_ && !fill_pending()) return false;
    key = key_at(scratch_.data(), key_offset_);
    return true;
  }

  bool next(void* out) override {
    if (!pending_valid_ && !fill_pending()) return false;
    std::memcpy(out, scratch_.data(), record_size_);
    pending_valid_ = false;
    return true;
  }

 private:
  bool pop_min(std::byte* out) {
    if (heap_.empty()) return false;
    const auto [key, r] = heap_.top();
    heap_.pop();
    std::memcpy(out, readers_[r]->peek(), record_size_);
    readers_[r]->advance();
    if (!readers_[r]->exhausted()) {
      heap_.push({key_at(readers_[r]->peek(), key_offset_), r});
    }
    return true;
  }

  bool fill_pending() {
    if (!pop_min(scratch_.data())) return false;
    if (combine_) {
      // Fold every following record with the same key into the pending one.
      const std::uint32_t key = key_at(scratch_.data(), key_offset_);
      while (!heap_.empty() && heap_.top().first == key) {
        std::vector<std::byte> other(record_size_);
        pop_min(other.data());
        combine_(scratch_.data(), other.data());
      }
    }
    pending_valid_ = true;
    return true;
  }

  using HeapItem = std::pair<std::uint32_t, std::size_t>;  // (key, reader)
  struct Greater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      return a.first > b.first;
    }
  };

  std::vector<std::unique_ptr<RunReader>> readers_;
  std::size_t record_size_;
  std::size_t key_offset_;
  ExternalSorter::CombineFn combine_;
  std::priority_queue<HeapItem, std::vector<HeapItem>, Greater> heap_;
  std::vector<std::byte> scratch_;
  bool pending_valid_ = false;
};

}  // namespace

ExternalSorter::ExternalSorter(ssd::Storage& storage, std::string prefix,
                               Config config)
    : storage_(storage), prefix_(std::move(prefix)), config_(std::move(config)) {
  MLVC_CHECK_MSG(config_.record_size >= 4 &&
                     config_.key_offset + 4 <= config_.record_size,
                 "invalid record geometry");
  MLVC_CHECK_MSG(config_.fan_in >= 2, "fan_in must be at least 2");
  buffer_capacity_records_ = std::max<std::size_t>(
      16, config_.memory_budget_bytes / config_.record_size);
  buffer_.reserve(buffer_capacity_records_ * config_.record_size);
}

ExternalSorter::~ExternalSorter() {
  for (ssd::Blob* run : runs_) storage_.remove_blob(run->name());
}

std::uint32_t ExternalSorter::key_of(const std::byte* rec) const {
  return key_at(rec, config_.key_offset);
}

void ExternalSorter::add(const void* record) {
  MLVC_CHECK_MSG(!finished_, "sorter already finished");
  const std::byte* src = static_cast<const std::byte*>(record);
  buffer_.insert(buffer_.end(), src, src + config_.record_size);
  ++added_;
  if (buffer_.size() >= buffer_capacity_records_ * config_.record_size) {
    spill_run();
  }
}

void ExternalSorter::sort_and_combine(std::vector<std::byte>& buf) const {
  const std::size_t rs = config_.record_size;
  const std::size_t n = buf.size() / rs;
  // Sort an index array, then apply the permutation — cheaper than moving
  // whole records during comparison sorting.
  std::vector<std::uint32_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return key_of(buf.data() + a * rs) <
                            key_of(buf.data() + b * rs);
                   });
  std::vector<std::byte> sorted(buf.size());
  for (std::size_t i = 0; i < n; ++i) {
    std::memcpy(sorted.data() + i * rs, buf.data() + order[i] * rs, rs);
  }
  if (config_.combine && n > 0) {
    std::size_t out = 0;
    for (std::size_t i = 1; i < n; ++i) {
      std::byte* acc = sorted.data() + out * rs;
      const std::byte* cur = sorted.data() + i * rs;
      if (key_of(acc) == key_of(cur)) {
        config_.combine(acc, cur);
      } else {
        ++out;
        std::memmove(sorted.data() + out * rs, cur, rs);
      }
    }
    sorted.resize((out + 1) * rs);
  }
  buf = std::move(sorted);
}

void ExternalSorter::spill_run() {
  if (buffer_.empty()) return;
  sort_and_combine(buffer_);
  ssd::Blob& run = storage_.create_blob(
      prefix_ + "/gbrun_" + std::to_string(next_run_id_++),
      ssd::IoCategory::kSortRun);
  run.append(buffer_.data(), buffer_.size());
  runs_.push_back(&run);
  buffer_.clear();
}

std::unique_ptr<ExternalSorter::Stream> ExternalSorter::finish() {
  MLVC_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;
  spill_run();

  // Extra merge passes while too many runs for one pass: this is the
  // multi-pass external sort whose I/O the paper attributes GraFBoost's
  // large-log slowdown to.
  while (runs_.size() > config_.fan_in) {
    std::vector<ssd::Blob*> merged;
    for (std::size_t base = 0; base < runs_.size(); base += config_.fan_in) {
      const std::size_t count =
          std::min(config_.fan_in, runs_.size() - base);
      std::vector<std::unique_ptr<RunReader>> readers;
      const std::size_t per_run = std::max<std::size_t>(
          1, config_.memory_budget_bytes /
                 (config_.record_size * (count + 1)));
      for (std::size_t r = 0; r < count; ++r) {
        readers.push_back(std::make_unique<RunReader>(
            *runs_[base + r], config_.record_size, per_run));
      }
      MergeStream stream(std::move(readers), config_.record_size,
                         config_.key_offset, config_.combine);
      ssd::Blob& out = storage_.create_blob(
          prefix_ + "/gbrun_" + std::to_string(next_run_id_++),
          ssd::IoCategory::kSortRun);
      std::vector<std::byte> chunk;
      chunk.reserve(64 * 1024);
      std::vector<std::byte> rec(config_.record_size);
      while (stream.next(rec.data())) {
        chunk.insert(chunk.end(), rec.begin(), rec.end());
        if (chunk.size() >= 64 * 1024) {
          out.append(chunk.data(), chunk.size());
          chunk.clear();
        }
      }
      out.append(chunk.data(), chunk.size());
      merged.push_back(&out);
    }
    for (ssd::Blob* run : runs_) storage_.remove_blob(run->name());
    runs_ = std::move(merged);
  }

  std::vector<std::unique_ptr<RunReader>> readers;
  const std::size_t per_run = std::max<std::size_t>(
      1, config_.memory_budget_bytes /
             (config_.record_size * (runs_.size() + 1)));
  for (ssd::Blob* run : runs_) {
    readers.push_back(
        std::make_unique<RunReader>(*run, config_.record_size, per_run));
  }
  return std::make_unique<MergeStream>(std::move(readers),
                                       config_.record_size,
                                       config_.key_offset, config_.combine);
}

}  // namespace mlvc::grafboost
