// The GraFBoost baseline engine (Jun et al., ISCA'18; §VI of the paper).
//
// Single-log vertex-centric execution:
//  * all SendUpdate()s of a superstep go into ONE log, maintained as sorted
//    runs by an ExternalSorter (combine applied when the app allows it —
//    GraFBoost's requirement for its sort-reduce to stay cheap);
//  * at the next superstep the runs are k-way merged (multi-pass when the
//    log outgrows the merge fan-in — the cost that grows with log size);
//  * the engine streams the ENTIRE graph sequentially each superstep: per
//    the paper, "GraFBoost currently does not support loading only active
//    graph data". Inactive vertices cost no compute but their adjacency
//    pages are read anyway.
//
// The optional `use_combine = false` configuration is the paper's "adapted
// GraFBoost" for algorithms with non-mergeable updates (graph coloring):
// the single log then preserves every message and the external sort pays
// for all of them.
#pragma once

#include <memory>
#include <mutex>

#include "common/bitset.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/message_range.hpp"
#include "core/stats.hpp"
#include "core/vertex_program.hpp"
#include "core/vertex_value_store.hpp"
#include "graph/stored_csr.hpp"
#include "grafboost/external_sorter.hpp"
#include "multilog/record.hpp"

namespace mlvc::grafboost {

struct GraFBoostOptions {
  std::size_t memory_budget_bytes = 64_MiB;
  Superstep max_supersteps = 15;
  std::uint64_t seed = 1;
  bool values_on_storage = true;
  /// Apply the app's combine operator in the sort-reduce (GraFBoost's
  /// native mode). False = the paper's "adapted" all-messages mode.
  bool use_combine = true;
  /// Merge fan-in; smaller values force more merge passes for a given log.
  std::size_t fan_in = 16;
};

template <core::VertexApp App>
class GraFBoostEngine {
 public:
  using Value = typename App::Value;
  using Message = typename App::Message;
  using Rec = multilog::Record<Message>;

  GraFBoostEngine(graph::StoredCsrGraph& graph, App app,
                  GraFBoostOptions options)
      : graph_(graph),
        app_(std::move(app)),
        options_(options),
        values_(graph.storage(), "grafboost/values", graph.num_vertices(),
                [this](VertexId v) { return app_.initial_value(v); },
                options.values_on_storage),
        sticky_active_(graph.num_vertices()) {
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (app_.initially_active(v)) sticky_active_.set(v);
    }
    stats_.engine = options_.use_combine ? "GraFBoost" : "GraFBoost-adapted";
    stats_.app = app_.name();
    in_sorter_ = make_sorter(0);
    in_stream_ = in_sorter_->finish();  // empty input for superstep 0
    out_sorter_ = make_sorter(1);
  }

  template <typename StepFn>
  core::RunStats run_with_callback(StepFn&& on_superstep) {
    std::uint64_t pending_messages = 0;
    for (Superstep s = 0; s < options_.max_supersteps; ++s) {
      const bool any_input =
          (s == 0 ? sticky_active_.count() > 0
                  : pending_messages > 0 || sticky_active_.count() > 0);
      if (!any_input) break;
      core::SuperstepStats step = execute_superstep(s);
      pending_messages = step.messages_produced;
      const bool keep_going = on_superstep(step);
      stats_.supersteps.push_back(std::move(step));
      if (!keep_going) break;
    }
    return stats_;
  }

  core::RunStats run() {
    return run_with_callback([](const core::SuperstepStats&) { return true; });
  }

  std::vector<Value> values() const { return values_.all(); }
  const core::RunStats& stats() const { return stats_; }

  // ---- context -------------------------------------------------------------
  class Context {
   public:
    Context(GraFBoostEngine& engine, VertexId v, Superstep s,
            std::span<const VertexId> adjacency,
            std::span<const float> weights, Value value)
        : engine_(engine),
          v_(v),
          superstep_(s),
          adjacency_(adjacency),
          weights_(weights),
          value_(value) {}

    VertexId id() const { return v_; }
    Superstep superstep() const { return superstep_; }
    VertexId num_vertices() const { return engine_.graph_.num_vertices(); }

    const Value& value() const { return value_; }
    void set_value(const Value& v) { value_ = v; }

    std::size_t out_degree() const { return adjacency_.size(); }
    VertexId out_edge(std::size_t i) const { return adjacency_[i]; }
    float out_weight(std::size_t i) const {
      return weights_.empty() ? 1.0f : weights_[i];
    }

    void send(VertexId dst, const Message& m) {
      Rec rec{dst, m};
      std::lock_guard<std::mutex> lock(engine_.sorter_mutex_);
      engine_.out_sorter_->add(&rec);
    }
    void send_to_all_neighbors(const Message& m) {
      for (VertexId dst : adjacency_) send(dst, m);
    }

    void deactivate() { deactivated_ = true; }

    SplitMix64 rng() const {
      return stream_for(engine_.options_.seed, v_, superstep_);
    }

    bool deactivated() const { return deactivated_; }
    const Value& current_value() const { return value_; }

   private:
    GraFBoostEngine& engine_;
    VertexId v_;
    Superstep superstep_;
    std::span<const VertexId> adjacency_;
    std::span<const float> weights_;
    Value value_;
    bool deactivated_ = false;
  };

 private:
  friend class Context;

  std::unique_ptr<ExternalSorter> make_sorter(Superstep s) {
    ExternalSorter::Config cfg;
    cfg.record_size = sizeof(Rec);
    cfg.key_offset = offsetof(Rec, dst);
    // Half the budget buffers the outgoing log; the streaming graph reads
    // use the rest.
    cfg.memory_budget_bytes = options_.memory_budget_bytes / 2;
    cfg.fan_in = options_.fan_in;
    if constexpr (App::kHasCombine) {
      if (options_.use_combine) {
        cfg.combine = [this](void* acc, const void* other) {
          Rec* a = static_cast<Rec*>(acc);
          const Rec* b = static_cast<const Rec*>(other);
          a->payload = app_.combine(a->payload, b->payload);
        };
      }
    }
    return std::make_unique<ExternalSorter>(
        graph_.storage(), "grafboost/s" + std::to_string(s), cfg);
  }

  core::SuperstepStats execute_superstep(Superstep s) {
    core::SuperstepStats step;
    step.superstep = s;
    auto& storage = graph_.storage();
    const auto io_before = storage.stats().snapshot();
    const auto dev_before = storage.device().snapshot();
    WallTimer wall;

    std::uint64_t active_count = 0;
    std::uint64_t consumed = 0;
    const std::uint64_t produced_before = 0;
    std::uint64_t produced = produced_before;

    // Stream the whole graph, interval by interval, chunk by chunk.
    const auto& intervals = graph_.intervals();
    const std::size_t chunk_budget =
        std::max<std::size_t>(options_.memory_budget_bytes / 4, 64_KiB);

    Rec rec{};
    std::uint32_t next_key = 0;
    bool have_key = in_stream_->peek_key(next_key);

    std::vector<Rec> inbox;  // messages of the current vertex
    for (IntervalId i = 0; i < intervals.count(); ++i) {
      const VertexId vb = intervals.begin(i);
      const VertexId ve = intervals.end(i);
      // Row pointers for the whole interval, windowed.
      constexpr VertexId kRowWindow = 64 * 1024;
      for (VertexId wb = vb; wb < ve;) {
        const VertexId we = std::min<VertexId>(ve, wb + kRowWindow);
        std::vector<EdgeIndex> rowptr(we - wb + 1);
        graph_.read_local_row_ptrs(i, wb - vb, rowptr.size(), rowptr);

        // Sub-chunks of vertices whose adjacency fits the chunk budget.
        VertexId cb = wb;
        while (cb < we) {
          VertexId cend = cb;
          while (cend < we &&
                 (rowptr[cend + 1 - wb] - rowptr[cb - wb]) * sizeof(VertexId) <=
                     chunk_budget) {
            ++cend;
          }
          if (cend == cb) ++cend;  // a single oversized vertex: take it alone
          const EdgeIndex lo = rowptr[cb - wb];
          const EdgeIndex hi = rowptr[cend - wb];
          // GraFBoost reads the graph wholesale: every adjacency byte of the
          // chunk is fetched, active or not.
          std::vector<VertexId> adjacency(hi - lo);
          graph_.read_adjacency(i, lo, hi, adjacency);
          std::vector<float> weights;
          if constexpr (App::kNeedsWeights) {
            weights.resize(hi - lo);
            graph_.read_values(i, lo, hi, weights);
          }
          std::vector<Value> vals = values_.load_range(cb, cend);

          for (VertexId v = cb; v < cend; ++v) {
            // Collect v's messages from the merged stream.
            inbox.clear();
            while (have_key && next_key == v) {
              in_stream_->next(&rec);
              inbox.push_back(rec);
              ++consumed;
              have_key = in_stream_->peek_key(next_key);
            }
            const bool active = !inbox.empty() || sticky_active_.test(v);
            if (!active) continue;
            ++active_count;

            const EdgeIndex alo = rowptr[v - wb] - lo;
            const EdgeIndex ahi = rowptr[v + 1 - wb] - lo;
            Context ctx(
                *this, v, s,
                std::span<const VertexId>(adjacency.data() + alo, ahi - alo),
                App::kNeedsWeights
                    ? std::span<const float>(weights.data() + alo, ahi - alo)
                    : std::span<const float>{},
                vals[v - cb]);
            // The sorted single log groups by dst, so per-vertex messages
            // are contiguous Recs in `inbox`.
            const auto msgs = core::MessageRange<Message>::from_records(
                std::span<const Rec>(inbox.data(), inbox.size()));
            app_.process(ctx, msgs);
            vals[v - cb] = ctx.current_value();
            sticky_active_.set(v, !ctx.deactivated());
          }
          values_.store_range(cb, vals);
          cb = cend;
        }
        wb = we;
      }
    }
    produced = out_sorter_->records_added();

    // GraFBoost's sort-reduce runs as part of the superstep that generated
    // the log (generate -> sort-reduce -> apply): perform the run flush and
    // any multi-pass merges NOW so their I/O is charged to this superstep —
    // this is the cost that grows with log size and dominates for large
    // logs (§VIII, Figure 8).
    in_sorter_ = std::move(out_sorter_);
    in_stream_ = in_sorter_->finish();
    out_sorter_ = make_sorter(s + 2);

    step.active_vertices = active_count;
    step.messages_consumed = consumed;
    step.messages_produced = produced;
    step.edges_activated = produced;
    step.total_wall_seconds = wall.elapsed_seconds();
    step.compute_wall_seconds = step.total_wall_seconds;
    step.io = storage.stats().snapshot() - io_before;
    step.modeled_storage_seconds = storage.device().modeled_seconds_between(
        dev_before, storage.device().snapshot());
    return step;
  }

  graph::StoredCsrGraph& graph_;
  App app_;
  GraFBoostOptions options_;
  core::VertexValueStore<Value> values_;
  DynamicBitset sticky_active_;
  core::RunStats stats_;
  /// Input side: the sorter must outlive its merge stream (the stream reads
  /// the sorter's run blobs).
  std::unique_ptr<ExternalSorter> in_sorter_;
  std::unique_ptr<ExternalSorter::Stream> in_stream_;
  std::unique_ptr<ExternalSorter> out_sorter_;
  std::mutex sorter_mutex_;
};

}  // namespace mlvc::grafboost
