// External merge-sort over fixed-size records (the core of the GraFBoost
// baseline, Jun et al. ISCA'18).
//
// GraFBoost keeps ONE log of all <dst, payload> updates per superstep. That
// log can exceed host memory, so consuming it requires an external sort:
// sorted runs are spilled to storage while the log is written, then k-way
// merged when it is read. With an application combine operator, records
// with equal keys are merged both at run formation and during the merge —
// GraFBoost's trick for shortening the log. Without one (the "adapted"
// mode the paper evaluates for graph coloring) every record survives, and
// the sort cost grows with the full log — exactly the overhead MultiLogVC's
// per-interval logs eliminate.
//
// Byte-oriented (record size fixed at construction, 4-byte little-endian
// key at a fixed offset) so one compiled implementation serves any message
// type and is unit-testable on its own.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "ssd/storage.hpp"

namespace mlvc::grafboost {

class ExternalSorter {
 public:
  /// Merge `other` into `acc` (both record pointers); used when two records
  /// share a key.
  using CombineFn = std::function<void(void* acc, const void* other)>;

  struct Config {
    std::size_t record_size = 8;
    std::size_t key_offset = 0;  // u32 key (the destination vertex id)
    /// Host memory for the run buffer and, later, the merge buffers.
    std::size_t memory_budget_bytes = 8_MiB;
    /// Max runs merged at once; more runs trigger extra merge passes (each
    /// pass reads and rewrites the data — the cost the paper highlights).
    std::size_t fan_in = 64;
    CombineFn combine;  // empty = keep all records
  };

  ExternalSorter(ssd::Storage& storage, std::string prefix, Config config);
  ~ExternalSorter();

  /// Buffer one record; spills a sorted run when the buffer fills.
  void add(const void* record);

  std::uint64_t records_added() const noexcept { return added_; }
  std::size_t run_count() const noexcept { return runs_.size(); }

  /// Sorted stream over everything added. With a combine fn, each key
  /// appears exactly once.
  class Stream {
   public:
    virtual ~Stream() = default;
    /// Copy the next record into `out` (record_size bytes); false when
    /// exhausted.
    virtual bool next(void* out) = 0;
    /// Key of the next record without consuming it; false when exhausted.
    virtual bool peek_key(std::uint32_t& key) = 0;
  };

  /// Flush the tail, run extra merge passes if needed, and return the merge
  /// stream. The sorter is consumed (add() no longer allowed).
  std::unique_ptr<Stream> finish();

 private:
  void spill_run();
  std::uint32_t key_of(const std::byte* rec) const;
  void sort_and_combine(std::vector<std::byte>& buf) const;

  ssd::Storage& storage_;
  std::string prefix_;
  Config config_;
  std::size_t buffer_capacity_records_;
  std::vector<std::byte> buffer_;
  std::vector<ssd::Blob*> runs_;
  std::uint64_t added_ = 0;
  unsigned next_run_id_ = 0;
  bool finished_ = false;
};

}  // namespace mlvc::grafboost
