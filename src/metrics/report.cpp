#include "metrics/report.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "common/format.hpp"

namespace mlvc::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  MLVC_CHECK_MSG(cells.size() == headers_.size(),
                 "row width " << cells.size() << " != header width "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    std::cout << "| ";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::cout << std::left << std::setw(static_cast<int>(widths[c]))
                << cells[c] << " | ";
    }
    std::cout << "\n";
  };
  line(headers_);
  std::cout << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    std::cout << std::string(widths[c] + 2, '-') << "|";
  }
  std::cout << "\n";
  for (const auto& row : rows_) line(row);
  std::cout.flush();
}

void Table::write_csv(const std::string& dir, const std::string& name) const {
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::ofstream out(std::filesystem::path(dir) / (name + ".csv"));
  const auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string csv_dir_from_env() {
  const char* dir = std::getenv("MLVC_CSV_DIR");
  return dir == nullptr ? std::string{} : std::string{dir};
}

std::string summarize(const core::RunStats& stats) {
  std::ostringstream os;
  os << stats.engine << "/" << stats.app << ": "
     << stats.supersteps.size() << " supersteps, "
     << format_count(stats.total_pages_read()) << " pages read, "
     << format_count(stats.total_pages_written()) << " pages written, "
     << format_fixed(stats.modeled_storage_seconds(), 3) << "s storage + "
     << format_fixed(stats.compute_seconds(), 3) << "s compute = "
     << format_fixed(stats.modeled_total_seconds(), 3) << "s";
  if (!stats.schedule_policy.empty() && stats.schedule_policy != "bsp") {
    os << " [schedule=" << stats.schedule_policy << ", "
       << format_count(stats.intervals_scheduled()) << " chains, reorder "
       << stats.schedule_reorder_depth() << "]";
  }
  if (!stats.io_backend.empty()) {
    os << " [io=" << stats.io_backend;
    if (stats.io_backend == "uring") {
      os << ", " << format_count(stats.io_submit_batches()) << " batches, "
         << format_count(stats.sqe_coalesced_ops()) << " coalesced, depth "
         << stats.max_inflight_depth();
    }
    os << "]";
  }
  const std::uint64_t physical =
      stats.physical_bytes_read() + stats.physical_bytes_written();
  const std::uint64_t logical =
      stats.logical_bytes_read() + stats.logical_bytes_written();
  if (physical > 0 && logical > 0) {
    os << " [bytes: " << format_count(physical) << " on-disk / "
       << format_count(logical) << " logical, "
       << format_fixed(static_cast<double>(logical) /
                           static_cast<double>(physical),
                       2)
       << "x]";
  }
  return os.str();
}

double speedup(const core::RunStats& baseline,
               const core::RunStats& candidate) {
  const double c = candidate.modeled_total_seconds();
  return c <= 0 ? 0.0 : baseline.modeled_total_seconds() / c;
}

double page_ratio(const core::RunStats& baseline,
                  const core::RunStats& candidate) {
  const double c = static_cast<double>(candidate.total_pages());
  return c <= 0 ? 0.0 : static_cast<double>(baseline.total_pages()) / c;
}

void print_superstep_table(const core::RunStats& stats) {
  Table t({"superstep", "active", "msgs_in", "msgs_out", "pages_r", "pages_w",
           "storage_s", "compute_s"});
  for (const auto& s : stats.supersteps) {
    t.add_row({std::to_string(s.superstep), std::to_string(s.active_vertices),
               std::to_string(s.messages_consumed),
               std::to_string(s.messages_produced),
               std::to_string(s.io.total_pages_read()),
               std::to_string(s.io.total_pages_written()),
               format_fixed(s.modeled_storage_seconds, 4),
               format_fixed(s.compute_wall_seconds, 4)});
  }
  t.print();
}

}  // namespace mlvc::metrics
