#include "metrics/json_export.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace mlvc::metrics {

namespace {

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u" << std::hex << std::setw(4) << std::setfill('0')
              << static_cast<int>(c) << std::dec << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_io(std::ostream& out, const ssd::IoStatsSnapshot& io) {
  out << "{\"pages_read\":" << io.total_pages_read()
      << ",\"pages_written\":" << io.total_pages_written()
      << ",\"cache_hit_pages\":" << io.cache_hit_pages
      << ",\"cache_miss_pages\":" << io.cache_miss_pages
      << ",\"cache_evictions\":" << io.cache_evictions
      << ",\"cache_bypass_pages\":" << io.cache_bypass_pages
      << ",\"cache_bytes_high_water\":" << io.cache_bytes_high_water
      << ",\"io_retries\":" << io.io_retry_count
      << ",\"io_giveups\":" << io.io_giveup_count
      << ",\"submit_batches\":" << io.submit_batches
      << ",\"sqe_coalesced_ops\":" << io.sqe_coalesced_ops
      << ",\"max_inflight_depth\":" << io.max_inflight_depth
      << ",\"bus_bytes_crossed\":" << io.bus_bytes_crossed
      << ",\"device_combine_records_in\":" << io.device_combine_records_in
      << ",\"device_combine_records_out\":" << io.device_combine_records_out
      << ",\"by_category\":{";
  bool first = true;
  for (unsigned c = 0; c < ssd::kNumIoCategories; ++c) {
    const auto& cat = io.categories[c];
    if (cat.pages_read + cat.pages_written == 0) continue;
    if (!first) out << ',';
    first = false;
    out << '"' << ssd::to_string(static_cast<ssd::IoCategory>(c))
        << "\":{\"pages_read\":" << cat.pages_read
        << ",\"pages_written\":" << cat.pages_written
        << ",\"bytes_read\":" << cat.bytes_read
        << ",\"bytes_written\":" << cat.bytes_written
        << ",\"logical_bytes_read\":" << cat.logical_bytes_read
        << ",\"logical_bytes_written\":" << cat.logical_bytes_written << '}';
  }
  out << "}}";
}

}  // namespace

std::uint64_t fnv1a_append(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void write_json(const core::RunStats& stats, std::ostream& out) {
  out << std::setprecision(9);
  out << "{\"engine\":";
  write_escaped(out, stats.engine);
  out << ",\"app\":";
  write_escaped(out, stats.app);
  out << ",\"io_backend\":";
  write_escaped(out, stats.io_backend);
  out << ",\"schedule_policy\":";
  write_escaped(out, stats.schedule_policy);
  out << ",\"combine_placement\":";
  write_escaped(out, stats.combine_placement);
  out << ",\"num_devices\":" << stats.num_devices;
  out << ",\"direction\":";
  write_escaped(out, stats.direction);
  out << ",\"direction_fallback\":";
  write_escaped(out, stats.direction_fallback);
  if (stats.has_values_hash) {
    // Hex string: 64-bit values do not survive JSON number parsers.
    out << ",\"values_hash\":\"0x" << std::hex << stats.values_hash
        << std::dec << '"';
  }
  out << ",\"query\":{"
      << "\"id\":" << stats.query_id
      << ",\"cache_hit_pages\":" << stats.query_cache_hit_pages
      << ",\"cache_miss_pages\":" << stats.query_cache_miss_pages
      << ",\"cache_bypass_pages\":" << stats.query_cache_bypass_pages << '}';
  out << ",\"totals\":{"
      << "\"supersteps\":" << stats.supersteps.size()
      << ",\"pages_read\":" << stats.total_pages_read()
      << ",\"pages_written\":" << stats.total_pages_written()
      << ",\"physical_bytes_read\":" << stats.physical_bytes_read()
      << ",\"physical_bytes_written\":" << stats.physical_bytes_written()
      << ",\"logical_bytes_read\":" << stats.logical_bytes_read()
      << ",\"logical_bytes_written\":" << stats.logical_bytes_written()
      << ",\"messages\":" << stats.total_messages()
      << ",\"modeled_storage_seconds\":" << stats.modeled_storage_seconds()
      << ",\"compute_seconds\":" << stats.compute_seconds()
      << ",\"sort_group_seconds\":" << stats.sort_group_seconds()
      << ",\"groups_scatter\":" << stats.groups_scatter()
      << ",\"groups_comparison\":" << stats.groups_comparison()
      << ",\"scatter_flush_count\":" << stats.scatter_flush_count()
      << ",\"scatter_stall_seconds\":" << stats.scatter_stall_seconds()
      << ",\"io_wait_seconds\":" << stats.io_wait_seconds()
      << ",\"io_retries\":" << stats.io_retries()
      << ",\"io_giveups\":" << stats.io_giveups()
      << ",\"io_submit_batches\":" << stats.io_submit_batches()
      << ",\"sqe_coalesced_ops\":" << stats.sqe_coalesced_ops()
      << ",\"max_inflight_depth\":" << stats.max_inflight_depth()
      << ",\"torn_bytes_dropped\":" << stats.torn_bytes_dropped()
      << ",\"bytes_crossed_bus\":" << stats.bytes_crossed_bus()
      << ",\"device_combine_records_in\":"
      << stats.device_combine_records_in()
      << ",\"device_combine_records_out\":"
      << stats.device_combine_records_out()
      << ",\"intervals_pulled\":" << stats.intervals_pulled()
      << ",\"log_bytes_avoided\":" << stats.log_bytes_avoided()
      << ",\"effective_rounds\":" << stats.effective_rounds()
      << ",\"intervals_scheduled\":" << stats.intervals_scheduled()
      << ",\"schedule_reorder_depth\":" << stats.schedule_reorder_depth()
      << ",\"ready_latency_seconds\":" << stats.ready_latency_seconds()
      << ",\"total_wall_seconds\":" << stats.total_wall_seconds()
      << ",\"modeled_total_seconds\":" << stats.modeled_total_seconds()
      << ",\"offthread_sort_seconds\":" << stats.offthread_sort_seconds()
      << ",\"modeled_work_seconds\":" << stats.modeled_work_seconds()
      << ",\"build_seconds\":" << stats.build_seconds << '}'
      << ",\"supersteps\":[";
  for (std::size_t i = 0; i < stats.supersteps.size(); ++i) {
    const auto& s = stats.supersteps[i];
    if (i) out << ',';
    out << "{\"superstep\":" << s.superstep
        << ",\"active_vertices\":" << s.active_vertices
        << ",\"messages_consumed\":" << s.messages_consumed
        << ",\"messages_produced\":" << s.messages_produced
        << ",\"edges_activated\":" << s.edges_activated
        << ",\"modeled_storage_seconds\":" << s.modeled_storage_seconds
        << ",\"compute_wall_seconds\":" << s.compute_wall_seconds
        << ",\"sort_group_seconds\":" << s.sort_group_seconds
        << ",\"groups_scatter\":" << s.groups_scatter
        << ",\"groups_comparison\":" << s.groups_comparison
        << ",\"scatter_flush_count\":" << s.scatter_flush_count
        << ",\"scatter_stall_seconds\":" << s.scatter_stall_seconds
        << ",\"io_wall_seconds\":" << s.io_wall_seconds
        << ",\"total_wall_seconds\":" << s.total_wall_seconds
        << ",\"torn_bytes_dropped\":" << s.torn_bytes_dropped
        << ",\"intervals_scheduled\":" << s.intervals_scheduled
        << ",\"schedule_reorder_depth\":" << s.schedule_reorder_depth
        << ",\"ready_latency_seconds\":" << s.ready_latency_seconds
        << ",\"intervals_pulled\":" << s.intervals_pulled
        << ",\"log_bytes_avoided\":" << s.log_bytes_avoided
        << ",\"pages_touched\":" << s.pages_touched
        << ",\"pages_inefficient\":" << s.pages_inefficient
        << ",\"pages_inefficient_predicted\":"
        << s.pages_inefficient_predicted
        << ",\"edge_log_hits\":" << s.edge_log_hits << ",\"io\":";
    write_io(out, s.io);
    out << '}';
  }
  out << "]}";
}

std::string to_json(const core::RunStats& stats) {
  std::ostringstream os;
  write_json(stats, os);
  return os.str();
}

}  // namespace mlvc::metrics
