// Text tables and run reports for the bench harnesses.
//
// Each bench prints the same rows/series the paper's figures show; these
// helpers keep the output uniform and also emit machine-readable CSV when
// MLVC_CSV_DIR is set in the environment.
#pragma once

#include <string>
#include <vector>

#include "core/stats.hpp"

namespace mlvc::metrics {

/// Simple fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render to stdout.
  void print() const;

  /// Append as CSV to `<dir>/<name>.csv` if dir is non-empty.
  void write_csv(const std::string& dir, const std::string& name) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Value of MLVC_CSV_DIR (empty if unset).
std::string csv_dir_from_env();

/// One-line summary of a run: supersteps, pages, modeled time.
std::string summarize(const core::RunStats& stats);

/// Speedup of `baseline` over `candidate` on the primary metric
/// (modeled total seconds): >1 means the candidate is faster.
double speedup(const core::RunStats& baseline, const core::RunStats& candidate);

/// Page-access ratio baseline/candidate (Figure 5b's metric).
double page_ratio(const core::RunStats& baseline,
                  const core::RunStats& candidate);

/// Print a per-superstep breakdown table for a run.
void print_superstep_table(const core::RunStats& stats);

}  // namespace mlvc::metrics
