// JSON export of run statistics — for dashboards, notebooks, and the
// plotting scripts downstream users inevitably write.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/stats.hpp"

namespace mlvc::metrics {

/// Serialize a run's statistics as a single JSON object:
/// { engine, app, totals{...}, supersteps: [ {...}, ... ] }.
void write_json(const core::RunStats& stats, std::ostream& out);
std::string to_json(const core::RunStats& stats);

/// Fold `n` raw bytes into a running FNV-1a state (seed with
/// `kFnv1aSeed`). The chunk-at-a-time shape is what the streamed value
/// accessor hands out, so verify/export paths hash without ever
/// materializing the O(V) values() vector.
inline constexpr std::uint64_t kFnv1aSeed = 1469598103934665603ull;
std::uint64_t fnv1a_append(std::uint64_t h, const void* data, std::size_t n);

/// FNV-1a over an engine's final vertex values, streamed in id-ascending
/// chunks via `Engine::for_each_value_chunk`. Store the result in
/// `RunStats::values_hash` (+ has_values_hash) to export it.
template <typename Engine>
std::uint64_t streamed_values_hash(const Engine& engine) {
  std::uint64_t h = kFnv1aSeed;
  engine.for_each_value_chunk([&](VertexId, auto chunk) {
    h = fnv1a_append(h, chunk.data(), chunk.size_bytes());
  });
  return h;
}

}  // namespace mlvc::metrics
