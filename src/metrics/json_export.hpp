// JSON export of run statistics — for dashboards, notebooks, and the
// plotting scripts downstream users inevitably write.
#pragma once

#include <iosfwd>
#include <string>

#include "core/stats.hpp"

namespace mlvc::metrics {

/// Serialize a run's statistics as a single JSON object:
/// { engine, app, totals{...}, supersteps: [ {...}, ... ] }.
void write_json(const core::RunStats& stats, std::ostream& out);
std::string to_json(const core::RunStats& stats);

}  // namespace mlvc::metrics
