// An X-Stream-style edge-centric baseline (Roy et al., SOSP'13; discussed
// in the paper's related work, §IX).
//
// Edge-centric scatter-gather over streaming partitions:
//  * vertices are split into P partitions whose *state* fits in memory;
//  * edges are stored grouped by source partition, in no particular order,
//    and are streamed SEQUENTIALLY in full every superstep;
//  * scatter: for each edge whose source wants to propagate, an update
//    <dst, payload> is appended to the destination partition's update file
//    (sequential writes);
//  * gather: each partition streams its update file and folds updates into
//    vertex state, then an apply pass finalizes every vertex.
//
// This engine exists to reproduce the paper's §IX claim: edge-centric
// streaming is excellent when most of the graph is active (all I/O is
// sequential) but "efficiency suffers when graph applications require
// random and sparse accesses to graph data such as BFS" — it streams every
// edge regardless of how few vertices are active.
//
// X-Stream's programming model is narrower than vertex-centric (no
// per-vertex view of the full inbox or adjacency), so it runs its own
// EdgeCentricApp programs (see xstream/apps.hpp) rather than the
// core::VertexApp set.
#pragma once

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"
#include "core/stats.hpp"
#include "graph/csr.hpp"
#include "graph/intervals.hpp"
#include "ssd/storage.hpp"

namespace mlvc::xstream {

/// Requirements for an edge-centric program.
template <typename A>
concept EdgeCentricApp = requires(const A app, typename A::State s,
                                  typename A::Update u, VertexId v,
                                  EdgeIndex degree, Superstep step) {
  requires std::is_trivially_copyable_v<typename A::State>;
  requires std::is_trivially_copyable_v<typename A::Update>;
  { app.init(v, degree) } -> std::convertible_to<typename A::State>;
  { app.should_scatter(s) } -> std::convertible_to<bool>;
  { app.scatter(s, v, v, 0.0f) } -> std::convertible_to<typename A::Update>;
  { app.gather(s, u) } -> std::same_as<void>;
  { app.apply(s, step) } -> std::convertible_to<bool>;
  { app.name() } -> std::convertible_to<const char*>;
};

struct XStreamOptions {
  std::size_t memory_budget_bytes = 64_MiB;
  Superstep max_supersteps = 15;
  bool with_weights = false;
};

template <EdgeCentricApp App>
class XStreamEngine {
 public:
  using State = typename App::State;
  using Update = typename App::Update;

  struct EdgeRecord {
    VertexId src;
    VertexId dst;
    float weight;
  };
  struct UpdateRecord {
    VertexId dst;
    Update payload;
  };

  XStreamEngine(ssd::Storage& storage, const graph::CsrGraph& csr, App app,
                XStreamOptions options)
      : storage_(storage), app_(std::move(app)), options_(options) {
    // Streaming partitions: vertex state of one partition fits in half the
    // budget (the other half buffers edge/update streams).
    const VertexId width = std::max<VertexId>(
        1, static_cast<VertexId>(options_.memory_budget_bytes / 2 /
                                 sizeof(State)));
    partitions_ = graph::VertexIntervals::uniform(csr.num_vertices(), width);
    const IntervalId p = partitions_.count();
    MLVC_CHECK_MSG(p > 0, "xstream needs at least one partition");

    // Edge files, grouped by source partition; order within a file is
    // irrelevant (edge-centric engines never sort edges — that is the
    // pitch).
    edge_blobs_.resize(p);
    update_blobs_.resize(p);
    for (IntervalId i = 0; i < p; ++i) {
      edge_blobs_[i] = &storage_.create_blob(
          "xstream/edges_" + std::to_string(i), ssd::IoCategory::kShard);
      update_blobs_[i] = &storage_.create_blob(
          "xstream/updates_" + std::to_string(i),
          ssd::IoCategory::kMessageLog);
    }
    {
      std::vector<std::vector<EdgeRecord>> buffers(p);
      constexpr std::size_t kFlush = 16 * 1024;
      for (VertexId v = 0; v < csr.num_vertices(); ++v) {
        const IntervalId part = partitions_.interval_of(v);
        const auto nbrs = csr.neighbors(v);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          buffers[part].push_back(
              {v, nbrs[k],
               options_.with_weights && csr.has_weights() ? csr.weights(v)[k]
                                                          : 1.0f});
          if (buffers[part].size() >= kFlush) {
            edge_blobs_[part]->append(buffers[part].data(),
                                      buffers[part].size() *
                                          sizeof(EdgeRecord));
            buffers[part].clear();
          }
        }
      }
      for (IntervalId i = 0; i < p; ++i) {
        edge_blobs_[i]->append(buffers[i].data(),
                               buffers[i].size() * sizeof(EdgeRecord));
      }
    }

    // Vertex state file.
    state_blob_ = &storage_.create_blob("xstream/state",
                                        ssd::IoCategory::kVertexValue);
    {
      std::vector<State> chunk;
      chunk.reserve(1u << 15);
      for (VertexId v = 0; v < csr.num_vertices(); ++v) {
        chunk.push_back(app_.init(v, csr.out_degree(v)));
        if (chunk.size() == chunk.capacity()) {
          state_blob_->append(chunk.data(), chunk.size() * sizeof(State));
          chunk.clear();
        }
      }
      state_blob_->append(chunk.data(), chunk.size() * sizeof(State));
    }
    stats_.engine = "X-Stream";
    stats_.app = app_.name();
  }

  core::RunStats run() {
    for (Superstep s = 0; s < options_.max_supersteps; ++s) {
      core::SuperstepStats step = execute_superstep(s);
      const bool progressed =
          step.messages_produced > 0 || step.active_vertices > 0;
      stats_.supersteps.push_back(std::move(step));
      if (!progressed) break;
    }
    return stats_;
  }

  std::vector<State> states() const {
    std::vector<State> all(partitions_.num_vertices());
    state_blob_->read(0, all.data(), all.size() * sizeof(State));
    return all;
  }

  const core::RunStats& stats() const { return stats_; }

 private:
  std::vector<State> load_states(IntervalId p) const {
    const VertexId vb = partitions_.begin(p);
    const VertexId ve = partitions_.end(p);
    std::vector<State> states(ve - vb);
    state_blob_->read(static_cast<std::uint64_t>(vb) * sizeof(State),
                      states.data(), states.size() * sizeof(State));
    return states;
  }
  void store_states(IntervalId p, const std::vector<State>& states) {
    state_blob_->write(
        static_cast<std::uint64_t>(partitions_.begin(p)) * sizeof(State),
        states.data(), states.size() * sizeof(State));
  }

  core::SuperstepStats execute_superstep(Superstep s) {
    core::SuperstepStats step;
    step.superstep = s;
    const auto io_before = storage_.stats().snapshot();
    const auto dev_before = storage_.device().snapshot();
    WallTimer wall;

    const IntervalId p = partitions_.count();
    const std::size_t stream_chunk =
        std::max<std::size_t>(options_.memory_budget_bytes / 4, 64_KiB);

    // ---- scatter phase ------------------------------------------------------
    std::uint64_t produced = 0;
    {
      std::vector<std::vector<UpdateRecord>> out(p);
      const std::size_t out_flush =
          std::max<std::size_t>(1, stream_chunk / sizeof(UpdateRecord) / p);
      const auto flush = [&](IntervalId part) {
        update_blobs_[part]->append(out[part].data(),
                                    out[part].size() * sizeof(UpdateRecord));
        out[part].clear();
      };
      for (IntervalId part = 0; part < p; ++part) {
        const std::vector<State> states = load_states(part);
        const VertexId vb = partitions_.begin(part);
        // Stream this partition's full edge file, chunk by chunk —
        // X-Stream's defining cost: every edge, every superstep.
        const std::uint64_t total = edge_blobs_[part]->size();
        std::vector<EdgeRecord> chunk;
        for (std::uint64_t off = 0; off < total;) {
          const std::size_t take = static_cast<std::size_t>(std::min<
              std::uint64_t>(stream_chunk - stream_chunk % sizeof(EdgeRecord),
                             total - off));
          chunk.resize(take / sizeof(EdgeRecord));
          edge_blobs_[part]->read(off, chunk.data(), take);
          off += take;
          for (const EdgeRecord& e : chunk) {
            const State& src_state = states[e.src - vb];
            if (!app_.should_scatter(src_state)) continue;
            const IntervalId dst_part = partitions_.interval_of(e.dst);
            out[dst_part].push_back(
                {e.dst, app_.scatter(src_state, e.src, e.dst, e.weight)});
            ++produced;
            if (out[dst_part].size() >= out_flush) flush(dst_part);
          }
        }
      }
      for (IntervalId part = 0; part < p; ++part) flush(part);
    }

    // ---- gather + apply phase ----------------------------------------------
    std::uint64_t active_next = 0;
    std::uint64_t consumed = 0;
    for (IntervalId part = 0; part < p; ++part) {
      std::vector<State> states = load_states(part);
      const VertexId vb = partitions_.begin(part);
      const std::uint64_t total = update_blobs_[part]->size();
      std::vector<UpdateRecord> chunk;
      for (std::uint64_t off = 0; off < total;) {
        const std::size_t take = static_cast<std::size_t>(std::min<
            std::uint64_t>(stream_chunk - stream_chunk % sizeof(UpdateRecord),
                           total - off));
        chunk.resize(take / sizeof(UpdateRecord));
        update_blobs_[part]->read(off, chunk.data(), take);
        off += take;
        for (const UpdateRecord& u : chunk) {
          app_.gather(states[u.dst - vb], u.payload);
          ++consumed;
        }
      }
      update_blobs_[part]->truncate(0);  // consumed
      for (State& state : states) {
        if (app_.apply(state, s)) ++active_next;
      }
      store_states(part, states);
    }

    step.active_vertices = active_next;
    step.messages_produced = produced;
    step.messages_consumed = consumed;
    step.edges_activated = produced;
    step.total_wall_seconds = wall.elapsed_seconds();
    step.compute_wall_seconds = step.total_wall_seconds;
    step.io = storage_.stats().snapshot() - io_before;
    step.modeled_storage_seconds = storage_.device().modeled_seconds_between(
        dev_before, storage_.device().snapshot());
    return step;
  }

  ssd::Storage& storage_;
  App app_;
  XStreamOptions options_;
  graph::VertexIntervals partitions_;
  std::vector<ssd::Blob*> edge_blobs_;
  std::vector<ssd::Blob*> update_blobs_;
  ssd::Blob* state_blob_ = nullptr;
  core::RunStats stats_;
};

}  // namespace mlvc::xstream
