// Edge-centric (scatter-gather) program versions of BFS, delta-PageRank,
// and WCC for the X-Stream baseline. Semantics match the vertex-centric
// apps in src/apps/ so results are directly comparable in tests and
// benches.
//
// Pattern: state carries the *committed* value plus an *incoming candidate*
// accumulator. gather() only folds into the candidate; apply() commits it
// and decides whether the vertex scatters next superstep. This keeps the
// "changed this superstep" signal exact without any engine-side bookkeeping.
#pragma once

#include <limits>

#include "common/types.hpp"

namespace mlvc::xstream {

struct XsBfs {
  struct State {
    std::uint32_t dist;
    std::uint32_t best;         // incoming candidate (gather accumulator)
    std::uint8_t scatter_next;  // improved last apply()
    std::uint8_t pad[3] = {0, 0, 0};
  };
  using Update = std::uint32_t;  // candidate distance

  static constexpr std::uint32_t kUnreached =
      std::numeric_limits<std::uint32_t>::max();

  VertexId source = 0;

  const char* name() const { return "xs_bfs"; }

  State init(VertexId v, EdgeIndex) const {
    const bool is_source = v == source;
    return {is_source ? 0u : kUnreached, kUnreached,
            static_cast<std::uint8_t>(is_source ? 1 : 0),
            {0, 0, 0}};
  }
  bool should_scatter(const State& s) const { return s.scatter_next != 0; }
  Update scatter(const State& s, VertexId, VertexId, float) const {
    return s.dist + 1;
  }
  void gather(State& s, const Update& u) const {
    if (u < s.best) s.best = u;
  }
  bool apply(State& s, Superstep) const {
    if (s.best < s.dist) {
      s.dist = s.best;
      s.scatter_next = 1;
    } else {
      s.scatter_next = 0;
    }
    return s.scatter_next != 0;
  }
};

struct XsWcc {
  struct State {
    VertexId label;
    VertexId best;
    std::uint8_t scatter_next;
    std::uint8_t pad[3] = {0, 0, 0};
  };
  using Update = VertexId;

  const char* name() const { return "xs_wcc"; }

  State init(VertexId v, EdgeIndex) const {
    return {v, kInvalidVertex, 1, {0, 0, 0}};  // everyone announces once
  }
  bool should_scatter(const State& s) const { return s.scatter_next != 0; }
  Update scatter(const State& s, VertexId, VertexId, float) const {
    return s.label;
  }
  void gather(State& s, const Update& u) const {
    if (u < s.best) s.best = u;
  }
  bool apply(State& s, Superstep) const {
    if (s.best < s.label) {
      s.label = s.best;
      s.scatter_next = 1;
    } else {
      s.scatter_next = 0;
    }
    return s.scatter_next != 0;
  }
};

/// Delta-PageRank matching apps::PageRank, shifted by one superstep: the
/// vertex-centric engine consumes round-r deltas at superstep r+1; X-Stream
/// applies them at the end of superstep r. Running X-Stream for S-1
/// supersteps therefore matches a vertex-centric run of S supersteps.
struct XsPageRank {
  struct State {
    float rank;
    float pending;  // delta to propagate this superstep
    float acc;      // incoming deltas (gather accumulator)
    std::uint32_t degree;
    std::uint8_t scatter_next;
    std::uint8_t pad[3] = {0, 0, 0};
  };
  using Update = float;

  float damping = 0.85f;
  float threshold = 0.4f;

  const char* name() const { return "xs_pagerank"; }

  State init(VertexId, EdgeIndex out_degree) const {
    State s{1.0f, 1.0f, 0.0f, static_cast<std::uint32_t>(out_degree), 0,
            {0, 0, 0}};
    s.scatter_next = (s.pending > threshold && s.degree > 0) ? 1 : 0;
    return s;
  }
  bool should_scatter(const State& s) const { return s.scatter_next != 0; }
  Update scatter(const State& s, VertexId, VertexId, float) const {
    return damping * s.pending / static_cast<float>(s.degree);
  }
  void gather(State& s, const Update& u) const { s.acc += u; }
  bool apply(State& s, Superstep) const {
    s.pending = s.acc;
    if (s.acc != 0.0f) s.rank += s.acc;
    s.acc = 0.0f;
    s.scatter_next = (s.pending > threshold && s.degree > 0) ? 1 : 0;
    return s.scatter_next != 0;
  }
};

}  // namespace mlvc::xstream
