// Asynchronous I/O front-end over Storage.
//
// The paper (§VI) uses asynchronous kernel I/O to keep many page reads from
// non-contiguous SSD locations in flight with minimal host resources. We
// emulate that with a small dedicated I/O thread pool: callers queue page
// reads and either wait on individual futures or drain the whole batch.
// The Blob calls the pool threads make dispatch through whatever backend
// the owning Storage selected (io_backend.hpp), so submit()'d stage work
// stays on these threads while the I/O underneath may ride io_uring.
#pragma once

#include <future>
#include <vector>

#include "common/thread_pool.hpp"
#include "ssd/storage.hpp"

namespace mlvc::ssd {

class AsyncIo {
 public:
  explicit AsyncIo(unsigned io_threads = 4) : pool_(io_threads) {}

  /// Queue a read of blob[offset, offset+len) into caller-owned memory.
  ///
  /// Ownership rule: AsyncIo never owns blobs or buffers. The lambda below
  /// runs detached on a pool thread, so both the pointed-to Blob and `buf`
  /// must stay alive until the returned future resolves (in practice:
  /// blobs live in their Storage, which outlives the AsyncIo; callers hold
  /// buffers across the future). Taking Blob* rather than Blob& keeps that
  /// contract visible at every call site and lets us reject null eagerly
  /// instead of capturing a dangling reference.
  std::future<void> read(const Blob* blob, std::uint64_t offset, void* buf,
                         std::size_t len) {
    MLVC_CHECK(blob != nullptr);
    return submit([blob, offset, buf, len] {
      blob->read(offset, buf, len);
    });
  }

  /// Same ownership rule as read(): `blob` and `buf` must outlive the
  /// returned future.
  std::future<void> write(Blob* blob, std::uint64_t offset, const void* buf,
                          std::size_t len) {
    MLVC_CHECK(blob != nullptr);
    return submit([blob, offset, buf, len] {
      blob->write(offset, buf, len);
    });
  }

  /// Queue an arbitrary task on the I/O threads. The engine's pipeline uses
  /// this to run whole stages (load + decode + sort) off the compute thread.
  ///
  /// The submitting thread's per-query IoStats sink (IoStats::ScopedSink) is
  /// captured here and re-installed around the task on the pool thread, so
  /// I/O issued on behalf of a query stays attributed to that query even
  /// when it runs on shared I/O threads.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    IoStats* sink = IoStats::current_sink();
    return pool_.submit([sink, fn = std::forward<Fn>(fn)]() mutable {
      IoStats::ScopedSink scope(sink);
      return fn();
    });
  }

  /// Block until all queued operations complete.
  void drain() { pool_.wait_idle(); }

  unsigned thread_count() const noexcept { return pool_.size(); }

 private:
  ThreadPool pool_;
};

/// Collects futures from a batch of async reads and rethrows the first
/// failure on wait(). Keeps engine code linear.
class IoBatch {
 public:
  IoBatch() = default;
  IoBatch(IoBatch&&) = default;
  IoBatch& operator=(IoBatch&&) = default;

  /// Drain-before-release: these futures come from packaged_task, whose
  /// future destructor does NOT block, so destroying a batch with ops still
  /// in flight would leave pool threads writing into buffers the owner is
  /// about to free (e.g. a cancelled interval chain unwinding past its
  /// staging buffers). Wait for every pending op; errors are swallowed —
  /// destruction means the data is being abandoned anyway. Callers that
  /// care about errors must call wait() themselves.
  ~IoBatch() {
    for (auto& f : futures_) {
      if (f.valid()) f.wait();
    }
  }

  void add(std::future<void> f) { futures_.push_back(std::move(f)); }

  void wait() {
    // Wait on *every* future before rethrowing: an op that is still running
    // may be writing into caller-owned buffers, which the caller is free to
    // destroy once wait() exits (even by exception). Abandoning futures on
    // the first failure would leave those writes racing the unwind.
    std::exception_ptr first_error;
    for (auto& f : futures_) {
      try {
        f.get();
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    futures_.clear();
    if (first_error) std::rethrow_exception(first_error);
  }

  std::size_t pending() const noexcept { return futures_.size(); }

 private:
  std::vector<std::future<void>> futures_;
};

}  // namespace mlvc::ssd
