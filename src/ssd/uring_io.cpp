#include "ssd/uring_io.hpp"

#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/error.hpp"
#include "ssd/fault_injector.hpp"

namespace mlvc::ssd {

namespace {

int sys_io_uring_setup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int sys_io_uring_enter(int fd, unsigned to_submit, unsigned min_complete,
                       unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// The kernel updates head/tail from its side of the shared mapping; all
// ring-index traffic goes through acquire/release pairs.
unsigned ring_load_acquire(const unsigned* p) {
  return std::atomic_ref<const unsigned>(*p).load(std::memory_order_acquire);
}

void ring_store_release(unsigned* p, unsigned v) {
  std::atomic_ref<unsigned>(*p).store(v, std::memory_order_release);
}

}  // namespace

// ---------------------------------------------------------------------------
// Ring: one mmap'd SQ/CQ pair. Leased to exactly one run_batch at a time.
// ---------------------------------------------------------------------------

struct UringIo::Ring {
  int fd = -1;
  unsigned sq_entries = 0;
  void* sq_ptr = nullptr;
  std::size_t sq_map_len = 0;
  void* cq_ptr = nullptr;  // == sq_ptr under IORING_FEAT_SINGLE_MMAP
  std::size_t cq_map_len = 0;
  void* sqe_ptr = nullptr;
  std::size_t sqe_map_len = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  struct io_uring_sqe* sqes = nullptr;
  struct io_uring_cqe* cqes = nullptr;

  ~Ring() {
    if (sqe_ptr) ::munmap(sqe_ptr, sqe_map_len);
    if (cq_ptr && cq_ptr != sq_ptr) ::munmap(cq_ptr, cq_map_len);
    if (sq_ptr) ::munmap(sq_ptr, sq_map_len);
    if (fd >= 0) ::close(fd);
  }
};

std::unique_ptr<UringIo::Ring> UringIo::make_ring() const {
  struct io_uring_params params;
  std::memset(&params, 0, sizeof(params));
  auto ring = std::make_unique<Ring>();
  ring->fd = sys_io_uring_setup(depth_, &params);
  if (ring->fd < 0) throw IoError("io_uring_setup", "io_uring", errno);
  ring->sq_entries = params.sq_entries;

  ring->sq_map_len =
      params.sq_off.array + params.sq_entries * sizeof(unsigned);
  ring->cq_map_len =
      params.cq_off.cqes + params.cq_entries * sizeof(struct io_uring_cqe);
  if (params.features & IORING_FEAT_SINGLE_MMAP) {
    ring->sq_map_len = ring->cq_map_len =
        std::max(ring->sq_map_len, ring->cq_map_len);
  }
  void* sq = ::mmap(nullptr, ring->sq_map_len, PROT_READ | PROT_WRITE,
                    MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQ_RING);
  if (sq == MAP_FAILED) throw IoError("mmap", "io_uring sq ring", errno);
  ring->sq_ptr = sq;
  if (params.features & IORING_FEAT_SINGLE_MMAP) {
    ring->cq_ptr = sq;
  } else {
    void* cq = ::mmap(nullptr, ring->cq_map_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_CQ_RING);
    if (cq == MAP_FAILED) throw IoError("mmap", "io_uring cq ring", errno);
    ring->cq_ptr = cq;
  }
  ring->sqe_map_len = params.sq_entries * sizeof(struct io_uring_sqe);
  void* sqe = ::mmap(nullptr, ring->sqe_map_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, ring->fd, IORING_OFF_SQES);
  if (sqe == MAP_FAILED) throw IoError("mmap", "io_uring sqes", errno);
  ring->sqe_ptr = sqe;

  char* sq_base = static_cast<char*>(ring->sq_ptr);
  ring->sq_head = reinterpret_cast<unsigned*>(sq_base + params.sq_off.head);
  ring->sq_tail = reinterpret_cast<unsigned*>(sq_base + params.sq_off.tail);
  ring->sq_mask =
      *reinterpret_cast<unsigned*>(sq_base + params.sq_off.ring_mask);
  ring->sq_array = reinterpret_cast<unsigned*>(sq_base + params.sq_off.array);
  char* cq_base = static_cast<char*>(ring->cq_ptr);
  ring->cq_head = reinterpret_cast<unsigned*>(cq_base + params.cq_off.head);
  ring->cq_tail = reinterpret_cast<unsigned*>(cq_base + params.cq_off.tail);
  ring->cq_mask =
      *reinterpret_cast<unsigned*>(cq_base + params.cq_off.ring_mask);
  ring->sqes = reinterpret_cast<struct io_uring_sqe*>(ring->sqe_ptr);
  ring->cqes = reinterpret_cast<struct io_uring_cqe*>(cq_base +
                                                      params.cq_off.cqes);
  return ring;
}

UringIo::UringIo(unsigned queue_depth)
    : depth_(std::clamp(queue_depth, 1u, 4096u)) {}

UringIo::~UringIo() = default;

UringIo::Ring* UringIo::acquire() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!free_.empty()) {
      Ring* r = free_.back();
      free_.pop_back();
      return r;
    }
  }
  // Create outside the lock: ring setup is several syscalls and concurrent
  // first-use batches should not serialize on each other.
  auto ring = make_ring();
  Ring* r = ring.get();
  std::lock_guard<std::mutex> lock(mutex_);
  rings_.push_back(std::move(ring));
  return r;
}

void UringIo::release(Ring* ring) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(ring);
}

// ---------------------------------------------------------------------------
// run_batch
// ---------------------------------------------------------------------------

void UringIo::run_batch(const UringBatchContext& ctx, std::span<UringOp> ops) {
  if (ops.empty()) return;

  struct OpState {
    std::size_t done = 0;     // bytes completed so far
    unsigned fails = 0;       // consecutive no-progress failures
    unsigned vec_begin = 0;   // first not-yet-retired iovec
    std::size_t want = 0;     // bytes requested by the in-flight attempt
  };
  std::vector<OpState> st(ops.size());

  // Ops to (re)submit, drained LIFO — completion order is up to the kernel
  // anyway, and resubmissions should go out promptly.
  std::vector<std::uint32_t> pending;
  pending.reserve(ops.size());
  for (std::uint32_t i = static_cast<std::uint32_t>(ops.size()); i > 0; --i) {
    if (ops[i - 1].len > 0) pending.push_back(i - 1);
  }

  Ring* ring = acquire();
  struct Lease {
    UringIo* owner;
    Ring* ring;
    ~Lease() { owner->release(ring); }
  } lease{this, ring};

  std::exception_ptr first_error;
  unsigned inflight = 0;

  const auto prep_sqe = [&](std::uint32_t idx, unsigned slot) {
    UringOp& op = ops[idx];
    OpState& s = st[idx];
    struct io_uring_sqe& sqe = ring->sqes[slot];
    std::memset(&sqe, 0, sizeof(sqe));
    sqe.fd = ctx.fd;
    sqe.off = op.offset + s.done;
    sqe.user_data = idx;
    if (op.iov != nullptr) {
      sqe.opcode = op.is_write ? IORING_OP_WRITEV : IORING_OP_READV;
      sqe.addr = reinterpret_cast<std::uint64_t>(op.iov + s.vec_begin);
      sqe.len = op.iov_count - s.vec_begin;
    } else {
      sqe.opcode = op.is_write ? IORING_OP_WRITE : IORING_OP_READ;
      sqe.addr = reinterpret_cast<std::uint64_t>(static_cast<char*>(op.buf) +
                                                 s.done);
      sqe.len = static_cast<unsigned>(op.len - s.done);
    }
    s.want = op.len - s.done;
  };

  // One reaped completion. Consults the fault injector first — reap time is
  // this backend's injection point — then applies run_io's retry semantics
  // to the (possibly vetoed or shortened) result.
  const auto handle = [&](std::uint32_t idx, int res) {
    UringOp& op = ops[idx];
    OpState& s = st[idx];
    const char* op_name = op.is_write ? "io_uring_write" : "io_uring_read";
    if (ctx.fault) {
      const FaultDecision d = ctx.fault->decide(
          op.is_write ? FaultSite::kWrite : FaultSite::kRead, s.want);
      if (d.kind == FaultDecision::Kind::kCrash) {
        if (d.torn && op.is_write && s.want > 1) {
          // The attempt's data already reached the file (injection is at
          // reap time); emulate the torn trailing page a mid-write power
          // loss leaves by clipping the file back to half the attempt.
          // Only when the attempt extends the physical end (the append
          // case) — truncating an in-place overwrite would destroy
          // unrelated trailing data a real tear leaves intact.
          const off_t end = ::lseek(ctx.fd, 0, SEEK_END);
          if (end >= 0 && static_cast<std::uint64_t>(end) <=
                              op.offset + s.done + s.want) {
            (void)::ftruncate(ctx.fd, static_cast<off_t>(op.offset + s.done +
                                                         s.want / 2));
          }
        }
        std::_Exit(kCrashExitCode);
      }
      if (d.kind == FaultDecision::Kind::kTransient) {
        if (d.err == EINTR) {
          if (ctx.stats) ctx.stats->record_io_retry();
          pending.push_back(idx);
          return;
        }
        if (++s.fails >= ctx.retry.max_attempts) {
          if (ctx.stats) ctx.stats->record_io_giveup();
          if (!first_error) {
            first_error = std::make_exception_ptr(
                IoError(op_name, ctx.path, d.err));
          }
          return;
        }
        if (ctx.stats) ctx.stats->record_io_retry();
        retry_backoff_sleep(ctx.retry, s.fails);
        pending.push_back(idx);
        return;
      }
      if (d.kind == FaultDecision::Kind::kShortIo && res > 0) {
        res = static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(res), d.max_len));
      }
    }
    if (res < 0) {
      const int err = -res;
      if (err == EINTR) {
        if (ctx.stats) ctx.stats->record_io_retry();
        pending.push_back(idx);
        return;
      }
      if ((err == EAGAIN || err == EIO) &&
          ++s.fails < ctx.retry.max_attempts) {
        if (ctx.stats) ctx.stats->record_io_retry();
        retry_backoff_sleep(ctx.retry, s.fails);
        pending.push_back(idx);
        return;
      }
      if (ctx.stats) ctx.stats->record_io_giveup();
      if (!first_error) {
        first_error = std::make_exception_ptr(IoError(op_name, ctx.path, err));
      }
      return;
    }
    if (res == 0) {
      if (!first_error) {
        first_error = std::make_exception_ptr(
            Error("unexpected EOF on '" + ctx.path + "'"));
      }
      return;
    }
    std::size_t adv = static_cast<std::size_t>(res);
    s.done += adv;
    s.fails = 0;  // forward progress resets the retry budget
    if (op.iov != nullptr) {
      // Retire fully-transferred iovecs; trim a partially-transferred one.
      while (adv > 0 && s.vec_begin < op.iov_count) {
        struct iovec& v = op.iov[s.vec_begin];
        if (adv >= v.iov_len) {
          adv -= v.iov_len;
          ++s.vec_begin;
        } else {
          v.iov_base = static_cast<char*>(v.iov_base) + adv;
          v.iov_len -= adv;
          adv = 0;
        }
      }
    }
    if (s.done < op.len) pending.push_back(idx);
  };

  const auto reap_ready = [&]() {
    unsigned head = *ring->cq_head;  // sole consumer: plain read is ours
    while (head != ring_load_acquire(ring->cq_tail)) {
      const struct io_uring_cqe cqe = ring->cqes[head & ring->cq_mask];
      ++head;
      // Publish consumption before handling: handle() may sleep in backoff
      // and the kernel should be free to reuse the slot meanwhile.
      ring_store_release(ring->cq_head, head);
      --inflight;
      handle(static_cast<std::uint32_t>(cqe.user_data), cqe.res);
    }
  };

  // enter() wrapper that tolerates EINTR and treats CQ backpressure
  // (EAGAIN/EBUSY with completions owed) by reaping and retrying.
  const auto enter = [&](unsigned to_submit, unsigned min_complete) -> int {
    while (true) {
      const int r = sys_io_uring_enter(ring->fd, to_submit, min_complete,
                                       IORING_ENTER_GETEVENTS);
      if (r >= 0) return r;
      const int err = errno;
      if (err == EINTR) continue;
      if ((err == EAGAIN || err == EBUSY) && inflight > 0) {
        reap_ready();
        continue;
      }
      throw IoError("io_uring_enter", ctx.path, err);
    }
  };

  while ((!pending.empty() && !first_error) || inflight > 0) {
    // Stage as many pending ops as the ring (and the configured depth)
    // allows. After a failure, stop feeding new work and just drain.
    unsigned staged = 0;
    if (!first_error) {
      const unsigned sq_head = ring_load_acquire(ring->sq_head);
      unsigned sq_tail = *ring->sq_tail;  // sole producer
      while (!pending.empty() && (sq_tail - sq_head) < ring->sq_entries &&
             inflight + staged < ring->sq_entries) {
        const std::uint32_t idx = pending.back();
        pending.pop_back();
        const unsigned slot = sq_tail & ring->sq_mask;
        prep_sqe(idx, slot);
        ring->sq_array[slot] = slot;
        ++sq_tail;
        ++staged;
      }
      if (staged > 0) ring_store_release(ring->sq_tail, sq_tail);
    }
    try {
      if (staged > 0) {
        if (ctx.stats) {
          ctx.stats->record_submit_batch();
          ctx.stats->record_inflight_depth(inflight + staged);
        }
        unsigned remaining = staged;
        while (remaining > 0) {
          const int r = enter(remaining, 0);
          remaining -= static_cast<unsigned>(r);
          inflight += static_cast<unsigned>(r);
        }
      }
      if (inflight > 0 && *ring->cq_head == ring_load_acquire(ring->cq_tail)) {
        (void)enter(0, 1);
      }
    } catch (...) {
      // io_uring_enter itself failed hard. Record it and keep looping to
      // drain what the kernel already owns; if even draining can't make
      // progress, give up rather than spin (a ring this broken won't be
      // completing into caller buffers either).
      if (!first_error) first_error = std::current_exception();
      reap_ready();
      if (inflight > 0 &&
          *ring->cq_head == ring_load_acquire(ring->cq_tail)) {
        break;
      }
      continue;
    }
    reap_ready();
  }

  if (first_error) std::rethrow_exception(first_error);
}

// ---------------------------------------------------------------------------
// probe
// ---------------------------------------------------------------------------

namespace {

UringIo::ProbeResult probe_impl() {
  const int mfd = static_cast<int>(
      ::syscall(__NR_memfd_create, "mlvc-uring-probe", 0u));
  if (mfd < 0) {
    return {false, std::string("memfd_create: ") + std::strerror(errno)};
  }
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{mfd};
  char expect[512];
  for (std::size_t i = 0; i < sizeof(expect); ++i) {
    expect[i] = static_cast<char>(i * 31 + 7);
  }
  if (::pwrite(mfd, expect, sizeof(expect), 0) !=
      static_cast<ssize_t>(sizeof(expect))) {
    return {false, std::string("probe pwrite: ") + std::strerror(errno)};
  }
  try {
    UringIo io(4);
    char got[512] = {};
    UringOp op;
    op.offset = 0;
    op.len = sizeof(got);
    op.buf = got;
    UringBatchContext ctx;
    ctx.fd = mfd;
    ctx.path = "io_uring probe";
    io.run_batch(ctx, std::span<UringOp>(&op, 1));
    if (std::memcmp(expect, got, sizeof(got)) != 0) {
      return {false, "probe read returned wrong data"};
    }
  } catch (const std::exception& e) {
    return {false, e.what()};
  }
  return {true, ""};
}

}  // namespace

const UringIo::ProbeResult& UringIo::probe() {
  static const ProbeResult result = probe_impl();
  return result;
}

}  // namespace mlvc::ssd
