// Page-granular I/O accounting.
//
// Every engine in this repo funnels its storage traffic through ssd::Storage,
// which records page reads/writes here, bucketed by what the page holds.
// These counters are the primary evaluation signal: the paper's Figures 5b
// (page-access ratio) and 3 (page utilization) are ratios of exactly these
// numbers.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace mlvc::ssd {

enum class IoCategory : unsigned {
  kCsrRowPtr = 0,   // CSR row-pointer vector pages
  kCsrColIdx,       // CSR adjacency (column index) pages
  kCsrVal,          // CSR edge value pages
  kMessageLog,      // multi-log message pages (per-interval logs)
  kEdgeLog,         // edge-log optimizer pages
  kShard,           // GraphChi shard pages
  kVertexValue,     // vertex value vector pages
  kSortRun,         // GraFBoost external-sort run pages
  kMisc,
  kCount,
};

inline std::string_view to_string(IoCategory c) {
  switch (c) {
    case IoCategory::kCsrRowPtr: return "csr_row_ptr";
    case IoCategory::kCsrColIdx: return "csr_col_idx";
    case IoCategory::kCsrVal: return "csr_val";
    case IoCategory::kMessageLog: return "message_log";
    case IoCategory::kEdgeLog: return "edge_log";
    case IoCategory::kShard: return "shard";
    case IoCategory::kVertexValue: return "vertex_value";
    case IoCategory::kSortRun: return "sort_run";
    case IoCategory::kMisc: return "misc";
    default: return "?";
  }
}

inline constexpr unsigned kNumIoCategories =
    static_cast<unsigned>(IoCategory::kCount);

/// Plain-value snapshot of the counters (copyable, diffable).
struct IoStatsSnapshot {
  struct Category {
    std::uint64_t pages_read = 0;
    std::uint64_t pages_written = 0;
    /// Physical traffic: bytes as issued against the blob (compressed
    /// lengths under on-disk format v2). Recorded by the Blob I/O layer.
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    /// Logical traffic: post-decode (read) / pre-encode (write) bytes, as
    /// seen by the consumer layer — decoded adjacency elements, decoded log
    /// records, checkpoint payloads. Recorded by those layers, for both
    /// formats, so logical/physical is the observed compression ratio and
    /// logical/num_edges is bytes-per-edge. Zero for layers that don't
    /// report it.
    std::uint64_t logical_bytes_read = 0;
    std::uint64_t logical_bytes_written = 0;
  };
  std::array<Category, kNumIoCategories> categories{};
  /// Host-side page-cache traffic (ssd::PageCache): hits cost no device
  /// pages, misses show up both here and in the backing category's reads.
  std::uint64_t cache_hit_pages = 0;
  std::uint64_t cache_miss_pages = 0;
  /// Shared-cache churn: valid frames overwritten by CLOCK to admit a new
  /// page, and pages a query read *around* the cache because it was at its
  /// admission quota (bypasses also cost device reads, like misses, but
  /// never displace another query's resident pages).
  std::uint64_t cache_evictions = 0;
  std::uint64_t cache_bypass_pages = 0;
  /// High-water mark of resident cache bytes (a gauge like
  /// max_inflight_depth — snapshot diffs carry the current mark through).
  std::uint64_t cache_bytes_high_water = 0;
  /// Robustness counters: I/O attempts re-issued after a transient failure
  /// (EINTR/EAGAIN/EIO), and operations that exhausted the retry budget (or
  /// hit a non-recoverable errno) and escalated as a typed IoError.
  std::uint64_t io_retry_count = 0;
  std::uint64_t io_giveup_count = 0;
  /// io_uring backend visibility: io_uring_enter calls that submitted at
  /// least one SQE, and ops the read_multi coalescer folded into a larger
  /// vectored SQE beyond the first of each run. Both 0 on the thread-pool
  /// backend.
  std::uint64_t submit_batches = 0;
  std::uint64_t sqe_coalesced_ops = 0;
  /// High-water mark of SQEs in flight on any one ring (a gauge, not a
  /// counter — snapshot diffs carry the current mark through unchanged).
  std::uint64_t max_inflight_depth = 0;
  /// Modeled host↔device bus traffic for the message-log load path: raw log
  /// bytes under host combine placement, the per-device reduced output
  /// under the computational-storage mode — the combine-placement ablation
  /// metric (DESIGN.md §4d).
  std::uint64_t bus_bytes_crossed = 0;
  /// Near-storage combine visibility: records entering the per-device
  /// reduction tables and records surviving them (what crossed the bus).
  /// Both 0 under host placement.
  std::uint64_t device_combine_records_in = 0;
  std::uint64_t device_combine_records_out = 0;

  const Category& operator[](IoCategory c) const {
    return categories[static_cast<unsigned>(c)];
  }
  Category& operator[](IoCategory c) {
    return categories[static_cast<unsigned>(c)];
  }

  std::uint64_t total_pages_read() const {
    std::uint64_t t = 0;
    for (const auto& c : categories) t += c.pages_read;
    return t;
  }
  std::uint64_t total_pages_written() const {
    std::uint64_t t = 0;
    for (const auto& c : categories) t += c.pages_written;
    return t;
  }
  std::uint64_t total_pages() const {
    return total_pages_read() + total_pages_written();
  }
  /// Physical bytes as issued against the blobs (compressed under v2).
  std::uint64_t total_bytes_read() const {
    std::uint64_t t = 0;
    for (const auto& c : categories) t += c.bytes_read;
    return t;
  }
  std::uint64_t total_bytes_written() const {
    std::uint64_t t = 0;
    for (const auto& c : categories) t += c.bytes_written;
    return t;
  }
  /// Logical (post-decode / pre-encode) bytes, where the consumer reported
  /// them. logical/physical per category is the observed compression ratio.
  std::uint64_t total_logical_bytes_read() const {
    std::uint64_t t = 0;
    for (const auto& c : categories) t += c.logical_bytes_read;
    return t;
  }
  std::uint64_t total_logical_bytes_written() const {
    std::uint64_t t = 0;
    for (const auto& c : categories) t += c.logical_bytes_written;
    return t;
  }

  IoStatsSnapshot operator-(const IoStatsSnapshot& rhs) const {
    IoStatsSnapshot out;
    for (unsigned i = 0; i < kNumIoCategories; ++i) {
      out.categories[i].pages_read =
          categories[i].pages_read - rhs.categories[i].pages_read;
      out.categories[i].pages_written =
          categories[i].pages_written - rhs.categories[i].pages_written;
      out.categories[i].bytes_read =
          categories[i].bytes_read - rhs.categories[i].bytes_read;
      out.categories[i].bytes_written =
          categories[i].bytes_written - rhs.categories[i].bytes_written;
      out.categories[i].logical_bytes_read =
          categories[i].logical_bytes_read -
          rhs.categories[i].logical_bytes_read;
      out.categories[i].logical_bytes_written =
          categories[i].logical_bytes_written -
          rhs.categories[i].logical_bytes_written;
    }
    out.cache_hit_pages = cache_hit_pages - rhs.cache_hit_pages;
    out.cache_miss_pages = cache_miss_pages - rhs.cache_miss_pages;
    out.cache_evictions = cache_evictions - rhs.cache_evictions;
    out.cache_bypass_pages = cache_bypass_pages - rhs.cache_bypass_pages;
    out.cache_bytes_high_water = cache_bytes_high_water;
    out.io_retry_count = io_retry_count - rhs.io_retry_count;
    out.io_giveup_count = io_giveup_count - rhs.io_giveup_count;
    out.submit_batches = submit_batches - rhs.submit_batches;
    out.sqe_coalesced_ops = sqe_coalesced_ops - rhs.sqe_coalesced_ops;
    // Gauge: the high-water mark as of this snapshot, not a differenceable
    // quantity.
    out.max_inflight_depth = max_inflight_depth;
    out.bus_bytes_crossed = bus_bytes_crossed - rhs.bus_bytes_crossed;
    out.device_combine_records_in =
        device_combine_records_in - rhs.device_combine_records_in;
    out.device_combine_records_out =
        device_combine_records_out - rhs.device_combine_records_out;
    return out;
  }
};

/// Thread-safe live counters.
///
/// Multi-tenant attribution: a Storage has ONE IoStats shared by every query
/// running over it, so per-query views need a second sink. A thread inside a
/// query's run installs one with IoStats::ScopedSink; every record_* call on
/// any IoStats then mirrors into the installed sink as well. ssd::AsyncIo
/// captures the submitting thread's sink and re-installs it on the pool
/// thread, so background loads/evictions stay attributed to the query that
/// issued them. The context-level IoStats keeps the cross-query aggregate.
class IoStats {
 public:
  /// Install `sink` as this thread's per-query mirror for the lifetime of
  /// the guard (nullptr = mirror nothing). Nesting restores the previous
  /// sink on destruction.
  class ScopedSink {
   public:
    explicit ScopedSink(IoStats* sink) : prev_(tls_sink()) {
      tls_sink() = sink;
    }
    ~ScopedSink() { tls_sink() = prev_; }
    ScopedSink(const ScopedSink&) = delete;
    ScopedSink& operator=(const ScopedSink&) = delete;

   private:
    IoStats* prev_;
  };

  /// The sink installed on the calling thread (nullptr when none).
  static IoStats* current_sink() noexcept { return tls_sink(); }

  void record_read(IoCategory c, std::uint64_t pages, std::uint64_t bytes) {
    record_read_impl(c, pages, bytes);
    if (IoStats* s = mirror()) s->record_read_impl(c, pages, bytes);
  }
  void record_write(IoCategory c, std::uint64_t pages, std::uint64_t bytes) {
    record_write_impl(c, pages, bytes);
    if (IoStats* s = mirror()) s->record_write_impl(c, pages, bytes);
  }
  void record_logical_read(IoCategory c, std::uint64_t bytes) {
    record_logical_read_impl(c, bytes);
    if (IoStats* s = mirror()) s->record_logical_read_impl(c, bytes);
  }
  void record_logical_write(IoCategory c, std::uint64_t bytes) {
    record_logical_write_impl(c, bytes);
    if (IoStats* s = mirror()) s->record_logical_write_impl(c, bytes);
  }
  void record_cache_hit(std::uint64_t pages) {
    cache_hit_pages_.fetch_add(pages, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->cache_hit_pages_.fetch_add(pages, std::memory_order_relaxed);
    }
  }
  void record_cache_miss(std::uint64_t pages) {
    cache_miss_pages_.fetch_add(pages, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->cache_miss_pages_.fetch_add(pages, std::memory_order_relaxed);
    }
  }
  void record_cache_eviction(std::uint64_t pages) {
    cache_evictions_.fetch_add(pages, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->cache_evictions_.fetch_add(pages, std::memory_order_relaxed);
    }
  }
  void record_cache_bypass(std::uint64_t pages) {
    cache_bypass_pages_.fetch_add(pages, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->cache_bypass_pages_.fetch_add(pages, std::memory_order_relaxed);
    }
  }
  void record_cache_high_water(std::uint64_t bytes) {
    record_max(cache_bytes_high_water_, bytes);
    if (IoStats* s = mirror()) record_max(s->cache_bytes_high_water_, bytes);
  }
  void record_io_retry() {
    io_retry_count_.fetch_add(1, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->io_retry_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void record_io_giveup() {
    io_giveup_count_.fetch_add(1, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->io_giveup_count_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void record_submit_batch() {
    submit_batches_.fetch_add(1, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->submit_batches_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void record_sqe_coalesced(std::uint64_t ops) {
    sqe_coalesced_ops_.fetch_add(ops, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->sqe_coalesced_ops_.fetch_add(ops, std::memory_order_relaxed);
    }
  }
  void record_inflight_depth(std::uint64_t depth) {
    record_max(max_inflight_depth_, depth);
    if (IoStats* s = mirror()) record_max(s->max_inflight_depth_, depth);
  }
  void record_bus_bytes(std::uint64_t bytes) {
    bus_bytes_crossed_.fetch_add(bytes, std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->bus_bytes_crossed_.fetch_add(bytes, std::memory_order_relaxed);
    }
  }
  void record_device_combine(std::uint64_t records_in,
                             std::uint64_t records_out) {
    device_combine_records_in_.fetch_add(records_in,
                                         std::memory_order_relaxed);
    device_combine_records_out_.fetch_add(records_out,
                                          std::memory_order_relaxed);
    if (IoStats* s = mirror()) {
      s->device_combine_records_in_.fetch_add(records_in,
                                              std::memory_order_relaxed);
      s->device_combine_records_out_.fetch_add(records_out,
                                               std::memory_order_relaxed);
    }
  }

  IoStatsSnapshot snapshot() const {
    IoStatsSnapshot out;
    for (unsigned i = 0; i < kNumIoCategories; ++i) {
      out.categories[i].pages_read =
          categories_[i].pages_read.load(std::memory_order_relaxed);
      out.categories[i].pages_written =
          categories_[i].pages_written.load(std::memory_order_relaxed);
      out.categories[i].bytes_read =
          categories_[i].bytes_read.load(std::memory_order_relaxed);
      out.categories[i].bytes_written =
          categories_[i].bytes_written.load(std::memory_order_relaxed);
      out.categories[i].logical_bytes_read =
          categories_[i].logical_bytes_read.load(std::memory_order_relaxed);
      out.categories[i].logical_bytes_written =
          categories_[i].logical_bytes_written.load(std::memory_order_relaxed);
    }
    out.cache_hit_pages = cache_hit_pages_.load(std::memory_order_relaxed);
    out.cache_miss_pages = cache_miss_pages_.load(std::memory_order_relaxed);
    out.cache_evictions = cache_evictions_.load(std::memory_order_relaxed);
    out.cache_bypass_pages =
        cache_bypass_pages_.load(std::memory_order_relaxed);
    out.cache_bytes_high_water =
        cache_bytes_high_water_.load(std::memory_order_relaxed);
    out.io_retry_count = io_retry_count_.load(std::memory_order_relaxed);
    out.io_giveup_count = io_giveup_count_.load(std::memory_order_relaxed);
    out.submit_batches = submit_batches_.load(std::memory_order_relaxed);
    out.sqe_coalesced_ops =
        sqe_coalesced_ops_.load(std::memory_order_relaxed);
    out.max_inflight_depth =
        max_inflight_depth_.load(std::memory_order_relaxed);
    out.bus_bytes_crossed =
        bus_bytes_crossed_.load(std::memory_order_relaxed);
    out.device_combine_records_in =
        device_combine_records_in_.load(std::memory_order_relaxed);
    out.device_combine_records_out =
        device_combine_records_out_.load(std::memory_order_relaxed);
    return out;
  }

  void reset() {
    for (auto& cat : categories_) {
      cat.pages_read.store(0, std::memory_order_relaxed);
      cat.pages_written.store(0, std::memory_order_relaxed);
      cat.bytes_read.store(0, std::memory_order_relaxed);
      cat.bytes_written.store(0, std::memory_order_relaxed);
      cat.logical_bytes_read.store(0, std::memory_order_relaxed);
      cat.logical_bytes_written.store(0, std::memory_order_relaxed);
    }
    cache_hit_pages_.store(0, std::memory_order_relaxed);
    cache_miss_pages_.store(0, std::memory_order_relaxed);
    cache_evictions_.store(0, std::memory_order_relaxed);
    cache_bypass_pages_.store(0, std::memory_order_relaxed);
    cache_bytes_high_water_.store(0, std::memory_order_relaxed);
    io_retry_count_.store(0, std::memory_order_relaxed);
    io_giveup_count_.store(0, std::memory_order_relaxed);
    submit_batches_.store(0, std::memory_order_relaxed);
    sqe_coalesced_ops_.store(0, std::memory_order_relaxed);
    max_inflight_depth_.store(0, std::memory_order_relaxed);
    bus_bytes_crossed_.store(0, std::memory_order_relaxed);
    device_combine_records_in_.store(0, std::memory_order_relaxed);
    device_combine_records_out_.store(0, std::memory_order_relaxed);
  }

 private:
  struct Category {
    std::atomic<std::uint64_t> pages_read{0};
    std::atomic<std::uint64_t> pages_written{0};
    std::atomic<std::uint64_t> bytes_read{0};
    std::atomic<std::uint64_t> bytes_written{0};
    std::atomic<std::uint64_t> logical_bytes_read{0};
    std::atomic<std::uint64_t> logical_bytes_written{0};
  };

  static IoStats*& tls_sink() noexcept {
    thread_local IoStats* sink = nullptr;
    return sink;
  }
  /// The per-query sink to mirror into — skipped when recording directly
  /// into the sink itself (the sink is an IoStats too; without the guard a
  /// query's own counters would double).
  IoStats* mirror() const noexcept {
    IoStats* s = tls_sink();
    return s == this ? nullptr : s;
  }
  static void record_max(std::atomic<std::uint64_t>& gauge,
                         std::uint64_t value) {
    std::uint64_t cur = gauge.load(std::memory_order_relaxed);
    while (value > cur && !gauge.compare_exchange_weak(
                              cur, value, std::memory_order_relaxed)) {
    }
  }
  void record_read_impl(IoCategory c, std::uint64_t pages,
                        std::uint64_t bytes) {
    auto& cat = categories_[static_cast<unsigned>(c)];
    cat.pages_read.fetch_add(pages, std::memory_order_relaxed);
    cat.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  void record_write_impl(IoCategory c, std::uint64_t pages,
                         std::uint64_t bytes) {
    auto& cat = categories_[static_cast<unsigned>(c)];
    cat.pages_written.fetch_add(pages, std::memory_order_relaxed);
    cat.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  }
  void record_logical_read_impl(IoCategory c, std::uint64_t bytes) {
    categories_[static_cast<unsigned>(c)].logical_bytes_read.fetch_add(
        bytes, std::memory_order_relaxed);
  }
  void record_logical_write_impl(IoCategory c, std::uint64_t bytes) {
    categories_[static_cast<unsigned>(c)].logical_bytes_written.fetch_add(
        bytes, std::memory_order_relaxed);
  }

  std::array<Category, kNumIoCategories> categories_{};
  std::atomic<std::uint64_t> cache_hit_pages_{0};
  std::atomic<std::uint64_t> cache_miss_pages_{0};
  std::atomic<std::uint64_t> cache_evictions_{0};
  std::atomic<std::uint64_t> cache_bypass_pages_{0};
  std::atomic<std::uint64_t> cache_bytes_high_water_{0};
  std::atomic<std::uint64_t> io_retry_count_{0};
  std::atomic<std::uint64_t> io_giveup_count_{0};
  std::atomic<std::uint64_t> submit_batches_{0};
  std::atomic<std::uint64_t> sqe_coalesced_ops_{0};
  std::atomic<std::uint64_t> max_inflight_depth_{0};
  std::atomic<std::uint64_t> bus_bytes_crossed_{0};
  std::atomic<std::uint64_t> device_combine_records_in_{0};
  std::atomic<std::uint64_t> device_combine_records_out_{0};
};

}  // namespace mlvc::ssd
