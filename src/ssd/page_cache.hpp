// A CLOCK page cache over Storage blobs.
//
// GraphChi's baseline configuration (§VI) gives it a host-side cache equal
// in size to MultiLogVC's multi-log buffer; the graph loader also uses a
// small cache for hot row-pointer pages. Cached hits cost no device time —
// exactly the effect a host-side cache has on a real SSD.
#pragma once

#include <cstring>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "ssd/storage.hpp"

namespace mlvc::ssd {

class PageCache {
 public:
  /// `capacity_bytes` is rounded down to whole pages (at least one page).
  PageCache(Storage& storage, std::size_t capacity_bytes)
      : storage_(storage),
        page_size_(storage.page_size()),
        capacity_pages_(std::max<std::size_t>(1, capacity_bytes / page_size_)) {
    frames_.resize(capacity_pages_);
    for (auto& f : frames_) f.data.resize(page_size_);
  }

  /// Read an arbitrary byte range through the cache.
  void read(const Blob& blob, std::uint64_t offset, void* buf,
            std::size_t len) {
    char* dst = static_cast<char*>(buf);
    while (len > 0) {
      const std::uint64_t page_no = offset / page_size_;
      const std::size_t in_page = static_cast<std::size_t>(offset % page_size_);
      const std::size_t take = std::min(len, page_size_ - in_page);
      const char* page = fetch_page(blob, page_no);
      std::memcpy(dst, page + in_page, take);
      dst += take;
      offset += take;
      len -= take;
    }
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }

  /// Drop all cached pages (used when a blob's content is rewritten).
  void invalidate() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    for (auto& f : frames_) f.valid = false;
  }

 private:
  struct Key {
    std::uint64_t blob_id;
    std::uint64_t page_no;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.blob_id * 0x9E3779B97F4A7C15ull ^
                                        k.page_no);
    }
  };
  struct Frame {
    Key key{};
    bool valid = false;
    bool referenced = false;
    std::vector<char> data;
  };

  const char* fetch_page(const Blob& blob, std::uint64_t page_no) {
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{blob.id(), page_no};
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      storage_.stats().record_cache_hit(1);
      frames_[it->second].referenced = true;
      return frames_[it->second].data.data();
    }
    ++misses_;
    storage_.stats().record_cache_miss(1);
    const std::size_t frame_idx = evict_one();
    Frame& frame = frames_[frame_idx];
    if (frame.valid) map_.erase(frame.key);
    // Partial trailing page: read only the valid prefix.
    const std::uint64_t page_start = page_no * page_size_;
    const std::uint64_t blob_size = blob.size();
    MLVC_CHECK_MSG(page_start < blob_size,
                   "page " << page_no << " past end of blob '" << blob.name()
                           << "'");
    const std::size_t valid_len = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_, blob_size - page_start));
    blob.read(page_start, frame.data.data(), valid_len);
    if (valid_len < page_size_) {
      std::memset(frame.data.data() + valid_len, 0, page_size_ - valid_len);
    }
    frame.key = key;
    frame.valid = true;
    frame.referenced = true;
    map_[key] = frame_idx;
    return frame.data.data();
  }

  /// CLOCK eviction: sweep the hand, clearing reference bits, until an
  /// unreferenced (or invalid) frame is found.
  std::size_t evict_one() {
    for (;;) {
      Frame& f = frames_[hand_];
      const std::size_t idx = hand_;
      hand_ = (hand_ + 1) % capacity_pages_;
      if (!f.valid || !f.referenced) return idx;
      f.referenced = false;
    }
  }

  Storage& storage_;
  std::size_t page_size_;
  std::size_t capacity_pages_;
  std::mutex mutex_;
  std::vector<Frame> frames_;
  std::unordered_map<Key, std::size_t, KeyHash> map_;
  std::size_t hand_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace mlvc::ssd
