// A CLOCK page cache over Storage blobs.
//
// GraphChi's baseline configuration (§VI) gives it a host-side cache equal
// in size to MultiLogVC's multi-log buffer; the graph loader also uses a
// small cache for hot row-pointer pages. Cached hits cost no device time —
// exactly the effect a host-side cache has on a real SSD.
//
// Multi-tenant sharing (FlashGraph's serving model): ONE PageCache can back
// every query running over a graph. Each query registers a QuerySlot that
// (a) splits hit/miss/bypass counts per query and (b) carries an admission
// quota — the page budget the query may keep resident. A miss while the
// query is at quota is served as a *bypass*: the bytes are read straight
// from the blob without displacing any resident page, so one scan-heavy
// query cannot flush the working set of everyone else. Threads name the
// query they are working for with a ScopedQuery guard (installed by the
// graph loader around its reads); unattributed reads behave exactly like
// the single-tenant cache.
//
// Note copies out of a frame happen under the cache mutex: an earlier
// version returned a frame pointer and copied after unlocking, which let a
// concurrent miss recycle the frame mid-copy once multiple threads (batch
// prefetchers, concurrent queries) shared one cache.
#pragma once

#include <atomic>
#include <cstring>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "ssd/storage.hpp"

namespace mlvc::ssd {

class PageCache {
 public:
  /// Per-query view of a shared cache: private hit/miss/bypass counters and
  /// the admission quota. Create with register_query(); threads attribute
  /// reads to it with ScopedQuery.
  class QuerySlot {
   public:
    std::uint64_t hits() const noexcept {
      return hits_.load(std::memory_order_relaxed);
    }
    std::uint64_t misses() const noexcept {
      return misses_.load(std::memory_order_relaxed);
    }
    std::uint64_t bypasses() const noexcept {
      return bypasses_.load(std::memory_order_relaxed);
    }
    /// Pages currently resident on this query's account (bounded by the
    /// admission quota; eviction and invalidation decrement it).
    std::uint64_t resident_pages() const noexcept {
      return resident_pages_.load(std::memory_order_relaxed);
    }
    std::size_t quota_pages() const noexcept { return quota_pages_; }

   private:
    friend class PageCache;
    explicit QuerySlot(std::size_t quota_pages) : quota_pages_(quota_pages) {}

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> bypasses_{0};
    std::atomic<std::uint64_t> resident_pages_{0};
    std::size_t quota_pages_;
  };

  /// Names the query the calling thread is reading for, for the lifetime of
  /// the guard. Nestable (restores the previous slot).
  class ScopedQuery {
   public:
    explicit ScopedQuery(QuerySlot* slot) : prev_(tls_slot()) {
      tls_slot() = slot;
    }
    ~ScopedQuery() { tls_slot() = prev_; }
    ScopedQuery(const ScopedQuery&) = delete;
    ScopedQuery& operator=(const ScopedQuery&) = delete;

   private:
    QuerySlot* prev_;
  };

  /// RAII query registration: drops the slot's frame ownership on reset /
  /// destruction (resident pages stay cached, but no longer count against
  /// anyone and evict normally).
  class QueryRegistration {
   public:
    QueryRegistration() = default;
    ~QueryRegistration() { reset(); }
    QueryRegistration(QueryRegistration&& other) noexcept
        : cache_(other.cache_), slot_(std::move(other.slot_)) {
      other.cache_ = nullptr;
    }
    QueryRegistration& operator=(QueryRegistration&& other) noexcept {
      if (this != &other) {
        reset();
        cache_ = other.cache_;
        slot_ = std::move(other.slot_);
        other.cache_ = nullptr;
      }
      return *this;
    }
    QueryRegistration(const QueryRegistration&) = delete;
    QueryRegistration& operator=(const QueryRegistration&) = delete;

    QuerySlot* slot() const noexcept { return slot_.get(); }
    explicit operator bool() const noexcept { return slot_ != nullptr; }

    void reset() {
      if (cache_ != nullptr && slot_ != nullptr) {
        cache_->unregister_query(slot_.get());
      }
      cache_ = nullptr;
      slot_.reset();
    }

   private:
    friend class PageCache;
    QueryRegistration(PageCache* cache, std::shared_ptr<QuerySlot> slot)
        : cache_(cache), slot_(std::move(slot)) {}

    PageCache* cache_ = nullptr;
    std::shared_ptr<QuerySlot> slot_;
  };

  /// `capacity_bytes` is rounded down to whole pages (at least one page).
  PageCache(Storage& storage, std::size_t capacity_bytes)
      : storage_(storage),
        page_size_(storage.page_size()),
        capacity_pages_(std::max<std::size_t>(1, capacity_bytes / page_size_)) {
    frames_.resize(capacity_pages_);
    for (auto& f : frames_) f.data.resize(page_size_);
  }

  /// Register a query with an admission quota of `admission_bytes` (rounded
  /// down to pages; 0 = unlimited — the query competes for the whole cache).
  QueryRegistration register_query(std::size_t admission_bytes) {
    const std::size_t quota =
        admission_bytes == 0 ? std::numeric_limits<std::size_t>::max()
                             : std::max<std::size_t>(
                                   1, admission_bytes / page_size_);
    auto slot = std::shared_ptr<QuerySlot>(new QuerySlot(quota));
    return QueryRegistration(this, std::move(slot));
  }

  /// Read an arbitrary byte range through the cache, attributed to the
  /// calling thread's ScopedQuery slot (if any).
  void read(const Blob& blob, std::uint64_t offset, void* buf,
            std::size_t len) {
    QuerySlot* slot = tls_slot();
    char* dst = static_cast<char*>(buf);
    while (len > 0) {
      const std::uint64_t page_no = offset / page_size_;
      const std::size_t in_page = static_cast<std::size_t>(offset % page_size_);
      const std::size_t take = std::min(len, page_size_ - in_page);
      if (!fetch_into(blob, page_no, in_page, take, dst, slot)) {
        // Admission bypass: at quota — serve the bytes around the cache so
        // no resident page (this query's or anyone else's) is displaced.
        blob.read(offset, dst, take);
        bypasses_.fetch_add(1, std::memory_order_relaxed);
        storage_.stats().record_cache_bypass(1);
        slot->bypasses_.fetch_add(1, std::memory_order_relaxed);
      }
      dst += take;
      offset += take;
      len -= take;
    }
  }

  std::uint64_t hits() const noexcept {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const noexcept {
    return misses_.load(std::memory_order_relaxed);
  }
  /// Valid frames recycled by CLOCK to admit another page.
  std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }
  /// Reads served around the cache by admission control.
  std::uint64_t bypasses() const noexcept {
    return bypasses_.load(std::memory_order_relaxed);
  }
  std::uint64_t resident_bytes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<std::uint64_t>(resident_pages_) * page_size_;
  }
  /// High-water mark of resident bytes — by construction never above
  /// capacity_bytes(), the acceptance signal that a shared cache stays
  /// within its configured budget.
  std::uint64_t bytes_high_water() const noexcept {
    return bytes_high_water_.load(std::memory_order_relaxed);
  }
  std::size_t capacity_bytes() const noexcept {
    return capacity_pages_ * page_size_;
  }
  std::size_t page_size() const noexcept { return page_size_; }
  Storage& storage() const noexcept { return storage_; }

  /// Drop all cached pages (used when a blob's content is rewritten).
  void invalidate() {
    std::lock_guard<std::mutex> lock(mutex_);
    map_.clear();
    for (auto& f : frames_) {
      if (f.valid && f.owner != nullptr) {
        f.owner->resident_pages_.fetch_sub(1, std::memory_order_relaxed);
      }
      f.valid = false;
      f.owner = nullptr;
    }
    resident_pages_ = 0;
  }

 private:
  struct Key {
    std::uint64_t blob_id;
    std::uint64_t page_no;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}(k.blob_id * 0x9E3779B97F4A7C15ull ^
                                        k.page_no);
    }
  };
  struct Frame {
    Key key{};
    bool valid = false;
    bool referenced = false;
    /// The query whose quota this frame counts against (null = shared /
    /// unattributed). Cleared when the query unregisters; the page itself
    /// stays cached.
    QuerySlot* owner = nullptr;
    std::vector<char> data;
  };

  static QuerySlot*& tls_slot() noexcept {
    thread_local QuerySlot* slot = nullptr;
    return slot;
  }

  void unregister_query(QuerySlot* slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& f : frames_) {
      if (f.owner == slot) f.owner = nullptr;
    }
    slot->resident_pages_.store(0, std::memory_order_relaxed);
  }

  /// Copy `take` bytes at `in_page` of the blob's page `page_no` into `dst`
  /// through the cache. Returns false when admission control refuses to
  /// cache the page (the caller reads around the cache). The copy happens
  /// under the cache mutex so a concurrent miss can't recycle the frame
  /// mid-copy. Device reads on the miss path also run under the mutex —
  /// misses serialize, which is the price of one shared working set.
  bool fetch_into(const Blob& blob, std::uint64_t page_no, std::size_t in_page,
                  std::size_t take, char* dst, QuerySlot* slot) {
    std::lock_guard<std::mutex> lock(mutex_);
    const Key key{blob.id(), page_no};
    auto it = map_.find(key);
    if (it != map_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      storage_.stats().record_cache_hit(1);
      if (slot != nullptr) {
        slot->hits_.fetch_add(1, std::memory_order_relaxed);
      }
      Frame& frame = frames_[it->second];
      frame.referenced = true;
      std::memcpy(dst, frame.data.data() + in_page, take);
      return true;
    }
    if (slot != nullptr &&
        slot->resident_pages_.load(std::memory_order_relaxed) >=
            slot->quota_pages_) {
      return false;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    storage_.stats().record_cache_miss(1);
    if (slot != nullptr) {
      slot->misses_.fetch_add(1, std::memory_order_relaxed);
    }
    const std::size_t frame_idx = evict_one();
    Frame& frame = frames_[frame_idx];
    if (frame.valid) {
      map_.erase(frame.key);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      storage_.stats().record_cache_eviction(1);
      if (frame.owner != nullptr) {
        frame.owner->resident_pages_.fetch_sub(1, std::memory_order_relaxed);
      }
      --resident_pages_;
    }
    frame.owner = nullptr;
    // Partial trailing page: read only the valid prefix.
    const std::uint64_t page_start = page_no * page_size_;
    const std::uint64_t blob_size = blob.size();
    MLVC_CHECK_MSG(page_start < blob_size,
                   "page " << page_no << " past end of blob '" << blob.name()
                           << "'");
    const std::size_t valid_len = static_cast<std::size_t>(
        std::min<std::uint64_t>(page_size_, blob_size - page_start));
    blob.read(page_start, frame.data.data(), valid_len);
    if (valid_len < page_size_) {
      std::memset(frame.data.data() + valid_len, 0, page_size_ - valid_len);
    }
    frame.key = key;
    frame.valid = true;
    frame.referenced = true;
    frame.owner = slot;
    if (slot != nullptr) {
      slot->resident_pages_.fetch_add(1, std::memory_order_relaxed);
    }
    ++resident_pages_;
    const std::uint64_t resident_bytes =
        static_cast<std::uint64_t>(resident_pages_) * page_size_;
    std::uint64_t hw = bytes_high_water_.load(std::memory_order_relaxed);
    while (resident_bytes > hw &&
           !bytes_high_water_.compare_exchange_weak(
               hw, resident_bytes, std::memory_order_relaxed)) {
    }
    storage_.stats().record_cache_high_water(resident_bytes);
    map_[key] = frame_idx;
    std::memcpy(dst, frame.data.data() + in_page, take);
    return true;
  }

  /// CLOCK eviction: sweep the hand, clearing reference bits, until an
  /// unreferenced (or invalid) frame is found.
  std::size_t evict_one() {
    for (;;) {
      Frame& f = frames_[hand_];
      const std::size_t idx = hand_;
      hand_ = (hand_ + 1) % capacity_pages_;
      if (!f.valid || !f.referenced) return idx;
      f.referenced = false;
    }
  }

  Storage& storage_;
  std::size_t page_size_;
  std::size_t capacity_pages_;
  mutable std::mutex mutex_;
  std::vector<Frame> frames_;
  std::unordered_map<Key, std::size_t, KeyHash> map_;
  std::size_t hand_ = 0;
  std::size_t resident_pages_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bypasses_{0};
  std::atomic<std::uint64_t> bytes_high_water_{0};
};

}  // namespace mlvc::ssd
