// Which substrate a Storage uses for hot-path reads and writes.
//
// kThreadPool is the original path: blocking pread/pwrite/preadv issued by
// whichever thread called into Blob (including ssd::AsyncIo pool threads).
// kUring batches operations into a raw io_uring submission ring so one
// thread can keep queue-depth requests in flight with one syscall per
// batch. Selection is per Storage (Storage::set_io_backend), defaulting to
// kThreadPool; requesting kUring on a kernel or sandbox that refuses
// io_uring falls back transparently and records the reason.
#pragma once

#include <optional>
#include <string_view>

namespace mlvc::ssd {

enum class IoBackendKind : unsigned {
  kThreadPool = 0,  // blocking pread/pwrite on the calling thread
  kUring,           // batched submission through a raw io_uring ring
};

inline std::string_view to_string(IoBackendKind k) {
  switch (k) {
    case IoBackendKind::kThreadPool: return "threadpool";
    case IoBackendKind::kUring: return "uring";
  }
  return "?";
}

/// Accepts the spellings the CLI/env surface documents; nullopt for
/// anything else so callers can produce their own error message.
inline std::optional<IoBackendKind> parse_io_backend(std::string_view s) {
  if (s == "threadpool" || s == "thread-pool" || s == "pool") {
    return IoBackendKind::kThreadPool;
  }
  if (s == "uring" || s == "io_uring" || s == "io-uring") {
    return IoBackendKind::kUring;
  }
  return std::nullopt;
}

}  // namespace mlvc::ssd
