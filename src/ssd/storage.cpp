#include "ssd/storage.hpp"

#include <fcntl.h>
#include <limits.h>
#include <stdio.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "ssd/fault_injector.hpp"
#include "ssd/uring_io.hpp"

namespace mlvc::ssd {

void retry_backoff_sleep(const RetryPolicy& policy, unsigned fails) {
  const unsigned shift = std::min(fails > 0 ? fails - 1 : 0u, 20u);
  std::uint64_t delay = static_cast<std::uint64_t>(policy.base_delay_us)
                        << shift;
  delay = std::min<std::uint64_t>(delay, policy.max_delay_us);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

namespace {
// Walk maximal runs of file-contiguous ops: fn(first, past_last, run_bytes).
// Shared by the preadv path and the io_uring path so both backends coalesce
// identically (zero-length ops skipped, runs capped at IOV_MAX spans).
template <typename Fn>
void for_each_contiguous_run(std::span<const ReadOp> ops, Fn&& fn) {
  std::size_t i = 0;
  while (i < ops.size()) {
    if (ops[i].len == 0) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    std::size_t run_len = ops[i].len;
    while (j < ops.size() && ops[j].len > 0 && (j - i) < IOV_MAX &&
           ops[j].offset == ops[j - 1].offset + ops[j - 1].len) {
      run_len += ops[j].len;
      ++j;
    }
    fn(i, j, run_len);
    i = j;
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Blob
// ---------------------------------------------------------------------------

Blob::Blob(Storage* storage, std::uint64_t id, std::string name,
           IoCategory category, std::filesystem::path path)
    : storage_(storage),
      id_(id),
      name_(std::move(name)),
      category_(category),
      path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw IoError("open", path_.string(), errno);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) throw IoError("lseek", path_.string(), errno);
  size_ = static_cast<std::uint64_t>(end);
}

Blob::~Blob() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Blob::size() const {
  std::lock_guard<std::mutex> lock(size_mutex_);
  return size_;
}

std::uint64_t Blob::size_pages() const {
  const std::size_t ps = storage_->page_size();
  return (size() + ps - 1) / ps;
}

void Blob::account(std::uint64_t offset, std::size_t len,
                   bool is_write) const {
  if (len == 0) return;
  const std::size_t ps = storage_->page_size();
  const std::uint64_t first = offset / ps;
  const std::uint64_t last = (offset + len - 1) / ps;
  const double seq = storage_->device_.config().sequential_factor;
  for (std::uint64_t p = first; p <= last; ++p) {
    // One contiguous transfer: the first page pays the full (command +
    // seek-equivalent) cost, subsequent pages stream at the discounted rate.
    storage_->device_.record(id_, p, is_write, p == first ? 1.0 : seq);
  }
  const std::uint64_t pages = last - first + 1;
  if (is_write) {
    storage_->stats_.record_write(category_, pages, len);
  } else {
    storage_->stats_.record_read(category_, pages, len);
  }
}

template <typename Raw>
void Blob::run_io(FaultSite site, const char* op, std::uint64_t offset,
                  std::size_t len, Raw&& raw) const {
  const std::shared_ptr<FaultInjector> fault = storage_->fault_injector();
  const RetryPolicy policy = storage_->retry_policy();
  unsigned fails = 0;
  std::size_t done = 0;
  while (done < len) {
    std::size_t want = len - done;
    if (fault) {
      const FaultDecision d = fault->decide(site, want);
      if (d.kind == FaultDecision::Kind::kCrash) {
        if (d.torn && site == FaultSite::kWrite && want > 1) {
          // Leave the torn trailing page a real power loss would.
          (void)raw(offset + done, done, want / 2);
        }
        std::_Exit(kCrashExitCode);
      }
      if (d.kind == FaultDecision::Kind::kTransient) {
        if (d.err == EINTR) {
          storage_->stats_.record_io_retry();
          continue;
        }
        if (++fails >= policy.max_attempts) {
          storage_->stats_.record_io_giveup();
          throw IoError(op, path_.string(), d.err);
        }
        storage_->stats_.record_io_retry();
        retry_backoff_sleep(policy, fails);
        continue;
      }
      if (d.kind == FaultDecision::Kind::kShortIo) {
        want = std::min(want, d.max_len);
      }
    }
    const ssize_t n = raw(offset + done, done, want);
    if (n < 0) {
      const int err = errno;
      if (err == EINTR) {
        storage_->stats_.record_io_retry();
        continue;
      }
      if ((err == EAGAIN || err == EIO) && ++fails < policy.max_attempts) {
        storage_->stats_.record_io_retry();
        retry_backoff_sleep(policy, fails);
        continue;
      }
      storage_->stats_.record_io_giveup();
      throw IoError(op, path_.string(), err);
    }
    MLVC_CHECK_MSG(n != 0, "unexpected EOF on blob '" << name_ << "'");
    done += static_cast<std::size_t>(n);
    fails = 0;  // forward progress resets the retry budget
  }
}

void Blob::read(std::uint64_t offset, void* buf, std::size_t len) const {
  if (len == 0) return;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    MLVC_CHECK_MSG(offset + len <= size_,
                   "read past end of blob '" << name_ << "': offset=" << offset
                                             << " len=" << len
                                             << " size=" << size_);
  }
  account(offset, len, /*is_write=*/false);
  if (auto uring = storage_->uring_backend()) {
    UringOp op;
    op.offset = offset;
    op.len = len;
    op.buf = buf;
    run_uring(*uring, std::span<UringOp>(&op, 1));
    return;
  }
  char* dst = static_cast<char*>(buf);
  run_io(FaultSite::kRead, "pread", offset, len,
         [&](std::uint64_t pos, std::size_t done, std::size_t n) -> ssize_t {
           return ::pread(fd_, dst + done, n, static_cast<off_t>(pos));
         });
}

void Blob::run_uring(UringIo& io, std::span<UringOp> ops) const {
  const std::shared_ptr<FaultInjector> fault = storage_->fault_injector();
  UringBatchContext ctx;
  ctx.fd = fd_;
  ctx.fault = fault.get();
  ctx.retry = storage_->retry_policy();
  ctx.stats = &storage_->stats_;
  ctx.path = path_.string();
  io.run_batch(ctx, ops);
}

void Blob::read_multi(std::span<const ReadOp> ops) const {
  if (ops.empty()) return;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    for (const ReadOp& op : ops) {
      MLVC_CHECK_MSG(op.offset + op.len <= size_,
                     "read past end of blob '" << name_
                                               << "': offset=" << op.offset
                                               << " len=" << op.len
                                               << " size=" << size_);
    }
  }
  // Accounting is per op — the same pages (and the same sequential discount
  // structure) as one read() call per op, so read_multi never changes what a
  // workload is charged.
  for (const ReadOp& op : ops) account(op.offset, op.len, /*is_write=*/false);

  if (auto uring = storage_->uring_backend()) {
    // One READV SQE per contiguous run, the whole scattered batch in flight
    // together: queue depth comes from the batch, not from thread count.
    std::vector<struct iovec> iov;
    iov.reserve(ops.size());  // no reallocation: UringOps point into it
    std::vector<UringOp> uops;
    for_each_contiguous_run(
        ops, [&](std::size_t i, std::size_t j, std::size_t run_len) {
          UringOp u;
          u.offset = ops[i].offset;
          u.len = run_len;
          if (j - i == 1) {
            u.buf = ops[i].buf;
          } else {
            u.iov = iov.data() + iov.size();
            u.iov_count = static_cast<unsigned>(j - i);
            for (std::size_t k = i; k < j; ++k) {
              iov.push_back({ops[k].buf, ops[k].len});
            }
            storage_->stats_.record_sqe_coalesced(j - i - 1);
          }
          uops.push_back(u);
        });
    run_uring(*uring, uops);
    return;
  }

  // Issue maximal runs of file-contiguous ops as one scattered read.
  std::vector<struct iovec> iov;
  std::vector<struct iovec> clip;
  for_each_contiguous_run(ops, [&](std::size_t i, std::size_t j,
                                   std::size_t run_len) {
    iov.clear();
    for (std::size_t k = i; k < j; ++k) {
      iov.push_back({ops[k].buf, ops[k].len});
    }
    std::size_t vec_begin = 0;
    run_io(FaultSite::kRead, "preadv", ops[i].offset, run_len,
           [&](std::uint64_t pos, std::size_t, std::size_t want) -> ssize_t {
             // Clip the remaining iovecs to at most `want` bytes, so a
             // short-I/O fault decision bounds this attempt too.
             clip.clear();
             std::size_t acc = 0;
             for (std::size_t k = vec_begin; k < iov.size() && acc < want;
                  ++k) {
               struct iovec v = iov[k];
               if (acc + v.iov_len > want) v.iov_len = want - acc;
               acc += v.iov_len;
               clip.push_back(v);
             }
             const ssize_t n =
                 ::preadv(fd_, clip.data(), static_cast<int>(clip.size()),
                          static_cast<off_t>(pos));
             if (n > 0) {
               // Retire fully-read iovecs; trim a partially-read one.
               std::size_t adv = static_cast<std::size_t>(n);
               while (adv > 0 && vec_begin < iov.size()) {
                 struct iovec& v = iov[vec_begin];
                 if (adv >= v.iov_len) {
                   adv -= v.iov_len;
                   ++vec_begin;
                 } else {
                   v.iov_base = static_cast<char*>(v.iov_base) + adv;
                   v.iov_len -= adv;
                   adv = 0;
                 }
               }
             }
             return n;
           });
  });
}

void Blob::write(std::uint64_t offset, const void* buf, std::size_t len) {
  if (len == 0) return;
  account(offset, len, /*is_write=*/true);
  if (auto uring = storage_->uring_backend()) {
    UringOp op;
    op.offset = offset;
    op.len = len;
    op.buf = const_cast<void*>(buf);  // WRITE SQEs never modify the buffer
    op.is_write = true;
    run_uring(*uring, std::span<UringOp>(&op, 1));
  } else {
    const char* src = static_cast<const char*>(buf);
    run_io(FaultSite::kWrite, "pwrite", offset, len,
           [&](std::uint64_t pos, std::size_t done, std::size_t n) -> ssize_t {
             return ::pwrite(fd_, src + done, n, static_cast<off_t>(pos));
           });
  }
  std::lock_guard<std::mutex> lock(size_mutex_);
  size_ = std::max(size_, offset + len);
}

std::uint64_t Blob::append(const void* buf, std::size_t len) {
  std::uint64_t offset;
  {
    // Reserve the range under the lock so concurrent appends don't overlap.
    std::lock_guard<std::mutex> lock(size_mutex_);
    offset = size_;
    size_ += len;
  }
  if (len == 0) return offset;
  account(offset, len, /*is_write=*/true);
  if (auto uring = storage_->uring_backend()) {
    UringOp op;
    op.offset = offset;
    op.len = len;
    op.buf = const_cast<void*>(buf);
    op.is_write = true;
    run_uring(*uring, std::span<UringOp>(&op, 1));
    return offset;
  }
  const char* src = static_cast<const char*>(buf);
  run_io(FaultSite::kWrite, "pwrite", offset, len,
         [&](std::uint64_t pos, std::size_t done, std::size_t n) -> ssize_t {
           return ::pwrite(fd_, src + done, n, static_cast<off_t>(pos));
         });
  return offset;
}

std::uint64_t Blob::reserve(std::size_t len) {
  std::lock_guard<std::mutex> lock(size_mutex_);
  const std::uint64_t offset = size_;
  size_ += len;
  return offset;
}

void Blob::truncate(std::uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    throw IoError("ftruncate", path_.string(), errno);
  }
  std::lock_guard<std::mutex> lock(size_mutex_);
  size_ = new_size;
}

void Blob::sync() {
  if (const auto fault = storage_->fault_injector()) {
    const FaultDecision d = fault->decide(FaultSite::kSync, 0);
    if (d.kind == FaultDecision::Kind::kTransient) {
      storage_->stats_.record_io_giveup();
      throw IoError("fdatasync", path_.string(), d.err);
    }
    if (d.kind == FaultDecision::Kind::kCrash) {
      std::_Exit(kCrashExitCode);
    }
  }
  while (::fdatasync(fd_) != 0) {
    const int err = errno;
    if (err == EINTR) {
      storage_->stats_.record_io_retry();
      continue;
    }
    // Never retry a failed sync: the kernel may have dropped the dirty
    // pages, so a later "successful" fdatasync would be a lie.
    storage_->stats_.record_io_giveup();
    throw IoError("fdatasync", path_.string(), err);
  }
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

namespace {
// Blob names may contain '/' for namespacing (e.g. "csr/interval_12/colidx");
// map to a flat, filesystem-safe filename.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                   c == '-' || c == '.')
                      ? c
                      : '_');
  }
  return out;
}
}  // namespace

Storage::Storage(std::filesystem::path dir, DeviceConfig config)
    : dir_(std::move(dir)), device_(config) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw IoError("mkdir", dir_.string(), ec.value());
  fault_ = FaultInjector::from_env();
  if (const char* env = std::getenv("MLVC_FAULT_RETRIES")) {
    retry_policy_.max_attempts = std::max(
        1u, static_cast<unsigned>(std::strtoul(env, nullptr, 10)));
  }
  if (const char* env = std::getenv("MLVC_FAULT_RETRY_BASE_US")) {
    retry_policy_.base_delay_us =
        static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("MLVC_URING_DEPTH")) {
    const unsigned d = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (d > 0) uring_depth_ = d;
  }
  if (const char* env = std::getenv("MLVC_IO_BACKEND")) {
    const auto kind = parse_io_backend(env);
    if (!kind) {
      throw InvalidArgument(std::string("MLVC_IO_BACKEND: unknown backend '") +
                            env + "' (want threadpool|uring)");
    }
    set_io_backend(*kind);
  }
}

Storage::~Storage() = default;

Blob& Storage::create_blob(const std::string& name, IoCategory category) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  blobs_.erase(name);  // closes any previous handle
  const std::filesystem::path path = dir_ / sanitize(name);
  std::error_code ec;
  std::filesystem::remove(path, ec);  // fresh content
  auto blob = std::unique_ptr<Blob>(
      new Blob(this, next_blob_id_++, name, category, path));
  Blob& ref = *blob;
  blobs_.emplace(name, std::move(blob));
  return ref;
}

Blob& Storage::open_blob(const std::string& name) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(name);
  if (it != blobs_.end()) return *it->second;
  // No live handle — fall back to a file left on disk by a previous process
  // (crash recovery re-opens checkpoints this way).
  const std::filesystem::path path = dir_ / sanitize(name);
  std::error_code ec;
  if (!std::filesystem::is_regular_file(path, ec) || ec) {
    throw InvalidArgument("no such blob: '" + name + "'");
  }
  auto blob = std::unique_ptr<Blob>(
      new Blob(this, next_blob_id_++, name, IoCategory::kMisc, path));
  Blob& ref = *blob;
  blobs_.emplace(name, std::move(blob));
  return ref;
}

void Storage::publish_blob(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(from);
  if (it == blobs_.end()) {
    throw InvalidArgument("no such blob: '" + from + "'");
  }
  const std::filesystem::path new_path = dir_ / sanitize(to);
  blobs_.erase(to);  // close any open handle to the file being replaced
  if (::rename(it->second->path_.c_str(), new_path.c_str()) != 0) {
    throw IoError("rename", new_path.string(), errno);
  }
  auto node = blobs_.extract(it);
  node.key() = to;
  node.mapped()->name_ = to;
  node.mapped()->path_ = new_path;
  blobs_.insert(std::move(node));
}

bool Storage::has_blob(const std::string& name) const {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  return blobs_.count(name) != 0;
}

void Storage::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_ = std::move(injector);
}

std::shared_ptr<FaultInjector> Storage::fault_injector() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return fault_;
}

void Storage::set_retry_policy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  retry_policy_ = policy;
}

RetryPolicy Storage::retry_policy() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return retry_policy_;
}

const IoBackendProbe& shared_io_backend_probe() {
  // Magic-static once-per-process resolution: the first caller runs the
  // kernel probe and freezes the strictness decision; every later caller —
  // any Storage, any thread — sees the same answer.
  static const IoBackendProbe probe = [] {
    IoBackendProbe out;
    const UringIo::ProbeResult& p = UringIo::probe();
    out.uring_available = p.available;
    if (!p.available) {
      out.fallback_reason =
          p.reason.empty() ? "io_uring unavailable" : p.reason;
    }
    return out;
  }();
  return probe;
}

IoBackendKind Storage::set_io_backend(IoBackendKind requested,
                                      unsigned queue_depth) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (queue_depth > 0) uring_depth_ = queue_depth;
  uring_fallback_.clear();
  if (requested == IoBackendKind::kUring) {
    const IoBackendProbe& p = shared_io_backend_probe();
    if (p.uring_available) {
      if (!uring_ || uring_->queue_depth() != uring_depth_) {
        uring_ = std::make_shared<UringIo>(uring_depth_);
      }
      io_backend_kind_ = IoBackendKind::kUring;
      return io_backend_kind_;
    }
    uring_fallback_ = p.fallback_reason;
    if (const char* strict = std::getenv("MLVC_IO_STRICT");
        strict && std::strtoul(strict, nullptr, 10) != 0) {
      throw Error(
          "io_uring backend requested with MLVC_IO_STRICT set but the probe "
          "failed: " +
          uring_fallback_);
    }
  }
  uring_.reset();
  io_backend_kind_ = IoBackendKind::kThreadPool;
  return io_backend_kind_;
}

IoBackendKind Storage::io_backend() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return io_backend_kind_;
}

std::string Storage::io_backend_fallback() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return uring_fallback_;
}

std::shared_ptr<UringIo> Storage::uring_backend() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return uring_;
}

void Storage::remove_blob(const std::string& name) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return;
  const std::filesystem::path path = it->second->path_;
  blobs_.erase(it);
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

// ---------------------------------------------------------------------------
// TempDir
// ---------------------------------------------------------------------------

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = std::filesystem::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const std::uint64_t n =
        counter.fetch_add(1) ^
        static_cast<std::uint64_t>(::getpid()) << 32;
    auto candidate =
        base / (prefix + "_" + std::to_string(n) + "_" +
                std::to_string(attempt));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw IoError("create temp dir", base.string(), EEXIST);
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
}

}  // namespace mlvc::ssd
