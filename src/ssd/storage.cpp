#include "ssd/storage.hpp"

#include <fcntl.h>
#include <limits.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cstring>

namespace mlvc::ssd {

// ---------------------------------------------------------------------------
// Blob
// ---------------------------------------------------------------------------

Blob::Blob(Storage* storage, std::uint64_t id, std::string name,
           IoCategory category, std::filesystem::path path)
    : storage_(storage),
      id_(id),
      name_(std::move(name)),
      category_(category),
      path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) throw IoError("open", path_.string(), errno);
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) throw IoError("lseek", path_.string(), errno);
  size_ = static_cast<std::uint64_t>(end);
}

Blob::~Blob() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t Blob::size() const {
  std::lock_guard<std::mutex> lock(size_mutex_);
  return size_;
}

std::uint64_t Blob::size_pages() const {
  const std::size_t ps = storage_->page_size();
  return (size() + ps - 1) / ps;
}

void Blob::account(std::uint64_t offset, std::size_t len,
                   bool is_write) const {
  if (len == 0) return;
  const std::size_t ps = storage_->page_size();
  const std::uint64_t first = offset / ps;
  const std::uint64_t last = (offset + len - 1) / ps;
  const double seq = storage_->device_.config().sequential_factor;
  for (std::uint64_t p = first; p <= last; ++p) {
    // One contiguous transfer: the first page pays the full (command +
    // seek-equivalent) cost, subsequent pages stream at the discounted rate.
    storage_->device_.record(id_, p, is_write, p == first ? 1.0 : seq);
  }
  const std::uint64_t pages = last - first + 1;
  if (is_write) {
    storage_->stats_.record_write(category_, pages, len);
  } else {
    storage_->stats_.record_read(category_, pages, len);
  }
}

void Blob::read(std::uint64_t offset, void* buf, std::size_t len) const {
  if (len == 0) return;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    MLVC_CHECK_MSG(offset + len <= size_,
                   "read past end of blob '" << name_ << "': offset=" << offset
                                             << " len=" << len
                                             << " size=" << size_);
  }
  account(offset, len, /*is_write=*/false);
  char* dst = static_cast<char*>(buf);
  std::size_t remaining = len;
  std::uint64_t pos = offset;
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, dst, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("pread", path_.string(), errno);
    }
    MLVC_CHECK_MSG(n != 0, "unexpected EOF reading blob '" << name_ << "'");
    dst += n;
    pos += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
}

void Blob::read_multi(std::span<const ReadOp> ops) const {
  if (ops.empty()) return;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    for (const ReadOp& op : ops) {
      MLVC_CHECK_MSG(op.offset + op.len <= size_,
                     "read past end of blob '" << name_
                                               << "': offset=" << op.offset
                                               << " len=" << op.len
                                               << " size=" << size_);
    }
  }
  // Accounting is per op — the same pages (and the same sequential discount
  // structure) as one read() call per op, so read_multi never changes what a
  // workload is charged.
  for (const ReadOp& op : ops) account(op.offset, op.len, /*is_write=*/false);

  // Issue maximal runs of file-contiguous ops as one scattered read.
  std::size_t i = 0;
  std::vector<struct iovec> iov;
  while (i < ops.size()) {
    if (ops[i].len == 0) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < ops.size() && ops[j].len > 0 && iov.size() + (j - i) < IOV_MAX &&
           ops[j].offset == ops[j - 1].offset + ops[j - 1].len) {
      ++j;
    }
    iov.clear();
    for (std::size_t k = i; k < j; ++k) {
      iov.push_back({ops[k].buf, ops[k].len});
    }
    std::uint64_t pos = ops[i].offset;
    std::size_t vec_begin = 0;
    while (vec_begin < iov.size()) {
      const ssize_t n =
          ::preadv(fd_, iov.data() + vec_begin,
                   static_cast<int>(iov.size() - vec_begin),
                   static_cast<off_t>(pos));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw IoError("preadv", path_.string(), errno);
      }
      MLVC_CHECK_MSG(n != 0, "unexpected EOF reading blob '" << name_ << "'");
      pos += static_cast<std::uint64_t>(n);
      // Retire fully-read iovecs; trim a partially-read one in place.
      std::size_t done = static_cast<std::size_t>(n);
      while (done > 0 && vec_begin < iov.size()) {
        struct iovec& v = iov[vec_begin];
        if (done >= v.iov_len) {
          done -= v.iov_len;
          ++vec_begin;
        } else {
          v.iov_base = static_cast<char*>(v.iov_base) + done;
          v.iov_len -= done;
          done = 0;
        }
      }
    }
    i = j;
  }
}

void Blob::write(std::uint64_t offset, const void* buf, std::size_t len) {
  if (len == 0) return;
  account(offset, len, /*is_write=*/true);
  const char* src = static_cast<const char*>(buf);
  std::size_t remaining = len;
  std::uint64_t pos = offset;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd_, src, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("pwrite", path_.string(), errno);
    }
    src += n;
    pos += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
  std::lock_guard<std::mutex> lock(size_mutex_);
  size_ = std::max(size_, offset + len);
}

std::uint64_t Blob::append(const void* buf, std::size_t len) {
  std::uint64_t offset;
  {
    // Reserve the range under the lock so concurrent appends don't overlap.
    std::lock_guard<std::mutex> lock(size_mutex_);
    offset = size_;
    size_ += len;
  }
  if (len == 0) return offset;
  account(offset, len, /*is_write=*/true);
  const char* src = static_cast<const char*>(buf);
  std::size_t remaining = len;
  std::uint64_t pos = offset;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd_, src, remaining, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError("pwrite", path_.string(), errno);
    }
    src += n;
    pos += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
  return offset;
}

std::uint64_t Blob::reserve(std::size_t len) {
  std::lock_guard<std::mutex> lock(size_mutex_);
  const std::uint64_t offset = size_;
  size_ += len;
  return offset;
}

void Blob::truncate(std::uint64_t new_size) {
  if (::ftruncate(fd_, static_cast<off_t>(new_size)) != 0) {
    throw IoError("ftruncate", path_.string(), errno);
  }
  std::lock_guard<std::mutex> lock(size_mutex_);
  size_ = new_size;
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

namespace {
// Blob names may contain '/' for namespacing (e.g. "csr/interval_12/colidx");
// map to a flat, filesystem-safe filename.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                   c == '-' || c == '.')
                      ? c
                      : '_');
  }
  return out;
}
}  // namespace

Storage::Storage(std::filesystem::path dir, DeviceConfig config)
    : dir_(std::move(dir)), device_(config) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) throw IoError("mkdir", dir_.string(), ec.value());
}

Storage::~Storage() = default;

Blob& Storage::create_blob(const std::string& name, IoCategory category) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  blobs_.erase(name);  // closes any previous handle
  const std::filesystem::path path = dir_ / sanitize(name);
  std::error_code ec;
  std::filesystem::remove(path, ec);  // fresh content
  auto blob = std::unique_ptr<Blob>(
      new Blob(this, next_blob_id_++, name, category, path));
  Blob& ref = *blob;
  blobs_.emplace(name, std::move(blob));
  return ref;
}

Blob& Storage::open_blob(const std::string& name) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(name);
  if (it == blobs_.end()) {
    throw InvalidArgument("no such blob: '" + name + "'");
  }
  return *it->second;
}

bool Storage::has_blob(const std::string& name) const {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  return blobs_.count(name) != 0;
}

void Storage::remove_blob(const std::string& name) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return;
  const std::filesystem::path path = it->second->path_;
  blobs_.erase(it);
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

// ---------------------------------------------------------------------------
// TempDir
// ---------------------------------------------------------------------------

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = std::filesystem::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const std::uint64_t n =
        counter.fetch_add(1) ^
        static_cast<std::uint64_t>(::getpid()) << 32;
    auto candidate =
        base / (prefix + "_" + std::to_string(n) + "_" +
                std::to_string(attempt));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw IoError("create temp dir", base.string(), EEXIST);
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
}

}  // namespace mlvc::ssd
