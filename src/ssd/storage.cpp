#include "ssd/storage.hpp"

#include <fcntl.h>
#include <limits.h>
#include <stdio.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

#include "ssd/fault_injector.hpp"
#include "ssd/uring_io.hpp"

namespace mlvc::ssd {

void retry_backoff_sleep(const RetryPolicy& policy, unsigned fails) {
  const unsigned shift = std::min(fails > 0 ? fails - 1 : 0u, 20u);
  std::uint64_t delay = static_cast<std::uint64_t>(policy.base_delay_us)
                        << shift;
  delay = std::min<std::uint64_t>(delay, policy.max_delay_us);
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
}

namespace {
// Walk maximal runs of file-contiguous ops: fn(first, past_last, run_bytes).
// Shared by the preadv path and the io_uring path so both backends coalesce
// identically (zero-length ops skipped, runs capped at IOV_MAX spans).
template <typename Fn>
void for_each_contiguous_run(std::span<const ReadOp> ops, Fn&& fn) {
  std::size_t i = 0;
  while (i < ops.size()) {
    if (ops[i].len == 0) {
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    std::size_t run_len = ops[i].len;
    while (j < ops.size() && ops[j].len > 0 && (j - i) < IOV_MAX &&
           ops[j].offset == ops[j - 1].offset + ops[j - 1].len) {
      run_len += ops[j].len;
      ++j;
    }
    fn(i, j, run_len);
    i = j;
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// Blob
// ---------------------------------------------------------------------------

Blob::Blob(Storage* storage, std::uint64_t id, std::string name,
           IoCategory category, std::vector<std::filesystem::path> paths)
    : storage_(storage),
      id_(id),
      name_(std::move(name)),
      category_(category),
      paths_(std::move(paths)) {
  fds_.reserve(paths_.size());
  for (const auto& p : paths_) {
    const int fd = ::open(p.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0) {
      const int err = errno;
      for (int open_fd : fds_) ::close(open_fd);
      throw IoError("open", p.string(), err);
    }
    fds_.push_back(fd);
  }
  // Reconstruct the logical size from the device files via the inverse
  // stripe map: the device holding the blob's last stripe determines the
  // logical end (crash recovery re-opens a striped checkpoint this way).
  const unsigned ndev = static_cast<unsigned>(fds_.size());
  const std::size_t unit = storage_->stripe_unit();
  for (unsigned d = 0; d < ndev; ++d) {
    const off_t end = ::lseek(fds_[d], 0, SEEK_END);
    if (end < 0) throw IoError("lseek", paths_[d].string(), errno);
    if (end == 0) continue;
    const auto e = static_cast<std::uint64_t>(end);
    if (ndev == 1) {
      size_ = std::max(size_, e);
      continue;
    }
    const std::uint64_t last = e - 1;  // last device-local byte
    const std::uint64_t global_stripe = (last / unit) * ndev + d;
    size_ = std::max(size_, global_stripe * unit + last % unit + 1);
  }
}

Blob::~Blob() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

std::uint64_t Blob::size() const {
  std::lock_guard<std::mutex> lock(size_mutex_);
  return size_;
}

std::uint64_t Blob::size_pages() const {
  const std::size_t ps = storage_->page_size();
  return (size() + ps - 1) / ps;
}

void Blob::account(std::uint64_t offset, std::size_t len,
                   bool is_write) const {
  if (len == 0) return;
  const std::size_t ps = storage_->page_size();
  const std::uint64_t first = offset / ps;
  const std::uint64_t last = (offset + len - 1) / ps;
  const double seq = storage_->device_.config().sequential_factor;
  const unsigned ndev = storage_->num_devices();
  const std::uint64_t pages_per_unit = storage_->stripe_unit() / ps;
  // The stripe unit is a whole number of pages, so every page lives on
  // exactly one device; charge it to that device's channel group. Each
  // device's first page of the transfer pays the full (command +
  // seek-equivalent) cost, its subsequent pages stream at the discounted
  // rate — striping splits one logical transfer into one sequential
  // transfer per device.
  std::uint64_t first_paid = 0;  // bitmask; num_devices <= 64 by validate()
  for (std::uint64_t p = first; p <= last; ++p) {
    const unsigned dev =
        ndev == 1 ? 0u
                  : static_cast<unsigned>((p / pages_per_unit) % ndev);
    const bool dev_first = (first_paid >> dev & 1) == 0;
    first_paid |= std::uint64_t{1} << dev;
    storage_->device_.record(id_, p, dev, is_write, dev_first ? 1.0 : seq);
  }
  const std::uint64_t pages = last - first + 1;
  if (is_write) {
    storage_->stats_.record_write(category_, pages, len);
  } else {
    storage_->stats_.record_read(category_, pages, len);
  }
}

template <typename Raw>
void Blob::run_io(FaultSite site, const char* op, unsigned dev,
                  std::uint64_t offset, std::size_t len, Raw&& raw) const {
  const std::shared_ptr<FaultInjector> fault = storage_->fault_injector();
  const RetryPolicy policy = storage_->retry_policy();
  unsigned fails = 0;
  std::size_t done = 0;
  while (done < len) {
    std::size_t want = len - done;
    if (fault) {
      const FaultDecision d = fault->decide(site, want);
      if (d.kind == FaultDecision::Kind::kCrash) {
        if (d.torn && site == FaultSite::kWrite && want > 1) {
          // Leave the torn trailing page a real power loss would.
          (void)raw(offset + done, done, want / 2);
        }
        std::_Exit(kCrashExitCode);
      }
      if (d.kind == FaultDecision::Kind::kTransient) {
        if (d.err == EINTR) {
          storage_->stats_.record_io_retry();
          continue;
        }
        if (++fails >= policy.max_attempts) {
          storage_->stats_.record_io_giveup();
          throw IoError(op, paths_[dev].string(), d.err);
        }
        storage_->stats_.record_io_retry();
        retry_backoff_sleep(policy, fails);
        continue;
      }
      if (d.kind == FaultDecision::Kind::kShortIo) {
        want = std::min(want, d.max_len);
      }
    }
    const ssize_t n = raw(offset + done, done, want);
    if (n < 0) {
      const int err = errno;
      if (err == EINTR) {
        storage_->stats_.record_io_retry();
        continue;
      }
      if ((err == EAGAIN || err == EIO) && ++fails < policy.max_attempts) {
        storage_->stats_.record_io_retry();
        retry_backoff_sleep(policy, fails);
        continue;
      }
      storage_->stats_.record_io_giveup();
      throw IoError(op, paths_[dev].string(), err);
    }
    MLVC_CHECK_MSG(n != 0, "unexpected EOF on blob '" << name_ << "'");
    done += static_cast<std::size_t>(n);
    fails = 0;  // forward progress resets the retry budget
  }
}

void Blob::read(std::uint64_t offset, void* buf, std::size_t len) const {
  if (len == 0) return;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    MLVC_CHECK_MSG(offset + len <= size_,
                   "read past end of blob '" << name_ << "': offset=" << offset
                                             << " len=" << len
                                             << " size=" << size_);
  }
  account(offset, len, /*is_write=*/false);
  ReadOp op;
  op.offset = offset;
  op.buf = buf;
  op.len = len;
  dispatch_reads(std::span<const ReadOp>(&op, 1));
}

void Blob::run_uring(UringIo& io, unsigned dev,
                     std::span<UringOp> ops) const {
  const std::shared_ptr<FaultInjector> fault = storage_->fault_injector();
  UringBatchContext ctx;
  ctx.fd = fds_[dev];
  ctx.fault = fault.get();
  ctx.retry = storage_->retry_policy();
  ctx.stats = &storage_->stats_;
  ctx.path = paths_[dev].string();
  io.run_batch(ctx, ops);
}

void Blob::read_multi(std::span<const ReadOp> ops) const {
  if (ops.empty()) return;
  {
    std::lock_guard<std::mutex> lock(size_mutex_);
    for (const ReadOp& op : ops) {
      MLVC_CHECK_MSG(op.offset + op.len <= size_,
                     "read past end of blob '" << name_
                                               << "': offset=" << op.offset
                                               << " len=" << op.len
                                               << " size=" << size_);
    }
  }
  // Accounting is per op — the same pages (and the same sequential discount
  // structure) as one read() call per op, so read_multi never changes what a
  // workload is charged.
  for (const ReadOp& op : ops) account(op.offset, op.len, /*is_write=*/false);
  dispatch_reads(ops);
}

void Blob::dispatch_reads(std::span<const ReadOp> ops) const {
  const unsigned ndev = static_cast<unsigned>(fds_.size());
  if (ndev == 1) {
    // Identity mapping: logical offsets are device offsets, the batch is
    // exactly what the caller handed us.
    dispatch_reads_device(0, ops);
    return;
  }
  // Split every op into per-device segments with device-local offsets.
  // Within one device, consecutive stripes are contiguous in its file, so
  // the per-device coalescer still merges large logical extents into few
  // SQEs/preadv calls.
  const std::size_t unit = storage_->stripe_unit();
  std::vector<std::vector<ReadOp>> per_dev(ndev);
  for (const ReadOp& op : ops) {
    for_each_stripe_segment(
        op.offset, op.len, unit, ndev,
        [&](unsigned dev, std::uint64_t dev_off, std::size_t buf_off,
            std::size_t seg_len) {
          ReadOp seg;
          seg.offset = dev_off;
          seg.buf = static_cast<char*>(op.buf) + buf_off;
          seg.len = seg_len;
          per_dev[dev].push_back(seg);
        });
  }
  for (unsigned d = 0; d < ndev; ++d) {
    if (!per_dev[d].empty()) dispatch_reads_device(d, per_dev[d]);
  }
}

void Blob::dispatch_reads_device(unsigned dev,
                                 std::span<const ReadOp> ops) const {
  if (auto uring = storage_->uring_backend(dev)) {
    // One READV SQE per contiguous run, the whole scattered batch in flight
    // together: queue depth comes from the batch, not from thread count.
    // Each device has its own ring, so batches to different devices never
    // serialize behind one submission queue.
    std::vector<struct iovec> iov;
    iov.reserve(ops.size());  // no reallocation: UringOps point into it
    std::vector<UringOp> uops;
    for_each_contiguous_run(
        ops, [&](std::size_t i, std::size_t j, std::size_t run_len) {
          UringOp u;
          u.offset = ops[i].offset;
          u.len = run_len;
          if (j - i == 1) {
            u.buf = ops[i].buf;
          } else {
            u.iov = iov.data() + iov.size();
            u.iov_count = static_cast<unsigned>(j - i);
            for (std::size_t k = i; k < j; ++k) {
              iov.push_back({ops[k].buf, ops[k].len});
            }
            storage_->stats_.record_sqe_coalesced(j - i - 1);
          }
          uops.push_back(u);
        });
    run_uring(*uring, dev, uops);
    return;
  }

  // Issue maximal runs of file-contiguous ops as one scattered read.
  std::vector<struct iovec> iov;
  std::vector<struct iovec> clip;
  for_each_contiguous_run(ops, [&](std::size_t i, std::size_t j,
                                   std::size_t run_len) {
    iov.clear();
    for (std::size_t k = i; k < j; ++k) {
      iov.push_back({ops[k].buf, ops[k].len});
    }
    std::size_t vec_begin = 0;
    run_io(FaultSite::kRead, "preadv", dev, ops[i].offset, run_len,
           [&](std::uint64_t pos, std::size_t, std::size_t want) -> ssize_t {
             // Clip the remaining iovecs to at most `want` bytes, so a
             // short-I/O fault decision bounds this attempt too.
             clip.clear();
             std::size_t acc = 0;
             for (std::size_t k = vec_begin; k < iov.size() && acc < want;
                  ++k) {
               struct iovec v = iov[k];
               if (acc + v.iov_len > want) v.iov_len = want - acc;
               acc += v.iov_len;
               clip.push_back(v);
             }
             const ssize_t n = ::preadv(fds_[dev], clip.data(),
                                        static_cast<int>(clip.size()),
                                        static_cast<off_t>(pos));
             if (n > 0) {
               // Retire fully-read iovecs; trim a partially-read one.
               std::size_t adv = static_cast<std::size_t>(n);
               while (adv > 0 && vec_begin < iov.size()) {
                 struct iovec& v = iov[vec_begin];
                 if (adv >= v.iov_len) {
                   adv -= v.iov_len;
                   ++vec_begin;
                 } else {
                   v.iov_base = static_cast<char*>(v.iov_base) + adv;
                   v.iov_len -= adv;
                   adv = 0;
                 }
               }
             }
             return n;
           });
  });
}

void Blob::dispatch_write(std::uint64_t offset, const void* buf,
                          std::size_t len) {
  const unsigned ndev = static_cast<unsigned>(fds_.size());
  const std::size_t unit = storage_->stripe_unit();
  const char* src = static_cast<const char*>(buf);
  // Collect per-device segments first so the uring path can put a device's
  // whole stripe train in flight as one batch.
  std::vector<std::vector<UringOp>> per_dev(ndev);
  for_each_stripe_segment(
      offset, len, unit, ndev,
      [&](unsigned dev, std::uint64_t dev_off, std::size_t buf_off,
          std::size_t seg_len) {
        UringOp op;
        op.offset = dev_off;
        op.len = seg_len;
        // WRITE SQEs never modify the buffer
        op.buf = const_cast<char*>(src + buf_off);
        op.is_write = true;
        per_dev[dev].push_back(op);
      });
  for (unsigned d = 0; d < ndev; ++d) {
    if (per_dev[d].empty()) continue;
    if (auto uring = storage_->uring_backend(d)) {
      run_uring(*uring, d, per_dev[d]);
      continue;
    }
    for (const UringOp& op : per_dev[d]) {
      const char* seg = static_cast<const char*>(op.buf);
      run_io(FaultSite::kWrite, "pwrite", d, op.offset, op.len,
             [&](std::uint64_t pos, std::size_t done,
                 std::size_t n) -> ssize_t {
               return ::pwrite(fds_[d], seg + done, n,
                               static_cast<off_t>(pos));
             });
    }
  }
}

void Blob::write(std::uint64_t offset, const void* buf, std::size_t len) {
  if (len == 0) return;
  account(offset, len, /*is_write=*/true);
  dispatch_write(offset, buf, len);
  std::lock_guard<std::mutex> lock(size_mutex_);
  size_ = std::max(size_, offset + len);
}

std::uint64_t Blob::append(const void* buf, std::size_t len) {
  std::uint64_t offset;
  {
    // Reserve the range under the lock so concurrent appends don't overlap.
    std::lock_guard<std::mutex> lock(size_mutex_);
    offset = size_;
    size_ += len;
  }
  if (len == 0) return offset;
  account(offset, len, /*is_write=*/true);
  dispatch_write(offset, buf, len);
  return offset;
}

std::uint64_t Blob::reserve(std::size_t len) {
  std::lock_guard<std::mutex> lock(size_mutex_);
  const std::uint64_t offset = size_;
  size_ += len;
  return offset;
}

void Blob::truncate(std::uint64_t new_size) {
  // Device d keeps `unit` bytes for every full stripe it owns below the cut,
  // plus the partial tail if the cut lands inside one of its stripes.
  const unsigned ndev = static_cast<unsigned>(fds_.size());
  const std::size_t unit = storage_->stripe_unit();
  for (unsigned d = 0; d < ndev; ++d) {
    std::uint64_t dev_size = new_size;
    if (ndev > 1) {
      const std::uint64_t full = new_size / unit;  // whole stripes below cut
      const std::uint64_t rem = new_size % unit;
      const std::uint64_t base = (full / ndev) * unit;
      const unsigned r = static_cast<unsigned>(full % ndev);
      dev_size = base + (d < r ? unit : (d == r ? rem : 0));
    }
    if (::ftruncate(fds_[d], static_cast<off_t>(dev_size)) != 0) {
      throw IoError("ftruncate", paths_[d].string(), errno);
    }
  }
  std::lock_guard<std::mutex> lock(size_mutex_);
  size_ = new_size;
}

void Blob::sync() {
  if (const auto fault = storage_->fault_injector()) {
    const FaultDecision d = fault->decide(FaultSite::kSync, 0);
    if (d.kind == FaultDecision::Kind::kTransient) {
      storage_->stats_.record_io_giveup();
      throw IoError("fdatasync", paths_[0].string(), d.err);
    }
    if (d.kind == FaultDecision::Kind::kCrash) {
      std::_Exit(kCrashExitCode);
    }
  }
  for (std::size_t d = 0; d < fds_.size(); ++d) {
    while (::fdatasync(fds_[d]) != 0) {
      const int err = errno;
      if (err == EINTR) {
        storage_->stats_.record_io_retry();
        continue;
      }
      // Never retry a failed sync: the kernel may have dropped the dirty
      // pages, so a later "successful" fdatasync would be a lie.
      storage_->stats_.record_io_giveup();
      throw IoError("fdatasync", paths_[d].string(), err);
    }
  }
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

namespace {
// Blob names may contain '/' for namespacing (e.g. "csr/interval_12/colidx");
// map to a flat, filesystem-safe filename.
std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    out.push_back((std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                   c == '-' || c == '.')
                      ? c
                      : '_');
  }
  return out;
}

constexpr const char* kStripeManifestName = "stripe.manifest";
constexpr const char* kStripeMagic = "mlvc-stripe";
constexpr unsigned kStripeManifestVersion = 1;
}  // namespace

bool read_stripe_manifest(const std::filesystem::path& dir,
                          StripeManifest* out) {
  std::ifstream in(dir / kStripeManifestName);
  if (!in) return false;
  std::string magic;
  StripeManifest m;
  in >> magic >> m.version;
  if (!in || magic != kStripeMagic) {
    throw Error("corrupt stripe manifest in '" + dir.string() + "'");
  }
  if (m.version > kStripeManifestVersion) {
    throw Error("stripe manifest in '" + dir.string() + "' has version " +
                std::to_string(m.version) + "; this build understands <= " +
                std::to_string(kStripeManifestVersion));
  }
  std::string key;
  while (in >> key) {
    if (key == "devices") {
      in >> m.num_devices;
    } else if (key == "stripe_unit") {
      in >> m.stripe_unit_bytes;
    } else {
      std::string skip;
      in >> skip;  // forward-compatible: unknown keys ignored
    }
  }
  if (m.num_devices < 1 || m.stripe_unit_bytes == 0) {
    throw Error("corrupt stripe manifest in '" + dir.string() + "'");
  }
  *out = m;
  return true;
}

void write_stripe_manifest(const std::filesystem::path& dir,
                           const StripeManifest& m) {
  const std::filesystem::path path = dir / kStripeManifestName;
  std::ofstream out(path, std::ios::trunc);
  out << kStripeMagic << ' ' << m.version << '\n'
      << "devices " << m.num_devices << '\n'
      << "stripe_unit " << m.stripe_unit_bytes << '\n';
  out.flush();
  if (!out) throw IoError("write", path.string(), EIO);
}

DeviceConfig Storage::resolve_stripe_layout(const std::filesystem::path& dir,
                                            DeviceConfig config) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw IoError("mkdir", dir.string(), ec.value());
  if (const char* env = std::getenv("MLVC_DEVICES")) {
    const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (n > 0) config.num_devices = n;
  }
  if (const char* env = std::getenv("MLVC_STRIPE_UNIT")) {
    const std::size_t u =
        static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
    if (u > 0) config.stripe_unit_bytes = u;
  }
  // An existing store's manifest is authoritative: the stripe layout is
  // baked into the files, so reopening under a different MLVC_DEVICES must
  // not scramble them.
  StripeManifest manifest;
  if (read_stripe_manifest(dir, &manifest)) {
    config.num_devices = manifest.num_devices;
    config.stripe_unit_bytes = manifest.stripe_unit_bytes;
    config.validate();
    return config;
  }
  // Manifest-less but non-empty: a v1 store from before striping existed.
  // Force single-device so its files keep reading byte-for-byte.
  if (!std::filesystem::is_empty(dir, ec) && !ec) {
    config.num_devices = 1;
    config.validate();
    return config;
  }
  config.validate();
  if (config.num_devices > 1) {
    for (unsigned d = 0; d < config.num_devices; ++d) {
      std::filesystem::create_directories(dir / ("dev" + std::to_string(d)),
                                          ec);
      if (ec) throw IoError("mkdir", dir.string(), ec.value());
    }
    manifest.version = kStripeManifestVersion;
    manifest.num_devices = config.num_devices;
    manifest.stripe_unit_bytes = config.stripe_unit_bytes;
    write_stripe_manifest(dir, manifest);
  }
  return config;
}

std::vector<std::filesystem::path> Storage::blob_paths(
    const std::string& name) const {
  const unsigned ndev = device_.config().num_devices;
  std::vector<std::filesystem::path> paths;
  paths.reserve(ndev);
  if (ndev == 1) {
    paths.push_back(dir_ / sanitize(name));
  } else {
    for (unsigned d = 0; d < ndev; ++d) {
      paths.push_back(dir_ / ("dev" + std::to_string(d)) / sanitize(name));
    }
  }
  return paths;
}

Storage::Storage(std::filesystem::path dir, DeviceConfig config)
    : dir_(std::move(dir)), device_(resolve_stripe_layout(dir_, config)) {
  fault_ = FaultInjector::from_env();
  if (const char* env = std::getenv("MLVC_FAULT_RETRIES")) {
    retry_policy_.max_attempts = std::max(
        1u, static_cast<unsigned>(std::strtoul(env, nullptr, 10)));
  }
  if (const char* env = std::getenv("MLVC_FAULT_RETRY_BASE_US")) {
    retry_policy_.base_delay_us =
        static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("MLVC_URING_DEPTH")) {
    const unsigned d = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (d > 0) uring_depth_ = d;
  }
  if (const char* env = std::getenv("MLVC_IO_BACKEND")) {
    const auto kind = parse_io_backend(env);
    if (!kind) {
      throw InvalidArgument(std::string("MLVC_IO_BACKEND: unknown backend '") +
                            env + "' (want threadpool|uring)");
    }
    set_io_backend(*kind);
  }
}

Storage::~Storage() = default;

Blob& Storage::create_blob(const std::string& name, IoCategory category) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  blobs_.erase(name);  // closes any previous handle
  std::vector<std::filesystem::path> paths = blob_paths(name);
  std::error_code ec;
  for (const auto& p : paths) std::filesystem::remove(p, ec);  // fresh content
  auto blob = std::unique_ptr<Blob>(
      new Blob(this, next_blob_id_++, name, category, std::move(paths)));
  Blob& ref = *blob;
  blobs_.emplace(name, std::move(blob));
  return ref;
}

Blob& Storage::open_blob(const std::string& name) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(name);
  if (it != blobs_.end()) return *it->second;
  // No live handle — fall back to files left on disk by a previous process
  // (crash recovery re-opens checkpoints this way). Any one device file is
  // evidence enough: a crash between the per-device creates may have left
  // the others missing, and the Blob ctor recreates them empty.
  std::vector<std::filesystem::path> paths = blob_paths(name);
  std::error_code ec;
  const bool any_on_disk =
      std::any_of(paths.begin(), paths.end(), [&](const auto& p) {
        return std::filesystem::is_regular_file(p, ec) && !ec;
      });
  if (!any_on_disk) {
    throw InvalidArgument("no such blob: '" + name + "'");
  }
  auto blob = std::unique_ptr<Blob>(new Blob(this, next_blob_id_++, name,
                                             IoCategory::kMisc,
                                             std::move(paths)));
  Blob& ref = *blob;
  blobs_.emplace(name, std::move(blob));
  return ref;
}

void Storage::publish_blob(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(from);
  if (it == blobs_.end()) {
    throw InvalidArgument("no such blob: '" + from + "'");
  }
  const std::vector<std::filesystem::path> new_paths = blob_paths(to);
  blobs_.erase(to);  // close any open handle to the files being replaced
  // Each per-device rename is atomic; the set as a whole is not. Crash
  // faults fire only on read/write/sync sites, so the fault harness never
  // interrupts a publish — see DESIGN.md §4d for the real-device caveat.
  Blob& blob = *it->second;
  for (std::size_t d = 0; d < blob.paths_.size(); ++d) {
    if (::rename(blob.paths_[d].c_str(), new_paths[d].c_str()) != 0) {
      throw IoError("rename", new_paths[d].string(), errno);
    }
  }
  auto node = blobs_.extract(it);
  node.key() = to;
  node.mapped()->name_ = to;
  node.mapped()->paths_ = new_paths;
  blobs_.insert(std::move(node));
}

bool Storage::has_blob(const std::string& name) const {
  {
    std::lock_guard<std::mutex> lock(blobs_mutex_);
    if (blobs_.count(name) != 0) return true;
  }
  // Mirror open_blob's recovery fallback: blobs left on disk by a previous
  // process count as present even before a handle exists — otherwise
  // presence probes on a reopened store (e.g. the stored-transpose
  // auto-attach) say "no" for blobs open_blob would happily serve.
  const std::vector<std::filesystem::path> paths = blob_paths(name);
  std::error_code ec;
  return std::any_of(paths.begin(), paths.end(), [&](const auto& p) {
    return std::filesystem::is_regular_file(p, ec) && !ec;
  });
}

void Storage::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_ = std::move(injector);
}

std::shared_ptr<FaultInjector> Storage::fault_injector() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return fault_;
}

void Storage::set_retry_policy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  retry_policy_ = policy;
}

RetryPolicy Storage::retry_policy() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return retry_policy_;
}

const IoBackendProbe& shared_io_backend_probe() {
  // Magic-static once-per-process resolution: the first caller runs the
  // kernel probe and freezes the strictness decision; every later caller —
  // any Storage, any thread — sees the same answer.
  static const IoBackendProbe probe = [] {
    IoBackendProbe out;
    const UringIo::ProbeResult& p = UringIo::probe();
    out.uring_available = p.available;
    if (!p.available) {
      out.fallback_reason =
          p.reason.empty() ? "io_uring unavailable" : p.reason;
    }
    return out;
  }();
  return probe;
}

IoBackendKind Storage::set_io_backend(IoBackendKind requested,
                                      unsigned queue_depth) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (queue_depth > 0) uring_depth_ = queue_depth;
  uring_fallback_.clear();
  if (requested == IoBackendKind::kUring) {
    const IoBackendProbe& p = shared_io_backend_probe();
    if (p.uring_available) {
      // One ring per device: submissions to different devices must never
      // share (and so serialize behind) one submission queue.
      const unsigned ndev = device_.config().num_devices;
      const bool reuse = urings_.size() == ndev && !urings_.empty() &&
                         urings_[0]->queue_depth() == uring_depth_;
      if (!reuse) {
        urings_.clear();
        urings_.reserve(ndev);
        for (unsigned d = 0; d < ndev; ++d) {
          urings_.push_back(std::make_shared<UringIo>(uring_depth_));
        }
      }
      io_backend_kind_ = IoBackendKind::kUring;
      return io_backend_kind_;
    }
    uring_fallback_ = p.fallback_reason;
    if (const char* strict = std::getenv("MLVC_IO_STRICT");
        strict && std::strtoul(strict, nullptr, 10) != 0) {
      throw Error(
          "io_uring backend requested with MLVC_IO_STRICT set but the probe "
          "failed: " +
          uring_fallback_);
    }
  }
  urings_.clear();
  io_backend_kind_ = IoBackendKind::kThreadPool;
  return io_backend_kind_;
}

IoBackendKind Storage::io_backend() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return io_backend_kind_;
}

std::string Storage::io_backend_fallback() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return uring_fallback_;
}

std::shared_ptr<UringIo> Storage::uring_backend(unsigned dev) const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  if (dev >= urings_.size()) return nullptr;
  return urings_[dev];
}

void Storage::remove_blob(const std::string& name) {
  std::lock_guard<std::mutex> lock(blobs_mutex_);
  auto it = blobs_.find(name);
  if (it == blobs_.end()) return;
  const std::vector<std::filesystem::path> paths = it->second->paths_;
  blobs_.erase(it);
  std::error_code ec;
  for (const auto& p : paths) std::filesystem::remove(p, ec);
}

// ---------------------------------------------------------------------------
// TempDir
// ---------------------------------------------------------------------------

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = std::filesystem::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    const std::uint64_t n =
        counter.fetch_add(1) ^
        static_cast<std::uint64_t>(::getpid()) << 32;
    auto candidate =
        base / (prefix + "_" + std::to_string(n) + "_" +
                std::to_string(attempt));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw IoError("create temp dir", base.string(), EEXIST);
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
}

}  // namespace mlvc::ssd
