#include "ssd/fault_injector.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace mlvc::ssd {

FaultProfile FaultInjector::named_profile(std::string_view name, double rate) {
  FaultProfile p;
  if (name == "off" || name.empty()) return p;
  if (name == "transient") {
    p.transient_read_rate = rate;
    p.transient_write_rate = rate;
    return p;
  }
  if (name == "short-io") {
    p.short_read_rate = rate;
    p.short_write_rate = rate;
    return p;
  }
  if (name == "torn-page") {
    // Inert during steady-state runs; bites when a crash point is armed
    // (MLVC_FAULT_CRASH_AFTER / crash_after_writes), leaving a torn trailing
    // page for recovery to absorb.
    p.tear_on_crash = true;
    return p;
  }
  if (name == "mixed") {
    p.transient_read_rate = rate;
    p.transient_write_rate = rate;
    p.short_read_rate = rate;
    p.short_write_rate = rate;
    p.tear_on_crash = true;
    return p;
  }
  if (name == "giveup") {
    p.transient_read_rate = rate;
    p.transient_write_rate = rate;
    p.max_consecutive_transient = 0;  // exhaust any retry budget
    return p;
  }
  throw InvalidArgument("unknown fault profile '" + std::string(name) +
                        "' (off | transient | short-io | torn-page | mixed | "
                        "giveup)");
}

std::shared_ptr<FaultInjector> FaultInjector::from_env() {
  const char* profile_env = std::getenv("MLVC_FAULT_PROFILE");
  if (profile_env == nullptr || std::string_view(profile_env) == "off" ||
      std::string_view(profile_env).empty()) {
    return nullptr;
  }
  double rate = 0.02;
  if (const char* env = std::getenv("MLVC_FAULT_RATE")) {
    rate = std::strtod(env, nullptr);
  }
  FaultProfile profile = named_profile(profile_env, rate);
  if (const char* env = std::getenv("MLVC_FAULT_CRASH_AFTER")) {
    profile.crash_after_writes = std::strtoull(env, nullptr, 10);
  }
  std::uint64_t seed = 1;
  if (const char* env = std::getenv("MLVC_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  return std::make_shared<FaultInjector>(profile, seed);
}

}  // namespace mlvc::ssd
