// Deterministic SSD device model.
//
// The paper runs on a real Samsung 860 EVO; its performance claims hinge on
// how many flash pages each engine touches and how well the traffic spreads
// over flash channels (§V.A.3: logs are interspersed across channels to
// maximize read/write bandwidth). Reproducing that on an arbitrary dev box —
// where the OS page cache would absorb most file I/O — requires a model:
// every page access is charged to a channel, channels proceed in parallel,
// and the device-time estimate for a run is the busiest channel's total.
//
// This "max over channels" model captures the two first-order effects the
// paper exploits: (1) fewer pages => less device time, (2) traffic spread
// over all channels pipelines, traffic concentrated on one channel
// serializes. It deliberately ignores queueing subtleties; see DESIGN.md §2.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mlvc::ssd {

struct DeviceConfig {
  /// Flash page size; the minimum read/write granularity (paper §VI: 16 KB).
  std::size_t page_size = 16_KiB;
  /// Number of independent flash channels.
  unsigned num_channels = 8;
  /// Time to read one page on one channel, microseconds. 100 us/16 KiB
  /// ≈ 160 MB/s per channel ≈ 1.3 GB/s aggregate — flash-realistic.
  double page_read_us = 100.0;
  /// Time to program one page on one channel, microseconds. Near-parity
  /// with reads models a SATA-era drive (860 EVO) whose SLC write cache
  /// hides NAND program latency at the interface; raise this to model
  /// write-constrained devices.
  double page_write_us = 130.0;

  /// Cost multiplier for pages after the first within one contiguous
  /// multi-page transfer. Real devices amortize command issue, prefetch and
  /// plane pipelining across large sequential extents — the effect that
  /// keeps shard-streaming engines (GraphChi, GraFBoost) competitive when
  /// most of the graph is active. 1.0 disables the discount.
  double sequential_factor = 0.3;

  /// Number of independent backing devices Blobs stripe across (RAID-0
  /// style). Each device contributes its own group of num_channels flash
  /// channels, its own backing file per blob, and — on the uring backend —
  /// its own submission ring. 1 = the original single-file layout.
  /// MLVC_DEVICES overrides this at Storage construction; an existing
  /// store's stripe manifest overrides both.
  unsigned num_devices = 1;

  /// Stripe unit in bytes: consecutive stripe_unit_bytes extents of a blob
  /// round-robin across the devices. Must be a multiple of page_size so a
  /// flash page never straddles two devices. MLVC_STRIPE_UNIT overrides.
  std::size_t stripe_unit_bytes = 128_KiB;

  void validate() const {
    MLVC_CHECK_MSG(page_size >= 512 && (page_size & (page_size - 1)) == 0,
                   "page_size must be a power of two >= 512");
    MLVC_CHECK_MSG(num_channels >= 1, "need at least one channel");
    MLVC_CHECK_MSG(page_read_us > 0 && page_write_us > 0,
                   "page costs must be positive");
    MLVC_CHECK_MSG(sequential_factor > 0 && sequential_factor <= 1.0,
                   "sequential_factor must be in (0, 1]");
    MLVC_CHECK_MSG(num_devices >= 1 && num_devices <= 64,
                   "num_devices must be in [1, 64]");
    MLVC_CHECK_MSG(stripe_unit_bytes >= page_size &&
                       stripe_unit_bytes % page_size == 0,
                   "stripe_unit_bytes must be a whole number of pages");
  }
};

/// Per-channel page counters + derived modeled time. Thread-safe recording.
class DeviceModel {
 public:
  explicit DeviceModel(const DeviceConfig& config)
      : config_(config),
        channels_(static_cast<std::size_t>(config.num_channels) *
                  config.num_devices) {
    config_.validate();
  }

  const DeviceConfig& config() const noexcept { return config_; }

  /// Channel placement: consecutive pages of one blob round-robin across the
  /// owning device's channels (the paper's log interspersing), and different
  /// blobs start at different channels so concurrent blob streams overlap.
  /// The channel group is derived from the striped device id — not from the
  /// global offset hash — so a page can only ever occupy a channel of the
  /// device it physically lives on and modeled per-device service times
  /// never double-count parallelism the stripe layout doesn't provide.
  unsigned channel_for(std::uint64_t blob_id, std::uint64_t page_no,
                       unsigned device) const {
    return device * config_.num_channels +
           static_cast<unsigned>((blob_id * 2654435761u + page_no) %
                                 config_.num_channels);
  }

  /// Record one page transfer on `device`. `cost_scale` applies the
  /// sequential discount (1.0 for the first page of a transfer on that
  /// device, sequential_factor for the rest); callers pass it per page.
  void record(std::uint64_t blob_id, std::uint64_t page_no, unsigned device,
              bool is_write, double cost_scale) {
    Channel& ch = channels_[channel_for(blob_id, page_no, device)];
    const double us =
        (is_write ? config_.page_write_us : config_.page_read_us) *
        cost_scale;
    ch.cost_ns.fetch_add(static_cast<std::uint64_t>(us * 1000.0),
                         std::memory_order_relaxed);
    (is_write ? ch.writes : ch.reads).fetch_add(1, std::memory_order_relaxed);
  }

  void record_read(std::uint64_t blob_id, std::uint64_t page_no) {
    record(blob_id, page_no, /*device=*/0, /*is_write=*/false, 1.0);
  }
  void record_write(std::uint64_t blob_id, std::uint64_t page_no) {
    record(blob_id, page_no, /*device=*/0, /*is_write=*/true, 1.0);
  }

  /// Modeled device time in seconds: channels run in parallel; each channel's
  /// time is its page count times per-page cost; the run is bound by the
  /// busiest channel.
  double modeled_seconds() const {
    std::uint64_t worst = 0;
    for (const auto& ch : channels_) {
      worst = std::max(worst, ch.cost_ns.load(std::memory_order_relaxed));
    }
    return static_cast<double>(worst) * 1e-9;
  }

  /// Point-in-time copy of the per-channel counters, for interval-scoped
  /// modeled time (e.g. per superstep).
  struct Snapshot {
    std::vector<std::uint64_t> cost_ns;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.cost_ns.reserve(channels_.size());
    for (const auto& ch : channels_) {
      s.cost_ns.push_back(ch.cost_ns.load(std::memory_order_relaxed));
    }
    return s;
  }

  /// Modeled seconds for the traffic between two snapshots.
  double modeled_seconds_between(const Snapshot& begin,
                                 const Snapshot& end) const {
    MLVC_CHECK(begin.cost_ns.size() == channels_.size() &&
               end.cost_ns.size() == channels_.size());
    std::uint64_t worst = 0;
    for (std::size_t c = 0; c < channels_.size(); ++c) {
      worst = std::max(worst, end.cost_ns[c] - begin.cost_ns[c]);
    }
    return static_cast<double>(worst) * 1e-9;
  }

  std::uint64_t total_reads() const {
    std::uint64_t t = 0;
    for (const auto& ch : channels_) {
      t += ch.reads.load(std::memory_order_relaxed);
    }
    return t;
  }
  std::uint64_t total_writes() const {
    std::uint64_t t = 0;
    for (const auto& ch : channels_) {
      t += ch.writes.load(std::memory_order_relaxed);
    }
    return t;
  }

  void reset() {
    for (auto& ch : channels_) {
      ch.reads.store(0, std::memory_order_relaxed);
      ch.writes.store(0, std::memory_order_relaxed);
      ch.cost_ns.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Channel {
    std::atomic<std::uint64_t> reads{0};
    std::atomic<std::uint64_t> writes{0};
    std::atomic<std::uint64_t> cost_ns{0};
  };
  DeviceConfig config_;
  std::vector<Channel> channels_;
};

}  // namespace mlvc::ssd
