// File-backed, page-accounted storage.
//
// A Storage is a directory of named blobs (CSR vectors, message logs, edge
// logs, shards, sort runs...). All reads and writes go through real kernel
// I/O — blocking pread/pwrite by default, or a batched io_uring ring when
// set_io_backend(IoBackendKind::kUring) is selected — while every call also
// charges the pages it touches to the DeviceModel and IoStats, identically
// under both backends. Reading 100 bytes that straddle two 16 KiB pages
// costs two page reads, exactly the read amplification the paper reasons
// about (§IV.C).
#pragma once

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ssd/device_model.hpp"
#include "ssd/io_backend.hpp"
#include "ssd/io_stats.hpp"

namespace mlvc::ssd {

class Storage;
class FaultInjector;
enum class FaultSite : unsigned;
class UringIo;
struct UringOp;

/// Retry budget for transient I/O failures. EINTR is always retried for
/// free; EAGAIN/EIO consume one attempt each and sleep an exponentially
/// growing backoff between attempts. Forward progress (any bytes moved)
/// resets the budget. Exhaustion escalates as a typed IoError and bumps
/// IoStats::io_giveup_count.
struct RetryPolicy {
  unsigned max_attempts = 4;    // attempts per no-progress streak
  unsigned base_delay_us = 50;  // first backoff sleep
  unsigned max_delay_us = 5000; // backoff cap
};

/// Sleep the exponential backoff for the `fails`-th consecutive failed
/// attempt under `policy`. Shared by the blocking pread/pwrite loop and the
/// io_uring completion handler so both backends back off identically.
void retry_backoff_sleep(const RetryPolicy& policy, unsigned fails);

/// Process-wide io-backend probe resolution, shared by every Storage (and
/// surfaced through core::RuntimeContext, which selects the backend once so
/// per-query engines never call set_io_backend at all). Resolves exactly
/// once per process: before this, every Storage::set_io_backend call
/// re-normalized its own copy of the fallback reason, so two Storage
/// instances racing the first kUring request could each run the probe path
/// and the process-wide "why did uring fall back" answer lived on whichever
/// instance you happened to ask. (MLVC_IO_STRICT stays a per-call decision —
/// tests toggle it at runtime.)
struct IoBackendProbe {
  bool uring_available = false;
  /// Why kUring requests fall back to the thread pool ("" when available).
  std::string fallback_reason;
};
const IoBackendProbe& shared_io_backend_probe();

/// One scattered read request for Blob::read_multi: fill `buf` with the
/// `len` bytes at `offset`.
struct ReadOp {
  std::uint64_t offset = 0;
  void* buf = nullptr;
  std::size_t len = 0;
};

/// On-disk stripe layout descriptor, persisted as `stripe.manifest` in the
/// storage directory when a store is created with more than one device. A
/// directory without a manifest is a v1 single-file store and always opens
/// (devices = 1) regardless of the requested config; a directory with a
/// manifest opens with the manifest's layout so a striped store is
/// self-describing across processes (crash recovery re-opens the stripe
/// set). The manifest is versioned: an unrecognized version is a typed
/// Error, not a misread layout.
struct StripeManifest {
  unsigned version = 1;
  unsigned num_devices = 1;
  std::size_t stripe_unit_bytes = 0;
};

/// Logical→physical stripe mapping (RAID-0): stripe s of a blob lives on
/// device s % N at device-file offset (s / N) * unit. Invokes
/// fn(device, dev_offset, transfer_offset, seg_len) for each maximal
/// single-device segment of [offset, offset + len). With num_devices == 1
/// the whole range is one segment at its original offset, so the v1 layout
/// is the identity mapping.
template <typename Fn>
void for_each_stripe_segment(std::uint64_t offset, std::size_t len,
                             std::size_t unit, unsigned num_devices,
                             Fn&& fn) {
  if (len == 0) return;
  if (num_devices <= 1) {
    fn(0u, offset, std::size_t{0}, len);
    return;
  }
  std::size_t done = 0;
  while (done < len) {
    const std::uint64_t off = offset + done;
    const std::uint64_t stripe = off / unit;
    const std::size_t within = static_cast<std::size_t>(off % unit);
    const std::size_t seg =
        std::min<std::uint64_t>(len - done, unit - within);
    const unsigned dev = static_cast<unsigned>(stripe % num_devices);
    const std::uint64_t dev_off = (stripe / num_devices) * unit + within;
    fn(dev, dev_off, done, seg);
    done += seg;
  }
}

/// A single append-/overwrite-able file with page accounting. Thread-safe:
/// pread/pwrite are positional, and the logical size is guarded.
class Blob {
 public:
  ~Blob();
  Blob(const Blob&) = delete;
  Blob& operator=(const Blob&) = delete;

  std::uint64_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  IoCategory category() const noexcept { return category_; }

  /// Logical size in bytes.
  std::uint64_t size() const;
  std::uint64_t size_pages() const;

  /// Read [offset, offset+len); throws IoError/Error on short read.
  void read(std::uint64_t offset, void* buf, std::size_t len) const;

  /// Vectored read: satisfy every op in one pass. Ops whose file ranges are
  /// back-to-back are issued as a single preadv-style scattered call, so a
  /// coalesced page window costs one kernel round trip. Page accounting is
  /// identical to calling read() once per op.
  void read_multi(std::span<const ReadOp> ops) const;

  /// Write [offset, offset+len), extending the blob if needed.
  void write(std::uint64_t offset, const void* buf, std::size_t len);

  /// Append at the current end; returns the offset written at.
  std::uint64_t append(const void* buf, std::size_t len);

  /// Reserve [size, size+len) at the logical end without writing, returning
  /// the reserved offset. Lets a producer assign stable offsets (e.g. log
  /// page numbers) synchronously while the data itself is written by a
  /// background I/O thread. Reading a reserved-but-unwritten range is a
  /// caller bug (short read).
  std::uint64_t reserve(std::size_t len);

  void truncate(std::uint64_t new_size);

  /// Flush written data to the device (fdatasync). A sync failure is never
  /// retried — once the kernel reports it, dirty-page state is unknown — it
  /// escalates immediately as IoError (and counts as a giveup).
  void sync();

  // ---- typed helpers ------------------------------------------------------
  template <typename T>
  void read_span(std::uint64_t elem_offset, std::span<T> out) const {
    read(elem_offset * sizeof(T), out.data(), out.size_bytes());
  }
  template <typename T>
  std::vector<T> read_vector(std::uint64_t elem_offset,
                             std::size_t count) const {
    std::vector<T> out(count);
    read_span<T>(elem_offset, out);
    return out;
  }
  template <typename T>
  std::uint64_t append_span(std::span<const T> data) {
    return append(data.data(), data.size_bytes()) / sizeof(T);
  }
  template <typename T>
  std::uint64_t element_count() const {
    return size() / sizeof(T);
  }

 private:
  friend class Storage;
  Blob(Storage* storage, std::uint64_t id, std::string name,
       IoCategory category, std::vector<std::filesystem::path> paths);

  void account(std::uint64_t offset, std::size_t len, bool is_write) const;

  /// Partial-progress transfer loop shared by read/read_multi/write/append:
  /// consults the storage's fault injector before each attempt, applies the
  /// retry policy to transient errnos, and throws IoError on giveup. `raw`
  /// issues one syscall attempt of at most `n` bytes at device-file
  /// position `pos` (with `done` bytes of the segment already complete) and
  /// returns the syscall result. Runs against one device; a give-up names
  /// that device's backing file in the typed IoError.
  template <typename Raw>
  void run_io(FaultSite site, const char* op, unsigned dev,
              std::uint64_t offset, std::size_t len, Raw&& raw) const;

  /// Issue a prepared op batch through `dev`'s io_uring ring with this
  /// blob's fault/retry/stats context. Each device has its own ring, so
  /// batches to different devices never serialize behind one submission
  /// queue.
  void run_uring(UringIo& io, unsigned dev, std::span<UringOp> ops) const;

  /// Issue already-accounted read ops, expressed in *device-local* offsets
  /// against device `dev`, through whichever backend is selected —
  /// coalescing file-contiguous runs identically on both.
  void dispatch_reads_device(unsigned dev, std::span<const ReadOp> ops) const;

  /// Split logical-offset read ops per device (stripe mapping) and issue
  /// each device's share. The single-device path forwards ops untouched.
  void dispatch_reads(std::span<const ReadOp> ops) const;

  /// Striped write: split [offset, offset+len) per device and issue each
  /// device's segments through the selected backend.
  void dispatch_write(std::uint64_t offset, const void* buf,
                      std::size_t len);

  Storage* storage_;
  std::uint64_t id_;
  std::string name_;
  IoCategory category_;
  /// One backing file per device (size 1 = v1 single-file layout).
  std::vector<std::filesystem::path> paths_;
  std::vector<int> fds_;
  mutable std::mutex size_mutex_;
  std::uint64_t size_ = 0;
};

/// Directory of blobs plus the shared device model and I/O counters.
class Storage {
 public:
  /// Creates (or reuses) `dir` as the backing directory.
  Storage(std::filesystem::path dir, DeviceConfig config = {});
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// Create a blob (truncating any previous content under that name).
  Blob& create_blob(const std::string& name, IoCategory category);

  /// Open an existing blob. Falls back to an on-disk file left by a previous
  /// process (crash recovery) under IoCategory::kMisc; throws InvalidArgument
  /// when neither a handle nor a file exists.
  Blob& open_blob(const std::string& name);

  /// Atomically rename blob `from` to `to` (rename(2)), replacing any
  /// existing blob under `to`. This is the publish step of write-temp +
  /// sync + rename: a reader never observes a half-written `to`.
  void publish_blob(const std::string& from, const std::string& to);

  bool has_blob(const std::string& name) const;

  /// Delete the blob's backing file and handle.
  void remove_blob(const std::string& name);

  std::size_t page_size() const noexcept { return device_.config().page_size; }
  /// Resolved stripe layout (manifest > MLVC_DEVICES/MLVC_STRIPE_UNIT env >
  /// DeviceConfig). 1 device = the original single-file layout.
  unsigned num_devices() const noexcept {
    return device_.config().num_devices;
  }
  std::size_t stripe_unit() const noexcept {
    return device_.config().stripe_unit_bytes;
  }
  DeviceModel& device() noexcept { return device_; }
  const DeviceModel& device() const noexcept { return device_; }
  IoStats& stats() noexcept { return stats_; }
  const IoStats& stats() const noexcept { return stats_; }
  const std::filesystem::path& directory() const noexcept { return dir_; }

  /// Fault injection (null = no faults). The constructor installs one from
  /// MLVC_FAULT_* env vars when present, so a whole test suite can run under
  /// a seeded fault schedule with no code changes.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);
  std::shared_ptr<FaultInjector> fault_injector() const;

  void set_retry_policy(const RetryPolicy& policy);
  RetryPolicy retry_policy() const;

  /// Select the hot-path I/O substrate (see io_backend.hpp). Requesting
  /// kUring probes the kernel once per process and transparently falls back
  /// to the thread-pool path when io_uring is refused, recording the reason
  /// (io_backend_fallback()) — unless MLVC_IO_STRICT is set to a nonzero
  /// value, which turns the fallback into an Error so CI can hard-fail when
  /// a uring-capable runner regresses to the fallback. `queue_depth` > 0
  /// resizes the ring (default 64; the constructor honors MLVC_URING_DEPTH).
  /// Returns the backend actually selected. The constructor applies
  /// MLVC_IO_BACKEND so every entry point switches with no code changes.
  IoBackendKind set_io_backend(IoBackendKind requested,
                               unsigned queue_depth = 0);
  IoBackendKind io_backend() const;
  /// Why the last kUring request fell back to kThreadPool ("" = it didn't).
  std::string io_backend_fallback() const;

 private:
  friend class Blob;

  /// Resolve the effective stripe layout for `dir` before the DeviceModel
  /// is built: applies MLVC_DEVICES / MLVC_STRIPE_UNIT, then defers to an
  /// existing stripe.manifest (the store's layout wins), then falls back to
  /// single-file for a manifest-less directory that already holds blobs
  /// (v1 compatibility). Creates the directory, the per-device
  /// subdirectories and — for a freshly striped store — the manifest.
  static DeviceConfig resolve_stripe_layout(const std::filesystem::path& dir,
                                            DeviceConfig config);

  /// Per-device ring for Blob I/O dispatch (null = thread-pool path).
  /// Shared ownership so a concurrent set_io_backend can't free a ring
  /// mid-batch.
  std::shared_ptr<UringIo> uring_backend(unsigned dev) const;

  /// Backing-file paths for a blob name, one per device. Device k of a
  /// striped store lives under dir/dev<k>/; a single-device store keeps the
  /// original flat dir/<name> layout.
  std::vector<std::filesystem::path> blob_paths(const std::string& name) const;

  std::filesystem::path dir_;
  DeviceModel device_;
  IoStats stats_;
  mutable std::mutex blobs_mutex_;
  std::map<std::string, std::unique_ptr<Blob>> blobs_;
  std::uint64_t next_blob_id_ = 1;
  mutable std::mutex fault_mutex_;
  std::shared_ptr<FaultInjector> fault_;
  RetryPolicy retry_policy_;
  IoBackendKind io_backend_kind_ = IoBackendKind::kThreadPool;
  /// One ring per device under kUring (all null on the thread pool).
  std::vector<std::shared_ptr<UringIo>> urings_;
  unsigned uring_depth_ = 64;
  std::string uring_fallback_;
};

/// Read `dir`'s stripe manifest. Returns false when none exists (v1
/// single-file store); throws Error on an unrecognized manifest version or
/// a malformed file.
bool read_stripe_manifest(const std::filesystem::path& dir,
                          StripeManifest* out);
/// Write (create or overwrite) `dir`'s stripe manifest.
void write_stripe_manifest(const std::filesystem::path& dir,
                           const StripeManifest& manifest);

/// RAII temporary directory (unique under the system temp dir) for tests,
/// benches, and examples.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "mlvc");
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace mlvc::ssd
