// Seeded I/O fault injection for the storage layer.
//
// Flash-resident engines must treat transient device errors, short
// reads/writes, and torn trailing pages as normal events to absorb, not as
// process death (FlashGraph's SAFS and BigSparse's external runs both do).
// The injector sits between ssd::Blob and the raw pread/pwrite syscalls:
// every I/O asks decide() whether to fail this attempt, serve fewer bytes,
// or — for the crashtest — kill the process mid-write, optionally leaving a
// torn page behind. Decisions flow from one SplitMix64 stream per injector,
// so a (profile, seed) pair replays the exact same fault schedule.
//
// The ssd::AsyncIo pool needs no hook of its own: its reads and writes are
// plain Blob calls executed on I/O threads, so they pass through the same
// injection (and the same retry policy) as synchronous callers. The
// io_uring backend injects at completion-reap time instead: each reaped CQE
// asks decide() before its real result is honored, so every profile
// (transient, short-io, torn-page crash, giveup) exercises the uring path
// with the same (profile, seed) schedule semantics as the syscall path.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.hpp"

namespace mlvc::ssd {

enum class FaultSite : unsigned { kRead, kWrite, kSync };

/// Exit code used by the crash failpoint so a parent driver (mlvc_crashtest)
/// can tell an injected crash from a genuine failure.
inline constexpr int kCrashExitCode = 37;

/// What a single I/O attempt should do.
struct FaultDecision {
  enum class Kind : unsigned {
    kNone,       // perform the I/O normally
    kTransient,  // fail this attempt with errno `err` (retryable)
    kShortIo,    // serve at most `max_len` bytes (the caller's loop resumes)
    kCrash,      // kill the process now (torn = leave a partial write behind)
  };
  Kind kind = Kind::kNone;
  int err = 0;
  std::size_t max_len = 0;
  bool torn = false;
};

/// Per-category failure rates. All probabilities are per I/O attempt.
struct FaultProfile {
  double transient_read_rate = 0;
  double transient_write_rate = 0;
  double short_read_rate = 0;
  double short_write_rate = 0;
  double sync_fail_rate = 0;

  /// Longest run of consecutive transient failures the injector will emit
  /// before forcing a success. Keeping this below the storage retry budget
  /// makes every injected transient absorbable, so a faulted run converges
  /// to the clean run's results. 0 = unbounded (give-up escalation testing).
  unsigned max_consecutive_transient = 2;

  /// Crash failpoint: after this many write decisions, the next write kills
  /// the process with kCrashExitCode. 0 = off.
  std::uint64_t crash_after_writes = 0;
  /// When crashing, first pwrite roughly half the buffer — the torn trailing
  /// page a real power loss leaves behind.
  bool tear_on_crash = false;
};

class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, std::uint64_t seed)
      : profile_(profile), seed_(seed), rng_(seed) {}

  /// Decide the fate of one I/O attempt of `len` bytes. Thread-safe.
  FaultDecision decide(FaultSite site, std::size_t len) {
    if (site == FaultSite::kWrite && profile_.crash_after_writes > 0) {
      const std::uint64_t n =
          write_ops_.fetch_add(1, std::memory_order_relaxed) + 1;
      if (n >= profile_.crash_after_writes) {
        return {FaultDecision::Kind::kCrash, 0, 0, profile_.tear_on_crash};
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    const auto roll = [this](double rate) {
      return rate > 0 && rng_.next_bool(rate);
    };
    double transient_rate = 0;
    double short_rate = 0;
    switch (site) {
      case FaultSite::kRead:
        transient_rate = profile_.transient_read_rate;
        short_rate = profile_.short_read_rate;
        break;
      case FaultSite::kWrite:
        transient_rate = profile_.transient_write_rate;
        short_rate = profile_.short_write_rate;
        break;
      case FaultSite::kSync:
        if (roll(profile_.sync_fail_rate)) {
          ++injected_sync_failures_;
          return {FaultDecision::Kind::kTransient, EIO, 0, false};
        }
        return {};
    }
    if (roll(transient_rate)) {
      if (profile_.max_consecutive_transient == 0 ||
          consecutive_transient_ < profile_.max_consecutive_transient) {
        ++consecutive_transient_;
        ++injected_transient_;
        // Mostly EIO (needs the backoff path); sprinkle EINTR to keep the
        // immediate-retry path honest too.
        const int err = rng_.next_bool(0.25) ? EINTR : EIO;
        return {FaultDecision::Kind::kTransient, err, 0, false};
      }
    }
    consecutive_transient_ = 0;
    if (len > 1 && roll(short_rate)) {
      ++injected_short_;
      // Serve a uniform nonzero prefix, so partial-progress loops see every
      // split point eventually.
      const std::size_t max_len =
          1 + static_cast<std::size_t>(rng_.next_below(len - 1));
      return {FaultDecision::Kind::kShortIo, 0, max_len, false};
    }
    return {};
  }

  const FaultProfile& profile() const noexcept { return profile_; }
  std::uint64_t seed() const noexcept { return seed_; }

  std::uint64_t injected_transient() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_transient_;
  }
  std::uint64_t injected_short() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_short_;
  }
  std::uint64_t injected_sync_failures() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return injected_sync_failures_;
  }

  /// Named profile presets, scaled by `rate`. Names match the CI
  /// fault-matrix: "transient", "short-io", "torn-page", "mixed", and
  /// "giveup" (unbounded transients, for escalation tests). Throws
  /// InvalidArgument for unknown names.
  static FaultProfile named_profile(std::string_view name, double rate);

  /// Build an injector from MLVC_FAULT_PROFILE / MLVC_FAULT_SEED /
  /// MLVC_FAULT_RATE / MLVC_FAULT_CRASH_AFTER, or null when MLVC_FAULT_PROFILE
  /// is unset or "off". This is how the CI fault matrix threads a fault
  /// schedule under the whole test suite without code changes.
  static std::shared_ptr<FaultInjector> from_env();

 private:
  FaultProfile profile_;
  std::uint64_t seed_;
  mutable std::mutex mutex_;
  SplitMix64 rng_;
  unsigned consecutive_transient_ = 0;
  std::uint64_t injected_transient_ = 0;
  std::uint64_t injected_short_ = 0;
  std::uint64_t injected_sync_failures_ = 0;
  std::atomic<std::uint64_t> write_ops_{0};
};

}  // namespace mlvc::ssd
