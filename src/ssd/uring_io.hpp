// Raw-syscall io_uring submission/completion ring for the ssd layer.
//
// The thread-pool backend keeps at most io_threads blocking preads in
// flight, each paying a thread wakeup plus one syscall per op. This backend
// instead stages a whole batch of operations as SQEs and submits them with
// a single io_uring_enter, so one thread sustains a configurable queue
// depth — the paper's §VI "many page reads from non-contiguous SSD
// locations in flight with minimal host resources", done the way FlashGraph
// and BigSparse argue it must be: batched before submission.
//
// No liburing: the ring is set up with the io_uring_setup/io_uring_enter
// syscalls directly and the SQ/CQ rings are mmap'd and driven with
// std::atomic_ref acquire/release on the kernel-shared head/tail indices.
//
// Error semantics mirror Blob::run_io exactly: EINTR completions resubmit
// for free, EAGAIN/EIO consume the RetryPolicy budget with exponential
// backoff, short transfers resume where they left off (resetting the
// budget — forward progress), and budget exhaustion throws a typed IoError
// after draining every other in-flight op (caller-owned buffers must not
// have kernel writes racing the unwind). Fault injection happens at
// completion-reap time: each reaped CQE asks the FaultInjector to veto,
// shorten, or crash the attempt, so every fault profile exercises this
// backend through the same decide() stream as the thread-pool path.
#pragma once

#include <sys/uio.h>

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "ssd/io_stats.hpp"
#include "ssd/storage.hpp"

namespace mlvc::ssd {

class FaultInjector;

/// One transfer in a batch handed to UringIo::run_batch. Either a single
/// buffer (`buf`) or a coalesced run of adjacent spans (`iov`/`iov_count`,
/// submitted as one READV/WRITEV SQE). The iovec array is caller-owned and
/// is advanced in place when a short completion resumes mid-run, exactly
/// like the preadv clipping loop in Blob::read_multi.
struct UringOp {
  std::uint64_t offset = 0;
  std::size_t len = 0;  // total bytes across buf or all iovecs
  void* buf = nullptr;
  struct iovec* iov = nullptr;
  unsigned iov_count = 0;
  bool is_write = false;
};

/// Per-batch context linking the ring back to the owning Blob: the target
/// fd, the fault injector consulted at reap time (may be null), the retry
/// budget, the stats sink, and the path used in IoError messages.
struct UringBatchContext {
  int fd = -1;
  FaultInjector* fault = nullptr;
  RetryPolicy retry{};
  IoStats* stats = nullptr;
  std::string path;
};

class UringIo {
 public:
  struct ProbeResult {
    bool available = false;
    std::string reason;  // why not, when unavailable
  };

  /// Process-wide capability probe, run once and cached: sets up a small
  /// ring and round-trips a real IORING_OP_READ against a memfd, so a
  /// kernel (or seccomp filter) that admits the syscalls but rejects the
  /// opcodes we use still reports unavailable.
  static const ProbeResult& probe();

  /// queue_depth = SQEs kept in flight per batch (the kernel rounds the
  /// ring up to the next power of two).
  explicit UringIo(unsigned queue_depth = 64);
  ~UringIo();
  UringIo(const UringIo&) = delete;
  UringIo& operator=(const UringIo&) = delete;

  unsigned queue_depth() const noexcept { return depth_; }

  /// Execute every op to completion (or throw after draining). Thread-safe:
  /// concurrent batches each lease a ring from an internal pool, so no two
  /// threads ever share SQ/CQ indices.
  void run_batch(const UringBatchContext& ctx, std::span<UringOp> ops);

 private:
  struct Ring;

  std::unique_ptr<Ring> make_ring() const;
  Ring* acquire();
  void release(Ring* ring) noexcept;

  unsigned depth_;
  std::mutex mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<Ring*> free_;
};

}  // namespace mlvc::ssd
