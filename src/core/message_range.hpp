// A strided, read-only view over a vertex's incoming messages.
//
// MultiLogVC hands vertices their inbox as a slice of sorted log records
// (<dst, payload> pairs); the GraphChi baseline hands a contiguous payload
// array harvested from in-edge values. MessageRange abstracts both with
// zero copies so application code is engine-agnostic.
#pragma once

#include <cstddef>
#include <iterator>
#include <span>

#include "multilog/record.hpp"

namespace mlvc::core {

template <typename Message>
class MessageRange {
 public:
  MessageRange() = default;

  static MessageRange from_records(
      std::span<const multilog::Record<Message>> records) {
    MessageRange r;
    if (!records.empty()) {
      r.base_ = reinterpret_cast<const std::byte*>(&records.front().payload);
      r.stride_ = sizeof(multilog::Record<Message>);
      r.count_ = records.size();
    }
    return r;
  }

  static MessageRange from_array(std::span<const Message> messages) {
    MessageRange r;
    if (!messages.empty()) {
      r.base_ = reinterpret_cast<const std::byte*>(messages.data());
      r.stride_ = sizeof(Message);
      r.count_ = messages.size();
    }
    return r;
  }

  std::size_t size() const noexcept { return count_; }
  bool empty() const noexcept { return count_ == 0; }

  const Message& operator[](std::size_t i) const {
    return *reinterpret_cast<const Message*>(base_ + i * stride_);
  }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = Message;
    using difference_type = std::ptrdiff_t;
    using pointer = const Message*;
    using reference = const Message&;

    iterator(const std::byte* p, std::size_t stride)
        : p_(p), stride_(stride) {}
    reference operator*() const {
      return *reinterpret_cast<const Message*>(p_);
    }
    pointer operator->() const {
      return reinterpret_cast<const Message*>(p_);
    }
    iterator& operator++() {
      p_ += stride_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    friend bool operator==(const iterator& a, const iterator& b) {
      return a.p_ == b.p_;
    }

   private:
    const std::byte* p_;
    std::size_t stride_;
  };

  iterator begin() const { return iterator(base_, stride_); }
  iterator end() const { return iterator(base_ + count_ * stride_, stride_); }

 private:
  const std::byte* base_ = nullptr;
  std::size_t stride_ = sizeof(Message);
  std::size_t count_ = 0;
};

}  // namespace mlvc::core
