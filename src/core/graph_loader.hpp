// The Graph Loader Unit (§V.B.2 of the paper).
//
// Given the ascending list of active vertices inside one vertex interval,
// fetch exactly the row-pointer and adjacency pages those vertices need:
//
//  * row pointers are read in coalesced windows ("loops over the row pointer
//    array for the range of vertices in the active vertex list, each time
//    fetching vertices that can fit in the graph data row pointer buffer");
//  * adjacency ranges of vertices that share an SSD page are merged into a
//    single read, so a page holding five active vertices' edges is fetched
//    once — this is where CSR beats shards when the active set shrinks;
//  * vertices present in the edge log (§V.C) are served from it instead of
//    the CSR — the read-amplification optimization;
//  * per-page useful-byte counts are recorded in the PageUtilTracker so the
//    edge-log optimizer can classify inefficient pages (Figures 3 and 9).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/stored_csr.hpp"
#include "multilog/edge_log.hpp"
#include "multilog/page_util.hpp"

namespace mlvc::core {

/// Adjacency data for a batch of active vertices, flattened into shared
/// buffers; spans[k] locates vertex k's slice.
struct AdjacencyBatch {
  struct Span {
    std::size_t offset = 0;
    std::size_t length = 0;
  };
  std::vector<VertexId> adjacency;
  std::vector<float> weights;       // parallel to adjacency when loaded
  std::vector<Span> spans;          // one per requested vertex
  std::vector<std::uint8_t> from_edge_log;  // one per requested vertex
  /// Utilization (useful bytes / page size) of the CSR page holding the
  /// vertex's adjacency start, as measured by this superstep's loads; -1 for
  /// edge-log hits. Input to the §V.C logging decision.
  std::vector<double> start_page_util;

  std::uint64_t edge_log_hits = 0;

  void clear() {
    adjacency.clear();
    weights.clear();
    spans.clear();
    from_edge_log.clear();
    start_page_util.clear();
    edge_log_hits = 0;
  }
};

class GraphLoaderUnit {
 public:
  struct Config {
    bool load_weights = false;
    bool use_edge_log = true;
    /// Per-query slot in a shared adjacency PageCache (multi-tenant runs).
    /// load() installs it as the calling thread's ScopedQuery for the
    /// duration, so every cached CSR read — from the compute thread or a
    /// prefetching AsyncIo thread — is attributed to (and admission-limited
    /// by) the owning query. Null for single-tenant runs. Non-owning.
    ssd::PageCache::QuerySlot* cache_slot = nullptr;
  };

  GraphLoaderUnit(graph::StoredCsrGraph& graph, multilog::EdgeLog* edge_log,
                  multilog::PageUtilTracker* util_tracker, Config config)
      : graph_(graph),
        edge_log_(edge_log),
        util_tracker_(util_tracker),
        config_(config) {}

  /// Load adjacency for `actives` (ascending, all inside interval i) into
  /// `out` (cleared first).
  void load(IntervalId interval, std::span<const VertexId> actives,
            AdjacencyBatch& out);

  /// Bytes load() would move for vertex v if served from the CSR (adjacency
  /// plus the weight column when configured). Pure arithmetic over the
  /// resident degree array — no storage touched — which keeps it cheap
  /// enough for per-vertex batch sizing and per-interval scheduling
  /// priorities. Edge-log residency can only shrink the real cost, so this
  /// is a stable upper bound.
  std::size_t vertex_load_cost(VertexId v) const {
    return static_cast<std::size_t>(graph_.out_degree(v)) * entry_bytes();
  }

  /// Sum of vertex_load_cost over [begin, end): the range's full-fan-in
  /// load cost. The hub-degree schedule policy uses this per interval as
  /// its static priority — monotone in out-degree mass, but expressed in
  /// bytes so it shares a unit with the log-bytes policy.
  std::uint64_t range_load_cost(VertexId begin, VertexId end) const {
    std::uint64_t bytes = 0;
    for (VertexId v = begin; v < end; ++v) bytes += vertex_load_cost(v);
    return bytes;
  }

 private:
  std::size_t entry_bytes() const {
    return sizeof(VertexId) + (config_.load_weights ? sizeof(float) : 0);
  }

  void load_from_csr(IntervalId interval,
                     std::span<const VertexId> csr_vertices,
                     std::span<const std::size_t> result_slots,
                     AdjacencyBatch& out);

  graph::StoredCsrGraph& graph_;
  multilog::EdgeLog* edge_log_;
  multilog::PageUtilTracker* util_tracker_;
  Config config_;
};

}  // namespace mlvc::core
