// The vertex-centric programming model (§V.F of the paper).
//
// An application is a value type satisfying the VertexApp concept below. The
// same application runs unmodified on MultiLogVC, on the GraphChi baseline,
// and on the GraFBoost baseline — that cross-engine portability is what lets
// the benches compare engines on identical algorithm code.
//
// Per the paper, the vertex processing function receives the vertex id, the
// vertex data, the incoming messages, and the vertex's adjacency (out-edges
// in all evaluated applications); it may update its value, send updates,
// mutate the graph, and deactivate itself. A deactivated vertex is
// re-activated automatically when it receives an update.
#pragma once

#include <concepts>
#include <span>
#include <type_traits>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mlvc::core {

/// What every engine's vertex context offers to application code. Engines
/// provide their own concrete context types (static polymorphism — no
/// virtual dispatch on the per-vertex hot path); this concept documents and
/// enforces the interface via the app's process() instantiation.
template <typename Ctx, typename App>
concept VertexContext = requires(Ctx& ctx, const typename App::Message& m,
                                 typename App::Value v, VertexId dst,
                                 std::size_t i) {
  { ctx.id() } -> std::convertible_to<VertexId>;
  { ctx.superstep() } -> std::convertible_to<Superstep>;
  { ctx.value() } -> std::convertible_to<typename App::Value>;
  { ctx.set_value(v) };
  { ctx.out_degree() } -> std::convertible_to<std::size_t>;
  { ctx.out_edge(i) } -> std::convertible_to<VertexId>;
  { ctx.out_weight(i) } -> std::convertible_to<float>;
  { ctx.send(dst, m) };
  { ctx.send_to_all_neighbors(m) };
  { ctx.deactivate() };
  { ctx.rng() } -> std::same_as<SplitMix64>;
};

template <typename A>
concept VertexApp = requires(const A app, VertexId v) {
  typename A::Value;
  typename A::Message;
  requires std::is_trivially_copyable_v<typename A::Value>;
  requires std::is_trivially_copyable_v<typename A::Message>;
  { A::kHasCombine } -> std::convertible_to<bool>;
  { A::kNeedsWeights } -> std::convertible_to<bool>;
  { app.initial_value(v) } -> std::convertible_to<typename A::Value>;
  { app.initially_active(v) } -> std::convertible_to<bool>;
  { app.name() } -> std::convertible_to<const char*>;
};

/// Detection for the optional pull-gather capability marker (direction
/// optimization, DESIGN.md §4e). An app opts in with
/// `static constexpr bool kHasPullGather = true;`, asserting that every
/// message it emits via send_to_all_neighbors carries the same payload to
/// all out-neighbors. That uniformity is what lets the engine capture one
/// broadcast message per sender and regenerate the per-edge deliveries from
/// the stored transpose CSR inside a pull interval instead of logging them.
/// Apps without the marker (or with it false) always run push.
template <typename App>
constexpr bool has_pull_gather() {
  if constexpr (requires {
                  { App::kHasPullGather } -> std::convertible_to<bool>;
                }) {
    return App::kHasPullGather;
  } else {
    return false;
  }
}

/// Helper: apply the app's combine operator if it has one (compile-time
/// dispatched so apps without combine need not define it).
template <VertexApp App>
typename App::Message combine_messages(const App& app,
                                       const typename App::Message& a,
                                       const typename App::Message& b) {
  if constexpr (App::kHasCombine) {
    return app.combine(a, b);
  } else {
    (void)app;
    (void)b;
    return a;
  }
}

}  // namespace mlvc::core
