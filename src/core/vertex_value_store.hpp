// Vertex value storage.
//
// Out-of-core engines cannot assume V x sizeof(Value) fits in host memory;
// values live in a storage blob and are gathered/scattered with page-
// coalesced, page-accounted I/O (category kVertexValue). MultiLogVC only
// touches the value pages of active vertices; the baselines sweep the whole
// file every superstep — the same asymmetry the paper's CSR-vs-shard
// argument describes, applied to vertex data.
//
// An in-memory mode exists for unit tests and for apps whose value state is
// genuinely tiny.
#pragma once

#include <algorithm>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "ssd/storage.hpp"

namespace mlvc::core {

template <typename Value>
class VertexValueStore {
  static_assert(std::is_trivially_copyable_v<Value>);

 public:
  /// On-storage store, initialized with init(v) for every vertex.
  template <typename InitFn>
  VertexValueStore(ssd::Storage& storage, const std::string& name,
                   VertexId num_vertices, InitFn&& init, bool on_storage)
      : num_vertices_(num_vertices),
        on_storage_(on_storage),
        page_size_(storage.page_size()) {
    if (on_storage_) {
      blob_ = &storage.create_blob(name, ssd::IoCategory::kVertexValue);
      // Chunked initialization so construction stays within loader-budget
      // scale memory.
      constexpr std::size_t kChunk = 1u << 16;
      std::vector<Value> chunk;
      chunk.reserve(kChunk);
      for (VertexId v = 0; v < num_vertices_; ++v) {
        chunk.push_back(init(v));
        if (chunk.size() == kChunk) {
          blob_->append(chunk.data(), chunk.size() * sizeof(Value));
          chunk.clear();
        }
      }
      blob_->append(chunk.data(), chunk.size() * sizeof(Value));
    } else {
      memory_.reserve(num_vertices_);
      for (VertexId v = 0; v < num_vertices_; ++v) {
        memory_.push_back(init(v));
      }
    }
  }

  VertexId num_vertices() const noexcept { return num_vertices_; }

  /// Gather values for an ascending vertex list. Reads are coalesced per
  /// run of vertices whose value bytes share/neighbor pages, so k actives on
  /// one page cost one page read.
  std::vector<Value> gather(std::span<const VertexId> vertices) const {
    std::vector<Value> out(vertices.size());
    if (!on_storage_) {
      for (std::size_t i = 0; i < vertices.size(); ++i) {
        out[i] = memory_[vertices[i]];
      }
      return out;
    }
    for_each_coalesced_run(vertices, [&](std::size_t first, std::size_t last) {
      // Read the contiguous span [vertices[first], vertices[last]] once and
      // pick out the requested entries.
      const VertexId vb = vertices[first];
      const VertexId ve = vertices[last];
      std::vector<Value> span_buf(ve - vb + 1);
      blob_->read(static_cast<std::uint64_t>(vb) * sizeof(Value),
                  span_buf.data(), span_buf.size() * sizeof(Value));
      for (std::size_t i = first; i <= last; ++i) {
        out[i] = span_buf[vertices[i] - vb];
      }
    });
    return out;
  }

  /// Scatter values back for an ascending vertex list (read-modify-write at
  /// page granularity, like a real storage stack would).
  void scatter(std::span<const VertexId> vertices,
               std::span<const Value> values) {
    MLVC_CHECK(vertices.size() == values.size());
    if (!on_storage_) {
      for (std::size_t i = 0; i < vertices.size(); ++i) {
        memory_[vertices[i]] = values[i];
      }
      return;
    }
    for_each_coalesced_run(vertices, [&](std::size_t first, std::size_t last) {
      const VertexId vb = vertices[first];
      const VertexId ve = vertices[last];
      std::vector<Value> span_buf(ve - vb + 1);
      blob_->read(static_cast<std::uint64_t>(vb) * sizeof(Value),
                  span_buf.data(), span_buf.size() * sizeof(Value));
      for (std::size_t i = first; i <= last; ++i) {
        span_buf[vertices[i] - vb] = values[i];
      }
      blob_->write(static_cast<std::uint64_t>(vb) * sizeof(Value),
                   span_buf.data(), span_buf.size() * sizeof(Value));
    });
  }

  /// Contiguous range load/store — the baselines' full-sweep access pattern.
  std::vector<Value> load_range(VertexId begin, VertexId end) const {
    MLVC_CHECK(begin <= end && end <= num_vertices_);
    std::vector<Value> out(end - begin);
    if (out.empty()) return out;
    if (on_storage_) {
      blob_->read(static_cast<std::uint64_t>(begin) * sizeof(Value),
                  out.data(), out.size() * sizeof(Value));
    } else {
      std::memcpy(out.data(), memory_.data() + begin,
                  out.size() * sizeof(Value));
    }
    return out;
  }

  void store_range(VertexId begin, std::span<const Value> values) {
    MLVC_CHECK(begin + values.size() <= num_vertices_);
    if (values.empty()) return;
    if (on_storage_) {
      blob_->write(static_cast<std::uint64_t>(begin) * sizeof(Value),
                   values.data(), values.size_bytes());
    } else {
      std::memcpy(memory_.data() + begin, values.data(), values.size_bytes());
    }
  }

  /// Stream the whole store in ascending bounded chunks:
  /// fn(VertexId chunk_begin, std::span<const Value> values). Whole-store
  /// consumers (result hashing, JSON export, checkpoint save) should use
  /// this instead of all() — peak memory is one chunk, not O(V).
  template <typename Fn>
  void for_each_chunk(Fn&& fn, std::size_t chunk_values = 1u << 16) const {
    MLVC_CHECK(chunk_values > 0);
    VertexId begin = 0;
    while (begin < num_vertices_) {
      const VertexId end = static_cast<VertexId>(std::min<std::uint64_t>(
          num_vertices_, static_cast<std::uint64_t>(begin) + chunk_values));
      const std::vector<Value> chunk = load_range(begin, end);
      fn(begin, std::span<const Value>(chunk));
      begin = end;
    }
  }

  /// Convenience for result extraction (not page-efficient and O(V) peak
  /// memory; prefer for_each_chunk for anything that only scans).
  std::vector<Value> all() const { return load_range(0, num_vertices_); }

 private:
  /// Partition an ascending vertex list into runs where consecutive
  /// vertices' value bytes land on the same or adjacent pages — each run is
  /// served by one contiguous read. Calls fn(first_index, last_index).
  template <typename Fn>
  void for_each_coalesced_run(std::span<const VertexId> vertices,
                              Fn&& fn) const {
    if (vertices.empty()) return;
    const std::size_t page = page_size_;
    const auto page_of = [&](VertexId v) {
      return static_cast<std::uint64_t>(v) * sizeof(Value) / page;
    };
    std::size_t first = 0;
    for (std::size_t i = 1; i <= vertices.size(); ++i) {
      if (i == vertices.size() ||
          page_of(vertices[i]) > page_of(vertices[i - 1]) + 1) {
        fn(first, i - 1);
        first = i;
      }
    }
  }

  VertexId num_vertices_;
  bool on_storage_;
  std::size_t page_size_;
  ssd::Blob* blob_ = nullptr;
  std::vector<Value> memory_;
};

}  // namespace mlvc::core
