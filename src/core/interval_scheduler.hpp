// Interval-granular superstep scheduling (beyond the paper's strict BSP).
//
// The paper's engine executes a superstep as one barrier: every interval's
// log is loaded, sorted and computed in id order, and nothing in superstep
// s+1 starts until the slowest interval of s finishes. But per-interval
// dependencies are much narrower than the barrier: an interval's chain
// (load → decode → sort → compute) only needs its OWN log to be stable.
// The IntervalScheduler tracks exactly that — per interval, the producer
// sequence number observed when its log was drained — and hands the engine
// ready chains one at a time, ordered by a priority policy:
//
//   fifo        arrival (interval id) order — the control case;
//   hub-degree  descending out-degree mass of the interval's expected-active
//               vertices (hubs first: the ACGraph-style signal that pays on
//               skewed graphs, since hub updates feed the most downstream
//               work per byte loaded);
//   log-bytes   descending pending message-log volume (largest input first).
//
// The scheduler is deliberately not a heap: interval counts are small
// (<5000 in the paper), priorities change on every asynchronous-mode
// requeue, and a linear argmax with an id tie-break is what makes the pop
// order — and therefore the whole scheduled execution — deterministic.
//
// Observability: every pop records how far the priority policy moved the
// interval from its arrival rank (reorder depth) and how long the chain sat
// ready before activation (ready latency); the engine surfaces both per
// superstep.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace mlvc::core {

class IntervalScheduler {
 public:
  IntervalScheduler(SchedulePolicy policy, IntervalId n)
      : policy_(policy), slots_(n) {
    MLVC_CHECK_MSG(policy != SchedulePolicy::kBsp,
                   "BSP runs the barrier path, not the scheduler");
  }

  IntervalId size() const noexcept {
    return static_cast<IntervalId>(slots_.size());
  }

  /// Release interval i's chain into the ready set. `score` is the
  /// hub-degree impact estimate, `pending_bytes` the log volume awaiting
  /// delivery; which one orders the pop is the policy's choice. Re-marking
  /// an already-ready interval just refreshes its priority inputs.
  void mark_ready(IntervalId i, std::uint64_t score,
                  std::uint64_t pending_bytes) {
    Slot& s = slots_[i];
    s.score = score;
    s.pending_bytes = pending_bytes;
    if (!s.ready) {
      s.ready = true;
      s.arrival_rank = next_arrival_++;
      s.ready_at = clock_.elapsed_seconds();
    }
  }

  bool is_ready(IntervalId i) const { return slots_[i].ready; }
  bool processed(IntervalId i) const { return slots_[i].processed; }

  /// Highest-priority ready interval, or kInvalidInterval when the ready
  /// set is empty. Deterministic: integer priorities, ascending-id
  /// tie-break, and the caller (the engine's main thread) is the only
  /// mutator.
  IntervalId pop() {
    const IntervalId n = size();
    IntervalId best = kInvalidInterval;
    for (IntervalId i = 0; i < n; ++i) {
      if (!slots_[i].ready) continue;
      if (best == kInvalidInterval || better(slots_[i], slots_[best])) best = i;
    }
    if (best == kInvalidInterval) return best;
    Slot& s = slots_[best];
    s.ready = false;
    s.processed = true;
    const std::uint64_t pop_rank = pops_++;
    const std::uint64_t depth = s.arrival_rank > pop_rank
                                    ? s.arrival_rank - pop_rank
                                    : pop_rank - s.arrival_rank;
    if (depth > max_reorder_depth_) max_reorder_depth_ = depth;
    ready_latency_seconds_ += clock_.elapsed_seconds() - s.ready_at;
    return best;
  }

  // ---- quiesce protocol ----------------------------------------------------
  // The engine records, right after interval i's chain drained its produce
  // log, the store's produce sequence number for i. A later mismatch between
  // that mark and the live sequence means producers appended after the drain
  // — i's log is no longer quiescent and (under the asynchronous model) the
  // chain is re-queued for same-wave delivery.

  void record_quiesce(IntervalId i, std::uint64_t produce_seq) {
    slots_[i].quiesce_seq = produce_seq;
  }
  std::uint64_t quiesce_seq(IntervalId i) const {
    return slots_[i].quiesce_seq;
  }

  // ---- wave observability --------------------------------------------------
  /// Chains activated (pop() calls that returned an interval).
  std::uint64_t pops() const noexcept { return pops_; }
  /// max |arrival rank - activation rank| over the wave: 0 means the
  /// priority policy never deviated from arrival order.
  std::uint64_t max_reorder_depth() const noexcept {
    return max_reorder_depth_;
  }
  /// Total time popped chains spent in the ready set before activation.
  double ready_latency_seconds() const noexcept {
    return ready_latency_seconds_;
  }

 private:
  struct Slot {
    std::uint64_t score = 0;          // hub-degree impact estimate
    std::uint64_t pending_bytes = 0;  // log volume awaiting delivery
    std::uint64_t arrival_rank = 0;
    std::uint64_t quiesce_seq = 0;
    double ready_at = 0;
    bool ready = false;
    bool processed = false;
  };

  /// Strict "a runs before b". The id tie-break is implicit: pop() scans
  /// ascending and only replaces the incumbent on a strict win.
  bool better(const Slot& a, const Slot& b) const {
    switch (policy_) {
      case SchedulePolicy::kFifo:
        return a.arrival_rank < b.arrival_rank;
      case SchedulePolicy::kHubDegree:
        return a.score > b.score;
      case SchedulePolicy::kLogBytes:
        return a.pending_bytes > b.pending_bytes;
      case SchedulePolicy::kBsp:
        break;  // unreachable (rejected in the constructor)
    }
    return false;
  }

  SchedulePolicy policy_;
  std::vector<Slot> slots_;
  std::uint64_t next_arrival_ = 0;
  std::uint64_t pops_ = 0;
  std::uint64_t max_reorder_depth_ = 0;
  double ready_latency_seconds_ = 0;
  WallTimer clock_;
};

}  // namespace mlvc::core
