// Process-wide runtime substrate for multi-tenant serving.
//
// A one-shot run owns everything: the Engine constructs its Storage, probes
// the io backend, sizes a private page cache, and its RunStats are the whole
// story. That shape makes "many concurrent queries over one graph" —
// FlashGraph's serving model, and the ROADMAP's north star — structurally
// impossible: two engines would race set_io_backend, collide on blob names,
// double-own the cache, and trample each other's counters.
//
// RuntimeContext hoists the per-PROCESS state out of the engine so an
// Engine becomes a cheap per-QUERY object:
//
//   RuntimeContext
//     ├── ssd::Storage           one directory of blobs, one DeviceModel,
//     │                          one cross-query IoStats aggregate
//     ├── io-backend selection   probed + selected exactly once
//     │                          (ssd::shared_io_backend_probe); engines in
//     │                          context mode never call set_io_backend
//     ├── ssd::PageCache         ONE shared adjacency cache; queries get
//     │                          QuerySlots (per-query hit/miss split +
//     │                          admission quota)
//     ├── BudgetArbiter          the Figure 4 host budget as a process pool;
//     │                          each query leases its whole budget up
//     │                          front and blocks until admitted
//     ├── SnapshotTable          generation-versioned publish over
//     │                          Storage::publish_blob with pinned read
//     │                          snapshots — a query never observes a
//     │                          half-published (or concurrently
//     │                          republished) checkpoint
//     └── query registry         unique query ids → unique blob prefixes,
//                                context-level aggregates merged from each
//                                query's RunStats view
#pragma once

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/memory_budget.hpp"
#include "core/stats.hpp"
#include "graph/stored_csr.hpp"
#include "ssd/device_model.hpp"
#include "ssd/io_backend.hpp"
#include "ssd/page_cache.hpp"
#include "ssd/storage.hpp"

namespace mlvc::core {

/// Generation-versioned blob publication with read-snapshot isolation.
///
/// publish(name, tmp) atomically renames `tmp` to the next generation of
/// `name` (blob "<name>@g<N>"); pin() freezes the set of latest generations
/// so a reader resolves names to the generations that were current at pin
/// time, no matter what is published meanwhile. A superseded generation's
/// blob is garbage-collected as soon as its pin count drops to zero — never
/// under a reader.
class SnapshotTable {
 public:
  explicit SnapshotTable(ssd::Storage& storage) : storage_(storage) {}

  /// A pinned read snapshot. Move-only RAII: destruction (or reset())
  /// unpins, letting superseded generations be collected.
  class Ref {
   public:
    Ref() = default;
    ~Ref() { reset(); }
    Ref(Ref&& other) noexcept
        : table_(other.table_), pinned_(std::move(other.pinned_)) {
      other.table_ = nullptr;
      other.pinned_.clear();
    }
    Ref& operator=(Ref&& other) noexcept {
      if (this != &other) {
        reset();
        table_ = other.table_;
        pinned_ = std::move(other.pinned_);
        other.table_ = nullptr;
        other.pinned_.clear();
      }
      return *this;
    }
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;

    bool contains(const std::string& name) const {
      return pinned_.count(name) != 0;
    }
    /// The versioned blob name `name` resolves to under this snapshot.
    /// Throws InvalidArgument for names not published at pin time (a name
    /// published after the pin is — correctly — invisible).
    const std::string& resolve(const std::string& name) const;

    void reset();

   private:
    friend class SnapshotTable;
    struct Pin {
      std::uint64_t generation = 0;
      std::string blob;
    };
    SnapshotTable* table_ = nullptr;
    std::map<std::string, Pin> pinned_;
  };

  /// Atomically publish blob `tmp_blob` as the next generation of `name`.
  /// Returns the generation number. Bumps the epoch.
  std::uint64_t publish(const std::string& name, const std::string& tmp_blob);

  /// Pin the currently-latest generation of every published name.
  Ref pin();

  /// Monotonic publish counter (0 = nothing published yet).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Latest generation of `name` (0 = never published).
  std::uint64_t generation(const std::string& name) const;
  /// Generations of `name` whose blobs are still live (latest + pinned).
  std::size_t live_generations(const std::string& name) const;

 private:
  struct Generation {
    std::uint64_t number = 0;
    std::string blob;
    std::size_t pins = 0;
  };

  static std::string versioned_name(const std::string& name,
                                    std::uint64_t generation);
  void unpin(const std::map<std::string, Ref::Pin>& pinned);
  /// Drop superseded, unpinned generations of `name` (mutex held).
  void gc_locked(const std::string& name);

  ssd::Storage& storage_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<Generation>> table_;
  std::atomic<std::uint64_t> epoch_{0};
};

/// Cross-query aggregates the context accumulates from per-query RunStats.
struct ContextAggregates {
  std::uint64_t queries_completed = 0;
  std::uint64_t supersteps = 0;
  std::uint64_t messages = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t cache_hit_pages = 0;
  std::uint64_t cache_miss_pages = 0;
  std::uint64_t cache_bypass_pages = 0;
  double query_wall_seconds = 0;  // summed across queries (overlaps!)
};

struct RuntimeContextOptions {
  ssd::DeviceConfig device{};
  /// Selected once for the whole context (engines inherit it).
  ssd::IoBackendKind io_backend = ssd::IoBackendKind::kThreadPool;
  unsigned io_queue_depth = 64;
  ssd::RetryPolicy retry{};
  /// Process pool the BudgetArbiter leases per-query budgets from.
  std::size_t memory_pool_bytes = 256_MiB;
  /// Capacity of the shared adjacency PageCache.
  std::size_t shared_cache_bytes = 8_MiB;
};

class RuntimeContext {
 public:
  /// Creates (or reuses) `dir` as the backing storage directory, probes and
  /// selects the io backend once, and sizes the shared cache and budget
  /// pool.
  explicit RuntimeContext(std::filesystem::path dir,
                          RuntimeContextOptions options = {});

  RuntimeContext(const RuntimeContext&) = delete;
  RuntimeContext& operator=(const RuntimeContext&) = delete;

  ssd::Storage& storage() noexcept { return storage_; }
  const RuntimeContextOptions& options() const noexcept { return options_; }

  /// The shared adjacency cache (never null; capacity at least one page).
  const std::shared_ptr<ssd::PageCache>& shared_cache() const noexcept {
    return shared_cache_;
  }
  BudgetArbiter& arbiter() noexcept { return arbiter_; }
  SnapshotTable& snapshots() noexcept { return snapshots_; }

  /// Backend the context's probe actually selected, and why a kUring
  /// request fell back ("" = it didn't).
  ssd::IoBackendKind io_backend() const noexcept { return io_backend_; }
  std::string io_backend_name() const {
    return std::string(ssd::to_string(io_backend_));
  }
  const std::string& io_backend_fallback() const noexcept {
    return io_fallback_;
  }

  /// Route the graph's adjacency reads through the shared cache. Call once
  /// per graph after materialization.
  void adopt_graph(graph::StoredCsrGraph& graph) {
    graph.set_adjacency_cache(shared_cache_);
  }

  /// Monotonic per-context query ids; "q<id>" namespaces every blob a query
  /// creates, so concurrent engines on one Storage can't collide.
  std::uint64_t next_query_id() noexcept {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed);
  }
  static std::string query_prefix(std::uint64_t query_id) {
    return "q" + std::to_string(query_id);
  }

  /// Fold one finished query's RunStats view into the context aggregates.
  void merge_run(const RunStats& stats);
  ContextAggregates aggregates() const;

  /// The context-level IoStats snapshot (every query's traffic combined).
  ssd::IoStatsSnapshot io_snapshot() const { return storage_.stats().snapshot(); }

 private:
  RuntimeContextOptions options_;
  ssd::Storage storage_;
  std::shared_ptr<ssd::PageCache> shared_cache_;
  BudgetArbiter arbiter_;
  SnapshotTable snapshots_;
  ssd::IoBackendKind io_backend_ = ssd::IoBackendKind::kThreadPool;
  std::string io_fallback_;
  std::atomic<std::uint64_t> next_query_id_{0};
  mutable std::mutex agg_mutex_;
  ContextAggregates aggregates_{};
};

}  // namespace mlvc::core
