#include "core/runtime_context.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace mlvc::core {

// ---------------------------------------------------------------------------
// SnapshotTable
// ---------------------------------------------------------------------------

std::string SnapshotTable::versioned_name(const std::string& name,
                                          std::uint64_t generation) {
  return name + "@g" + std::to_string(generation);
}

std::uint64_t SnapshotTable::publish(const std::string& name,
                                     const std::string& tmp_blob) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& generations = table_[name];
  const std::uint64_t next =
      generations.empty() ? 1 : generations.back().number + 1;
  const std::string blob = versioned_name(name, next);
  // The rename is the commit point: readers only ever see blob names that
  // were fully written before publish was called.
  storage_.publish_blob(tmp_blob, blob);
  generations.push_back({next, blob, 0});
  epoch_.fetch_add(1, std::memory_order_release);
  gc_locked(name);
  return next;
}

SnapshotTable::Ref SnapshotTable::pin() {
  Ref ref;
  ref.table_ = this;
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, generations] : table_) {
    if (generations.empty()) continue;
    Generation& latest = generations.back();
    ++latest.pins;
    ref.pinned_.emplace(name, Ref::Pin{latest.number, latest.blob});
  }
  return ref;
}

std::uint64_t SnapshotTable::generation(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(name);
  if (it == table_.end() || it->second.empty()) return 0;
  return it->second.back().number;
}

std::size_t SnapshotTable::live_generations(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = table_.find(name);
  return it == table_.end() ? 0 : it->second.size();
}

void SnapshotTable::unpin(const std::map<std::string, Ref::Pin>& pinned) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, pin] : pinned) {
    auto it = table_.find(name);
    if (it == table_.end()) continue;
    auto& generations = it->second;
    auto gen = std::find_if(
        generations.begin(), generations.end(),
        [&](const Generation& g) { return g.number == pin.generation; });
    if (gen == generations.end()) continue;
    MLVC_CHECK(gen->pins > 0);
    --gen->pins;
    gc_locked(name);
  }
}

void SnapshotTable::gc_locked(const std::string& name) {
  auto it = table_.find(name);
  if (it == table_.end()) return;
  auto& generations = it->second;
  // Everything but the latest generation is superseded; drop those whose pin
  // count reached zero. The latest is never collected — it is what the next
  // pin() will hand out.
  for (auto gen = generations.begin();
       generations.size() > 1 && gen != std::prev(generations.end());) {
    if (gen->pins == 0) {
      storage_.remove_blob(gen->blob);
      gen = generations.erase(gen);
    } else {
      ++gen;
    }
  }
}

const std::string& SnapshotTable::Ref::resolve(const std::string& name) const {
  auto it = pinned_.find(name);
  if (it == pinned_.end()) {
    throw InvalidArgument("snapshot has no generation of '" + name +
                          "' (not published at pin time)");
  }
  return it->second.blob;
}

void SnapshotTable::Ref::reset() {
  if (table_ != nullptr && !pinned_.empty()) {
    table_->unpin(pinned_);
  }
  table_ = nullptr;
  pinned_.clear();
}

// ---------------------------------------------------------------------------
// RuntimeContext
// ---------------------------------------------------------------------------

RuntimeContext::RuntimeContext(std::filesystem::path dir,
                               RuntimeContextOptions options)
    : options_(options),
      storage_(std::move(dir), options.device),
      shared_cache_(std::make_shared<ssd::PageCache>(
          storage_,
          std::max(options.shared_cache_bytes, storage_.page_size()))),
      arbiter_("runtime-context", options.memory_pool_bytes),
      snapshots_(storage_) {
  storage_.set_retry_policy(options.retry);
  // The ONE io-backend decision for every query this context will serve.
  // Context-mode engines inherit it instead of re-probing per run.
  io_backend_ =
      storage_.set_io_backend(options.io_backend, options.io_queue_depth);
  io_fallback_ = storage_.io_backend_fallback();
}

void RuntimeContext::merge_run(const RunStats& stats) {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  ++aggregates_.queries_completed;
  aggregates_.supersteps += stats.supersteps.size();
  aggregates_.messages += stats.total_messages();
  aggregates_.pages_read += stats.total_pages_read();
  aggregates_.pages_written += stats.total_pages_written();
  aggregates_.cache_hit_pages += stats.query_cache_hit_pages;
  aggregates_.cache_miss_pages += stats.query_cache_miss_pages;
  aggregates_.cache_bypass_pages += stats.query_cache_bypass_pages;
  aggregates_.query_wall_seconds += stats.total_wall_seconds();
}

ContextAggregates RuntimeContext::aggregates() const {
  std::lock_guard<std::mutex> lock(agg_mutex_);
  return aggregates_;
}

}  // namespace mlvc::core
