#include "core/graph_loader.hpp"
#include <unordered_map>

#include <algorithm>

namespace mlvc::core {

void GraphLoaderUnit::load(IntervalId interval,
                           std::span<const VertexId> actives,
                           AdjacencyBatch& out) {
  // Attribute every cached CSR read below to the owning query (no-op guard
  // when cache_slot is null — single-tenant runs).
  ssd::PageCache::ScopedQuery query_scope(config_.cache_slot);
  out.clear();
  if (actives.empty()) return;
  MLVC_CHECK(std::is_sorted(actives.begin(), actives.end()));
  const auto& intervals = graph_.intervals();
  MLVC_CHECK(actives.front() >= intervals.begin(interval) &&
             actives.back() < intervals.end(interval));

  out.spans.resize(actives.size());
  out.from_edge_log.assign(actives.size(), 0);
  out.start_page_util.assign(actives.size(), -1.0);

  // Serve edge-log residents first; the rest go through the CSR path.
  std::vector<VertexId> csr_vertices;
  std::vector<std::size_t> csr_slots;
  std::vector<VertexId> log_adj;
  std::vector<float> log_weights;
  for (std::size_t k = 0; k < actives.size(); ++k) {
    const VertexId v = actives[k];
    if (config_.use_edge_log && edge_log_ != nullptr &&
        edge_log_->load_edges(v, log_adj,
                              config_.load_weights ? &log_weights : nullptr)) {
      out.spans[k] = {out.adjacency.size(), log_adj.size()};
      out.from_edge_log[k] = 1;
      ++out.edge_log_hits;
      out.adjacency.insert(out.adjacency.end(), log_adj.begin(), log_adj.end());
      if (config_.load_weights) {
        out.weights.insert(out.weights.end(), log_weights.begin(),
                           log_weights.end());
      }
    } else {
      csr_vertices.push_back(v);
      csr_slots.push_back(k);
    }
  }

  if (!csr_vertices.empty()) {
    load_from_csr(interval, csr_vertices, csr_slots, out);
  }

  // Structural-update overlay (§V.E): pending adds/removes must be visible
  // before they are merged into the stored CSR.
  bool has_pending = graph_.pending_update_count(interval) > 0;
  if (has_pending) {
    std::vector<VertexId> adj;
    std::vector<float> w;
    for (std::size_t k = 0; k < actives.size(); ++k) {
      const auto span = out.spans[k];
      adj.assign(out.adjacency.begin() + span.offset,
                 out.adjacency.begin() + span.offset + span.length);
      if (config_.load_weights) {
        w.assign(out.weights.begin() + span.offset,
                 out.weights.begin() + span.offset + span.length);
      }
      const std::size_t before = adj.size();
      graph_.overlay_pending(actives[k], adj,
                             config_.load_weights ? &w : nullptr);
      if (adj.size() == before) continue;  // length-preserving overlays are
                                           // rare enough to ignore in place
      out.spans[k] = {out.adjacency.size(), adj.size()};
      out.adjacency.insert(out.adjacency.end(), adj.begin(), adj.end());
      if (config_.load_weights) {
        // Keep the parallel arrays aligned even for unweighted overlays.
        w.resize(adj.size(), 1.0f);
        out.weights.insert(out.weights.end(), w.begin(), w.end());
      }
    }
  }
}

void GraphLoaderUnit::load_from_csr(IntervalId interval,
                                    std::span<const VertexId> csr_vertices,
                                    std::span<const std::size_t> result_slots,
                                    AdjacencyBatch& out) {
  const auto& intervals = graph_.intervals();
  const VertexId interval_begin = intervals.begin(interval);
  const std::size_t page_size = graph_.storage().page_size();

  // ---- 1. Row pointers, in coalesced windows -----------------------------
  // Consecutive actives whose row-pointer entries are within one page of
  // each other share a window; a gap larger than a page starts a new one.
  // All windows go to storage as one vectored read.
  const std::size_t rowptr_gap = page_size / sizeof(EdgeIndex);
  std::vector<EdgeIndex> lo(csr_vertices.size());
  std::vector<EdgeIndex> hi(csr_vertices.size());
  struct Window {
    std::size_t first_j = 0;  // csr_vertices index range [first_j, end_j)
    std::size_t end_j = 0;
    std::size_t buf_off = 0;  // offset into the shared window buffer
  };
  std::vector<Window> windows;
  std::size_t rowptr_total = 0;
  std::size_t run_start = 0;
  for (std::size_t k = 1; k <= csr_vertices.size(); ++k) {
    if (k < csr_vertices.size() &&
        csr_vertices[k] - csr_vertices[k - 1] <= rowptr_gap) {
      continue;
    }
    // +1 vertex, +1 closing entry
    const std::size_t count = csr_vertices[k - 1] - csr_vertices[run_start] + 2;
    windows.push_back({run_start, k, rowptr_total});
    rowptr_total += count;
    run_start = k;
  }
  std::vector<EdgeIndex> window_buf(rowptr_total);
  {
    std::vector<graph::StoredCsrGraph::ElemRange> ranges;
    ranges.reserve(windows.size());
    for (const Window& w : windows) {
      const VertexId local_first = csr_vertices[w.first_j] - interval_begin;
      const VertexId local_last = csr_vertices[w.end_j - 1] - interval_begin;
      ranges.push_back({local_first, local_last + 2,
                        window_buf.data() + w.buf_off});
    }
    graph_.read_local_row_ptrs_multi(interval, ranges);
  }
  for (const Window& w : windows) {
    const VertexId first = csr_vertices[w.first_j];
    for (std::size_t j = w.first_j; j < w.end_j; ++j) {
      const VertexId local = csr_vertices[j] - first;
      lo[j] = window_buf[w.buf_off + local];
      hi[j] = window_buf[w.buf_off + local + 1];
    }
  }

  // ---- 2. Adjacency, page-merged vectored reads ---------------------------
  // Merge consecutive vertices' [lo, hi) byte ranges whenever the next range
  // starts on (or before) the page the previous one ends on: those pages
  // must be fetched anyway, so one contiguous read covers them without
  // touching any extra page. All runs are then fetched in one vectored call.
  const auto start_page = [&](std::size_t j) {
    return lo[j] * sizeof(VertexId) / page_size;
  };
  const auto end_page = [&](std::size_t j) {
    // Page of the last byte; empty ranges use their start page.
    return hi[j] > lo[j] ? (hi[j] * sizeof(VertexId) - 1) / page_size
                         : start_page(j);
  };

  struct Run {
    std::size_t first_j = 0;
    std::size_t end_j = 0;
    EdgeIndex lo = 0;
    EdgeIndex hi = 0;
    std::size_t buf_off = 0;
  };
  std::vector<Run> runs;
  std::size_t adj_total = 0;
  run_start = 0;
  for (std::size_t k = 1; k <= csr_vertices.size(); ++k) {
    if (k < csr_vertices.size() && start_page(k) <= end_page(k - 1)) {
      continue;  // same page chain — extend the run
    }
    const EdgeIndex run_lo = lo[run_start];
    const EdgeIndex run_hi = hi[k - 1];
    runs.push_back({run_start, k, run_lo, run_hi, adj_total});
    if (run_hi > run_lo) adj_total += run_hi - run_lo;
    run_start = k;
  }
  std::vector<VertexId> adj_buf(adj_total);
  std::vector<float> weight_buf(config_.load_weights ? adj_total : 0);
  {
    std::vector<graph::StoredCsrGraph::ElemRange> ranges;
    ranges.reserve(runs.size());
    for (const Run& r : runs) {
      if (r.hi <= r.lo) continue;
      ranges.push_back({r.lo, r.hi, adj_buf.data() + r.buf_off});
    }
    graph_.read_adjacency_multi(interval, ranges);
    if (config_.load_weights) {
      for (auto& range : ranges) {
        range.out = weight_buf.data() + (static_cast<VertexId*>(range.out) -
                                         adj_buf.data());
      }
      graph_.read_values_multi(interval, ranges);
    }
  }

  const std::uint64_t blob_id = graph_.colidx_blob(interval).id();
  for (const Run& r : runs) {
    // Per-page useful bytes for this run (only the active vertices' slices
    // count as useful; gap bytes between them on shared pages do not).
    for (std::size_t j = r.first_j; j < r.end_j; ++j) {
      const std::uint64_t byte_lo = lo[j] * sizeof(VertexId);
      const std::uint64_t byte_hi = hi[j] * sizeof(VertexId);
      if (util_tracker_ != nullptr && byte_hi > byte_lo) {
        for (std::uint64_t p = byte_lo / page_size;
             p <= (byte_hi - 1) / page_size; ++p) {
          const std::uint64_t pg_begin = p * page_size;
          const std::uint64_t pg_end = pg_begin + page_size;
          const std::size_t useful = static_cast<std::size_t>(
              std::min(byte_hi, pg_end) - std::max(byte_lo, pg_begin));
          util_tracker_->record(blob_id, p, useful);
        }
      }
      // Slice into the output buffers.
      const std::size_t slot = result_slots[j];
      out.spans[slot] = {out.adjacency.size(),
                         static_cast<std::size_t>(hi[j] - lo[j])};
      out.adjacency.insert(out.adjacency.end(),
                           adj_buf.begin() + r.buf_off + (lo[j] - r.lo),
                           adj_buf.begin() + r.buf_off + (hi[j] - r.lo));
      if (config_.load_weights) {
        out.weights.insert(out.weights.end(),
                           weight_buf.begin() + r.buf_off + (lo[j] - r.lo),
                           weight_buf.begin() + r.buf_off + (hi[j] - r.lo));
      }
    }
  }

  // ---- 3. Start-page utilization for the edge-log decision ----------------
  // Query the tracker *after* all recording above so a page shared by
  // several actives reflects their combined utilization.
  if (util_tracker_ != nullptr) {
    // The tracker accumulates across the superstep; expose the utilization
    // as currently known. (Later intervals cannot add to this interval's
    // pages — each colidx blob belongs to exactly one interval.)
    // We recompute from our own records: simplest is a local pass.
    // To avoid a tracker query API, recompute per-run page sums:
    std::unordered_map<std::uint64_t, std::size_t> local_useful;
    for (std::size_t j = 0; j < csr_vertices.size(); ++j) {
      const std::uint64_t byte_lo = lo[j] * sizeof(VertexId);
      const std::uint64_t byte_hi = hi[j] * sizeof(VertexId);
      for (std::uint64_t p = byte_lo / page_size;
           byte_hi > byte_lo && p <= (byte_hi - 1) / page_size; ++p) {
        const std::uint64_t pg_begin = p * page_size;
        const std::uint64_t pg_end = pg_begin + page_size;
        local_useful[p] += static_cast<std::size_t>(
            std::min(byte_hi, pg_end) - std::max(byte_lo, pg_begin));
      }
    }
    for (std::size_t j = 0; j < csr_vertices.size(); ++j) {
      if (hi[j] == lo[j]) continue;
      const std::uint64_t p = lo[j] * sizeof(VertexId) / page_size;
      out.start_page_util[result_slots[j]] =
          static_cast<double>(local_useful[p]) /
          static_cast<double>(page_size);
    }
  }
}

}  // namespace mlvc::core
