// Engine configuration, mirroring the paper's Figure 4 memory layout and
// the design knobs DESIGN.md calls out for ablation.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "common/memory_budget.hpp"
#include "common/types.hpp"
#include "ssd/device_model.hpp"
#include "ssd/io_backend.hpp"

namespace mlvc::core {

enum class ComputationModel {
  /// Bulk-synchronous: messages sent in superstep s are visible in s+1.
  kSynchronous,
  /// §V.F asynchronous: messages may be delivered within the same superstep
  /// (when the destination interval is processed after the send).
  kAsynchronous,
};

struct EngineOptions {
  /// Total host memory budget. The paper uses 1 GB against ~100 GB graphs;
  /// scale this down with graph size to keep the ratio (DESIGN.md §2).
  std::size_t memory_budget_bytes = 64_MiB;

  /// Figure 4 split: X% sort/group, A% multi-log buffers, B% edge log.
  BudgetSplit split{};

  /// Stop after this many supersteps even without convergence. The paper
  /// runs at most 15 (§VII).
  Superstep max_supersteps = 15;

  ComputationModel model = ComputationModel::kSynchronous;

  /// Superstep-internal execution order (common/types.hpp). kBsp keeps the
  /// paper's barrier path (fused groups, id order) untouched; any other
  /// value runs interval-granular chains ordered by core::IntervalScheduler.
  /// Ordering only — delivery semantics stay with `model`, so a scheduled
  /// synchronous run still converges to the BSP values, while
  /// schedule+kAsynchronous adds same-wave delivery and dynamic requeue of
  /// intervals whose logs grew after they ran (the effective-round win).
  /// MLVC_SCHEDULE overrides this.
  SchedulePolicy schedule_policy = SchedulePolicy::kBsp;

  /// Scheduled-async redelivery floor: an interval is re-queued for its
  /// (single, per-wave) same-wave delivery pass only once the volume
  /// produced for it since its last drain reaches this many bytes; below
  /// the floor the pending records ride the generation swap into the next
  /// wave. 0 (default) = any pending volume qualifies — the one-redelivery-
  /// per-wave rule already bounds the chain count, and same-wave delivery
  /// of even tiny residuals is what collapses the convergence tail.
  std::uint64_t async_requeue_min_bytes = 0;

  /// §V.C edge-log optimizer. Off = every adjacency read hits the CSR.
  bool enable_edge_log = true;

  /// §V.A.2 interval fusion. Off = one interval per sort/group pass.
  bool enable_interval_fusion = true;

  /// §V.D combine path for associative+commutative apps. Off = all messages
  /// preserved even when the app provides a combine operator.
  bool enable_combine = true;

  /// Where the combine operator runs on a striped store (common/types.hpp).
  /// kDevice models computational storage: each device reduces its resident
  /// log records before they cross the bus (per-device reduction tables),
  /// shrinking bytes-crossed-bus at the cost of a small host merge. Only
  /// meaningful with enable_combine, a kHasCombine app, and > 1 device —
  /// otherwise the host path runs regardless. MLVC_COMBINE_PLACEMENT
  /// overrides this.
  CombinePlacement combine_placement = CombinePlacement::kHost;

  /// Message movement direction (common/types.hpp). kPush keeps the paper's
  /// multi-log scatter untouched (the default — zero behavior change).
  /// kPull forces every eligible interval through the transpose-CSR gather
  /// path; kAdaptive compares, per destination interval per superstep, the
  /// predicted push log traffic against the interval's stored in-edge bytes
  /// and pulls when push would move more. Pull needs a stored transpose, a
  /// broadcast-send app (kHasPullGather) with a combine, and the synchronous
  /// model; anything else falls back to push with the reason recorded in
  /// RunStats. MLVC_DIRECTION overrides this.
  DirectionMode direction = DirectionMode::kPush;

  /// Adaptive-direction threshold: interval i pulls when
  ///   est_push_bytes(i) >= pull_density_threshold * est_pull_bytes(i).
  /// Raise above 1 to pull only when push is clearly worse; lower toward 0
  /// to pull aggressively.
  double pull_density_threshold = 1.0;

  /// §V.B sort-and-group implementation. kAuto uses the fused parallel
  /// counting scatter (histogram + prefix sum + scatter keyed by
  /// dst - interval_begin) whenever the fused range is not vastly wider than
  /// the log, falling back to decode + comparison sort for nearly-empty
  /// logs over wide ranges. Forcing a path is for tests and ablation.
  SortGroupPath sort_group_path = SortGroupPath::kAuto;

  /// History depth N for the active-vertex predictor (paper uses 1).
  unsigned predictor_history = 1;

  /// Page-utilization threshold below which a page counts as inefficient
  /// (paper uses 10%).
  double page_util_threshold = 0.10;

  /// Pipelined superstep execution (§VI async I/O): log load/decode/sort of
  /// interval group k+1 overlaps group k's compute, adjacency batches are
  /// prefetched while the current batch runs, and full multi-log top pages
  /// are written back by I/O threads instead of the producing compute
  /// thread. Vertex values are identical to the serial path; only the
  /// overlap (and so wall time) changes. false = fully serial superstep.
  bool enable_pipeline = true;

  /// Dedicated I/O threads for the pipeline (ssd::AsyncIo pool size). The
  /// paper keeps "many page reads in flight with minimal host resources";
  /// 0 behaves like enable_pipeline = false.
  unsigned io_threads = 4;

  /// How many active-vertex batches ahead the graph loader may run. 1 is
  /// classic double buffering (next batch loads while current computes).
  unsigned prefetch_depth = 2;

  /// Hot-path I/O substrate for the run's Storage (ssd/io_backend.hpp):
  /// kThreadPool = blocking pread/pwrite on the calling thread (default),
  /// kUring = batched submission through a raw io_uring ring. A kUring
  /// request transparently falls back to the thread pool when the kernel or
  /// sandbox refuses io_uring. MLVC_IO_BACKEND overrides this.
  ssd::IoBackendKind io_backend = ssd::IoBackendKind::kThreadPool;

  /// SQEs kept in flight per io_uring batch (ring size; the kernel rounds
  /// up to a power of two). Ignored by the thread-pool backend.
  unsigned io_queue_depth = 64;

  /// Per-thread, per-interval staging depth (records) for the produce path:
  /// send() appends into a thread-local buffer with no lock and no shared
  /// atomics, flushing into the shared multi-log top page one chunk at a
  /// time (on buffer-full, at batch end, and before asynchronous-mode
  /// drains). 0 = the old per-record locked append. The
  /// MLVC_SCATTER_STAGING environment variable, when set, overrides this
  /// (CI uses it to pin the worst-case depth of 1).
  unsigned scatter_staging_records = 64;

  /// Host-side CLOCK cache over CSR adjacency (colidx) pages, in bytes.
  /// 0 = no cache: every adjacency read hits storage (the out-of-core
  /// default, and what the paper's page-access counts assume).
  std::size_t adjacency_cache_bytes = 0;

  /// On-disk layout for the data this run *writes*: the multi-log message
  /// stream (and the stored CSR when a tool builds one with the same knob).
  /// kV2 delta+varint-compresses destination ids (and integral payloads)
  /// inside self-delimiting chunks, decoded inside the sort-and-group
  /// scatter pass; kV1 is the original fixed-width record layout. Reading
  /// is always format-aware (versioned headers), so a v2 engine still
  /// loads v1 graphs and v1 checkpoints. MLVC_FORMAT overrides this.
  OnDiskFormat on_disk_format = OnDiskFormat::kV2;

  /// Seed for all app-level randomness (MIS priorities, random walks).
  std::uint64_t seed = 1;

  /// Store vertex values on storage (true, the out-of-core default) or in
  /// host memory (false; only sensible for unit tests).
  bool values_on_storage = true;

  // Robustness ------------------------------------------------------------
  /// Transient I/O retry budget forwarded to ssd::Storage (attempts per
  /// no-progress streak before a typed IoError escalates).
  unsigned io_retry_attempts = 4;
  /// First backoff sleep between retries, microseconds (doubles per retry).
  unsigned io_retry_base_delay_us = 50;
  /// When a loaded log group's byte count is not a whole number of records
  /// (torn trailing page after a crash), drop the partial tail and continue
  /// instead of throwing. The dropped bytes are reported per superstep as
  /// torn_bytes_dropped. false = strict mode: any tear is fatal.
  bool torn_page_recovery = true;

  // Derived budget slices --------------------------------------------------
  std::size_t sort_budget() const {
    return static_cast<std::size_t>(memory_budget_bytes *
                                    split.sort_fraction);
  }
  std::size_t log_buffer_budget() const {
    return static_cast<std::size_t>(memory_budget_bytes *
                                    split.log_buffer_fraction);
  }
  std::size_t edge_log_budget() const {
    return static_cast<std::size_t>(memory_budget_bytes *
                                    split.edge_log_fraction);
  }
  /// Remainder: graph loader buffers (row pointers + adjacency pages).
  std::size_t loader_budget() const {
    return memory_budget_bytes - sort_budget() - log_buffer_budget() -
           edge_log_budget();
  }
};

/// Environment overrides, applied by the engine at construction so every
/// entry point (tools, tests, benches) honors them. MLVC_SCATTER_STAGING
/// pins the produce-path staging depth — CI runs the tier-1 suite with it
/// set to 1 to keep the worst-case flush-churn configuration honest. The
/// MLVC_FAULT_* overrides let the CI fault matrix tune the retry budget and
/// recovery mode underneath an unmodified test suite, and MLVC_IO_BACKEND /
/// MLVC_URING_DEPTH re-run the same suite on the io_uring substrate.
inline EngineOptions apply_env_overrides(EngineOptions options) {
  if (const char* env = std::getenv("MLVC_SCATTER_STAGING")) {
    options.scatter_staging_records =
        static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("MLVC_FAULT_RETRIES")) {
    const unsigned n = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    options.io_retry_attempts = n > 0 ? n : 1;
  }
  if (const char* env = std::getenv("MLVC_FAULT_RETRY_BASE_US")) {
    options.io_retry_base_delay_us =
        static_cast<unsigned>(std::strtoul(env, nullptr, 10));
  }
  if (const char* env = std::getenv("MLVC_FAULT_TORN_RECOVERY")) {
    options.torn_page_recovery = std::strtoul(env, nullptr, 10) != 0;
  }
  if (const char* env = std::getenv("MLVC_IO_BACKEND")) {
    // Unknown values are rejected by Storage's own MLVC_IO_BACKEND parse;
    // here an unparsable value just leaves the configured backend alone.
    if (const auto kind = ssd::parse_io_backend(env)) {
      options.io_backend = *kind;
    }
  }
  if (const char* env = std::getenv("MLVC_FORMAT")) {
    // Same convention as MLVC_IO_BACKEND: an unparsable value leaves the
    // configured format alone rather than aborting every entry point.
    parse_on_disk_format(env, &options.on_disk_format);
  }
  if (const char* env = std::getenv("MLVC_SCHEDULE")) {
    // Ordering only: the override never flips the computation model, so a
    // tier-1 re-run under MLVC_SCHEDULE=hub-degree keeps every app's
    // delivery semantics (and therefore its values) intact.
    parse_schedule_policy(env, &options.schedule_policy);
  }
  if (const char* env = std::getenv("MLVC_DIRECTION")) {
    // Same convention as MLVC_SCHEDULE: an unparsable value leaves the
    // configured direction alone. Pull/adaptive are self-gating — a store
    // with no transpose (or an app with no pull hook) still runs push, so
    // a tier-1 re-run under MLVC_DIRECTION=adaptive is always safe.
    parse_direction_mode(env, &options.direction);
  }
  if (const char* env = std::getenv("MLVC_URING_DEPTH")) {
    const unsigned d = static_cast<unsigned>(std::strtoul(env, nullptr, 10));
    if (d > 0) options.io_queue_depth = d;
  }
  if (const char* env = std::getenv("MLVC_COMBINE_PLACEMENT")) {
    // Same convention as MLVC_FORMAT: an unparsable value leaves the
    // configured placement alone rather than aborting every entry point.
    parse_combine_placement(env, &options.combine_placement);
  }
  return options;
}

}  // namespace mlvc::core
