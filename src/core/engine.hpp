// The MultiLogVC engine: Algorithm 1 of the paper.
//
// Per superstep:
//   1. plan fused interval groups whose current message logs fit the sort
//      budget (§V.A.2);
//   2. per group: LoadLog() each interval's log (plus, in asynchronous mode,
//      drain messages already produced this superstep for it), sort in
//      memory by destination, optionally combine (§V.D), and
//      ExtractActiveVert();
//   3. per interval, in loader-budget-bounded batches of active vertices:
//      gather vertex values, load adjacency through the Graph Loader Unit
//      (edge-log hits first, then page-coalesced CSR reads), run the
//      application's ProcessVertex in parallel, route its SendUpdate()s
//      through per-thread staging buffers into the produce-generation
//      multi-log (flushed in chunks at batch end), apply the §V.C edge-log
//      decision, scatter values back;
//   4. close the superstep: score/advance the predictor, summarize page
//      utilization, apply buffered structural updates, swap log generations.
//
// With options.enable_pipeline the superstep is staged (§VI async I/O):
// interval group k+1's load/decode/sort runs on ssd::AsyncIo threads while
// group k computes (synchronous model only — asynchronous-mode loads drain
// messages produced earlier in the same superstep), and within an interval
// the next active-vertex batches' adjacency/value loads are prefetched up to
// options.prefetch_depth ahead of the batch being computed. Vertex values
// are identical to the serial path; only the overlap changes.
//
// With options.schedule_policy != kBsp the barrier inside a superstep is
// replaced by interval-granular chains ordered by core::IntervalScheduler
// (DESIGN.md §4c): each ready interval's load→decode→sort→compute chain is
// released independently, highest estimated impact first. Under the
// synchronous model this reorders work only (values converge to the BSP
// fixed point); under the asynchronous model chains additionally drain
// same-wave sends and the scheduler re-queues intervals whose logs grew
// after their drain, cutting effective rounds. Superstep boundaries (and so
// checkpoints, stats, and convergence detection) are unchanged either way.
#pragma once

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>

#include "common/bitset.hpp"
#include "common/checksum.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/graph_loader.hpp"
#include "core/interval_scheduler.hpp"
#include "core/message_range.hpp"
#include "core/options.hpp"
#include "core/runtime_context.hpp"
#include "core/stats.hpp"
#include "core/vertex_program.hpp"
#include "core/vertex_value_store.hpp"
#include "graph/stored_csr.hpp"
#include "multilog/active_set.hpp"
#include "multilog/device_combine.hpp"
#include "multilog/edge_log.hpp"
#include "multilog/multilog_store.hpp"
#include "multilog/page_util.hpp"
#include "multilog/predictor.hpp"
#include "multilog/sort_group.hpp"
#include "ssd/async_io.hpp"

namespace mlvc::core {

/// Compute the paper's §V.A.1 interval partition for an app's message size.
template <VertexApp App>
graph::VertexIntervals partition_for_app(const graph::CsrGraph& csr,
                                         const EngineOptions& options) {
  const auto in_degrees = csr.in_degrees();
  return graph::VertexIntervals::partition_by_in_degree(
      in_degrees, sizeof(multilog::Record<typename App::Message>),
      options.sort_budget());
}

template <VertexApp App>
class MultiLogVCEngine {
 public:
  using Value = typename App::Value;
  using Message = typename App::Message;
  using Rec = multilog::Record<Message>;

  /// One-shot constructor: the engine owns its whole substrate — it sizes a
  /// private adjacency cache, sets the storage retry policy, and selects the
  /// io backend itself. Blob names live under the fixed "mlvc" prefix.
  MultiLogVCEngine(graph::StoredCsrGraph& graph, App app,
                   EngineOptions options)
      : MultiLogVCEngine(nullptr, 0, graph, std::move(app), options) {}

  /// Context-mode constructor: one per-QUERY engine over shared per-PROCESS
  /// substrate. The engine
  ///   * leases its memory_budget_bytes from the context's BudgetArbiter
  ///     (blocking in the constructor until admitted — this is query
  ///     admission control),
  ///   * registers a QuerySlot in the shared adjacency cache with an
  ///     admission quota of options.adjacency_cache_bytes (0 = compete for
  ///     the whole cache),
  ///   * namespaces every blob it creates under "q<id>" so concurrent
  ///     engines on one Storage cannot collide,
  ///   * inherits the context's io backend and retry policy instead of
  ///     mutating shared Storage state, and
  ///   * attributes its I/O to a private IoStats (step.io stays a per-query
  ///     number even while other queries hammer the same Storage).
  /// The graph must already be adopted (RuntimeContext::adopt_graph).
  MultiLogVCEngine(RuntimeContext& ctx, graph::StoredCsrGraph& graph, App app,
                   EngineOptions options)
      : MultiLogVCEngine(&ctx, ctx.next_query_id(), graph, std::move(app),
                         options) {
    MLVC_CHECK_MSG(&graph.storage() == &ctx.storage(),
                   "context-mode engine needs a graph stored in the "
                   "context's storage");
  }

  /// Run to convergence or options.max_supersteps. An optional callback is
  /// invoked after each superstep with its stats (benches use this to stop
  /// BFS at a traversal fraction, etc.); returning false stops the run.
  /// Continues from the last executed superstep, so run() after
  /// load_checkpoint() resumes where the checkpoint was taken.
  template <typename StepFn>
  RunStats run_with_callback(StepFn&& on_superstep) {
    for (Superstep s = next_superstep_; s < options_.max_supersteps; ++s) {
      // §4e: suppressed (never-logged) deliveries are pending whenever last
      // superstep captured broadcasts and some interval is planned to pull —
      // without the third clause a wave whose sends were ALL suppressed
      // would terminate one superstep early.
      const bool any_input = store_.total_current_count() > 0 ||
                             sticky_active_.count() > 0 ||
                             (any_pull_next_ && frontier_cur_.any());
      if (!any_input) break;
      SuperstepStats step = execute_superstep(s);
      next_superstep_ = s + 1;
      const bool keep_going = on_superstep(step);
      stats_.supersteps.push_back(std::move(step));
      if (!keep_going) break;
    }
    // Per-query cache split (context mode): cumulative QuerySlot counters —
    // a resumed run reports the totals so far, which is what callers merge.
    if (const auto* slot = cache_reg_.slot(); slot != nullptr) {
      stats_.query_cache_hit_pages = slot->hits();
      stats_.query_cache_miss_pages = slot->misses();
      stats_.query_cache_bypass_pages = slot->bypasses();
    }
    return stats_;
  }

  // ---- checkpoint / rollback (superstep-boundary fault tolerance) ---------
  //
  // A checkpoint captures everything needed to re-execute from the next
  // superstep: the superstep counter, vertex values, the sticky-active set,
  // and the pending (current-generation) message logs. The edge log is an
  // optimization cache and is simply dropped on rollback. Limitation:
  // structural updates already merged into the stored CSR are not rolled
  // back — checkpoint before mutating the graph.
  //
  // On-disk layout: a 20-byte header [u32 magic, u32 version,
  // u64 payload_bytes, u32 crc32-of-payload] followed by the payload. The
  // image is written to a ".tmp" blob, fsynced, then atomically renamed over
  // the final name (Storage::publish_blob), so a crash mid-save leaves the
  // previous checkpoint intact; the CRC catches torn or bit-flipped images
  // at load time before any engine state is touched.
  //
  // Version 3 payloads start with one byte naming the OnDiskFormat of the
  // embedded log images; version 2 images (pre-format-v2 checkpoints) are
  // still accepted and treated as v1-format logs. A mismatch between the
  // image's log format and the running store's is transcoded through the
  // log codec on load, so checkpoints round-trip across --format changes.
  //
  // Version 4 appends the §4e direction state after the values: the
  // per-interval direction plan for the next superstep plus the captured
  // broadcasts (vertex ids + messages) whose suppressed sends never reached
  // the message logs. v2/v3 images are still accepted (no pull state). A v4
  // image that carries pull state refuses to load into an engine that cannot
  // pull — silently dropping it would lose in-flight deliveries.

  static constexpr std::uint32_t kCkptMagic = 0x4B435643u;  // "CVCK"
  static constexpr std::uint32_t kCkptVersion = 4;
  static constexpr std::size_t kCkptHeaderBytes = 20;

  /// Persist a checkpoint into the graph's storage under `name`. One-shot
  /// engines publish directly under their prefix; context-mode engines
  /// stage the image under their own "q<id>" prefix and hand it to the
  /// context SnapshotTable, which owns generation-versioned atomic
  /// publication (a concurrent reader's pinned snapshot never observes a
  /// half-published or superseded image).
  void save_checkpoint(const std::string& name) {
    auto& storage = graph_.storage();
    const std::string final_name = blob_prefix_ + "/ckpt_" + name;
    const std::string tmp_name = final_name + ".tmp";
    ssd::Blob& blob = storage.create_blob(tmp_name, ssd::IoCategory::kMisc);
    // Reserve the header; written last, once the payload size and CRC are
    // known.
    const std::array<std::byte, kCkptHeaderBytes> zero_header{};
    blob.append(zero_header.data(), zero_header.size());
    std::uint32_t crc = crc32_init();
    std::uint64_t payload_bytes = 0;
    const auto put = [&](const void* data, std::size_t len) {
      blob.append(data, len);
      crc = crc32_update(crc, data, len);
      payload_bytes += len;
    };
    put(&next_superstep_, 4);
    const std::uint8_t log_format = static_cast<std::uint8_t>(store_.format());
    put(&log_format, 1);
    const auto words = sticky_active_.words();
    const std::uint64_t n_words = words.size();
    put(&n_words, 8);
    put(words.data(), words.size_bytes());
    const IntervalId n_int = graph_.intervals().count();
    put(&n_int, 4);
    std::vector<std::byte> bytes;
    std::uint64_t stored_log_bytes = 0;
    std::uint64_t decoded_log_bytes = 0;
    for (IntervalId i = 0; i < n_int; ++i) {
      bytes.clear();
      store_.load_interval(i, bytes);
      stored_log_bytes += bytes.size();
      decoded_log_bytes += store_.current_bytes(i);
      const std::uint64_t n_bytes = bytes.size();
      put(&n_bytes, 8);
      put(bytes.data(), bytes.size());
    }
    values_.for_each_chunk([&](VertexId, std::span<const Value> chunk) {
      put(chunk.data(), chunk.size_bytes());
    });
    // ---- v4 appendix: §4e direction state ---------------------------------
    // At a superstep boundary direction_next_ is the plan for
    // next_superstep_, and broadcast_cur_/frontier_cur_ hold the previous
    // superstep's captured broadcasts — deliveries the suppressed sends
    // never wrote to the logs, reconstructible only from here.
    const std::uint32_t n_dir =
        static_cast<std::uint32_t>(direction_next_.size());
    put(&n_dir, 4);
    put(direction_next_.data(), direction_next_.size());
    const auto fwords = frontier_cur_.words();
    const std::uint64_t n_fwords = fwords.size();
    put(&n_fwords, 8);
    put(fwords.data(), fwords.size_bytes());
    std::vector<VertexId> bids;
    frontier_cur_.for_each_set([&](VertexId v) { bids.push_back(v); });
    const std::uint64_t n_bcast = bids.size();
    put(&n_bcast, 8);
    if (!bids.empty()) {
      const std::vector<Message> bmsgs = broadcast_cur_->gather(bids);
      put(bids.data(), bids.size() * sizeof(VertexId));
      put(bmsgs.data(), bmsgs.size() * sizeof(Message));
    }
    // Logical (decoded-content) checkpoint size vs the physical payload the
    // blob sees — under v2 the embedded log images are compressed.
    storage.stats().record_logical_write(
        ssd::IoCategory::kMisc,
        payload_bytes - stored_log_bytes + decoded_log_bytes);

    std::array<std::byte, kCkptHeaderBytes> header{};
    const std::uint32_t crc_value = crc32_final(crc);
    std::memcpy(header.data() + 0, &kCkptMagic, 4);
    std::memcpy(header.data() + 4, &kCkptVersion, 4);
    std::memcpy(header.data() + 8, &payload_bytes, 8);
    std::memcpy(header.data() + 16, &crc_value, 4);
    blob.write(0, header.data(), header.size());
    blob.sync();
    if (ctx_ != nullptr) {
      ctx_->snapshots().publish("ckpt/" + name, tmp_name);
    } else {
      storage.publish_blob(tmp_name, final_name);
    }
  }

  /// Roll engine state back to a previously saved checkpoint.
  void load_checkpoint(const std::string& name) {
    // Context mode: pin a read snapshot for the whole load — the pin keeps
    // this generation's blob alive even if another query publishes (and so
    // supersedes) the same checkpoint name mid-read.
    SnapshotTable::Ref snapshot;
    if (ctx_ != nullptr) snapshot = ctx_->snapshots().pin();
    ssd::Blob& blob = graph_.storage().open_blob(
        ctx_ != nullptr ? snapshot.resolve("ckpt/" + name)
                        : blob_prefix_ + "/ckpt_" + name);
    MLVC_CHECK_MSG(blob.size() >= kCkptHeaderBytes,
                   "checkpoint blob too small for a header");
    std::array<std::byte, kCkptHeaderBytes> header{};
    blob.read(0, header.data(), header.size());
    std::uint32_t magic = 0, version = 0, stored_crc = 0;
    std::uint64_t payload_bytes = 0;
    std::memcpy(&magic, header.data() + 0, 4);
    std::memcpy(&version, header.data() + 4, 4);
    std::memcpy(&payload_bytes, header.data() + 8, 8);
    std::memcpy(&stored_crc, header.data() + 16, 4);
    MLVC_CHECK_MSG(magic == kCkptMagic, "not a checkpoint blob");
    // Version 2 = pre-format-v2 images (no log-format byte, logs are v1);
    // version 3 = pre-direction images (no §4e appendix).
    MLVC_CHECK_MSG(
        version == kCkptVersion || version == 3 || version == 2,
        "unsupported checkpoint version " << version);
    MLVC_CHECK_MSG(kCkptHeaderBytes + payload_bytes <= blob.size(),
                   "checkpoint payload truncated");
    // Verify the payload CRC in a streaming pass BEFORE parsing anything, so
    // a torn or corrupt image never leaves the engine half-restored.
    {
      std::uint32_t crc = crc32_init();
      std::vector<std::byte> chunk(std::min<std::uint64_t>(
          payload_bytes > 0 ? payload_bytes : 1, 1u << 20));
      std::uint64_t pos = kCkptHeaderBytes;
      std::uint64_t remaining = payload_bytes;
      while (remaining > 0) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk.size(), remaining));
        blob.read(pos, chunk.data(), n);
        crc = crc32_update(crc, chunk.data(), n);
        pos += n;
        remaining -= n;
      }
      MLVC_CHECK_MSG(crc32_final(crc) == stored_crc,
                     "checkpoint CRC mismatch — torn or corrupt image");
    }
    std::uint64_t off = kCkptHeaderBytes;
    const auto read = [&](void* out, std::size_t len) {
      blob.read(off, out, len);
      off += len;
    };
    read(&next_superstep_, 4);
    auto image_format = OnDiskFormat::kV1;
    if (version >= 3) {
      std::uint8_t fmt = 0;
      read(&fmt, 1);
      MLVC_CHECK_MSG(fmt == static_cast<std::uint8_t>(OnDiskFormat::kV1) ||
                         fmt == static_cast<std::uint8_t>(OnDiskFormat::kV2),
                     "unknown checkpoint log format " << unsigned(fmt));
      image_format = static_cast<OnDiskFormat>(fmt);
    }
    std::uint64_t n_words = 0;
    read(&n_words, 8);
    std::vector<std::uint64_t> words(n_words);
    read(words.data(), n_words * 8);
    sticky_active_.load_words(words);
    IntervalId n_int = 0;
    read(&n_int, 4);
    MLVC_CHECK(n_int == graph_.intervals().count());
    // Records staged by an aborted superstep must not flush into the
    // rolled-back generations.
    for (auto& ts : thread_state_) ts.staging.discard();
    store_.reset_all();
    std::vector<std::byte> bytes;
    std::uint64_t stored_log_bytes = 0;
    std::uint64_t decoded_log_bytes = 0;
    for (IntervalId i = 0; i < n_int; ++i) {
      std::uint64_t n_bytes = 0;
      read(&n_bytes, 8);
      bytes.resize(n_bytes);
      read(bytes.data(), n_bytes);
      stored_log_bytes += n_bytes;
      if (image_format == store_.format()) {
        store_.restore_current_interval(i, bytes);
      } else if (store_.format() == OnDiskFormat::kV2) {
        // v1 image into a v2 store: compress on the way in.
        std::vector<std::uint8_t> enc;
        multilog::encode_records_to_chunks(
            bytes, sizeof(Rec), multilog::kPayloadVarint<Message>, enc);
        store_.restore_current_interval(
            i, std::as_bytes(std::span<const std::uint8_t>(enc)));
      } else {
        // v2 image into a v1 store: expand back to fixed-width records.
        std::vector<std::byte> raw;
        multilog::decode_chunks_to_records(
            bytes, sizeof(Rec), multilog::kPayloadVarint<Message>, raw);
        store_.restore_current_interval(i, raw);
      }
      decoded_log_bytes += store_.current_bytes(i);
    }
    graph_.storage().stats().record_logical_read(
        ssd::IoCategory::kMisc,
        payload_bytes - stored_log_bytes + decoded_log_bytes);
    {
      constexpr VertexId kChunk = 1u << 16;
      std::vector<Value> chunk;
      VertexId begin = 0;
      const VertexId n = graph_.num_vertices();
      while (begin < n) {
        const VertexId end = static_cast<VertexId>(std::min<std::uint64_t>(
            n, static_cast<std::uint64_t>(begin) + kChunk));
        chunk.resize(end - begin);
        read(chunk.data(), chunk.size() * sizeof(Value));
        values_.store_range(begin, chunk);
        begin = end;
      }
    }
    // ---- v4 appendix: §4e direction state ---------------------------------
    // Clear pull state first so pre-v4 images (and v4 images taken from
    // push-only runs) roll back to a clean push start.
    std::fill(direction_next_.begin(), direction_next_.end(), 0);
    any_pull_next_ = false;
    frontier_cur_.clear_all();
    frontier_next_.clear_all();
    pull_dense_valid_ = false;
    plan_produced_last_ = 0;
    plan_produced_prev_ = 0;
    if (version >= 4) {
      std::uint32_t n_dir = 0;
      read(&n_dir, 4);
      std::vector<std::uint8_t> dirs(n_dir);
      read(dirs.data(), n_dir);
      std::uint64_t n_fwords = 0;
      read(&n_fwords, 8);
      std::vector<std::uint64_t> fwords(n_fwords);
      read(fwords.data(), n_fwords * 8);
      std::uint64_t n_bcast = 0;
      read(&n_bcast, 8);
      std::vector<VertexId> bids(n_bcast);
      std::vector<Message> bmsgs(n_bcast);
      if (n_bcast > 0) {
        read(bids.data(), n_bcast * sizeof(VertexId));
        read(bmsgs.data(), n_bcast * sizeof(Message));
      }
      bool any_dir = false;
      for (const std::uint8_t d : dirs) any_dir = any_dir || d != 0;
      if (any_dir || n_bcast > 0) {
        MLVC_CHECK_MSG(
            pull_available_,
            "checkpoint carries pull-direction state but this engine cannot "
            "pull (no stored transpose, asynchronous model, or --direction "
            "push) — reload under a pull-capable configuration");
        MLVC_CHECK(dirs.size() == direction_next_.size());
        std::copy(dirs.begin(), dirs.end(), direction_next_.begin());
        any_pull_next_ = any_dir;
        if (n_fwords == frontier_cur_.words().size()) {
          frontier_cur_.load_words(fwords);
        } else {
          for (const VertexId v : bids) frontier_cur_.set(v);
        }
        if (n_bcast > 0) broadcast_cur_->scatter(bids, bmsgs);
      }
    }
    // Drop the edge-log cache and any un-applied structural updates.
    edge_log_.reset();
    {
      std::lock_guard<std::mutex> lock(structural_mutex_);
      structural_queue_.clear();
    }
  }

  RunStats run() {
    return run_with_callback([](const SuperstepStats&) { return true; });
  }

  std::vector<Value> values() const { return values_.all(); }
  /// Stream vertex values in id-ascending chunks without materializing the
  /// O(V) vector values() returns — the export/hash path for big graphs.
  /// fn(first_vertex_id, std::span<const Value>).
  template <typename Fn>
  void for_each_value_chunk(Fn&& fn) const {
    values_.for_each_chunk(std::forward<Fn>(fn));
  }
  const RunStats& stats() const { return stats_; }
  graph::StoredCsrGraph& graph() { return graph_; }
  /// Context-mode identity/views (query_id() is 0 for one-shot engines,
  /// cache_slot() null).
  std::uint64_t query_id() const noexcept { return query_id_; }
  const ssd::PageCache::QuerySlot* cache_slot() const noexcept {
    return cache_reg_.slot();
  }

  // ---- the vertex context passed to App::process --------------------------
  class Context {
   public:
    Context(MultiLogVCEngine& engine, VertexId v, Superstep superstep,
            const AdjacencyBatch& batch, std::size_t slot, Value value)
        : engine_(engine),
          v_(v),
          superstep_(superstep),
          batch_(batch),
          slot_(slot),
          value_(value) {}

    VertexId id() const { return v_; }
    Superstep superstep() const { return superstep_; }
    VertexId num_vertices() const { return engine_.graph_.num_vertices(); }

    const Value& value() const { return value_; }
    void set_value(const Value& v) {
      value_ = v;
      value_dirty_ = true;
    }

    std::size_t out_degree() const { return batch_.spans[slot_].length; }
    VertexId out_edge(std::size_t i) const {
      return batch_.adjacency[batch_.spans[slot_].offset + i];
    }
    float out_weight(std::size_t i) const {
      return batch_.weights.empty()
                 ? 1.0f
                 : batch_.weights[batch_.spans[slot_].offset + i];
    }
    std::span<const VertexId> out_edges() const {
      return {batch_.adjacency.data() + batch_.spans[slot_].offset,
              batch_.spans[slot_].length};
    }

    void send(VertexId dst, const Message& m) {
      // Lock-free scatter: the record goes into this thread's staging area
      // and the counters are thread-private; nothing shared is touched until
      // a staged chunk flushes (buffer-full here, batch end in the engine).
      auto& ts = engine_.thread_state_[thread_index()];
      multilog::append_record_staged<Message>(engine_.store_, ts.staging, dst,
                                              m);
      ++ts.messages_produced;
      ++ts.edges_activated;
    }
    void send_to_all_neighbors(const Message& m) {
      if (engine_.capture_broadcasts_) {
        // §4e broadcast capture: remember what this vertex broadcast (a
        // double broadcast folds through the app combine, exactly as the
        // log path would) and suppress the per-edge records destined to
        // intervals that will pull next superstep — those deliveries are
        // regenerated there from the transpose CSR plus this captured
        // message. Raw send() is never suppressed.
        broadcast_msg_ = broadcast_set_
                             ? combine_messages(engine_.app_, broadcast_msg_, m)
                             : m;
        broadcast_set_ = true;
        auto& ts = engine_.thread_state_[thread_index()];
        const auto& intervals = engine_.graph_.intervals();
        for (std::size_t i = 0; i < out_degree(); ++i) {
          const VertexId dst = out_edge(i);
          if (engine_.direction_next_[intervals.interval_of(dst)] != 0) {
            // The message logically exists — only its log record does not.
            ++ts.messages_produced;
            ++ts.edges_activated;
            ts.log_bytes_avoided += sizeof(Rec);
          } else {
            send(dst, m);
          }
        }
        return;
      }
      for (std::size_t i = 0; i < out_degree(); ++i) send(out_edge(i), m);
    }

    void deactivate() { deactivated_ = true; }

    /// §V.E structural updates; visible from the next superstep.
    void add_edge(VertexId dst, float weight = 1.0f) {
      engine_.queue_structural(
          {graph::StructuralUpdate::Kind::kAddEdge, v_, dst, weight});
    }
    void remove_edge(VertexId dst) {
      engine_.queue_structural(
          {graph::StructuralUpdate::Kind::kRemoveEdge, v_, dst, 1.0f});
    }

    /// Deterministic per-(vertex, superstep) random stream.
    SplitMix64 rng() const {
      return stream_for(engine_.options_.seed, v_, superstep_);
    }

    bool deactivated() const { return deactivated_; }
    bool value_dirty() const { return value_dirty_; }
    const Value& current_value() const { return value_; }
    /// §4e capture outputs, read by the engine after process() returns.
    bool broadcast_set() const { return broadcast_set_; }
    const Message& broadcast_message() const { return broadcast_msg_; }

   private:
    MultiLogVCEngine& engine_;
    VertexId v_;
    Superstep superstep_;
    const AdjacencyBatch& batch_;
    std::size_t slot_;
    Value value_;
    Message broadcast_msg_{};
    bool deactivated_ = false;
    bool value_dirty_ = false;
    bool broadcast_set_ = false;
  };

 private:
  friend class Context;

  /// Common constructor. ctx == nullptr is the one-shot path (prefix
  /// "mlvc", engine mutates Storage-global knobs as before); ctx != nullptr
  /// is a per-query engine over the context's shared substrate.
  MultiLogVCEngine(RuntimeContext* ctx, std::uint64_t query_id,
                   graph::StoredCsrGraph& graph, App app,
                   EngineOptions options)
      : graph_(graph),
        app_(std::move(app)),
        options_(apply_env_overrides(options)),
        ctx_(ctx),
        query_id_(query_id),
        blob_prefix_(ctx != nullptr ? RuntimeContext::query_prefix(query_id)
                                    : "mlvc"),
        // Admission control: block here until the query's whole budget fits
        // the context pool. Ordered before every heavy member so nothing is
        // allocated while parked.
        budget_lease_(ctx != nullptr
                          ? ctx->arbiter().acquire(options_.memory_budget_bytes)
                          : BudgetLease{}),
        cache_reg_(ctx != nullptr
                       ? ctx->shared_cache()->register_query(
                             options_.adjacency_cache_bytes)
                       : ssd::PageCache::QueryRegistration{}),
        async_io_(options_.enable_pipeline && options_.io_threads > 0
                      ? std::make_unique<ssd::AsyncIo>(options_.io_threads)
                      : nullptr),
        store_(graph.storage(), blob_prefix_, graph.intervals(),
               multilog::MultiLogConfig{
                   .record_size = sizeof(Rec),
                   // On-disk log layout (EngineOptions::on_disk_format /
                   // MLVC_FORMAT): v2 = delta+varint chunks, with payloads
                   // varint-packed only for small padding-free integral
                   // messages (floats keep fixed width).
                   .format = options_.on_disk_format,
                   .payload_varint = multilog::kPayloadVarint<Message>,
                   .buffer_budget_bytes = options_.log_buffer_budget(),
                   .staging_records = options_.scatter_staging_records,
                   .async_io = async_io_.get(),
                   // Unique "q<id>" prefixes make an existing blob an id
                   // reuse bug; fail loudly instead of truncating it.
                   .expect_fresh_blobs = ctx != nullptr}),
        edge_log_(graph.storage(), blob_prefix_,
                  multilog::EdgeLogConfig{App::kNeedsWeights,
                                          options_.edge_log_budget()}),
        predictor_(graph.num_vertices(), options_.predictor_history),
        util_tracker_(graph.storage().page_size(),
                      options_.page_util_threshold),
        loader_(graph, &edge_log_, &util_tracker_,
                GraphLoaderUnit::Config{App::kNeedsWeights,
                                        options_.enable_edge_log,
                                        cache_reg_.slot()}),
        values_(graph.storage(), blob_prefix_ + "/values",
                graph.num_vertices(),
                [this](VertexId v) { return app_.initial_value(v); },
                options_.values_on_storage),
        sticky_active_(graph.num_vertices()) {
    MLVC_CHECK_MSG(!App::kNeedsWeights || graph.has_weights(),
                   "application '" << app_.name()
                                   << "' needs edge weights but the stored "
                                      "graph has none");
    if (ctx_ == nullptr) {
      if (options_.adjacency_cache_bytes > 0) {
        graph_.set_adjacency_cache(options_.adjacency_cache_bytes);
      }
      {
        ssd::RetryPolicy retry;
        retry.max_attempts = std::max(1u, options_.io_retry_attempts);
        retry.base_delay_us = options_.io_retry_base_delay_us;
        graph_.storage().set_retry_policy(retry);
      }
      // Select the I/O substrate for every Blob call the run makes —
      // compute threads, AsyncIo stage workers, and prefetchers all
      // dispatch through it. A kUring request that the probe refuses lands
      // back on the thread pool; RunStats reports the backend actually in
      // effect.
      stats_.io_backend = std::string(ssd::to_string(
          graph_.storage().set_io_backend(options_.io_backend,
                                          options_.io_queue_depth)));
    } else {
      // Shared Storage state (backend, retry policy, adjacency cache) is
      // the context's to set — a per-query engine must not flip it under
      // the other queries.
      stats_.io_backend = ctx_->io_backend_name();
      stats_.query_id = query_id_;
    }
    // One staging area + message counters per compute thread. Only
    // parallel_for workers (and the main thread, index 0) call send();
    // AsyncIo threads never do, so indexing by thread_index() is race-free.
    thread_state_.resize(std::max(1u, hardware_threads()));
    for (auto& ts : thread_state_) ts.staging = store_.make_staging();
    for (VertexId v = 0; v < graph_.num_vertices(); ++v) {
      if (app_.initially_active(v)) sticky_active_.set(v);
    }
    stats_.engine = "MultiLogVC";
    stats_.app = app_.name();
    stats_.schedule_policy = to_string(options_.schedule_policy);
    stats_.num_devices = graph_.storage().num_devices();
    stats_.combine_placement =
        to_string(device_combine_active() ? CombinePlacement::kDevice
                                          : CombinePlacement::kHost);
    setup_direction();
  }

  /// §4e eligibility gates + state setup. A pull/adaptive request degrades
  /// to push — with the reason surfaced in RunStats::direction_fallback —
  /// when any requirement is missing, so MLVC_DIRECTION=adaptive is safe on
  /// every store/app/model combination (v1-era stores without a transpose
  /// included).
  void setup_direction() {
    const IntervalId n = graph_.intervals().count();
    direction_cur_.assign(n, 0);
    direction_next_.assign(n, 0);
    stats_.direction = to_string(options_.direction);
    if (options_.direction == DirectionMode::kPush) return;
    const char* reason = nullptr;
    if (!has_pull_gather<App>() || !App::kHasCombine) {
      reason = "app does not declare kHasPullGather with a combine";
    } else if (!graph_.has_transpose()) {
      reason = "store has no transpose CSR (rebuild it or run mlvc_convert)";
    } else if (options_.model != ComputationModel::kSynchronous) {
      reason = "pull requires the synchronous model";
    } else if (!options_.enable_combine) {
      reason = "pull requires combining enabled";
    }
    if (reason != nullptr) {
      stats_.direction = to_string(DirectionMode::kPush);
      stats_.direction_fallback = reason;
      return;
    }
    pull_available_ = true;
    frontier_cur_.resize(graph_.num_vertices());
    frontier_next_.resize(graph_.num_vertices());
    broadcast_cur_ = std::make_unique<VertexValueStore<Message>>(
        graph_.storage(), blob_prefix_ + "/bcast0", graph_.num_vertices(),
        [](VertexId) { return Message{}; }, options_.values_on_storage);
    broadcast_next_ = std::make_unique<VertexValueStore<Message>>(
        graph_.storage(), blob_prefix_ + "/bcast1", graph_.num_vertices(),
        [](VertexId) { return Message{}; }, options_.values_on_storage);
    // No edge log or page-utilization tracking on the transpose stream —
    // those optimize sparse access, and pull IS the dense-interval case.
    tloader_ = std::make_unique<GraphLoaderUnit>(
        graph_.transpose(), nullptr, nullptr,
        GraphLoaderUnit::Config{/*load_weights=*/false,
                                /*use_edge_log=*/false, cache_reg_.slot()});
  }

  /// §4e density heuristic: plan which intervals the NEXT superstep
  /// consumes by pull. Estimated push cost per destination interval =
  /// global active-edge density x in_edges(i) x sizeof(Rec) x 2 (each
  /// active in-edge writes one log record and reads it back); pull cost =
  /// the interval's stored transpose adjacency + rowptr bytes + the
  /// expected broadcast gather. Pull wins when
  /// push_cost >= pull_density_threshold x pull_cost.
  ///
  /// Sender estimate for the superstep about to run: extrapolate the
  /// engine's own production series. Messages produced next are last
  /// superstep's production scaled by its observed trend (Beamer's
  /// direction-switch insight: an exploding BFS-style frontier keeps
  /// exploding, a collapsing one keeps collapsing — pricing it at its
  /// stale size misses exactly the dense supersteps pull exists for, and
  /// keeps pulling through the sparse tail where a whole-transpose sweep
  /// serves a handful of deliveries). Suppressed sends count as produced,
  /// so an all-suppressed wave doesn't read as idle. Sticky out-degree
  /// mass floors the estimate — those vertices run for sure (and it is
  /// the only signal before the first superstep has history).
  void plan_directions() {
    any_pull_next_ = false;
    std::fill(direction_next_.begin(), direction_next_.end(), 0);
    if (!pull_available_) return;
    if (options_.direction == DirectionMode::kPull) {
      std::fill(direction_next_.begin(), direction_next_.end(), 1);
      any_pull_next_ = true;
      return;
    }
    const EdgeIndex total_edges = graph_.num_edges();
    if (total_edges == 0) return;
    std::uint64_t sticky_mass = 0;
    sticky_active_.for_each_set([&](std::size_t v) {
      sticky_mass += graph_.out_degree(static_cast<VertexId>(v));
    });
    double trend = 1.0;
    if (plan_produced_last_ > 0) {
      trend = plan_produced_prev_ > 0
                  ? std::clamp(static_cast<double>(plan_produced_last_) /
                                   static_cast<double>(plan_produced_prev_),
                               1.0 / 16.0, 64.0)
                  : 64.0;  // production appearing from nothing: explosive
    }
    const double est_produced =
        static_cast<double>(plan_produced_last_) * trend;
    const double density =
        std::min(1.0, std::max(est_produced,
                               static_cast<double>(sticky_mass)) /
                          static_cast<double>(total_edges));
    if (density <= 0) return;
    const auto& t = graph_.transpose();
    const IntervalId n = graph_.intervals().count();
    for (IntervalId i = 0; i < n; ++i) {
      const double in_edges = static_cast<double>(t.interval_edge_count(i));
      const double push_bytes = density * in_edges * sizeof(Rec) * 2.0;
      const double pull_bytes =
          static_cast<double>(t.adjacency_stored_bytes(i)) +
          static_cast<double>(graph_.intervals().width(i) + 1) *
              sizeof(EdgeIndex) +
          density * in_edges * sizeof(Message);
      if (push_bytes >= options_.pull_density_threshold * pull_bytes) {
        direction_next_[i] = 1;
        any_pull_next_ = true;
      }
    }
  }

  /// True when the §V.D combine actually runs device-side: requested, the
  /// app has a combine, combining is on, and the store is striped (one
  /// device has nothing to reduce early — the host path IS its model).
  bool device_combine_active() const {
    return App::kHasCombine && options_.enable_combine &&
           options_.combine_placement == CombinePlacement::kDevice &&
           graph_.storage().num_devices() > 1;
  }

  struct ActiveVertex {
    VertexId v;
    std::uint32_t rec_begin = 0;  // slice of the group's sorted records
    std::uint32_t rec_count = 0;
  };

  void queue_structural(const graph::StructuralUpdate& u) {
    std::lock_guard<std::mutex> lock(structural_mutex_);
    structural_queue_.push_back(u);
  }

  /// Flush every compute thread's staged records into the shared multi-log.
  /// Must run on the main thread with no parallel region active (batch end,
  /// before an asynchronous-mode drain, and at superstep close).
  void flush_produce_staging() {
    for (auto& ts : thread_state_) store_.flush_staging(ts.staging);
  }

  /// Greedy §V.A.2 fusion: consecutive intervals whose current logs (by the
  /// per-interval message counters) fit the sort budget together.
  std::vector<std::pair<IntervalId, IntervalId>> plan_groups() const {
    std::vector<std::pair<IntervalId, IntervalId>> groups;
    const IntervalId n = graph_.intervals().count();
    if (!options_.enable_interval_fusion) {
      for (IntervalId i = 0; i < n; ++i) groups.emplace_back(i, i + 1);
      return groups;
    }
    const std::uint64_t budget = options_.sort_budget();
    IntervalId begin = 0;
    std::uint64_t acc = 0;
    for (IntervalId i = 0; i < n; ++i) {
      const std::uint64_t bytes = store_.current_bytes(i);
      if (i > begin && acc + bytes > budget) {
        groups.emplace_back(begin, i);
        begin = i;
        acc = 0;
      }
      acc += bytes;
    }
    groups.emplace_back(begin, n);
    return groups;
  }

  bool pipeline_enabled() const noexcept { return async_io_ != nullptr; }

  /// One fused interval group's grouped (and possibly combined) message
  /// input — the output of pipeline stage 1 (LoadLog + scatter/sort+group).
  struct GroupData {
    IntervalId begin = 0;
    IntervalId end = 0;
    std::vector<Rec> records;
    std::vector<std::size_t> offsets;
    /// Records loaded from the logs, before combine shrinks them —
    /// messages_consumed counts what was sent, not what survived combine.
    std::size_t consumed = 0;
    /// Wall time of the sort-and-group stage, wherever it ran, and the
    /// §V.B implementation chosen for this group.
    double sort_group_seconds = 0;
    SortGroupPath path = SortGroupPath::kComparisonSort;
    /// Bytes dropped from torn trailing log pages (crash recovery).
    std::uint64_t torn_bytes_dropped = 0;
  };

  /// Stage 1: load + group (fused counting scatter by default, §V.B, with
  /// combine folded in per §V.D) one fused interval group. Runs on the main
  /// thread (instrument = true: attribute load time to io, grouping time to
  /// compute) or on an I/O thread one group ahead of compute (instrument =
  /// false: the main thread only accounts its wait on the future — the
  /// stage itself is off the critical path). load_current = false skips the
  /// current-generation log (scheduler requeue visits: the chain already
  /// consumed it this wave — reloading would deliver every message twice)
  /// and delivers only the drained same-wave sends.
  GroupData prepare_group(IntervalId g_begin, IntervalId g_end,
                          bool drain_async, bool instrument,
                          bool load_current = true) {
    GroupData g;
    g.begin = g_begin;
    g.end = g_end;
    // Asynchronous-mode drain barrier: the drain below reads the produce
    // logs, so records still parked in per-thread staging must be flushed
    // first or this superstep's earlier sends would be delivered a superstep
    // late. Runs on the main thread (async mode never prefetches groups —
    // group k+1's input depends on group k's compute), with no parallel
    // region active.
    if (drain_async) flush_produce_staging();
    std::vector<std::byte> bytes;
    {
      std::optional<ScopedAccumulator> io_time;
      if (instrument) io_time.emplace(step_io_seconds_);
      for (IntervalId i = g_begin; i < g_end; ++i) {
        const std::size_t before = bytes.size();
        if (load_current) store_.load_interval(i, bytes);
        if (load_current && options_.torn_page_recovery) {
          // A crash mid-append can leave a partial trailing record (v1) or
          // chunk (v2) in an interval's log. Drop the torn tail (per
          // interval — the tear must not shift the next interval's records)
          // and keep going; the count is surfaced per superstep as
          // torn_bytes_dropped.
          const std::size_t loaded = bytes.size() - before;
          std::size_t keep = loaded;
          if (options_.on_disk_format == OnDiskFormat::kV2) {
            keep = multilog::index_log_chunks(
                       std::span<const std::byte>(bytes.data() + before,
                                                  loaded),
                       multilog::TornPagePolicy::kTruncate)
                       .valid_bytes;
          } else {
            keep = multilog::truncate_torn_tail(loaded, sizeof(Rec));
          }
          if (keep != loaded) {
            g.torn_bytes_dropped += loaded - keep;
            bytes.resize(before + keep);
          }
        }
        if (drain_async) store_.drain_produce_interval(i, bytes);
      }
    }

    // ---- group by destination, combine fused in (§V.B, §V.D) --------------
    // Destinations are bounded by the fused intervals' vertex range — what
    // the §V.A.1 sizing guarantees — so grouping is a counting-sort problem.
    std::optional<ScopedAccumulator> compute_time;
    if (instrument) compute_time.emplace(step_compute_seconds_);
    WallTimer sort_timer;
    const VertexId vb = graph_.intervals().begin(g_begin);
    const VertexId ve = graph_.intervals().end(g_end - 1);
    multilog::GroupedLog<Message> grouped;
    bool combined = false;
    const bool v2 = options_.on_disk_format == OnDiskFormat::kV2;
    if constexpr (App::kHasCombine) {
      if (options_.enable_combine) {
        const auto combine = [this](const Message& a, const Message& b) {
          return app_.combine(a, b);
        };
        ssd::IoStats& io_stats = graph_.storage().stats();
        if (device_combine_active()) {
          // Modeled near-storage combine: each striped device reduces its
          // resident records before they cross the bus; only the reduced
          // streams (counted as bus traffic) reach the host merge.
          multilog::DeviceCombineStats dc;
          grouped = multilog::device_side_combine<Message>(
              bytes, v2, vb, ve, options_.sort_group_path,
              graph_.storage().num_devices(), graph_.storage().stripe_unit(),
              combine, &dc);
          io_stats.record_bus_bytes(dc.bus_bytes);
          io_stats.record_device_combine(dc.records_in, dc.records_out);
        } else {
          grouped = v2 ? multilog::sort_and_group_v2<Message>(
                             bytes, vb, ve, options_.sort_group_path, combine)
                       : multilog::sort_and_group<Message>(
                             bytes, vb, ve, options_.sort_group_path, combine);
          // Host combine: the whole raw log crossed the bus.
          io_stats.record_bus_bytes(bytes.size());
        }
        combined = true;
      }
    }
    if (!combined) {
      grouped = v2 ? multilog::sort_and_group_v2<Message>(
                         bytes, vb, ve, options_.sort_group_path)
                   : multilog::sort_and_group<Message>(
                         bytes, vb, ve, options_.sort_group_path);
      graph_.storage().stats().record_bus_bytes(bytes.size());
    }
    g.records = std::move(grouped.records);
    g.offsets = std::move(grouped.offsets);
    g.consumed = grouped.decoded;
    g.path = grouped.path;
    g.sort_group_seconds = sort_timer.elapsed_seconds();
    return g;
  }

  /// §4e pull front-end for one interval: synthesize its grouped message
  /// input by streaming the stored transpose CSR in loader-budget batches,
  /// filtering in-neighbors against the broadcast frontier, gathering their
  /// captured messages through the broadcast value store, and folding one
  /// combined record per receiver — zero log writes, decodes, or
  /// sort_and_group for the regenerated side. Records that DID land in the
  /// interval's log (raw send() is never suppressed) are loaded the normal
  /// way and merged in, so pull stays correct for apps mixing send styles.
  /// The result feeds the unchanged collect_actives / process_interval
  /// machinery.
  /// Materialize this superstep's captured broadcasts as a vertex-indexed
  /// table (validity = frontier_cur_), one store gather for all pulled
  /// intervals. Rebuilt lazily after each broadcast-generation swap.
  void ensure_pull_dense(bool instrument) {
    if (pull_dense_valid_) return;
    pull_dense_msgs_.assign(graph_.num_vertices(), Message{});
    std::vector<VertexId> ids;
    frontier_cur_.for_each_set(
        [&](std::size_t u) { ids.push_back(static_cast<VertexId>(u)); });
    if (!ids.empty()) {
      std::optional<ScopedAccumulator> io_time;
      if (instrument) io_time.emplace(step_io_seconds_);
      const std::vector<Message> msgs = broadcast_cur_->gather(ids);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        pull_dense_msgs_[ids[k]] = msgs[k];
      }
    }
    pull_dense_valid_ = true;
  }

  GroupData prepare_pull_group(IntervalId interval, bool instrument) {
    GroupData logs = prepare_group(interval, interval + 1,
                                   /*drain_async=*/false, instrument);
    const VertexId vb = graph_.intervals().begin(interval);
    const VertexId ve = graph_.intervals().end(interval);

    // Dense-gather fast path: when the captured-broadcast table fits a
    // quarter of the budget, materialize it once per superstep (shared by
    // every pulled interval) and index it per in-edge directly. The
    // per-batch sort + dedup + binary-search fallback below stays for
    // vertex counts the budget can't hold resident.
    const bool dense =
        static_cast<std::uint64_t>(graph_.num_vertices()) * sizeof(Message) <=
        options_.memory_budget_bytes / 4;
    if (dense) ensure_pull_dense(instrument);

    std::vector<Rec> regen;  // one combined record per receiver, ascending
    std::uint64_t regen_consumed = 0;  // per contributing in-edge, matching
                                       // what push would have loaded
    const std::size_t batch_budget =
        std::max<std::size_t>(options_.loader_budget() / 2, 64_KiB);
    std::vector<VertexId> ids;
    std::vector<VertexId> srcs;
    std::vector<Message> msgs;
    VertexId v = vb;
    while (v < ve) {
      ids.clear();
      std::uint64_t bytes = 0;
      while (v < ve) {
        const std::uint64_t cost = tloader_->vertex_load_cost(v);
        if (!ids.empty() && bytes + cost > batch_budget) break;
        bytes += cost;
        ids.push_back(v);
        ++v;
      }
      AdjacencyBatch adj;
      {
        std::optional<ScopedAccumulator> io_time;
        if (instrument) io_time.emplace(step_io_seconds_);
        tloader_->load(interval, ids, adj);
      }
      if (!dense) {
        // Unique frontier sources of this batch -> one coalesced gather.
        srcs.clear();
        for (std::size_t k = 0; k < ids.size(); ++k) {
          const auto span = adj.spans[k];
          for (std::size_t e = 0; e < span.length; ++e) {
            const VertexId u = adj.adjacency[span.offset + e];
            if (frontier_cur_.test(u)) srcs.push_back(u);
          }
        }
        std::sort(srcs.begin(), srcs.end());
        srcs.erase(std::unique(srcs.begin(), srcs.end()), srcs.end());
        if (srcs.empty()) continue;
        std::optional<ScopedAccumulator> io_time;
        if (instrument) io_time.emplace(step_io_seconds_);
        msgs = broadcast_cur_->gather(srcs);
      }
      std::optional<ScopedAccumulator> compute_time;
      if (instrument) compute_time.emplace(step_compute_seconds_);
      for (std::size_t k = 0; k < ids.size(); ++k) {
        const auto span = adj.spans[k];
        bool have = false;
        Message acc{};
        for (std::size_t e = 0; e < span.length; ++e) {
          const VertexId u = adj.adjacency[span.offset + e];
          if (!frontier_cur_.test(u)) continue;
          const Message& m =
              dense ? pull_dense_msgs_[u]
                    : msgs[static_cast<std::size_t>(
                          std::lower_bound(srcs.begin(), srcs.end(), u) -
                          srcs.begin())];
          acc = have ? combine_messages(app_, acc, m) : m;
          have = true;
          ++regen_consumed;
        }
        if (have) regen.push_back(Rec{ids[k], acc});
      }
    }

    if (regen.empty()) return logs;
    // Merge the regenerated records into the log-side grouped sequence
    // (both ascending by dst; a shared dst becomes one group).
    GroupData g;
    g.begin = interval;
    g.end = interval + 1;
    g.consumed = logs.consumed + regen_consumed;
    g.sort_group_seconds = logs.sort_group_seconds;
    g.path = logs.path;
    g.torn_bytes_dropped = logs.torn_bytes_dropped;
    const std::size_t n_log = logs.offsets.empty() ? 0 : logs.offsets.size() - 1;
    g.records.reserve(logs.records.size() + regen.size());
    std::size_t li = 0, ri = 0;
    while (li < n_log || ri < regen.size()) {
      g.offsets.push_back(g.records.size());
      const VertexId ld =
          li < n_log ? logs.records[logs.offsets[li]].dst : kInvalidVertex;
      const VertexId rd = ri < regen.size() ? regen[ri].dst : kInvalidVertex;
      if (ld <= rd) {
        g.records.insert(g.records.end(),
                         logs.records.begin() +
                             static_cast<std::ptrdiff_t>(logs.offsets[li]),
                         logs.records.begin() +
                             static_cast<std::ptrdiff_t>(logs.offsets[li + 1]));
        ++li;
      }
      if (rd <= ld) {
        g.records.push_back(regen[ri]);
        ++ri;
      }
    }
    g.offsets.push_back(g.records.size());
    return g;
  }

  /// Per-wave tallies shared by the BSP and scheduled execution paths.
  struct WaveTotals {
    std::uint64_t consumed = 0;
    std::uint64_t active_count = 0;
    std::uint64_t edge_log_hits = 0;
    double sort_group_seconds = 0;
    /// Slice of sort_group_seconds that ran on the prefetch I/O threads
    /// (instrument = false) — off the critical path, outside
    /// step_compute_seconds_.
    double offthread_sort_seconds = 0;
    std::uint64_t groups_scatter = 0;
    std::uint64_t groups_comparison = 0;
    std::uint64_t torn_bytes_dropped = 0;
    // Scheduler observability; stays zero on the BSP path.
    std::uint64_t intervals_scheduled = 0;
    std::uint64_t reorder_depth = 0;
    double ready_latency_seconds = 0;
    /// §4e: intervals consumed through the pull front-end this wave.
    std::uint64_t intervals_pulled = 0;
  };

  void tally_group(const GroupData& group, WaveTotals& wave) const {
    wave.consumed += group.consumed;
    wave.sort_group_seconds += group.sort_group_seconds;
    wave.torn_bytes_dropped += group.torn_bytes_dropped;
    if (group.path == SortGroupPath::kCountingScatter) {
      ++wave.groups_scatter;
    } else {
      ++wave.groups_comparison;
    }
  }

  /// The paper's barrier wave: fused groups in id order (the pre-scheduler
  /// execution, byte-identical under SchedulePolicy::kBsp).
  void run_wave_bsp(Superstep s, DynamicBitset& active_now,
                    WaveTotals& wave) {
    if (any_pull_cur_) {
      run_wave_bsp_direction(s, active_now, wave);
      return;
    }
    const auto groups = plan_groups();
    const bool drain_async = options_.model == ComputationModel::kAsynchronous;
    // Stage 1 runs one group ahead only in the synchronous model: an
    // asynchronous-mode load drains messages produced earlier in the *same*
    // superstep, so group k+1's input depends on group k's compute.
    const bool prefetch_groups = pipeline_enabled() && !drain_async;

    std::future<GroupData> next_group;
    const auto launch_group = [&](std::size_t gi) {
      const IntervalId b = groups[gi].first;
      const IntervalId e = groups[gi].second;
      next_group = async_io_->submit([this, b, e] {
        return prepare_group(b, e, /*drain_async=*/false,
                             /*instrument=*/false);
      });
    };
    if (prefetch_groups && !groups.empty()) launch_group(0);

    try {
      for (std::size_t gi = 0; gi < groups.size(); ++gi) {
        GroupData group;
        if (prefetch_groups) {
          {
            ScopedAccumulator io_time(step_io_seconds_);
            group = next_group.get();
          }
          wave.offthread_sort_seconds += group.sort_group_seconds;
          if (gi + 1 < groups.size()) launch_group(gi + 1);
        } else {
          group = prepare_group(groups[gi].first, groups[gi].second,
                                drain_async, /*instrument=*/true);
        }
        tally_group(group, wave);

        // ---- ExtractActiveVert: receivers ∪ sticky actives ----------------
        // Both inputs are ascending; merge per interval.
        for (IntervalId i = group.begin; i < group.end; ++i) {
          std::vector<ActiveVertex> actives =
              collect_actives(i, group.records, group.offsets);
          if (actives.empty()) continue;
          wave.active_count += actives.size();
          process_interval(s, i, group.records, actives, active_now,
                           wave.edge_log_hits);
        }
      }
    } catch (...) {
      // A stage-1 task in flight captures `this`; don't let it outlive the
      // frame (std::future destructors do not block).
      if (next_group.valid()) {
        try {
          next_group.get();
        } catch (...) {
        }
      }
      throw;
    }
  }

  /// BSP wave when at least one interval pulls this superstep (§4e): pull
  /// intervals run as singleton chains through the pull front-end, maximal
  /// runs of consecutive push intervals fuse greedily under the sort budget
  /// exactly like plan_groups(). Group-level prefetch is off here (the pull
  /// front-end computes on the main thread); batch-level prefetch inside
  /// process_interval still overlaps loads with compute. Only reachable
  /// under the synchronous model — pull_available_ gates on it.
  void run_wave_bsp_direction(Superstep s, DynamicBitset& active_now,
                              WaveTotals& wave) {
    const IntervalId n = graph_.intervals().count();
    const std::uint64_t budget = options_.sort_budget();
    IntervalId i = 0;
    while (i < n) {
      GroupData group;
      if (direction_cur_[i] != 0) {
        group = prepare_pull_group(i, /*instrument=*/true);
        ++wave.intervals_pulled;
      } else {
        IntervalId e = i + 1;
        std::uint64_t acc = store_.current_bytes(i);
        while (options_.enable_interval_fusion && e < n &&
               direction_cur_[e] == 0) {
          const std::uint64_t bytes = store_.current_bytes(e);
          if (acc + bytes > budget) break;
          acc += bytes;
          ++e;
        }
        group = prepare_group(i, e, /*drain_async=*/false,
                              /*instrument=*/true);
      }
      tally_group(group, wave);
      for (IntervalId j = group.begin; j < group.end; ++j) {
        std::vector<ActiveVertex> actives =
            collect_actives(j, group.records, group.offsets);
        if (actives.empty()) continue;
        wave.active_count += actives.size();
        process_interval(s, j, group.records, actives, active_now,
                         wave.edge_log_hits);
      }
      i = group.end;
    }
  }

  /// Static full-fan-in load cost per interval (loader-estimated adjacency
  /// bytes, monotone in out-degree mass) — the hub-degree policy's
  /// first-wave priority (before the predictor has history) and its
  /// fallback. Computed once; structural updates shift it marginally and
  /// priorities only order work, so staleness is benign.
  void ensure_hub_scores() {
    if (!hub_score_.empty()) return;
    const IntervalId n = graph_.intervals().count();
    hub_score_.assign(n, 0);
    for (IntervalId i = 0; i < n; ++i) {
      hub_score_[i] = loader_.range_load_cost(graph_.intervals().begin(i),
                                              graph_.intervals().end(i));
    }
  }

  bool interval_has_sticky(IntervalId i) const {
    bool any = false;
    sticky_active_.for_each_set_in_range(graph_.intervals().begin(i),
                                         graph_.intervals().end(i),
                                         [&](std::size_t) { any = true; });
    return any;
  }

  /// Hub-degree impact estimate for one interval: loader-estimated load
  /// cost of the vertices the history predictor expects to run
  /// (multilog/predictor.hpp), falling back to the interval's full-fan-in
  /// cost before any history. Deterministic — predictor state is a pure
  /// function of the run so far.
  std::uint64_t schedule_score(IntervalId i) const {
    if (!predictor_.has_history()) return hub_score_[i];
    std::uint64_t mass = 0;
    predictor_.for_each_predicted_in_range(
        graph_.intervals().begin(i), graph_.intervals().end(i),
        [&](std::size_t v) {
          mass += loader_.vertex_load_cost(static_cast<VertexId>(v));
        });
    return mass;
  }

  /// Interval-granular wave (options.schedule_policy != kBsp): one chain
  /// per interval, ordered by the IntervalScheduler, no fusion (§V.A.1
  /// sizing guarantees a single interval always fits the sort budget).
  ///
  /// Synchronous model: the wave's inputs (current generation + sticky set)
  /// are immutable during the wave, so the full chain order is frozen up
  /// front and chain k+1's load+sort runs on the AsyncIo threads while
  /// chain k computes — the scheduled counterpart of the BSP group
  /// prefetch. Ordering changes, delivered messages don't: values converge
  /// to the BSP fixed point.
  ///
  /// Asynchronous model — two phases:
  ///
  /// Sweep. The wave-start input (current generation + sticky set) is
  /// immutable, so the full priority order is frozen up front exactly like
  /// the synchronous case; runs of id-consecutive intervals in that order
  /// are fused under the sort budget (§V.A.2 applied to the scheduled
  /// order — fifo recovers the BSP grouping, priority policies fuse
  /// whatever consecutive runs survive the reorder) and group k+1's
  /// load+sort overlaps group k's compute on the AsyncIo threads.
  ///
  /// Redelivery. Sends made during the sweep for already-swept intervals
  /// would otherwise wait a full generation swap. Any interval whose
  /// produce sequence moved past its wave-start quiesce mark (by at least
  /// EngineOptions::async_requeue_min_bytes) is re-queued for one
  /// drain-only, receivers-only chain — at most one redelivery per
  /// interval per wave, in priority order; each chain re-scans, so mass
  /// forwarded by a redelivery still reaches not-yet-redelivered
  /// intervals the same wave. Waiting for the sweep (and earlier
  /// redeliveries) before draining means a hub interval absorbs the whole
  /// wave's mass in one combined pass instead of re-paying its adjacency
  /// fan-out per partial delivery. That same-wave propagation is what cuts
  /// effective rounds.
  void run_wave_scheduled(Superstep s, DynamicBitset& active_now,
                          WaveTotals& wave) {
    const IntervalId n = graph_.intervals().count();
    const bool drain_async = options_.model == ComputationModel::kAsynchronous;
    ensure_hub_scores();
    IntervalScheduler sched(options_.schedule_policy, n);

    const auto mark = [&](IntervalId i) {
      sched.mark_ready(i, schedule_score(i), store_.current_bytes(i));
    };
    for (IntervalId i = 0; i < n; ++i) {
      // Async mode releases every interval: a chain with no wave-start
      // input still drains (and delivers) messages sent to it earlier in
      // the wave, exactly like the BSP asynchronous path does in id order.
      // A pull-direction interval is ready even with an empty log — its
      // input lives in the broadcast capture, not the log (§4e).
      if (!drain_async && store_.current_count(i) == 0 &&
          !interval_has_sticky(i) &&
          !(any_pull_cur_ && direction_cur_[i] != 0)) {
        continue;
      }
      mark(i);
    }

    if (!drain_async) {
      // Frozen wave order + chain prefetch on the pipeline threads.
      std::vector<IntervalId> order;
      order.reserve(n);
      for (IntervalId i = sched.pop(); i != kInvalidInterval; i = sched.pop())
        order.push_back(i);
      std::future<GroupData> next_chain;
      const auto launch_chain = [&](std::size_t k) {
        const IntervalId i = order[k];
        next_chain = async_io_->submit([this, i] {
          return prepare_group(i, i + 1, /*drain_async=*/false,
                               /*instrument=*/false);
        });
      };
      // Pull chains prep on the main thread (the §4e front-end is itself a
      // compute stage), so chain prefetch is off for waves that pull.
      const bool prefetch = pipeline_enabled() && !any_pull_cur_;
      if (prefetch && !order.empty()) launch_chain(0);
      try {
        for (std::size_t k = 0; k < order.size(); ++k) {
          const IntervalId i = order[k];
          GroupData group;
          if (prefetch) {
            {
              ScopedAccumulator io_time(step_io_seconds_);
              group = next_chain.get();
            }
            wave.offthread_sort_seconds += group.sort_group_seconds;
            if (k + 1 < order.size()) launch_chain(k + 1);
          } else if (direction_cur_[i] != 0) {
            group = prepare_pull_group(i, /*instrument=*/true);
            ++wave.intervals_pulled;
          } else {
            group = prepare_group(i, i + 1, /*drain_async=*/false,
                                  /*instrument=*/true);
          }
          tally_group(group, wave);
          std::vector<ActiveVertex> actives =
              collect_actives(i, group.records, group.offsets);
          if (actives.empty()) continue;
          wave.active_count += actives.size();
          process_interval(s, i, group.records, actives, active_now,
                           wave.edge_log_hits);
        }
      } catch (...) {
        if (next_chain.valid()) {
          try {
            next_chain.get();
          } catch (...) {
          }
        }
        throw;
      }
    } else {
      // ---- sweep --------------------------------------------------------
      // Wave-start quiesce baseline: the produce logs are empty after the
      // last generation swap, so the live sequences mark "no same-wave
      // sends yet" — anything past them later is sweep output.
      for (IntervalId i = 0; i < n; ++i)
        sched.record_quiesce(i, store_.produce_seq(i));

      // The sweep input is immutable (sends land in the produce logs, not
      // the current generation), so the priority order freezes up front
      // and runs of id-consecutive intervals fuse under the sort budget —
      // prepare_group needs a contiguous vertex range.
      std::vector<IntervalId> order;
      order.reserve(n);
      for (IntervalId i = sched.pop(); i != kInvalidInterval; i = sched.pop())
        order.push_back(i);
      std::vector<std::pair<IntervalId, IntervalId>> groups;
      {
        const std::uint64_t budget = options_.sort_budget();
        std::size_t k = 0;
        while (k < order.size()) {
          const IntervalId b = order[k];
          IntervalId e = b + 1;
          std::uint64_t acc = store_.current_bytes(b);
          ++k;
          while (options_.enable_interval_fusion && k < order.size() &&
                 order[k] == e) {
            const std::uint64_t bytes = store_.current_bytes(order[k]);
            if (acc + bytes > budget) break;
            acc += bytes;
            ++e;
            ++k;
          }
          groups.emplace_back(b, e);
        }
      }

      std::future<GroupData> next_group;
      const auto launch_group = [&](std::size_t gi) {
        const IntervalId b = groups[gi].first;
        const IntervalId e = groups[gi].second;
        next_group = async_io_->submit([this, b, e] {
          return prepare_group(b, e, /*drain_async=*/false,
                               /*instrument=*/false);
        });
      };
      const bool prefetch = pipeline_enabled();
      if (prefetch && !groups.empty()) launch_group(0);
      try {
        for (std::size_t gi = 0; gi < groups.size(); ++gi) {
          GroupData group;
          if (prefetch) {
            {
              ScopedAccumulator io_time(step_io_seconds_);
              group = next_group.get();
            }
            wave.offthread_sort_seconds += group.sort_group_seconds;
            if (gi + 1 < groups.size()) launch_group(gi + 1);
          } else {
            group = prepare_group(groups[gi].first, groups[gi].second,
                                  /*drain_async=*/false, /*instrument=*/true);
          }
          tally_group(group, wave);
          for (IntervalId i = group.begin; i < group.end; ++i) {
            std::vector<ActiveVertex> actives =
                collect_actives(i, group.records, group.offsets);
            if (actives.empty()) continue;
            wave.active_count += actives.size();
            process_interval(s, i, group.records, actives, active_now,
                             wave.edge_log_hits);
          }
        }
      } catch (...) {
        if (next_group.valid()) {
          try {
            next_group.get();
          } catch (...) {
          }
        }
        throw;
      }

      // ---- redelivery ---------------------------------------------------
      // Same-wave sends sit in the produce logs. Each interval gets at
      // most ONE drain-only chain per wave: waiting for the sweep (and any
      // earlier redeliveries) means a hub interval drains the whole wave's
      // mass in one combined pass instead of re-paying its adjacency
      // fan-out per partial delivery — repeated partial redelivery is what
      // turns the priority policies' reorder into message churn. Cascade
      // output from the last redeliveries rides the generation swap.
      flush_produce_staging();
      const std::uint64_t floor = options_.async_requeue_min_bytes;
      std::vector<bool> redelivered(n, false);
      const auto scan_pending = [&] {
        for (IntervalId j = 0; j < n; ++j) {
          if (redelivered[j] || sched.is_ready(j)) continue;
          const std::uint64_t seq = store_.produce_seq(j);
          if (seq == sched.quiesce_seq(j)) continue;
          const std::uint64_t pending =
              (seq - sched.quiesce_seq(j)) * sizeof(Rec);
          if (pending < floor) continue;
          sched.mark_ready(j, schedule_score(j), pending);
        }
      };
      scan_pending();
      for (IntervalId i = sched.pop(); i != kInvalidInterval;
           i = sched.pop()) {
        redelivered[i] = true;
        GroupData group =
            prepare_group(i, i + 1, /*drain_async=*/true,
                          /*instrument=*/true, /*load_current=*/false);
        // The drain left interval i's produce log empty and nothing can
        // append between it and this read (main thread, no parallel region
        // active), so the sequence mark is exact.
        sched.record_quiesce(i, store_.produce_seq(i));
        tally_group(group, wave);
        std::vector<ActiveVertex> actives = collect_actives(
            i, group.records, group.offsets, /*include_sticky=*/false);
        if (!actives.empty()) {
          wave.active_count += actives.size();
          process_interval(s, i, group.records, actives, active_now,
                           wave.edge_log_hits);
        }
        scan_pending();
      }
    }

    wave.intervals_scheduled = sched.pops();
    wave.reorder_depth = sched.max_reorder_depth();
    wave.ready_latency_seconds = sched.ready_latency_seconds();
  }

  SuperstepStats execute_superstep(Superstep s) {
    SuperstepStats step;
    step.superstep = s;
    // §4e: this superstep consumes by the directions planned at the start
    // of the previous one (whose sends were suppressed to match); plan the
    // next superstep's now, BEFORE any send runs —
    // Context::send_to_all_neighbors consults direction_next_ live.
    if (pull_available_) {
      direction_cur_.swap(direction_next_);
      any_pull_cur_ = any_pull_next_;
      plan_directions();
      capture_broadcasts_ = any_pull_next_;
    }
    auto& storage = graph_.storage();
    // Context mode: route this thread's storage records (and, via AsyncIo's
    // submit-time sink capture, every pipeline worker's) into the engine's
    // private IoStats, and diff THAT for step.io — the Storage-level
    // aggregate is shared with every other concurrent query. Modeled device
    // time still diffs the shared DeviceModel; under concurrency it reads
    // as the device-time the whole box spent during this query's superstep
    // (serving latencies are wall-clock anyway).
    std::optional<ssd::IoStats::ScopedSink> query_sink;
    if (ctx_ != nullptr) query_sink.emplace(&query_io_);
    const auto io_before =
        ctx_ != nullptr ? query_io_.snapshot() : storage.stats().snapshot();
    const auto dev_before = storage.device().snapshot();
    WallTimer wall;

    for (auto& ts : thread_state_) {
      ts.messages_produced = 0;
      ts.edges_activated = 0;
      ts.log_bytes_avoided = 0;
      ts.staging.reset_stats();
    }
    DynamicBitset active_now(graph_.num_vertices());

    step_io_seconds_ = 0;
    step_compute_seconds_ = 0;

    WaveTotals wave;
    if (options_.schedule_policy == SchedulePolicy::kBsp) {
      run_wave_bsp(s, active_now, wave);
    } else {
      run_wave_scheduled(s, active_now, wave);
    }

    // ---- close the superstep ---------------------------------------------
    const auto predictor_score = predictor_.score(active_now);
    predictor_.observe(active_now);
    const auto util = util_tracker_.finish_superstep();
    apply_structural_updates();
    // Every staged record must reach the shared top pages before the produce
    // generation becomes readable. Batch-end flushes already did this for
    // all compute; this is the safety barrier for the swap.
    flush_produce_staging();
    std::uint64_t messages_produced = 0;
    std::uint64_t edges_activated = 0;
    std::uint64_t log_bytes_avoided = 0;
    std::uint64_t scatter_flush_count = 0;
    double scatter_stall_seconds = 0;
    for (auto& ts : thread_state_) {
      messages_produced += ts.messages_produced;
      edges_activated += ts.edges_activated;
      log_bytes_avoided += ts.log_bytes_avoided;
      scatter_flush_count += ts.staging.flush_count();
      scatter_stall_seconds += ts.staging.stall_seconds();
    }
    {
      // swap_generations barriers any background eviction writes still
      // pending against the produce generation.
      ScopedAccumulator io_time(step_io_seconds_);
      store_.swap_generations();
      edge_log_.swap_generations();
    }
    if (pull_available_) {
      // Broadcast generations swap with the log generations: this
      // superstep's captures become next superstep's gather source.
      std::swap(broadcast_cur_, broadcast_next_);
      frontier_cur_ = frontier_next_;
      frontier_next_.clear_all();
      pull_dense_valid_ = false;
      // Production history for plan_directions' trend extrapolation.
      // messages_produced counts suppressed sends too, so an
      // all-suppressed wave doesn't look idle.
      plan_produced_prev_ = plan_produced_last_;
      plan_produced_last_ = messages_produced;
    }

    step.active_vertices = wave.active_count;
    step.messages_consumed = wave.consumed;
    step.messages_produced = messages_produced;
    step.edges_activated = edges_activated;
    step.scatter_flush_count = scatter_flush_count;
    step.scatter_stall_seconds = scatter_stall_seconds;
    step.pages_touched = util.pages_touched;
    step.pages_inefficient = util.pages_inefficient;
    step.pages_inefficient_predicted = util.inefficient_predicted;
    step.edge_log_hits = wave.edge_log_hits;
    step.predicted_active = predictor_score.predicted_and_active;
    step.total_wall_seconds = wall.elapsed_seconds();
    step.compute_wall_seconds = step_compute_seconds_;
    step.io_wall_seconds = step_io_seconds_;
    step.sort_group_seconds = wave.sort_group_seconds;
    step.offthread_sort_seconds = wave.offthread_sort_seconds;
    step.groups_scatter = wave.groups_scatter;
    step.groups_comparison = wave.groups_comparison;
    step.torn_bytes_dropped = wave.torn_bytes_dropped;
    step.intervals_scheduled = wave.intervals_scheduled;
    step.schedule_reorder_depth = wave.reorder_depth;
    step.ready_latency_seconds = wave.ready_latency_seconds;
    step.intervals_pulled = wave.intervals_pulled;
    step.log_bytes_avoided = log_bytes_avoided;
    step.io = (ctx_ != nullptr ? query_io_.snapshot()
                               : storage.stats().snapshot()) -
              io_before;
    step.modeled_storage_seconds = storage.device().modeled_seconds_between(
        dev_before, storage.device().snapshot());
    return step;
  }

  /// Merge interval i's message receivers with its sticky-active vertices.
  /// include_sticky = false collects receivers only — scheduler requeue
  /// visits deliver same-wave sends to a chain that already ran, and its
  /// sticky vertices (which have no new input) must not execute twice.
  std::vector<ActiveVertex> collect_actives(
      IntervalId i, const std::vector<Rec>& records,
      const std::vector<std::size_t>& offsets,
      bool include_sticky = true) const {
    const VertexId vb = graph_.intervals().begin(i);
    const VertexId ve = graph_.intervals().end(i);
    std::vector<ActiveVertex> actives;

    // Locate this interval's group slice in the sorted records via binary
    // search over the group offsets (offsets.back() is the end sentinel).
    const std::size_t n_groups = offsets.empty() ? 0 : offsets.size() - 1;
    std::size_t lo_g = 0, hi_g = n_groups;
    while (lo_g < hi_g) {
      const std::size_t mid = (lo_g + hi_g) / 2;
      if (records[offsets[mid]].dst < vb) {
        lo_g = mid + 1;
      } else {
        hi_g = mid;
      }
    }
    std::size_t next_group = lo_g;
    if (!include_sticky) {
      while (next_group < n_groups && records[offsets[next_group]].dst < ve) {
        actives.push_back(
            {records[offsets[next_group]].dst,
             static_cast<std::uint32_t>(offsets[next_group]),
             static_cast<std::uint32_t>(offsets[next_group + 1] -
                                        offsets[next_group])});
        ++next_group;
      }
      return actives;
    }
    sticky_active_.for_each_set_in_range(vb, ve, [&](std::size_t sv) {
      const VertexId v = static_cast<VertexId>(sv);
      // Emit receiver groups before this sticky vertex.
      while (next_group < n_groups && records[offsets[next_group]].dst < v) {
        const VertexId dst = records[offsets[next_group]].dst;
        if (dst >= ve) break;
        actives.push_back(
            {dst, static_cast<std::uint32_t>(offsets[next_group]),
             static_cast<std::uint32_t>(offsets[next_group + 1] -
                                        offsets[next_group])});
        ++next_group;
      }
      if (next_group < n_groups && records[offsets[next_group]].dst == v) {
        actives.push_back(
            {v, static_cast<std::uint32_t>(offsets[next_group]),
             static_cast<std::uint32_t>(offsets[next_group + 1] -
                                        offsets[next_group])});
        ++next_group;
      } else {
        actives.push_back({v, 0, 0});
      }
    });
    while (next_group < n_groups && records[offsets[next_group]].dst < ve) {
      actives.push_back(
          {records[offsets[next_group]].dst,
           static_cast<std::uint32_t>(offsets[next_group]),
           static_cast<std::uint32_t>(offsets[next_group + 1] -
                                      offsets[next_group])});
      ++next_group;
    }
    return actives;
  }

  /// Pipeline stage 2 output: one active-vertex batch's adjacency and
  /// gathered values, ready for compute.
  struct BatchData {
    std::vector<VertexId> ids;
    AdjacencyBatch adj;
    std::vector<Value> vals;
  };

  BatchData load_batch(IntervalId interval,
                       std::span<const ActiveVertex> batch) {
    BatchData data;
    data.ids.resize(batch.size());
    for (std::size_t k = 0; k < batch.size(); ++k) data.ids[k] = batch[k].v;
    loader_.load(interval, data.ids, data.adj);
    data.vals = values_.gather(data.ids);
    return data;
  }

  void process_interval(Superstep s, IntervalId interval,
                        const std::vector<Rec>& records,
                        const std::vector<ActiveVertex>& actives,
                        DynamicBitset& active_now,
                        std::uint64_t& edge_log_hits) {
    // Batch by loader budget: per-vertex adjacency bytes from the loader's
    // resident-degree cost model. Boundaries are fixed up front so batches
    // can load ahead of compute.
    const std::size_t batch_budget =
        std::max<std::size_t>(options_.loader_budget() / 2, 64_KiB);
    std::vector<std::pair<std::size_t, std::size_t>> batches;
    std::size_t begin = 0;
    while (begin < actives.size()) {
      std::size_t end = begin;
      std::uint64_t bytes = 0;
      while (end < actives.size()) {
        const std::uint64_t cost = loader_.vertex_load_cost(actives[end].v);
        if (end > begin && bytes + cost > batch_budget) break;
        bytes += cost;
        ++end;
      }
      batches.emplace_back(begin, end);
      begin = end;
    }
    const auto slice = [&](std::size_t bi) {
      return std::span<const ActiveVertex>(
          actives.data() + batches[bi].first,
          batches[bi].second - batches[bi].first);
    };

    if (!pipeline_enabled() || batches.size() <= 1) {
      for (std::size_t bi = 0; bi < batches.size(); ++bi) {
        BatchData data;
        {
          ScopedAccumulator io_time(step_io_seconds_);
          data = load_batch(interval, slice(bi));
        }
        compute_batch(s, slice(bi), records, data, active_now,
                      edge_log_hits);
      }
      return;
    }

    // Stage 2: double-buffered adjacency prefetch — batch b+1 (up to
    // b+prefetch_depth) loads on I/O threads while batch b computes. Safe
    // because batches are disjoint ascending vertices: loads read only
    // consume-side state (current log generations, stored CSR, values of
    // vertices no earlier batch scatters).
    std::deque<std::future<BatchData>> inflight;
    std::size_t next_issue = 0;
    const std::size_t depth = std::max(1u, options_.prefetch_depth);
    const auto issue = [&] {
      const auto b = slice(next_issue++);
      inflight.push_back(async_io_->submit(
          [this, interval, b] { return load_batch(interval, b); }));
    };
    try {
      while (next_issue < batches.size() && inflight.size() <= depth) {
        issue();
      }
      for (std::size_t bi = 0; bi < batches.size(); ++bi) {
        BatchData data;
        {
          ScopedAccumulator io_time(step_io_seconds_);
          data = inflight.front().get();
        }
        inflight.pop_front();
        if (next_issue < batches.size()) issue();
        compute_batch(s, slice(bi), records, data, active_now,
                      edge_log_hits);
      }
    } catch (...) {
      // In-flight loads borrow `actives` and `this`; drain before unwind.
      for (auto& f : inflight) {
        try {
          f.get();
        } catch (...) {
        }
      }
      throw;
    }
  }

  void compute_batch(Superstep s, std::span<const ActiveVertex> batch,
                     const std::vector<Rec>& records, BatchData& data,
                     DynamicBitset& active_now,
                     std::uint64_t& edge_log_hits) {
    AdjacencyBatch& adj = data.adj;
    std::vector<Value>& vals = data.vals;
    edge_log_hits += adj.edge_log_hits;
    std::vector<std::uint8_t> deactivated(batch.size(), 0);
    std::vector<std::uint8_t> broadcast_flag;
    std::vector<Message> broadcast_msgs;
    if (capture_broadcasts_) {
      broadcast_flag.assign(batch.size(), 0);
      broadcast_msgs.resize(batch.size());
    }

    std::optional<ScopedAccumulator> compute_time;
    compute_time.emplace(step_compute_seconds_);
    parallel_for(std::size_t{0}, batch.size(), [&](std::size_t k) {
      // parallel_for workers are OMP threads without the main thread's
      // sink; reinstall it (two TLS writes) so in-loop storage traffic —
      // edge-log appends, value spills — mirrors into the query view.
      std::optional<ssd::IoStats::ScopedSink> sink;
      if (ctx_ != nullptr) sink.emplace(&query_io_);
      const ActiveVertex& av = batch[k];
      Context ctx(*this, av.v, s, adj, k, vals[k]);
      const MessageRange<Message> msgs = MessageRange<Message>::from_records(
          std::span<const Rec>(records.data() + av.rec_begin, av.rec_count));
      app_.process(ctx, msgs);
      vals[k] = ctx.current_value();
      deactivated[k] = ctx.deactivated() ? 1 : 0;
      if (capture_broadcasts_ && ctx.broadcast_set()) {
        broadcast_flag[k] = 1;
        broadcast_msgs[k] = ctx.broadcast_message();
      }

      // §V.C edge-log decision: predicted active next superstep, edges came
      // from an inefficiently used CSR page, and the vertex is low-degree
      // enough that re-logging is worthwhile.
      if (options_.enable_edge_log && !adj.from_edge_log[k] &&
          adj.spans[k].length > 0 && predictor_.predict_active(av.v)) {
        const double util = adj.start_page_util[k];
        const double occupancy =
            static_cast<double>(adj.spans[k].length * sizeof(VertexId)) /
            static_cast<double>(graph_.storage().page_size());
        if (util >= 0 && util < options_.page_util_threshold &&
            occupancy < options_.page_util_threshold) {
          const auto span = adj.spans[k];
          edge_log_.log_edges(
              av.v,
              std::span<const VertexId>(adj.adjacency.data() + span.offset,
                                        span.length),
              App::kNeedsWeights
                  ? std::span<const float>(adj.weights.data() + span.offset,
                                           span.length)
                  : std::span<const float>{});
        }
      }
    });
    // Batch-end flush: the workers just joined, so their staged sends move
    // to the shared top pages here, one interval-lock take per chunk. This
    // is what makes staged records visible to produced_count (fusion
    // planning) and to the next asynchronous-mode drain.
    flush_produce_staging();
    compute_time.reset();

    // Serial post-pass: sticky bits, predictor input, values write-back.
    for (std::size_t k = 0; k < batch.size(); ++k) {
      active_now.set(batch[k].v);
      sticky_active_.set(batch[k].v, deactivated[k] == 0);
    }
    {
      ScopedAccumulator io_time(step_io_seconds_);
      values_.scatter(data.ids, vals);
    }
    if (capture_broadcasts_) {
      // §4e: persist this batch's captured broadcasts (ascending vertex ids,
      // so the scatter coalesces) and mark the frontier. Serial, main
      // thread — same discipline as the sticky/values post-pass above.
      std::vector<VertexId> bids;
      std::vector<Message> bmsgs;
      for (std::size_t k = 0; k < batch.size(); ++k) {
        if (broadcast_flag[k] == 0) continue;
        bids.push_back(batch[k].v);
        bmsgs.push_back(broadcast_msgs[k]);
        frontier_next_.set(batch[k].v);
      }
      if (!bids.empty()) {
        ScopedAccumulator io_time(step_io_seconds_);
        broadcast_next_->scatter(bids, bmsgs);
      }
    }
  }

  void apply_structural_updates() {
    std::vector<graph::StructuralUpdate> updates;
    {
      std::lock_guard<std::mutex> lock(structural_mutex_);
      updates.swap(structural_queue_);
    }
    for (const auto& u : updates) graph_.buffer_update(u);
  }

  graph::StoredCsrGraph& graph_;
  App app_;
  EngineOptions options_;
  /// Context mode (multi-tenant serving): null for one-shot engines. The
  /// lease and cache registration are declared before every heavy member so
  /// admission happens first and releases last.
  RuntimeContext* ctx_ = nullptr;
  std::uint64_t query_id_ = 0;
  std::string blob_prefix_ = "mlvc";
  BudgetLease budget_lease_;
  ssd::PageCache::QueryRegistration cache_reg_;
  /// Pipeline I/O threads; null = serial execution. Declared before store_
  /// (whose config borrows the pool and whose destructor waits on pending
  /// background evictions) so it outlives every user.
  std::unique_ptr<ssd::AsyncIo> async_io_;
  multilog::MultiLogStore store_;
  multilog::EdgeLog edge_log_;
  multilog::HistoryPredictor predictor_;
  multilog::PageUtilTracker util_tracker_;
  GraphLoaderUnit loader_;
  VertexValueStore<Value> values_;
  DynamicBitset sticky_active_;

  // ---- §4e direction-optimization state ----------------------------------
  /// All pull gates passed (stored transpose + broadcast-capable app with a
  /// combine + synchronous model + combining on + direction != push). False
  /// leaves everything below inert: the run is byte-identical to the
  /// pre-direction engine.
  bool pull_available_ = false;
  /// Capture broadcasts this superstep (== any direction_next_ bit set):
  /// Context::send_to_all_neighbors records the per-sender message and
  /// suppresses the log records destined to pull-next intervals. Written
  /// only at superstep start, before any parallel region.
  bool capture_broadcasts_ = false;
  /// Per-interval direction, 1 = pull. cur = how THIS superstep's input is
  /// consumed (decided at the start of the previous superstep, which
  /// suppressed its sends to match); next = the plan Context::send consults
  /// live while this superstep produces. Both sized interval-count always,
  /// all-zero when pull_available_ is false.
  std::vector<std::uint8_t> direction_cur_, direction_next_;
  bool any_pull_cur_ = false, any_pull_next_ = false;
  /// Broadcast double-buffer: cur = messages captured last superstep (the
  /// pull front-end's gather source), next = captures in progress. The
  /// frontier bitsets mark which vertices actually broadcast. Blob-backed
  /// like values_ so pull adds no O(V) host-memory term.
  std::unique_ptr<VertexValueStore<Message>> broadcast_cur_, broadcast_next_;
  DynamicBitset frontier_cur_, frontier_next_;
  /// Dense-gather fast path: captured broadcasts indexed by vertex id,
  /// built at most once per superstep (ensure_pull_dense) and only when
  /// V x sizeof(Message) fits a quarter of the budget.
  std::vector<Message> pull_dense_msgs_;
  bool pull_dense_valid_ = false;
  /// plan_directions production history (suppressed sends included): the
  /// last two supersteps' messages_produced, for the trend extrapolation.
  std::uint64_t plan_produced_last_ = 0;
  std::uint64_t plan_produced_prev_ = 0;
  /// Loader over the transposed CSR for pull streaming (constructed only
  /// when pull_available_).
  std::unique_ptr<GraphLoaderUnit> tloader_;
  /// Per-interval static out-degree mass for the hub-degree schedule
  /// policy; computed lazily on the first scheduled wave, empty under BSP.
  std::vector<std::uint64_t> hub_score_;
  RunStats stats_;
  /// Context mode: this query's private I/O view. Every storage-level
  /// record made while this engine's ScopedSink is installed (main thread,
  /// parallel_for workers, and AsyncIo threads via submit-time capture)
  /// mirrors here, so step.io diffs stay per-query while other queries
  /// hammer the same Storage.
  ssd::IoStats query_io_;
  Superstep next_superstep_ = 0;

  // Per-superstep critical-path attribution, main thread only: time blocked
  // on storage (loads, prefetch waits, gather/scatter, eviction barriers)
  // vs time computing (sort/combine inline + vertex processing).
  double step_io_seconds_ = 0;
  double step_compute_seconds_ = 0;

  /// Per-compute-thread produce state, indexed by thread_index(): the
  /// multi-log staging area plus message counters that replace the shared
  /// atomics send() used to bump per record. Padded to a cache line so one
  /// thread's counter writes don't bounce its neighbors' lines.
  struct alignas(64) ThreadProduceState {
    multilog::MultiLogStore::Staging staging;
    std::uint64_t messages_produced = 0;
    std::uint64_t edges_activated = 0;
    /// §4e: record bytes this thread did NOT write because the destination
    /// interval pulls next superstep.
    std::uint64_t log_bytes_avoided = 0;
  };
  std::vector<ThreadProduceState> thread_state_;
  std::mutex structural_mutex_;
  std::vector<graph::StructuralUpdate> structural_queue_;
};

}  // namespace mlvc::core
