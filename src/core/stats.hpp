// Per-superstep and per-run execution statistics.
//
// Every figure in the paper's evaluation is some view over these numbers:
// active counts (Fig 2), page accesses (Fig 5b), storage/compute split
// (Fig 5c), per-superstep relative time (Fig 7), predictor recall (Fig 9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "ssd/io_stats.hpp"

namespace mlvc::core {

struct SuperstepStats {
  Superstep superstep = 0;
  std::uint64_t active_vertices = 0;
  std::uint64_t messages_consumed = 0;
  std::uint64_t messages_produced = 0;
  /// Out-edges traversed by sends this superstep ("active edges" in Fig 2).
  std::uint64_t edges_activated = 0;

  ssd::IoStatsSnapshot io;  // traffic attributable to this superstep
  double modeled_storage_seconds = 0;  // device model, this superstep
  /// Host wall time the superstep's critical path spent doing compute work:
  /// sort/combine/group (when not hidden by the pipeline) plus vertex
  /// processing. Measured directly, not derived from total_wall_seconds.
  double compute_wall_seconds = 0;
  /// Host wall time the critical path spent blocked on storage: log loads,
  /// adjacency/value fetches, and waits on pipeline prefetch futures. Under
  /// pipelined execution this shrinks as I/O hides behind compute.
  double io_wall_seconds = 0;
  double total_wall_seconds = 0;       // host wall clock for the superstep

  /// Wall time of the §V.B sort-and-group stage (decode + scatter-or-sort +
  /// combine + group offsets) summed over this superstep's interval groups,
  /// measured where the stage ran. On the serial path it is a subset of
  /// compute_wall_seconds; under the pipeline the stage runs on I/O threads
  /// one group ahead of compute, so it may exceed the critical-path share.
  double sort_group_seconds = 0;
  /// Interval groups handled by each §V.B implementation this superstep
  /// (the fused counting scatter vs the comparison-sort fallback).
  std::uint64_t groups_scatter = 0;
  std::uint64_t groups_comparison = 0;

  /// Produce-path staging (§V.A): chunks flushed from per-thread staging
  /// buffers into the shared top pages, and the wall time those flushes
  /// spent holding interval locks (the residual serialized section of the
  /// scatter path — per-record locking made this the whole send cost).
  std::uint64_t scatter_flush_count = 0;
  double scatter_stall_seconds = 0;

  /// Bytes dropped from torn trailing log pages this superstep (crash
  /// recovery with options.torn_page_recovery; always 0 on a healthy run).
  std::uint64_t torn_bytes_dropped = 0;

  /// Interval-granular scheduling (options.schedule_policy != kBsp; all
  /// zero on the BSP barrier path). Chains activated this wave — exceeds
  /// the interval count when the asynchronous model re-queued intervals
  /// whose logs grew after their drain (same-wave delivery) — plus how far
  /// the priority policy moved an interval from its arrival rank at worst,
  /// and the total time ready chains waited before activation.
  std::uint64_t intervals_scheduled = 0;
  std::uint64_t schedule_reorder_depth = 0;
  double ready_latency_seconds = 0;

  /// The slice of sort_group_seconds that ran on pipeline I/O threads
  /// (prefetched groups) and is therefore NOT inside compute_wall_seconds.
  /// compute_wall_seconds + offthread_sort_seconds is invariant to where
  /// the pipeline scheduled the stage.
  double offthread_sort_seconds = 0;

  /// Primary metric (DESIGN.md §4): host compute + modeled device time.
  double modeled_total_seconds() const {
    return compute_wall_seconds + modeled_storage_seconds;
  }

  /// Thread-placement-invariant modeled wall time: every CPU second the
  /// superstep spent — wherever the pipeline scheduled it — plus modeled
  /// device time, with no overlap credit. modeled_total_seconds() charges
  /// sort/group only when it ran on the critical path, so it understates
  /// pipelined runs (BSP prefetch hides the stage on I/O threads) relative
  /// to serial ones (the scheduled-async redelivery chains); this metric
  /// compares execution modes on equal footing and is what bench_async
  /// gates (DESIGN.md §4c).
  double modeled_work_seconds() const {
    return modeled_total_seconds() + offthread_sort_seconds;
  }

  /// Direction optimization (DESIGN.md §4e; all zero under push-only).
  /// Intervals this superstep consumed through the transpose-CSR pull path,
  /// and the log-record bytes the previous superstep's senders did NOT
  /// write because their destination interval had already chosen pull —
  /// the traffic class the direction switch exists to delete.
  std::uint64_t intervals_pulled = 0;
  std::uint64_t log_bytes_avoided = 0;

  // Edge-log optimizer observability (Figure 9).
  std::uint64_t pages_touched = 0;
  std::uint64_t pages_inefficient = 0;
  std::uint64_t pages_inefficient_predicted = 0;
  std::uint64_t edge_log_hits = 0;

  // Predictor accuracy on vertices.
  std::uint64_t predicted_active = 0;
};

struct RunStats {
  std::string engine;
  std::string app;
  /// I/O substrate the run's Storage actually used ("threadpool"/"uring") —
  /// the post-probe backend, so a uring request that fell back reports
  /// "threadpool".
  std::string io_backend;
  /// Superstep-internal execution order the run used ("bsp" / "fifo" /
  /// "hub-degree" / "log-bytes") — the resolved value after MLVC_SCHEDULE.
  std::string schedule_policy;
  /// Where the §V.D combine actually ran ("host" / "device") — "device"
  /// only when the run both requested it and executed on a striped store
  /// with a kHasCombine app. Engines without a combine report "host".
  std::string combine_placement = "host";
  /// Striped devices of the run's Storage (1 = single-file layout).
  std::uint64_t num_devices = 1;
  /// Message movement direction the run resolved to ("push" / "pull" /
  /// "adaptive") after MLVC_DIRECTION and the eligibility gates.
  std::string direction = "push";
  /// Why a requested pull/adaptive run fell back to push (empty when pull
  /// was available): e.g. "store has no transpose" for v1 stores.
  std::string direction_fallback;
  /// FNV-1a over the final vertex values, streamed chunk-by-chunk (never
  /// the O(V) values() vector). Filled by callers that verify results
  /// (mlvc_run --json, mlvc_serve --verify); 0 + false when not computed.
  std::uint64_t values_hash = 0;
  bool has_values_hash = false;
  std::vector<SuperstepStats> supersteps;
  double build_seconds = 0;  // graph/shard materialization, excluded from run

  /// Context-mode identity: the RuntimeContext query id this run executed
  /// as (blob prefix "q<id>"). 0 for one-shot runs outside a context.
  std::uint64_t query_id = 0;
  /// Per-query view of the SHARED adjacency cache (from this query's
  /// PageCache::QuerySlot): pages this query hit, missed-and-filled, or read
  /// around the cache because it was at its admission quota. All zero for
  /// one-shot runs (their private cache is reported via the io snapshots).
  std::uint64_t query_cache_hit_pages = 0;
  std::uint64_t query_cache_miss_pages = 0;
  std::uint64_t query_cache_bypass_pages = 0;

  std::uint64_t total_pages_read() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.total_pages_read();
    return t;
  }
  std::uint64_t total_pages_written() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.total_pages_written();
    return t;
  }
  std::uint64_t total_pages() const {
    return total_pages_read() + total_pages_written();
  }
  double modeled_storage_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.modeled_storage_seconds;
    return t;
  }
  double compute_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.compute_wall_seconds;
    return t;
  }
  double sort_group_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.sort_group_seconds;
    return t;
  }
  std::uint64_t groups_scatter() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.groups_scatter;
    return t;
  }
  std::uint64_t groups_comparison() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.groups_comparison;
    return t;
  }
  std::uint64_t scatter_flush_count() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.scatter_flush_count;
    return t;
  }
  double scatter_stall_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.scatter_stall_seconds;
    return t;
  }
  double io_wait_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.io_wall_seconds;
    return t;
  }
  double total_wall_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.total_wall_seconds;
    return t;
  }
  double modeled_total_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.modeled_total_seconds();
    return t;
  }
  double offthread_sort_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.offthread_sort_seconds;
    return t;
  }
  /// Thread-placement-invariant modeled wall time (SuperstepStats doc).
  double modeled_work_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.modeled_work_seconds();
    return t;
  }
  std::uint64_t total_messages() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.messages_produced;
    return t;
  }
  std::uint64_t torn_bytes_dropped() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.torn_bytes_dropped;
    return t;
  }
  /// Effective rounds: supersteps actually executed. Under the asynchronous
  /// model with a schedule policy this is what same-wave delivery shrinks
  /// relative to BSP — the bench_async acceptance metric.
  std::uint64_t effective_rounds() const {
    return static_cast<std::uint64_t>(supersteps.size());
  }
  std::uint64_t intervals_scheduled() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.intervals_scheduled;
    return t;
  }
  /// Gauge: the deepest any wave's priority policy reordered an interval.
  std::uint64_t schedule_reorder_depth() const {
    std::uint64_t m = 0;
    for (const auto& s : supersteps) {
      if (s.schedule_reorder_depth > m) m = s.schedule_reorder_depth;
    }
    return m;
  }
  double ready_latency_seconds() const {
    double t = 0;
    for (const auto& s : supersteps) t += s.ready_latency_seconds;
    return t;
  }
  std::uint64_t intervals_pulled() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.intervals_pulled;
    return t;
  }
  std::uint64_t log_bytes_avoided() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.log_bytes_avoided;
    return t;
  }
  std::uint64_t io_retries() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.io_retry_count;
    return t;
  }
  std::uint64_t bytes_crossed_bus() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.bus_bytes_crossed;
    return t;
  }
  std::uint64_t device_combine_records_in() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.device_combine_records_in;
    return t;
  }
  std::uint64_t device_combine_records_out() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.device_combine_records_out;
    return t;
  }
  std::uint64_t io_giveups() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.io_giveup_count;
    return t;
  }
  std::uint64_t io_submit_batches() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.submit_batches;
    return t;
  }
  std::uint64_t sqe_coalesced_ops() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.sqe_coalesced_ops;
    return t;
  }
  /// Physical vs logical traffic split (DESIGN.md format v2): physical is
  /// what the blob layer moved (compressed lengths under v2), logical is the
  /// post-decode byte volume the consumers saw. logical/physical is the
  /// run-level compression ratio; restrict to one category for a per-layer
  /// view (adjacency vs message log vs checkpoint).
  std::uint64_t physical_bytes_read() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.total_bytes_read();
    return t;
  }
  std::uint64_t physical_bytes_written() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.total_bytes_written();
    return t;
  }
  std::uint64_t logical_bytes_read() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.total_logical_bytes_read();
    return t;
  }
  std::uint64_t logical_bytes_written() const {
    std::uint64_t t = 0;
    for (const auto& s : supersteps) t += s.io.total_logical_bytes_written();
    return t;
  }
  /// Per-layer split of the same numbers (categories sum to the totals).
  ssd::IoStatsSnapshot::Category category_bytes(ssd::IoCategory c) const {
    ssd::IoStatsSnapshot::Category out;
    for (const auto& s : supersteps) {
      const auto& cat = s.io[c];
      out.pages_read += cat.pages_read;
      out.pages_written += cat.pages_written;
      out.bytes_read += cat.bytes_read;
      out.bytes_written += cat.bytes_written;
      out.logical_bytes_read += cat.logical_bytes_read;
      out.logical_bytes_written += cat.logical_bytes_written;
    }
    return out;
  }
  /// Gauge: the deepest any superstep drove the submission ring.
  std::uint64_t max_inflight_depth() const {
    std::uint64_t m = 0;
    for (const auto& s : supersteps) {
      if (s.io.max_inflight_depth > m) m = s.io.max_inflight_depth;
    }
    return m;
  }
};

}  // namespace mlvc::core
