#include "graph/edge_list.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace mlvc::graph {

void EdgeList::add(VertexId src, VertexId dst, float weight) {
  edges_.push_back(Edge{src, dst, weight});
  num_vertices_ = std::max(num_vertices_, std::max(src, dst) + 1);
}

void EdgeList::make_undirected() {
  const std::size_t n = edges_.size();
  edges_.reserve(n * 2);
  for (std::size_t i = 0; i < n; ++i) {
    const Edge e = edges_[i];
    if (e.src != e.dst) {
      edges_.push_back(Edge{e.dst, e.src, e.weight});
    }
  }
  normalize();
}

void EdgeList::normalize() {
  std::erase_if(edges_, [](const Edge& e) { return e.src == e.dst; });
  parallel_sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
}

void EdgeList::validate() const {
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      throw InvalidArgument("edge (" + std::to_string(e.src) + "," +
                            std::to_string(e.dst) +
                            ") out of range for num_vertices=" +
                            std::to_string(num_vertices_));
    }
  }
}

}  // namespace mlvc::graph
