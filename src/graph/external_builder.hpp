// External-memory CSR construction.
//
// The paper's datasets (3.6B and 12.9B edges) cannot be CSR-sorted in a 1 GB
// host budget, so graph ingestion itself must be out-of-core: edges are
// buffered up to the memory budget, sorted, spilled as runs, and k-way
// merged into the per-interval stored CSR. Duplicate (src,dst) pairs and
// self-loops are dropped during the merge.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/memory_budget.hpp"
#include "graph/stored_csr.hpp"
#include "ssd/storage.hpp"

namespace mlvc::graph {

/// Construction options for ExternalCsrBuilder (namespace-scope so it can be
/// used as a default argument).
struct ExternalCsrBuilderOptions {
  /// Host memory available for the sort buffer.
  std::size_t memory_budget_bytes = 64_MiB;
  /// Mirror each (u,v) to (v,u) on ingest (paper's graphs are undirected).
  bool make_undirected = false;
  bool with_weights = false;
  /// On-disk adjacency layout of the materialized graph (see
  /// StoredCsrOptions::format); the build-time encode happens in the
  /// streaming StoredCsrGraph constructor finish() drives.
  OnDiskFormat format = OnDiskFormat::kV2;
};

class ExternalCsrBuilder {
 public:
  using Options = ExternalCsrBuilderOptions;

  ExternalCsrBuilder(ssd::Storage& storage, std::string prefix,
                     VertexId num_vertices, Options options = Options());
  ~ExternalCsrBuilder();

  void add_edge(VertexId src, VertexId dst, float weight = 1.0f);
  void add_edges(std::span<const Edge> edges);

  /// Sort/merge all spilled runs and materialize the stored CSR. Interval
  /// partitioning uses the paper's in-degree rule with `bytes_per_update`
  /// and `sort_budget_bytes` (see VertexIntervals::partition_by_in_degree).
  /// The builder is consumed; run blobs are deleted afterwards.
  std::unique_ptr<StoredCsrGraph> finish(std::size_t bytes_per_update,
                                         std::size_t sort_budget_bytes,
                                         std::size_t merge_threshold = 4096);

  /// In-degrees observed so far (valid before finish()).
  std::span<const EdgeIndex> in_degrees() const { return in_degrees_; }

  std::uint64_t edges_ingested() const noexcept { return ingested_; }

 private:
  void spill_run();

  ssd::Storage& storage_;
  std::string prefix_;
  VertexId num_vertices_;
  Options options_;
  std::vector<Edge> buffer_;
  std::size_t buffer_capacity_;
  std::vector<ssd::Blob*> runs_;
  std::vector<EdgeIndex> in_degrees_;
  std::uint64_t ingested_ = 0;
  bool finished_ = false;
};

}  // namespace mlvc::graph
