#include "graph/stored_csr.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "common/varint.hpp"

namespace mlvc::graph {
namespace {

// csr/meta versioned header: magic, meta-schema version, then the fields
// needed to re-open the graph (format, weights, boundaries, edge counts).
// All u64 words so the blob is trivially (re)readable.
constexpr std::uint64_t kCsrMetaMagic = 0x4D564353;  // "SCVM"
constexpr std::uint64_t kCsrMetaVersion = 1;

/// Delta+zigzag+varint encode `colidx` as blocks of kCsrBlockEdges,
/// appending encoded bytes to `out` and each block's start offset (relative
/// to the interval stream, whose first `stream_base` bytes were already
/// flushed) to `skips`. Callers must only split an interval's colidx across
/// calls at block boundaries.
void encode_blocks(std::span<const VertexId> colidx,
                   std::vector<std::uint8_t>& out,
                   std::vector<std::uint64_t>& skips,
                   std::uint64_t stream_base) {
  for (std::size_t off = 0; off < colidx.size(); off += kCsrBlockEdges) {
    const std::size_t n =
        std::min<std::size_t>(kCsrBlockEdges, colidx.size() - off);
    skips.push_back(stream_base + out.size());
    put_delta_block(out, colidx.data() + off, n, 0, /*absolute_first=*/true);
  }
}

/// Decode colidx entries [lo, hi) out of the compressed bytes `comp`, which
/// hold the blocks overlapping that span starting at interval-stream offset
/// `comp_base` (== skips[lo / kCsrBlockEdges]).
void decode_span(const std::vector<std::uint64_t>& skips, EdgeIndex n_edges,
                 EdgeIndex lo, EdgeIndex hi, const std::uint8_t* comp,
                 std::uint64_t comp_base, VertexId* out) {
  const std::size_t b0 = static_cast<std::size_t>(lo / kCsrBlockEdges);
  const std::size_t b1 = static_cast<std::size_t>((hi - 1) / kCsrBlockEdges);
  std::array<VertexId, kCsrBlockEdges> scratch;
  for (std::size_t b = b0; b <= b1; ++b) {
    const EdgeIndex blk_lo = static_cast<EdgeIndex>(b) * kCsrBlockEdges;
    const EdgeIndex blk_n = std::min<EdgeIndex>(kCsrBlockEdges,
                                                n_edges - blk_lo);
    const std::uint8_t* p = comp + (skips[b] - comp_base);
    const std::uint8_t* end = comp + (skips[b + 1] - comp_base);
    // Decode only the block prefix the span needs; entries before `lo`
    // still have to be walked for the delta chain.
    const EdgeIndex want_hi = std::min<EdgeIndex>(hi, blk_lo + blk_n);
    get_delta_block(&p, end, scratch.data(), want_hi - blk_lo, 0,
                    /*absolute_first=*/true);
    const EdgeIndex copy_lo = std::max<EdgeIndex>(lo, blk_lo);
    std::memcpy(out + (copy_lo - lo), scratch.data() + (copy_lo - blk_lo),
                (want_hi - copy_lo) * sizeof(VertexId));
  }
}

}  // namespace

StoredCsrGraph::StoredCsrGraph(ssd::Storage& storage, std::string name_prefix,
                               const CsrGraph& csr, VertexIntervals intervals,
                               Options options)
    : storage_(storage),
      prefix_(std::move(name_prefix)),
      intervals_(std::move(intervals)),
      options_(options),
      num_edges_(csr.num_edges()) {
  MLVC_CHECK_MSG(intervals_.num_vertices() == csr.num_vertices(),
                 "interval boundaries do not cover the graph");
  const IntervalId n_int = intervals_.count();
  degrees_.resize(csr.num_vertices());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    degrees_[v] = csr.out_degree(v);
  }
  interval_edges_.assign(n_int, 0);
  rowptr_blobs_.resize(n_int);
  colidx_blobs_.resize(n_int);
  val_blobs_.resize(n_int, nullptr);
  skip_index_.resize(n_int);
  skip_blobs_.resize(n_int, nullptr);
  pending_.resize(n_int);

  const auto row_ptr = csr.row_ptr();
  for (IntervalId i = 0; i < n_int; ++i) {
    const VertexId vb = intervals_.begin(i);
    const VertexId ve = intervals_.end(i);
    const EdgeIndex base = row_ptr[vb];
    const EdgeIndex limit = row_ptr[ve];
    interval_edges_[i] = limit - base;

    std::vector<EdgeIndex> local_rowptr(ve - vb + 1);
    for (VertexId v = vb; v <= ve; ++v) {
      local_rowptr[v - vb] = row_ptr[v] - base;
    }
    std::span<const VertexId> colidx =
        csr.col_idx().subspan(base, limit - base);
    std::span<const float> val =
        options_.with_weights ? csr.val().subspan(base, limit - base)
                              : std::span<const float>{};
    rowptr_blobs_[i] =
        &storage_.create_blob(blob_name(i, "rowptr"), ssd::IoCategory::kCsrRowPtr);
    colidx_blobs_[i] =
        &storage_.create_blob(blob_name(i, "colidx"), ssd::IoCategory::kCsrColIdx);
    if (options_.with_weights) {
      val_blobs_[i] =
          &storage_.create_blob(blob_name(i, "val"), ssd::IoCategory::kCsrVal);
    }
    if (options_.format == OnDiskFormat::kV2) {
      skip_blobs_[i] = &storage_.create_blob(blob_name(i, "colidx.skip"),
                                             ssd::IoCategory::kCsrColIdx);
    }
    write_interval(i, local_rowptr, colidx, val);
  }
  write_meta();
  if (options_.with_transpose) build_transpose(csr);
}

void StoredCsrGraph::build_transpose(const CsrGraph& csr) {
  // Counting sort: in-degree histogram -> prefix sum -> scatter. Scanning
  // sources ascending leaves each vertex's in-neighbor list ascending, the
  // order the pull path's frontier filter and gather expect.
  const VertexId n = csr.num_vertices();
  const auto row_ptr = csr.row_ptr();
  const auto col_idx = csr.col_idx();
  std::vector<EdgeIndex> trowptr(static_cast<std::size_t>(n) + 1, 0);
  for (const VertexId dst : col_idx) ++trowptr[dst + 1];
  for (VertexId v = 0; v < n; ++v) trowptr[v + 1] += trowptr[v];
  std::vector<VertexId> tcol(csr.num_edges());
  std::vector<EdgeIndex> cursor(trowptr.begin(), trowptr.end() - 1);
  for (VertexId u = 0; u < n; ++u) {
    for (EdgeIndex e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
      tcol[cursor[col_idx[e]]++] = u;
    }
  }
  // Feed the streaming constructor so the transpose shares every storage
  // path (chunked appends, v2 block encoding, meta blob) with the forward
  // graph instead of duplicating them.
  VertexId v = 0;
  EdgeIndex e = 0;
  const std::function<bool(Edge&)> next = [&](Edge& out) {
    while (v < n && e == trowptr[v + 1]) ++v;
    if (v >= n) return false;
    out = Edge{v, tcol[e], 1.0f};
    ++e;
    return true;
  };
  Options topt = options_;
  topt.with_weights = false;
  topt.with_transpose = false;
  transpose_ = std::make_unique<StoredCsrGraph>(storage_, prefix_ + "/t",
                                                intervals_, next, topt);
}

StoredCsrGraph::StoredCsrGraph(ssd::Storage& storage, std::string name_prefix,
                               VertexIntervals intervals,
                               const std::function<bool(Edge&)>& next_edge,
                               Options options)
    : storage_(storage),
      prefix_(std::move(name_prefix)),
      intervals_(std::move(intervals)),
      options_(options) {
  // A transpose cannot be derived from one forward-sorted pass; streaming
  // builds are push-only until mlvc_convert rewrites them (see Options).
  options_.with_transpose = false;
  const IntervalId n_int = intervals_.count();
  degrees_.assign(intervals_.num_vertices(), 0);
  interval_edges_.assign(n_int, 0);
  rowptr_blobs_.resize(n_int);
  colidx_blobs_.resize(n_int);
  val_blobs_.resize(n_int, nullptr);
  skip_index_.resize(n_int);
  skip_blobs_.resize(n_int, nullptr);
  pending_.resize(n_int);

  // Chunked append: bound memory to ~256 KiB per stream regardless of
  // interval size. Must stay a multiple of kCsrBlockEdges so v2 block
  // encoding never splits a block across flushes.
  constexpr std::size_t kChunkEdges = 64 * 1024;
  static_assert(kChunkEdges % kCsrBlockEdges == 0);
  std::vector<VertexId> colidx_chunk;
  std::vector<float> val_chunk;
  colidx_chunk.reserve(kChunkEdges);
  if (options_.with_weights) val_chunk.reserve(kChunkEdges);

  Edge cur{};
  bool have_edge = next_edge(cur);
  for (IntervalId i = 0; i < n_int; ++i) {
    const VertexId vb = intervals_.begin(i);
    const VertexId ve = intervals_.end(i);
    rowptr_blobs_[i] = &storage_.create_blob(blob_name(i, "rowptr"),
                                             ssd::IoCategory::kCsrRowPtr);
    colidx_blobs_[i] = &storage_.create_blob(blob_name(i, "colidx"),
                                             ssd::IoCategory::kCsrColIdx);
    if (options_.with_weights) {
      val_blobs_[i] =
          &storage_.create_blob(blob_name(i, "val"), ssd::IoCategory::kCsrVal);
    }
    if (options_.format == OnDiskFormat::kV2) {
      skip_blobs_[i] = &storage_.create_blob(blob_name(i, "colidx.skip"),
                                             ssd::IoCategory::kCsrColIdx);
    }
    std::vector<EdgeIndex> local_rowptr(ve - vb + 1);
    EdgeIndex edge_count = 0;
    std::vector<std::uint8_t> enc;          // v2: encoded bytes this flush
    std::vector<std::uint64_t> skips;       // v2: block starts this interval
    std::uint64_t enc_base = 0;             // v2: encoded bytes flushed
    const auto flush = [&] {
      if (options_.format == OnDiskFormat::kV2) {
        encode_blocks(colidx_chunk, enc, skips, enc_base);
        colidx_blobs_[i]->append(enc.data(), enc.size());
        enc_base += enc.size();
        enc.clear();
      } else {
        colidx_blobs_[i]->append(colidx_chunk.data(),
                                 colidx_chunk.size() * sizeof(VertexId));
      }
      storage_.stats().record_logical_write(
          ssd::IoCategory::kCsrColIdx, colidx_chunk.size() * sizeof(VertexId));
      colidx_chunk.clear();
      if (options_.with_weights) {
        val_blobs_[i]->append(val_chunk.data(),
                              val_chunk.size() * sizeof(float));
        val_chunk.clear();
      }
    };
    for (VertexId v = vb; v < ve; ++v) {
      local_rowptr[v - vb] = edge_count;
      while (have_edge && cur.src == v) {
        colidx_chunk.push_back(cur.dst);
        if (options_.with_weights) val_chunk.push_back(cur.weight);
        if (colidx_chunk.size() >= kChunkEdges) flush();
        ++edge_count;
        ++degrees_[v];
        Edge next{};
        have_edge = next_edge(next);
        MLVC_CHECK_MSG(!have_edge || next.src >= cur.src,
                       "edge stream not sorted by source");
        cur = next;
      }
      MLVC_CHECK_MSG(!have_edge || cur.src >= ve || cur.src >= v,
                     "edge stream not sorted by source");
    }
    local_rowptr.back() = edge_count;
    flush();
    if (options_.format == OnDiskFormat::kV2) {
      skips.push_back(enc_base);
      skip_blobs_[i]->append(skips.data(),
                             skips.size() * sizeof(std::uint64_t));
      skip_index_[i] = std::move(skips);
    }
    interval_edges_[i] = edge_count;
    num_edges_ += edge_count;
    rowptr_blobs_[i]->append(local_rowptr.data(),
                             local_rowptr.size() * sizeof(EdgeIndex));
  }
  MLVC_CHECK_MSG(!have_edge, "edge stream has sources past num_vertices");
  write_meta();
}

std::string StoredCsrGraph::blob_name(IntervalId i, const char* what) const {
  return prefix_ + "/csr/" + std::to_string(i) + "/" + what;
}

void StoredCsrGraph::write_interval(IntervalId i,
                                    std::span<const EdgeIndex> local_rowptr,
                                    std::span<const VertexId> colidx,
                                    std::span<const float> val) {
  rowptr_blobs_[i]->truncate(0);
  rowptr_blobs_[i]->append(local_rowptr.data(), local_rowptr.size_bytes());
  colidx_blobs_[i]->truncate(0);
  if (options_.format == OnDiskFormat::kV2) {
    std::vector<std::uint8_t> enc;
    std::vector<std::uint64_t> skips;
    encode_blocks(colidx, enc, skips, 0);
    skips.push_back(enc.size());
    colidx_blobs_[i]->append(enc.data(), enc.size());
    skip_blobs_[i]->truncate(0);
    skip_blobs_[i]->append(skips.data(), skips.size() * sizeof(std::uint64_t));
    skip_index_[i] = std::move(skips);
  } else {
    colidx_blobs_[i]->append(colidx.data(), colidx.size_bytes());
  }
  storage_.stats().record_logical_write(ssd::IoCategory::kCsrColIdx,
                                        colidx.size_bytes());
  if (options_.with_weights) {
    val_blobs_[i]->truncate(0);
    val_blobs_[i]->append(val.data(), val.size_bytes());
  }
  // The interval's colidx pages just changed identity/content; cached copies
  // are stale.
  if (adjacency_cache_) adjacency_cache_->invalidate();
}

void StoredCsrGraph::read_local_row_ptrs(IntervalId i, VertexId local_begin,
                                         std::size_t count,
                                         std::span<EdgeIndex> out) const {
  MLVC_CHECK(i < intervals_.count());
  MLVC_CHECK(out.size() >= count);
  rowptr_blobs_[i]->read(static_cast<std::uint64_t>(local_begin) *
                             sizeof(EdgeIndex),
                         out.data(), count * sizeof(EdgeIndex));
}

void StoredCsrGraph::set_adjacency_cache(std::size_t capacity_bytes) {
  adjacency_cache_ =
      capacity_bytes == 0
          ? nullptr
          : std::make_shared<ssd::PageCache>(storage_, capacity_bytes);
  // One cache serves both directions — forward and transpose colidx pages
  // compete for the same capacity rather than doubling host memory.
  if (transpose_) transpose_->set_adjacency_cache(adjacency_cache_);
}

void StoredCsrGraph::set_adjacency_cache(std::shared_ptr<ssd::PageCache> cache) {
  MLVC_CHECK_MSG(cache == nullptr || &cache->storage() == &storage_,
                 "shared adjacency cache must be backed by this graph's "
                 "storage");
  adjacency_cache_ = std::move(cache);
  if (transpose_) transpose_->set_adjacency_cache(adjacency_cache_);
}

void StoredCsrGraph::read_adjacency_v2(IntervalId i, EdgeIndex lo,
                                       EdgeIndex hi, VertexId* out) const {
  if (lo == hi) return;
  const auto& skips = skip_index_[i];
  const EdgeIndex n_edges = interval_edges_[i];
  MLVC_CHECK(hi <= n_edges);
  const std::size_t b0 = static_cast<std::size_t>(lo / kCsrBlockEdges);
  const std::size_t b1 = static_cast<std::size_t>((hi - 1) / kCsrBlockEdges);
  const std::uint64_t byte_lo = skips[b0];
  const std::uint64_t byte_hi = skips[b1 + 1];
  std::vector<std::uint8_t> comp(byte_hi - byte_lo);
  if (adjacency_cache_) {
    adjacency_cache_->read(*colidx_blobs_[i], byte_lo, comp.data(),
                           comp.size());
  } else {
    colidx_blobs_[i]->read(byte_lo, comp.data(), comp.size());
  }
  decode_span(skips, n_edges, lo, hi, comp.data(), byte_lo, out);
}

void StoredCsrGraph::read_adjacency(IntervalId i, EdgeIndex lo, EdgeIndex hi,
                                    std::span<VertexId> out) const {
  MLVC_CHECK(i < intervals_.count() && lo <= hi);
  MLVC_CHECK(out.size() >= hi - lo);
  storage_.stats().record_logical_read(ssd::IoCategory::kCsrColIdx,
                                       (hi - lo) * sizeof(VertexId));
  if (options_.format == OnDiskFormat::kV2) {
    read_adjacency_v2(i, lo, hi, out.data());
    return;
  }
  if (adjacency_cache_) {
    adjacency_cache_->read(*colidx_blobs_[i], lo * sizeof(VertexId),
                           out.data(), (hi - lo) * sizeof(VertexId));
    return;
  }
  colidx_blobs_[i]->read(lo * sizeof(VertexId), out.data(),
                         (hi - lo) * sizeof(VertexId));
}

void StoredCsrGraph::read_values(IntervalId i, EdgeIndex lo, EdgeIndex hi,
                                 std::span<float> out) const {
  MLVC_CHECK_MSG(options_.with_weights, "graph stored without weights");
  MLVC_CHECK(i < intervals_.count() && lo <= hi);
  MLVC_CHECK(out.size() >= hi - lo);
  val_blobs_[i]->read(lo * sizeof(float), out.data(),
                      (hi - lo) * sizeof(float));
}

namespace {
template <typename T>
std::vector<ssd::ReadOp> to_read_ops(
    std::span<const StoredCsrGraph::ElemRange> ranges) {
  std::vector<ssd::ReadOp> ops;
  ops.reserve(ranges.size());
  for (const auto& r : ranges) {
    MLVC_CHECK(r.lo <= r.hi);
    ops.push_back({static_cast<std::uint64_t>(r.lo) * sizeof(T), r.out,
                   (r.hi - r.lo) * sizeof(T)});
  }
  return ops;
}
}  // namespace

void StoredCsrGraph::read_local_row_ptrs_multi(
    IntervalId i, std::span<const ElemRange> ranges) const {
  MLVC_CHECK(i < intervals_.count());
  rowptr_blobs_[i]->read_multi(to_read_ops<EdgeIndex>(ranges));
}

void StoredCsrGraph::read_adjacency_multi(
    IntervalId i, std::span<const ElemRange> ranges) const {
  MLVC_CHECK(i < intervals_.count());
  for (const auto& r : ranges) {
    MLVC_CHECK(r.lo <= r.hi);
    storage_.stats().record_logical_read(ssd::IoCategory::kCsrColIdx,
                                         (r.hi - r.lo) * sizeof(VertexId));
  }
  if (options_.format == OnDiskFormat::kV2) {
    if (adjacency_cache_) {
      for (const auto& r : ranges) {
        read_adjacency_v2(i, r.lo, r.hi, static_cast<VertexId*>(r.out));
      }
      return;
    }
    // One vectored read over every range's compressed span, then decode
    // each span out of the shared arena — the v2 analogue of the preadv
    // coalescing below.
    const auto& skips = skip_index_[i];
    struct CompSpan {
      std::uint64_t byte_lo = 0, byte_hi = 0;
      std::size_t arena_off = 0;
    };
    std::vector<CompSpan> spans(ranges.size());
    std::vector<ssd::ReadOp> ops;
    ops.reserve(ranges.size());
    std::size_t arena_bytes = 0;
    for (std::size_t k = 0; k < ranges.size(); ++k) {
      const auto& r = ranges[k];
      if (r.lo == r.hi) continue;
      const std::size_t b0 = static_cast<std::size_t>(r.lo / kCsrBlockEdges);
      const std::size_t b1 =
          static_cast<std::size_t>((r.hi - 1) / kCsrBlockEdges);
      spans[k] = {skips[b0], skips[b1 + 1], arena_bytes};
      arena_bytes += spans[k].byte_hi - spans[k].byte_lo;
    }
    std::vector<std::uint8_t> arena(arena_bytes);
    for (std::size_t k = 0; k < ranges.size(); ++k) {
      if (ranges[k].lo == ranges[k].hi) continue;
      ops.push_back({spans[k].byte_lo, arena.data() + spans[k].arena_off,
                     static_cast<std::size_t>(spans[k].byte_hi -
                                              spans[k].byte_lo)});
    }
    colidx_blobs_[i]->read_multi(ops);
    for (std::size_t k = 0; k < ranges.size(); ++k) {
      const auto& r = ranges[k];
      if (r.lo == r.hi) continue;
      decode_span(skips, interval_edges_[i], r.lo, r.hi,
                  arena.data() + spans[k].arena_off, spans[k].byte_lo,
                  static_cast<VertexId*>(r.out));
    }
    return;
  }
  if (adjacency_cache_) {
    // Cached path serves each range from host pages (no preadv coalescing —
    // hits never reach the kernel at all).
    for (const auto& r : ranges) {
      adjacency_cache_->read(*colidx_blobs_[i],
                             static_cast<std::uint64_t>(r.lo) *
                                 sizeof(VertexId),
                             r.out, (r.hi - r.lo) * sizeof(VertexId));
    }
    return;
  }
  colidx_blobs_[i]->read_multi(to_read_ops<VertexId>(ranges));
}

void StoredCsrGraph::read_values_multi(
    IntervalId i, std::span<const ElemRange> ranges) const {
  MLVC_CHECK_MSG(options_.with_weights, "graph stored without weights");
  MLVC_CHECK(i < intervals_.count());
  val_blobs_[i]->read_multi(to_read_ops<float>(ranges));
}

const ssd::Blob& StoredCsrGraph::colidx_blob(IntervalId i) const {
  MLVC_CHECK(i < intervals_.count());
  return *colidx_blobs_[i];
}

std::uint64_t StoredCsrGraph::adjacency_stored_bytes(IntervalId i) const {
  MLVC_CHECK(i < intervals_.count());
  return colidx_blobs_[i]->size();
}

StoredCsrGraph::StoredCsrGraph(ssd::Storage& storage, std::string name_prefix)
    : storage_(storage), prefix_(std::move(name_prefix)) {}

std::unique_ptr<StoredCsrGraph> StoredCsrGraph::open(ssd::Storage& storage,
                                                     std::string name_prefix) {
  auto g = std::unique_ptr<StoredCsrGraph>(
      new StoredCsrGraph(storage, std::move(name_prefix)));
  g->load_meta();
  // Attach the transpose sibling when one was stored. Its own recursive
  // check looks for "<prefix>/t/t/csr/meta", which never exists, so this
  // terminates after one level.
  if (storage.has_blob(g->prefix_ + "/t/csr/meta")) {
    g->transpose_ = open(storage, g->prefix_ + "/t");
    g->options_.with_transpose = true;
  } else {
    g->options_.with_transpose = false;
  }
  return g;
}

void StoredCsrGraph::write_meta() {
  std::vector<std::uint64_t> meta;
  const IntervalId n_int = intervals_.count();
  meta.reserve(7 + n_int + 1 + n_int);
  meta.push_back(kCsrMetaMagic);
  meta.push_back(kCsrMetaVersion);
  meta.push_back(static_cast<std::uint64_t>(options_.format));
  meta.push_back(options_.with_weights ? 1 : 0);
  meta.push_back(n_int);
  meta.push_back(intervals_.num_vertices());
  meta.push_back(num_edges_);
  for (const VertexId b : intervals_.boundaries()) meta.push_back(b);
  for (IntervalId i = 0; i < n_int; ++i) meta.push_back(interval_edges_[i]);
  const std::string name = prefix_ + "/csr/meta";
  ssd::Blob& blob = storage_.has_blob(name)
                        ? storage_.open_blob(name)
                        : storage_.create_blob(name, ssd::IoCategory::kMisc);
  blob.truncate(0);
  blob.append_span<std::uint64_t>(meta);
}

void StoredCsrGraph::load_meta() {
  ssd::Blob& blob = storage_.open_blob(prefix_ + "/csr/meta");
  const std::uint64_t n_words = blob.element_count<std::uint64_t>();
  MLVC_CHECK_MSG(n_words >= 7, "csr meta: header truncated");
  const auto head = blob.read_vector<std::uint64_t>(0, 7);
  MLVC_CHECK_MSG(head[0] == kCsrMetaMagic,
                 "csr meta: bad magic (not a stored graph?)");
  MLVC_CHECK_MSG(head[1] == kCsrMetaVersion,
                 "csr meta: unsupported meta version " << head[1]);
  MLVC_CHECK_MSG(head[2] == 1 || head[2] == 2,
                 "csr meta: unknown on-disk format " << head[2]);
  options_.format = static_cast<OnDiskFormat>(head[2]);
  options_.with_weights = head[3] != 0;
  const IntervalId n_int = static_cast<IntervalId>(head[4]);
  num_edges_ = head[6];
  MLVC_CHECK_MSG(n_words == 7 + n_int + 1 + n_int,
                 "csr meta: truncated interval table");
  const auto rest =
      blob.read_vector<std::uint64_t>(7, n_int + 1 + static_cast<std::size_t>(n_int));
  std::vector<VertexId> boundaries;
  boundaries.reserve(n_int + 1);
  for (IntervalId i = 0; i <= n_int; ++i) {
    boundaries.push_back(static_cast<VertexId>(rest[i]));
  }
  intervals_ = VertexIntervals::from_boundaries(std::move(boundaries));
  MLVC_CHECK_MSG(intervals_.num_vertices() == head[5],
                 "csr meta: boundary/vertex-count mismatch");
  interval_edges_.assign(rest.begin() + n_int + 1, rest.end());

  rowptr_blobs_.resize(n_int);
  colidx_blobs_.resize(n_int);
  val_blobs_.assign(n_int, nullptr);
  skip_index_.resize(n_int);
  skip_blobs_.resize(n_int, nullptr);
  pending_.clear();
  pending_.resize(n_int);
  degrees_.assign(intervals_.num_vertices(), 0);
  for (IntervalId i = 0; i < n_int; ++i) {
    rowptr_blobs_[i] = &storage_.open_blob(blob_name(i, "rowptr"));
    colidx_blobs_[i] = &storage_.open_blob(blob_name(i, "colidx"));
    if (options_.with_weights) {
      val_blobs_[i] = &storage_.open_blob(blob_name(i, "val"));
    }
    if (options_.format == OnDiskFormat::kV2) {
      skip_blobs_[i] = &storage_.open_blob(blob_name(i, "colidx.skip"));
      skip_index_[i] = skip_blobs_[i]->read_vector<std::uint64_t>(
          0, skip_blobs_[i]->element_count<std::uint64_t>());
      MLVC_CHECK_MSG(!skip_index_[i].empty() &&
                         skip_index_[i].back() == colidx_blobs_[i]->size(),
                     "csr v2: skip index inconsistent with colidx blob");
    }
    // Degrees are derivable from the local row pointers; rebuilding them
    // here keeps the meta blob small.
    const VertexId vb = intervals_.begin(i);
    const VertexId width = intervals_.width(i);
    const auto rp = rowptr_blobs_[i]->read_vector<EdgeIndex>(
        0, static_cast<std::size_t>(width) + 1);
    MLVC_CHECK_MSG(rp.back() == interval_edges_[i],
                   "csr meta: rowptr disagrees with interval edge count");
    for (VertexId lv = 0; lv < width; ++lv) {
      degrees_[vb + lv] = rp[lv + 1] - rp[lv];
    }
  }
}

const ssd::Blob& StoredCsrGraph::rowptr_blob(IntervalId i) const {
  MLVC_CHECK(i < intervals_.count());
  return *rowptr_blobs_[i];
}

void StoredCsrGraph::buffer_update(const StructuralUpdate& update) {
  MLVC_CHECK(update.src < num_vertices() && update.dst < num_vertices());
  // Mirror u->v as v->u into the transpose so both directions keep
  // describing the same logical graph (each side merges on its own
  // threshold; overlay_pending covers the not-yet-merged window).
  if (transpose_) {
    StructuralUpdate rev = update;
    std::swap(rev.src, rev.dst);
    transpose_->buffer_update(rev);
  }
  const IntervalId i = intervals_.interval_of(update.src);
  bool merge_now = false;
  {
    std::lock_guard<std::mutex> lock(updates_mutex_);
    pending_[i].push_back(update);
    merge_now = pending_[i].size() >= options_.merge_threshold;
  }
  if (merge_now) merge_interval(i);
}

std::size_t StoredCsrGraph::pending_update_count(IntervalId i) const {
  MLVC_CHECK(i < intervals_.count());
  std::lock_guard<std::mutex> lock(updates_mutex_);
  return pending_[i].size();
}

void StoredCsrGraph::merge_interval(IntervalId i) {
  MLVC_CHECK(i < intervals_.count());
  std::vector<StructuralUpdate> updates;
  {
    std::lock_guard<std::mutex> lock(updates_mutex_);
    updates.swap(pending_[i]);
  }
  if (updates.empty()) return;

  const VertexId vb = intervals_.begin(i);
  const VertexId width = intervals_.width(i);

  // Load the whole interval (this is the expensive rewrite the batching
  // amortizes; an interval is sized to fit in the sort budget, so these
  // vectors fit in memory).
  std::vector<EdgeIndex> rowptr(width + 1);
  read_local_row_ptrs(i, 0, width + 1, rowptr);
  const EdgeIndex edge_count = rowptr.back();
  std::vector<VertexId> colidx(edge_count);
  read_adjacency(i, 0, edge_count, colidx);
  std::vector<float> val;
  if (options_.with_weights) {
    val.resize(edge_count);
    read_values(i, 0, edge_count, val);
  }

  // Explode into per-vertex adjacency, apply updates, rebuild.
  std::vector<std::vector<std::pair<VertexId, float>>> adj(width);
  for (VertexId lv = 0; lv < width; ++lv) {
    adj[lv].reserve(rowptr[lv + 1] - rowptr[lv]);
    for (EdgeIndex e = rowptr[lv]; e < rowptr[lv + 1]; ++e) {
      adj[lv].emplace_back(colidx[e],
                           options_.with_weights ? val[e] : 1.0f);
    }
  }
  for (const StructuralUpdate& u : updates) {
    const VertexId lv = u.src - vb;
    auto& list = adj[lv];
    if (u.kind == StructuralUpdate::Kind::kAddEdge) {
      const bool exists =
          std::any_of(list.begin(), list.end(),
                      [&](const auto& p) { return p.first == u.dst; });
      if (!exists) {
        list.emplace_back(u.dst, u.weight);
        ++degrees_[u.src];
        ++num_edges_;
      }
    } else {
      const auto it =
          std::find_if(list.begin(), list.end(),
                       [&](const auto& p) { return p.first == u.dst; });
      if (it != list.end()) {
        list.erase(it);
        --degrees_[u.src];
        --num_edges_;
      }
    }
  }

  std::vector<EdgeIndex> new_rowptr(width + 1, 0);
  std::vector<VertexId> new_colidx;
  std::vector<float> new_val;
  for (VertexId lv = 0; lv < width; ++lv) {
    new_rowptr[lv + 1] = new_rowptr[lv] + adj[lv].size();
    for (const auto& [dst, w] : adj[lv]) {
      new_colidx.push_back(dst);
      new_val.push_back(w);
    }
  }
  interval_edges_[i] = new_rowptr.back();
  write_interval(i, new_rowptr, new_colidx,
                 options_.with_weights ? std::span<const float>(new_val)
                                       : std::span<const float>{});
  write_meta();  // num_edges_ / interval_edges_ changed
}

void StoredCsrGraph::overlay_pending(VertexId v,
                                     std::vector<VertexId>& adjacency,
                                     std::vector<float>* weights) const {
  const IntervalId i = intervals_.interval_of(v);
  std::lock_guard<std::mutex> lock(updates_mutex_);
  for (const StructuralUpdate& u : pending_[i]) {
    if (u.src != v) continue;
    if (u.kind == StructuralUpdate::Kind::kAddEdge) {
      if (std::find(adjacency.begin(), adjacency.end(), u.dst) ==
          adjacency.end()) {
        adjacency.push_back(u.dst);
        if (weights != nullptr) weights->push_back(u.weight);
      }
    } else {
      const auto it = std::find(adjacency.begin(), adjacency.end(), u.dst);
      if (it != adjacency.end()) {
        const auto idx = it - adjacency.begin();
        adjacency.erase(it);
        if (weights != nullptr) weights->erase(weights->begin() + idx);
      }
    }
  }
}

}  // namespace mlvc::graph
