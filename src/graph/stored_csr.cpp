#include "graph/stored_csr.hpp"

#include <algorithm>

namespace mlvc::graph {

StoredCsrGraph::StoredCsrGraph(ssd::Storage& storage, std::string name_prefix,
                               const CsrGraph& csr, VertexIntervals intervals,
                               Options options)
    : storage_(storage),
      prefix_(std::move(name_prefix)),
      intervals_(std::move(intervals)),
      options_(options),
      num_edges_(csr.num_edges()) {
  MLVC_CHECK_MSG(intervals_.num_vertices() == csr.num_vertices(),
                 "interval boundaries do not cover the graph");
  const IntervalId n_int = intervals_.count();
  degrees_.resize(csr.num_vertices());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    degrees_[v] = csr.out_degree(v);
  }
  interval_edges_.assign(n_int, 0);
  rowptr_blobs_.resize(n_int);
  colidx_blobs_.resize(n_int);
  val_blobs_.resize(n_int, nullptr);
  pending_.resize(n_int);

  const auto row_ptr = csr.row_ptr();
  for (IntervalId i = 0; i < n_int; ++i) {
    const VertexId vb = intervals_.begin(i);
    const VertexId ve = intervals_.end(i);
    const EdgeIndex base = row_ptr[vb];
    const EdgeIndex limit = row_ptr[ve];
    interval_edges_[i] = limit - base;

    std::vector<EdgeIndex> local_rowptr(ve - vb + 1);
    for (VertexId v = vb; v <= ve; ++v) {
      local_rowptr[v - vb] = row_ptr[v] - base;
    }
    std::span<const VertexId> colidx =
        csr.col_idx().subspan(base, limit - base);
    std::span<const float> val =
        options_.with_weights ? csr.val().subspan(base, limit - base)
                              : std::span<const float>{};
    rowptr_blobs_[i] =
        &storage_.create_blob(blob_name(i, "rowptr"), ssd::IoCategory::kCsrRowPtr);
    colidx_blobs_[i] =
        &storage_.create_blob(blob_name(i, "colidx"), ssd::IoCategory::kCsrColIdx);
    if (options_.with_weights) {
      val_blobs_[i] =
          &storage_.create_blob(blob_name(i, "val"), ssd::IoCategory::kCsrVal);
    }
    write_interval(i, local_rowptr, colidx, val);
  }
}

StoredCsrGraph::StoredCsrGraph(ssd::Storage& storage, std::string name_prefix,
                               VertexIntervals intervals,
                               const std::function<bool(Edge&)>& next_edge,
                               Options options)
    : storage_(storage),
      prefix_(std::move(name_prefix)),
      intervals_(std::move(intervals)),
      options_(options) {
  const IntervalId n_int = intervals_.count();
  degrees_.assign(intervals_.num_vertices(), 0);
  interval_edges_.assign(n_int, 0);
  rowptr_blobs_.resize(n_int);
  colidx_blobs_.resize(n_int);
  val_blobs_.resize(n_int, nullptr);
  pending_.resize(n_int);

  // Chunked append: bound memory to ~256 KiB per stream regardless of
  // interval size.
  constexpr std::size_t kChunkEdges = 64 * 1024;
  std::vector<VertexId> colidx_chunk;
  std::vector<float> val_chunk;
  colidx_chunk.reserve(kChunkEdges);
  if (options_.with_weights) val_chunk.reserve(kChunkEdges);

  Edge cur{};
  bool have_edge = next_edge(cur);
  for (IntervalId i = 0; i < n_int; ++i) {
    const VertexId vb = intervals_.begin(i);
    const VertexId ve = intervals_.end(i);
    rowptr_blobs_[i] = &storage_.create_blob(blob_name(i, "rowptr"),
                                             ssd::IoCategory::kCsrRowPtr);
    colidx_blobs_[i] = &storage_.create_blob(blob_name(i, "colidx"),
                                             ssd::IoCategory::kCsrColIdx);
    if (options_.with_weights) {
      val_blobs_[i] =
          &storage_.create_blob(blob_name(i, "val"), ssd::IoCategory::kCsrVal);
    }
    std::vector<EdgeIndex> local_rowptr(ve - vb + 1);
    EdgeIndex edge_count = 0;
    const auto flush = [&] {
      colidx_blobs_[i]->append(colidx_chunk.data(),
                               colidx_chunk.size() * sizeof(VertexId));
      colidx_chunk.clear();
      if (options_.with_weights) {
        val_blobs_[i]->append(val_chunk.data(),
                              val_chunk.size() * sizeof(float));
        val_chunk.clear();
      }
    };
    for (VertexId v = vb; v < ve; ++v) {
      local_rowptr[v - vb] = edge_count;
      while (have_edge && cur.src == v) {
        colidx_chunk.push_back(cur.dst);
        if (options_.with_weights) val_chunk.push_back(cur.weight);
        if (colidx_chunk.size() >= kChunkEdges) flush();
        ++edge_count;
        ++degrees_[v];
        Edge next{};
        have_edge = next_edge(next);
        MLVC_CHECK_MSG(!have_edge || next.src >= cur.src,
                       "edge stream not sorted by source");
        cur = next;
      }
      MLVC_CHECK_MSG(!have_edge || cur.src >= ve || cur.src >= v,
                     "edge stream not sorted by source");
    }
    local_rowptr.back() = edge_count;
    flush();
    interval_edges_[i] = edge_count;
    num_edges_ += edge_count;
    rowptr_blobs_[i]->append(local_rowptr.data(),
                             local_rowptr.size() * sizeof(EdgeIndex));
  }
  MLVC_CHECK_MSG(!have_edge, "edge stream has sources past num_vertices");
}

std::string StoredCsrGraph::blob_name(IntervalId i, const char* what) const {
  return prefix_ + "/csr/" + std::to_string(i) + "/" + what;
}

void StoredCsrGraph::write_interval(IntervalId i,
                                    std::span<const EdgeIndex> local_rowptr,
                                    std::span<const VertexId> colidx,
                                    std::span<const float> val) {
  rowptr_blobs_[i]->truncate(0);
  rowptr_blobs_[i]->append(local_rowptr.data(), local_rowptr.size_bytes());
  colidx_blobs_[i]->truncate(0);
  colidx_blobs_[i]->append(colidx.data(), colidx.size_bytes());
  if (options_.with_weights) {
    val_blobs_[i]->truncate(0);
    val_blobs_[i]->append(val.data(), val.size_bytes());
  }
  // The interval's colidx pages just changed identity/content; cached copies
  // are stale.
  if (adjacency_cache_) adjacency_cache_->invalidate();
}

void StoredCsrGraph::read_local_row_ptrs(IntervalId i, VertexId local_begin,
                                         std::size_t count,
                                         std::span<EdgeIndex> out) const {
  MLVC_CHECK(i < intervals_.count());
  MLVC_CHECK(out.size() >= count);
  rowptr_blobs_[i]->read(static_cast<std::uint64_t>(local_begin) *
                             sizeof(EdgeIndex),
                         out.data(), count * sizeof(EdgeIndex));
}

void StoredCsrGraph::set_adjacency_cache(std::size_t capacity_bytes) {
  adjacency_cache_ =
      capacity_bytes == 0
          ? nullptr
          : std::make_shared<ssd::PageCache>(storage_, capacity_bytes);
}

void StoredCsrGraph::set_adjacency_cache(std::shared_ptr<ssd::PageCache> cache) {
  MLVC_CHECK_MSG(cache == nullptr || &cache->storage() == &storage_,
                 "shared adjacency cache must be backed by this graph's "
                 "storage");
  adjacency_cache_ = std::move(cache);
}

void StoredCsrGraph::read_adjacency(IntervalId i, EdgeIndex lo, EdgeIndex hi,
                                    std::span<VertexId> out) const {
  MLVC_CHECK(i < intervals_.count() && lo <= hi);
  MLVC_CHECK(out.size() >= hi - lo);
  if (adjacency_cache_) {
    adjacency_cache_->read(*colidx_blobs_[i], lo * sizeof(VertexId),
                           out.data(), (hi - lo) * sizeof(VertexId));
    return;
  }
  colidx_blobs_[i]->read(lo * sizeof(VertexId), out.data(),
                         (hi - lo) * sizeof(VertexId));
}

void StoredCsrGraph::read_values(IntervalId i, EdgeIndex lo, EdgeIndex hi,
                                 std::span<float> out) const {
  MLVC_CHECK_MSG(options_.with_weights, "graph stored without weights");
  MLVC_CHECK(i < intervals_.count() && lo <= hi);
  MLVC_CHECK(out.size() >= hi - lo);
  val_blobs_[i]->read(lo * sizeof(float), out.data(),
                      (hi - lo) * sizeof(float));
}

namespace {
template <typename T>
std::vector<ssd::ReadOp> to_read_ops(
    std::span<const StoredCsrGraph::ElemRange> ranges) {
  std::vector<ssd::ReadOp> ops;
  ops.reserve(ranges.size());
  for (const auto& r : ranges) {
    MLVC_CHECK(r.lo <= r.hi);
    ops.push_back({static_cast<std::uint64_t>(r.lo) * sizeof(T), r.out,
                   (r.hi - r.lo) * sizeof(T)});
  }
  return ops;
}
}  // namespace

void StoredCsrGraph::read_local_row_ptrs_multi(
    IntervalId i, std::span<const ElemRange> ranges) const {
  MLVC_CHECK(i < intervals_.count());
  rowptr_blobs_[i]->read_multi(to_read_ops<EdgeIndex>(ranges));
}

void StoredCsrGraph::read_adjacency_multi(
    IntervalId i, std::span<const ElemRange> ranges) const {
  MLVC_CHECK(i < intervals_.count());
  if (adjacency_cache_) {
    // Cached path serves each range from host pages (no preadv coalescing —
    // hits never reach the kernel at all).
    for (const auto& r : ranges) {
      MLVC_CHECK(r.lo <= r.hi);
      adjacency_cache_->read(*colidx_blobs_[i],
                             static_cast<std::uint64_t>(r.lo) *
                                 sizeof(VertexId),
                             r.out, (r.hi - r.lo) * sizeof(VertexId));
    }
    return;
  }
  colidx_blobs_[i]->read_multi(to_read_ops<VertexId>(ranges));
}

void StoredCsrGraph::read_values_multi(
    IntervalId i, std::span<const ElemRange> ranges) const {
  MLVC_CHECK_MSG(options_.with_weights, "graph stored without weights");
  MLVC_CHECK(i < intervals_.count());
  val_blobs_[i]->read_multi(to_read_ops<float>(ranges));
}

const ssd::Blob& StoredCsrGraph::colidx_blob(IntervalId i) const {
  MLVC_CHECK(i < intervals_.count());
  return *colidx_blobs_[i];
}

const ssd::Blob& StoredCsrGraph::rowptr_blob(IntervalId i) const {
  MLVC_CHECK(i < intervals_.count());
  return *rowptr_blobs_[i];
}

void StoredCsrGraph::buffer_update(const StructuralUpdate& update) {
  MLVC_CHECK(update.src < num_vertices() && update.dst < num_vertices());
  const IntervalId i = intervals_.interval_of(update.src);
  bool merge_now = false;
  {
    std::lock_guard<std::mutex> lock(updates_mutex_);
    pending_[i].push_back(update);
    merge_now = pending_[i].size() >= options_.merge_threshold;
  }
  if (merge_now) merge_interval(i);
}

std::size_t StoredCsrGraph::pending_update_count(IntervalId i) const {
  MLVC_CHECK(i < intervals_.count());
  std::lock_guard<std::mutex> lock(updates_mutex_);
  return pending_[i].size();
}

void StoredCsrGraph::merge_interval(IntervalId i) {
  MLVC_CHECK(i < intervals_.count());
  std::vector<StructuralUpdate> updates;
  {
    std::lock_guard<std::mutex> lock(updates_mutex_);
    updates.swap(pending_[i]);
  }
  if (updates.empty()) return;

  const VertexId vb = intervals_.begin(i);
  const VertexId width = intervals_.width(i);

  // Load the whole interval (this is the expensive rewrite the batching
  // amortizes; an interval is sized to fit in the sort budget, so these
  // vectors fit in memory).
  std::vector<EdgeIndex> rowptr(width + 1);
  read_local_row_ptrs(i, 0, width + 1, rowptr);
  const EdgeIndex edge_count = rowptr.back();
  std::vector<VertexId> colidx(edge_count);
  read_adjacency(i, 0, edge_count, colidx);
  std::vector<float> val;
  if (options_.with_weights) {
    val.resize(edge_count);
    read_values(i, 0, edge_count, val);
  }

  // Explode into per-vertex adjacency, apply updates, rebuild.
  std::vector<std::vector<std::pair<VertexId, float>>> adj(width);
  for (VertexId lv = 0; lv < width; ++lv) {
    adj[lv].reserve(rowptr[lv + 1] - rowptr[lv]);
    for (EdgeIndex e = rowptr[lv]; e < rowptr[lv + 1]; ++e) {
      adj[lv].emplace_back(colidx[e],
                           options_.with_weights ? val[e] : 1.0f);
    }
  }
  for (const StructuralUpdate& u : updates) {
    const VertexId lv = u.src - vb;
    auto& list = adj[lv];
    if (u.kind == StructuralUpdate::Kind::kAddEdge) {
      const bool exists =
          std::any_of(list.begin(), list.end(),
                      [&](const auto& p) { return p.first == u.dst; });
      if (!exists) {
        list.emplace_back(u.dst, u.weight);
        ++degrees_[u.src];
        ++num_edges_;
      }
    } else {
      const auto it =
          std::find_if(list.begin(), list.end(),
                       [&](const auto& p) { return p.first == u.dst; });
      if (it != list.end()) {
        list.erase(it);
        --degrees_[u.src];
        --num_edges_;
      }
    }
  }

  std::vector<EdgeIndex> new_rowptr(width + 1, 0);
  std::vector<VertexId> new_colidx;
  std::vector<float> new_val;
  for (VertexId lv = 0; lv < width; ++lv) {
    new_rowptr[lv + 1] = new_rowptr[lv] + adj[lv].size();
    for (const auto& [dst, w] : adj[lv]) {
      new_colidx.push_back(dst);
      new_val.push_back(w);
    }
  }
  interval_edges_[i] = new_rowptr.back();
  write_interval(i, new_rowptr, new_colidx,
                 options_.with_weights ? std::span<const float>(new_val)
                                       : std::span<const float>{});
}

void StoredCsrGraph::overlay_pending(VertexId v,
                                     std::vector<VertexId>& adjacency,
                                     std::vector<float>* weights) const {
  const IntervalId i = intervals_.interval_of(v);
  std::lock_guard<std::mutex> lock(updates_mutex_);
  for (const StructuralUpdate& u : pending_[i]) {
    if (u.src != v) continue;
    if (u.kind == StructuralUpdate::Kind::kAddEdge) {
      if (std::find(adjacency.begin(), adjacency.end(), u.dst) ==
          adjacency.end()) {
        adjacency.push_back(u.dst);
        if (weights != nullptr) weights->push_back(u.weight);
      }
    } else {
      const auto it = std::find(adjacency.begin(), adjacency.end(), u.dst);
      if (it != adjacency.end()) {
        const auto idx = it - adjacency.begin();
        adjacency.erase(it);
        if (weights != nullptr) weights->erase(weights->begin() + idx);
      }
    }
  }
}

}  // namespace mlvc::graph
