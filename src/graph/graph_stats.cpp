#include "graph/graph_stats.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/format.hpp"

namespace mlvc::graph {

GraphStats compute_stats(const CsrGraph& graph) {
  GraphStats s;
  s.num_vertices = graph.num_vertices();
  s.num_edges = graph.num_edges();
  if (s.num_vertices == 0) return s;

  std::vector<EdgeIndex> degrees(s.num_vertices);
  std::size_t isolated = 0;
  for (VertexId v = 0; v < s.num_vertices; ++v) {
    degrees[v] = graph.out_degree(v);
    if (degrees[v] == 0) ++isolated;
  }
  std::sort(degrees.begin(), degrees.end());
  s.max_out_degree = degrees.back();
  s.avg_out_degree = static_cast<double>(s.num_edges) / s.num_vertices;
  const auto pct = [&](double p) {
    return degrees[static_cast<std::size_t>(p * (degrees.size() - 1))];
  };
  s.p50_degree = pct(0.50);
  s.p90_degree = pct(0.90);
  s.p99_degree = pct(0.99);
  s.isolated_fraction = static_cast<double>(isolated) / s.num_vertices;
  return s;
}

std::string GraphStats::to_string() const {
  std::ostringstream os;
  os << "V=" << format_count(num_vertices) << " E=" << format_count(num_edges)
     << " avg_deg=" << format_fixed(avg_out_degree, 1)
     << " max_deg=" << format_count(max_out_degree) << " p50/p90/p99="
     << p50_degree << "/" << p90_degree << "/" << p99_degree
     << " isolated=" << format_fixed(isolated_fraction * 100, 1) << "%";
  return os.str();
}

}  // namespace mlvc::graph
