// Summary statistics for a graph — used by the Table I bench and by
// documentation/examples to show what the synthetic datasets look like.
#pragma once

#include <cstdint>
#include <string>

#include "graph/csr.hpp"

namespace mlvc::graph {

struct GraphStats {
  VertexId num_vertices = 0;
  EdgeIndex num_edges = 0;
  EdgeIndex max_out_degree = 0;
  double avg_out_degree = 0.0;
  /// Degree at the 50th/90th/99th percentile of the out-degree distribution.
  EdgeIndex p50_degree = 0;
  EdgeIndex p90_degree = 0;
  EdgeIndex p99_degree = 0;
  /// Fraction of vertices with zero out-edges.
  double isolated_fraction = 0.0;

  std::string to_string() const;
};

GraphStats compute_stats(const CsrGraph& graph);

}  // namespace mlvc::graph
