#include "graph/csr.hpp"

namespace mlvc::graph {

CsrGraph CsrGraph::from_edge_list(const EdgeList& edges) {
  edges.validate();
  CsrGraph g;
  const VertexId n = edges.num_vertices();
  g.row_ptr_.assign(static_cast<std::size_t>(n) + 1, 0);

  for (const Edge& e : edges.edges()) {
    ++g.row_ptr_[e.src + 1];
  }
  for (VertexId v = 0; v < n; ++v) {
    g.row_ptr_[v + 1] += g.row_ptr_[v];
  }

  g.col_idx_.resize(edges.num_edges());
  g.val_.resize(edges.num_edges());
  std::vector<EdgeIndex> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
  for (const Edge& e : edges.edges()) {
    const EdgeIndex at = cursor[e.src]++;
    g.col_idx_[at] = e.dst;
    g.val_[at] = e.weight;
  }
  return g;
}

std::vector<EdgeIndex> CsrGraph::in_degrees() const {
  std::vector<EdgeIndex> in(num_vertices(), 0);
  for (VertexId dst : col_idx_) {
    ++in[dst];
  }
  return in;
}

}  // namespace mlvc::graph
