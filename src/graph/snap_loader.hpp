// Loader for SNAP-format edge list text files (https://snap.stanford.edu):
// one "src<ws>dst" pair per line, '#' comment lines. Vertex ids are
// compacted to a dense [0, n) range.
#pragma once

#include <filesystem>
#include <istream>

#include "graph/edge_list.hpp"

namespace mlvc::graph {

struct SnapLoadOptions {
  /// Mirror edges so the result is undirected (paper's datasets are stored
  /// undirected).
  bool make_undirected = true;
  /// Remap sparse vertex ids to a dense range. SNAP files frequently skip
  /// ids; dense ids keep CSR row pointers compact.
  bool compact_ids = true;
};

EdgeList load_snap_edge_list(std::istream& in, const SnapLoadOptions& options = {});
EdgeList load_snap_edge_list(const std::filesystem::path& path,
                             const SnapLoadOptions& options = {});

}  // namespace mlvc::graph
