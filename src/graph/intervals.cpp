#include "graph/intervals.hpp"

#include <algorithm>
#include <bit>

namespace mlvc::graph {

VertexIntervals VertexIntervals::partition_by_in_degree(
    std::span<const EdgeIndex> in_degrees, std::size_t bytes_per_update,
    std::size_t sort_budget_bytes) {
  MLVC_CHECK_MSG(bytes_per_update > 0, "bytes_per_update must be positive");
  MLVC_CHECK_MSG(sort_budget_bytes >= bytes_per_update,
                 "sort budget smaller than a single update");
  VertexIntervals out;
  out.boundaries_.push_back(0);
  std::uint64_t acc = 0;
  const std::uint64_t budget_updates = sort_budget_bytes / bytes_per_update;
  for (VertexId v = 0; v < in_degrees.size(); ++v) {
    const std::uint64_t cost = in_degrees[v];
    if (acc > 0 && acc + cost > budget_updates) {
      out.boundaries_.push_back(v);
      acc = 0;
    }
    acc += cost;
  }
  out.boundaries_.push_back(static_cast<VertexId>(in_degrees.size()));
  // A graph with zero vertices still has one boundary pair [0, 0) removed:
  if (out.boundaries_.size() >= 2 &&
      out.boundaries_[out.boundaries_.size() - 2] == out.boundaries_.back()) {
    out.boundaries_.pop_back();
  }
  if (out.boundaries_.size() == 1) out.boundaries_.clear();
  out.build_index();
  return out;
}

VertexIntervals VertexIntervals::uniform(VertexId num_vertices,
                                         VertexId width) {
  MLVC_CHECK_MSG(width > 0, "interval width must be positive");
  VertexIntervals out;
  if (num_vertices == 0) return out;
  VertexId v = 0;
  for (;;) {
    out.boundaries_.push_back(v);
    if (num_vertices - v <= width) break;
    v += width;
  }
  out.boundaries_.push_back(num_vertices);
  out.build_index();
  return out;
}

VertexIntervals VertexIntervals::from_boundaries(
    std::vector<VertexId> boundaries) {
  if (boundaries.empty()) return {};
  MLVC_CHECK_MSG(boundaries.front() == 0, "boundaries must start at 0");
  MLVC_CHECK_MSG(std::is_sorted(boundaries.begin(), boundaries.end()) &&
                     std::adjacent_find(boundaries.begin(), boundaries.end()) ==
                         boundaries.end(),
                 "boundaries must be strictly increasing");
  VertexIntervals out;
  out.boundaries_ = std::move(boundaries);
  out.build_index();
  return out;
}

void VertexIntervals::build_index() {
  block_first_.clear();
  block_shift_ = 0;
  const IntervalId n = count();
  if (n == 0) return;
  VertexId min_width = boundaries_[1] - boundaries_[0];
  for (IntervalId i = 1; i < n; ++i) {
    min_width = std::min(min_width, boundaries_[i + 1] - boundaries_[i]);
  }
  block_shift_ = std::bit_width(std::max<VertexId>(min_width, 1)) - 1;
  const std::uint64_t blocks =
      ((std::uint64_t{num_vertices()} - 1) >> block_shift_) + 1;
  block_first_.resize(blocks);
  IntervalId i = 0;
  for (std::uint64_t b = 0; b < blocks; ++b) {
    const VertexId first = static_cast<VertexId>(b << block_shift_);
    while (boundaries_[i + 1] <= first) ++i;
    block_first_[b] = i;
  }
}

}  // namespace mlvc::graph
