// In-memory edge list with normalization helpers.
//
// The staging format between generators / file loaders and the CSR builders.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "graph/edge.hpp"

namespace mlvc::graph {

class EdgeList {
 public:
  EdgeList() = default;
  EdgeList(VertexId num_vertices, std::vector<Edge> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  VertexId num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  std::span<const Edge> edges() const noexcept { return edges_; }
  std::span<Edge> edges() noexcept { return edges_; }

  void set_num_vertices(VertexId n) noexcept { num_vertices_ = n; }

  void add(VertexId src, VertexId dst, float weight = 1.0f);

  void reserve(std::size_t n) { edges_.reserve(n); }

  /// Ensure every edge (u,v) has its mirror (v,u) — the paper evaluates
  /// undirected graphs stored this way ("for an edge, each of its end
  /// vertices appears in the neighboring list of the other end vertex").
  void make_undirected();

  /// Drop self-loops and duplicate (src,dst) pairs (keeping the first
  /// occurrence's weight). Sorts the edge list as a side effect.
  void normalize();

  /// Throws InvalidArgument if any endpoint is out of range.
  void validate() const;

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace mlvc::graph
