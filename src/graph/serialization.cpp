#include "graph/serialization.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "graph/edge_list.hpp"

namespace mlvc::graph {

namespace {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void write_array(std::ostream& out, std::span<const T> values) {
  out.write(reinterpret_cast<const char*>(values.data()),
            static_cast<std::streamsize>(values.size_bytes()));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw InvalidArgument("truncated graph file (header)");
  return value;
}

template <typename T>
std::vector<T> read_array(std::istream& in, std::size_t count,
                          const char* what) {
  std::vector<T> values(count);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) {
    throw InvalidArgument(std::string("truncated graph file (") + what + ")");
  }
  return values;
}

}  // namespace

void save_csr(const CsrGraph& graph, std::ostream& out, bool with_weights) {
  const bool weights = with_weights && graph.has_weights();
  write_pod(out, kGraphMagic);
  write_pod(out, kGraphVersion);
  write_pod(out, static_cast<std::uint32_t>(weights ? 1 : 0));
  write_pod(out, graph.num_vertices());
  write_pod(out, static_cast<std::uint64_t>(graph.num_edges()));
  write_array(out, graph.row_ptr());
  write_array(out, graph.col_idx());
  if (weights) write_array(out, graph.val());
  if (!out) throw Error("failed writing graph stream");
}

void save_csr(const CsrGraph& graph, const std::filesystem::path& path,
              bool with_weights) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("open for write", path.string(), errno);
  save_csr(graph, out, with_weights);
}

CsrGraph load_csr(std::istream& in) {
  const auto magic = read_pod<std::uint32_t>(in);
  if (magic != kGraphMagic) {
    throw InvalidArgument("not an MLVC graph file (bad magic)");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kGraphVersion) {
    throw InvalidArgument("unsupported MLVC graph version " +
                          std::to_string(version));
  }
  const auto flags = read_pod<std::uint32_t>(in);
  const auto n = read_pod<VertexId>(in);
  const auto m = read_pod<std::uint64_t>(in);

  const auto rowptr =
      read_array<EdgeIndex>(in, static_cast<std::size_t>(n) + 1, "rowptr");
  if (rowptr.front() != 0 || rowptr.back() != m ||
      !std::is_sorted(rowptr.begin(), rowptr.end())) {
    throw InvalidArgument("corrupt graph file (row pointers inconsistent)");
  }
  const auto colidx =
      read_array<VertexId>(in, static_cast<std::size_t>(m), "colidx");
  std::vector<float> val;
  if (flags & 1u) {
    val = read_array<float>(in, static_cast<std::size_t>(m), "val");
  }

  // Reconstruct through EdgeList for validation; this is a load-time-only
  // cost and keeps CsrGraph's invariants enforced in one place.
  EdgeList list;
  list.set_num_vertices(n);
  list.reserve(static_cast<std::size_t>(m));
  for (VertexId v = 0; v < n; ++v) {
    for (EdgeIndex e = rowptr[v]; e < rowptr[v + 1]; ++e) {
      if (colidx[e] >= n) {
        throw InvalidArgument("corrupt graph file (edge endpoint out of "
                              "range)");
      }
      list.add(v, colidx[e], val.empty() ? 1.0f : val[e]);
    }
  }
  list.set_num_vertices(n);
  return CsrGraph::from_edge_list(list);
}

CsrGraph load_csr(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("open for read", path.string(), errno);
  return load_csr(in);
}

}  // namespace mlvc::graph
