// Synthetic graph generators.
//
// The paper evaluates on com-friendster (CF) and Yahoo WebScope (YWS), both
// proprietary-to-download multi-billion-edge graphs. Per DESIGN.md §2 we
// substitute seeded R-MAT graphs whose degree skew matches those datasets'
// power-law shape, scaled so graph:memory ratio matches the paper's.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace mlvc::graph {

struct RmatParams {
  /// num_vertices = 2^scale.
  unsigned scale = 16;
  /// num_edges = edge_factor * num_vertices (before dedup/mirroring).
  double edge_factor = 16.0;
  /// Recursive quadrant probabilities; Graph500 defaults give the heavy
  /// power-law tail typical of social graphs like com-friendster.
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  std::uint64_t seed = 1;
  /// Mirror every edge (paper's graphs are stored undirected).
  bool undirected = true;
};

/// Recursive-matrix (R-MAT) power-law generator.
EdgeList generate_rmat(const RmatParams& params);

/// G(n, m) uniform random graph.
EdgeList generate_erdos_renyi(VertexId num_vertices, std::uint64_t num_edges,
                              std::uint64_t seed, bool undirected = true);

/// width x height 4-neighbor grid — the pathological case for frontier-based
/// algorithms (BFS frontier stays tiny for many supersteps), great for
/// exercising the active-vertex machinery.
EdgeList generate_grid(VertexId width, VertexId height);

/// Star: vertex 0 connected to all others. Maximum degree skew.
EdgeList generate_star(VertexId num_vertices);

/// Simple path 0-1-2-...-(n-1). Worst-case superstep count for BFS.
EdgeList generate_chain(VertexId num_vertices);

/// Complete graph on n vertices (small n only).
EdgeList generate_complete(VertexId num_vertices);

/// The two stand-in datasets used throughout the benches (see DESIGN.md):
/// CF' — friendster-like: dense power-law, higher edge factor.
/// YWS' — web-like: larger vertex count, sparser, heavier skew.
EdgeList make_cf_like(unsigned scale = 17, std::uint64_t seed = 42);
EdgeList make_yws_like(unsigned scale = 18, std::uint64_t seed = 43);

}  // namespace mlvc::graph
