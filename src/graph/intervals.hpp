// Vertex intervals: contiguous groups of vertices, one message log each.
//
// §V.A.1 of the paper: the framework "statically partitions the vertices
// into contiguous segments of vertices, such that the sum of the number of
// incoming updates to the vertices is less than the memory allocated for the
// sorting and grouping process", conservatively assuming one update per
// in-edge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mlvc::graph {

class VertexIntervals {
 public:
  VertexIntervals() = default;

  /// Partition [0, num_vertices) so each interval's worst-case update bytes
  /// (Σ in_degree × bytes_per_update) fit in `sort_budget_bytes`. A vertex
  /// whose own in-degree exceeds the budget gets a singleton interval (its
  /// log is spilled/streamed; the engine still handles it, just without the
  /// single-load fast path).
  static VertexIntervals partition_by_in_degree(
      std::span<const EdgeIndex> in_degrees, std::size_t bytes_per_update,
      std::size_t sort_budget_bytes);

  /// Fixed-width partition (used by GraphChi shards and tests).
  static VertexIntervals uniform(VertexId num_vertices, VertexId width);

  /// Explicit boundaries: boundaries[0] == 0, strictly increasing,
  /// boundaries.back() == num_vertices.
  static VertexIntervals from_boundaries(std::vector<VertexId> boundaries);

  IntervalId count() const noexcept {
    return boundaries_.empty()
               ? 0
               : static_cast<IntervalId>(boundaries_.size() - 1);
  }

  VertexId num_vertices() const noexcept {
    return boundaries_.empty() ? 0 : boundaries_.back();
  }

  VertexId begin(IntervalId i) const {
    MLVC_CHECK(i < count());
    return boundaries_[i];
  }
  VertexId end(IntervalId i) const {
    MLVC_CHECK(i < count());
    return boundaries_[i + 1];
  }
  VertexId width(IntervalId i) const { return end(i) - begin(i); }

  /// Interval containing vertex v. The paper's vId2IntervalMap. O(log I).
  IntervalId interval_of(VertexId v) const;

  std::span<const VertexId> boundaries() const noexcept { return boundaries_; }

 private:
  std::vector<VertexId> boundaries_;  // count()+1 entries
};

}  // namespace mlvc::graph
