// Vertex intervals: contiguous groups of vertices, one message log each.
//
// §V.A.1 of the paper: the framework "statically partitions the vertices
// into contiguous segments of vertices, such that the sum of the number of
// incoming updates to the vertices is less than the memory allocated for the
// sorting and grouping process", conservatively assuming one update per
// in-edge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace mlvc::graph {

class VertexIntervals {
 public:
  VertexIntervals() = default;

  /// Partition [0, num_vertices) so each interval's worst-case update bytes
  /// (Σ in_degree × bytes_per_update) fit in `sort_budget_bytes`. A vertex
  /// whose own in-degree exceeds the budget gets a singleton interval (its
  /// log is spilled/streamed; the engine still handles it, just without the
  /// single-load fast path).
  static VertexIntervals partition_by_in_degree(
      std::span<const EdgeIndex> in_degrees, std::size_t bytes_per_update,
      std::size_t sort_budget_bytes);

  /// Fixed-width partition (used by GraphChi shards and tests).
  static VertexIntervals uniform(VertexId num_vertices, VertexId width);

  /// Explicit boundaries: boundaries[0] == 0, strictly increasing,
  /// boundaries.back() == num_vertices.
  static VertexIntervals from_boundaries(std::vector<VertexId> boundaries);

  IntervalId count() const noexcept {
    return boundaries_.empty()
               ? 0
               : static_cast<IntervalId>(boundaries_.size() - 1);
  }

  VertexId num_vertices() const noexcept {
    return boundaries_.empty() ? 0 : boundaries_.back();
  }

  VertexId begin(IntervalId i) const {
    MLVC_CHECK(i < count());
    return boundaries_[i];
  }
  VertexId end(IntervalId i) const {
    MLVC_CHECK(i < count());
    return boundaries_[i + 1];
  }
  VertexId width(IntervalId i) const { return end(i) - begin(i); }

  /// Interval containing vertex v — the paper's vId2IntervalMap. A block
  /// index sized to the narrowest interval makes this one table load plus at
  /// most one boundary probe (the scatter path calls it per message, so it
  /// must not be a binary search).
  IntervalId interval_of(VertexId v) const {
    MLVC_CHECK_MSG(v < num_vertices(), "vertex " << v << " out of range");
    IntervalId i = block_first_[v >> block_shift_];
    while (boundaries_[i + 1] <= v) ++i;
    return i;
  }

  std::span<const VertexId> boundaries() const noexcept { return boundaries_; }

 private:
  /// Build block_first_: blocks of 2^block_shift_ vertices, each mapped to
  /// the interval containing its first vertex. Block size ≤ the narrowest
  /// interval, so a block overlaps at most two intervals and the probe loop
  /// in interval_of takes at most one step.
  void build_index();

  std::vector<VertexId> boundaries_;  // count()+1 entries
  std::vector<IntervalId> block_first_;
  unsigned block_shift_ = 0;
};

}  // namespace mlvc::graph
