// Binary graph serialization.
//
// Building a CSR from a text edge list is the slowest step of any real
// deployment, so graphs are converted once into a compact binary container
// and memory-/stream-loaded afterwards (the tools/ directory wires this
// into a conversion CLI).
//
// Container layout (little-endian):
//   magic   u32  'MLVC' (0x4356'4C4D)
//   version u32
//   flags   u32  bit 0: has edge weights
//   n       u32  vertex count
//   m       u64  edge count
//   rowptr  (n+1) x u64
//   colidx  m x u32
//   val     m x f32            (only when flags bit 0)
#pragma once

#include <filesystem>
#include <iosfwd>

#include "graph/csr.hpp"

namespace mlvc::graph {

inline constexpr std::uint32_t kGraphMagic = 0x43564C4Du;  // "MLVC"
inline constexpr std::uint32_t kGraphVersion = 1;

/// Serialize a CSR graph. Weights are written iff `with_weights` and the
/// graph has them.
void save_csr(const CsrGraph& graph, std::ostream& out,
              bool with_weights = true);
void save_csr(const CsrGraph& graph, const std::filesystem::path& path,
              bool with_weights = true);

/// Deserialize; throws InvalidArgument on bad magic/version/truncation.
CsrGraph load_csr(std::istream& in);
CsrGraph load_csr(const std::filesystem::path& path);

}  // namespace mlvc::graph
