#include "graph/generators.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mlvc::graph {

EdgeList generate_rmat(const RmatParams& params) {
  MLVC_CHECK_MSG(params.scale >= 1 && params.scale <= 30,
                 "rmat scale out of range");
  const double d = 1.0 - params.a - params.b - params.c;
  MLVC_CHECK_MSG(params.a > 0 && params.b >= 0 && params.c >= 0 && d > 0,
                 "rmat probabilities invalid");
  const VertexId n = VertexId{1} << params.scale;
  const std::uint64_t target_edges =
      static_cast<std::uint64_t>(params.edge_factor * n);

  SplitMix64 rng(params.seed);
  EdgeList list;
  list.set_num_vertices(n);
  list.reserve(target_edges);
  for (std::uint64_t e = 0; e < target_edges; ++e) {
    VertexId src = 0, dst = 0;
    for (unsigned level = 0; level < params.scale; ++level) {
      const double r = rng.next_double();
      // Add ±10% per-level noise to the quadrant probabilities (standard
      // R-MAT smoothing) so the generated graph isn't perfectly self-similar.
      const double noise = 0.9 + 0.2 * rng.next_double();
      const double a = params.a * noise;
      const double ab = a + params.b;
      const double abc = ab + params.c;
      src <<= 1;
      dst <<= 1;
      if (r < a) {
        // top-left: no bits set
      } else if (r < ab) {
        dst |= 1;
      } else if (r < abc) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    if (src != dst) list.add(src, dst);
  }
  list.set_num_vertices(n);
  if (params.undirected) {
    list.make_undirected();
  } else {
    list.normalize();
  }
  return list;
}

EdgeList generate_erdos_renyi(VertexId num_vertices, std::uint64_t num_edges,
                              std::uint64_t seed, bool undirected) {
  MLVC_CHECK(num_vertices >= 2);
  SplitMix64 rng(seed);
  EdgeList list;
  list.set_num_vertices(num_vertices);
  list.reserve(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    const VertexId src =
        static_cast<VertexId>(rng.next_below(num_vertices));
    const VertexId dst =
        static_cast<VertexId>(rng.next_below(num_vertices));
    if (src != dst) list.add(src, dst);
  }
  list.set_num_vertices(num_vertices);
  if (undirected) {
    list.make_undirected();
  } else {
    list.normalize();
  }
  return list;
}

EdgeList generate_grid(VertexId width, VertexId height) {
  MLVC_CHECK(width >= 1 && height >= 1);
  EdgeList list;
  list.set_num_vertices(width * height);
  const auto id = [width](VertexId x, VertexId y) { return y * width + x; };
  for (VertexId y = 0; y < height; ++y) {
    for (VertexId x = 0; x < width; ++x) {
      if (x + 1 < width) list.add(id(x, y), id(x + 1, y));
      if (y + 1 < height) list.add(id(x, y), id(x, y + 1));
    }
  }
  list.set_num_vertices(width * height);
  list.make_undirected();
  return list;
}

EdgeList generate_star(VertexId num_vertices) {
  MLVC_CHECK(num_vertices >= 2);
  EdgeList list;
  list.set_num_vertices(num_vertices);
  for (VertexId v = 1; v < num_vertices; ++v) list.add(0, v);
  list.make_undirected();
  return list;
}

EdgeList generate_chain(VertexId num_vertices) {
  MLVC_CHECK(num_vertices >= 2);
  EdgeList list;
  list.set_num_vertices(num_vertices);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) list.add(v, v + 1);
  list.make_undirected();
  return list;
}

EdgeList generate_complete(VertexId num_vertices) {
  MLVC_CHECK(num_vertices >= 2 && num_vertices <= 4096);
  EdgeList list;
  list.set_num_vertices(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      if (u != v) list.add(u, v);
    }
  }
  return list;
}

EdgeList make_cf_like(unsigned scale, std::uint64_t seed) {
  // com-friendster: social graph, avg degree ~29, strong community skew.
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 14.0;  // mirrored to ~28 avg degree
  p.a = 0.57;
  p.b = 0.19;
  p.c = 0.19;
  p.seed = seed;
  return generate_rmat(p);
}

EdgeList make_yws_like(unsigned scale, std::uint64_t seed) {
  // Yahoo WebScope: web graph, sparser (avg degree ~9), heavier skew (hubs).
  RmatParams p;
  p.scale = scale;
  p.edge_factor = 4.5;  // mirrored to ~9 avg degree
  p.a = 0.63;
  p.b = 0.17;
  p.c = 0.17;
  p.seed = seed;
  return generate_rmat(p);
}

}  // namespace mlvc::graph
