#include "graph/snap_loader.hpp"

#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>

#include "common/error.hpp"

namespace mlvc::graph {

EdgeList load_snap_edge_list(std::istream& in,
                             const SnapLoadOptions& options) {
  EdgeList list;
  std::unordered_map<std::uint64_t, VertexId> remap;
  const auto map_id = [&](std::uint64_t raw) -> VertexId {
    if (!options.compact_ids) {
      MLVC_CHECK_MSG(raw <= kInvalidVertex - 1, "vertex id overflow: " << raw);
      return static_cast<VertexId>(raw);
    }
    auto [it, inserted] =
        remap.try_emplace(raw, static_cast<VertexId>(remap.size()));
    return it->second;
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream ls(line);
    std::uint64_t raw_src = 0, raw_dst = 0;
    if (!(ls >> raw_src >> raw_dst)) {
      throw InvalidArgument("malformed SNAP edge list at line " +
                            std::to_string(line_no) + ": '" + line + "'");
    }
    double weight = 1.0;
    ls >> weight;  // optional third column
    list.add(map_id(raw_src), map_id(raw_dst), static_cast<float>(weight));
  }
  if (options.make_undirected) {
    list.make_undirected();
  } else {
    list.normalize();
  }
  return list;
}

EdgeList load_snap_edge_list(const std::filesystem::path& path,
                             const SnapLoadOptions& options) {
  std::ifstream in(path);
  if (!in) throw IoError("open", path.string(), errno);
  return load_snap_edge_list(in, options);
}

}  // namespace mlvc::graph
