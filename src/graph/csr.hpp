// In-memory CSR graph (§III of the paper).
//
// rowPtr is 8 bytes per entry and vertex ids are 4 bytes, matching the
// paper's on-disk layout so page-count arithmetic carries over. This class
// is the staging representation used to build stored (on-SSD) graphs, the
// reference-implementation substrate for tests, and the source for GraphChi
// shard construction.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "graph/edge_list.hpp"

namespace mlvc::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Counting-sort construction from an edge list; O(V + E), stable in dst
  /// order within a source's adjacency run.
  static CsrGraph from_edge_list(const EdgeList& edges);

  VertexId num_vertices() const noexcept {
    return row_ptr_.empty() ? 0 : static_cast<VertexId>(row_ptr_.size() - 1);
  }
  EdgeIndex num_edges() const noexcept {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }

  EdgeIndex out_degree(VertexId v) const {
    MLVC_CHECK(v < num_vertices());
    return row_ptr_[v + 1] - row_ptr_[v];
  }

  std::span<const VertexId> neighbors(VertexId v) const {
    MLVC_CHECK(v < num_vertices());
    return {col_idx_.data() + row_ptr_[v],
            static_cast<std::size_t>(row_ptr_[v + 1] - row_ptr_[v])};
  }

  std::span<const float> weights(VertexId v) const {
    MLVC_CHECK(v < num_vertices() && !val_.empty());
    return {val_.data() + row_ptr_[v],
            static_cast<std::size_t>(row_ptr_[v + 1] - row_ptr_[v])};
  }

  bool has_weights() const noexcept { return !val_.empty(); }

  std::span<const EdgeIndex> row_ptr() const noexcept { return row_ptr_; }
  std::span<const VertexId> col_idx() const noexcept { return col_idx_; }
  std::span<const float> val() const noexcept { return val_; }

  /// In-degree of every vertex — the quantity the paper's interval sizing
  /// rule is based on (worst case: one update per incoming edge, §V.A.1).
  std::vector<EdgeIndex> in_degrees() const;

 private:
  std::vector<EdgeIndex> row_ptr_;  // num_vertices + 1 entries
  std::vector<VertexId> col_idx_;   // num_edges entries
  std::vector<float> val_;          // num_edges entries, may be empty
};

}  // namespace mlvc::graph
