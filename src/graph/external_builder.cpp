#include "graph/external_builder.hpp"

#include <algorithm>
#include <queue>

#include "common/parallel.hpp"

namespace mlvc::graph {

namespace {

/// Streaming cursor over one sorted run blob with a bounded read buffer.
class RunCursor {
 public:
  RunCursor(const ssd::Blob& blob, std::size_t buffer_edges)
      : blob_(blob),
        total_(blob.size() / sizeof(Edge)),
        buffer_edges_(std::max<std::size_t>(1, buffer_edges)) {
    refill();
  }

  bool exhausted() const { return pos_ >= buffer_.size() && next_ >= total_; }

  const Edge& peek() const { return buffer_[pos_]; }

  void advance() {
    ++pos_;
    if (pos_ >= buffer_.size() && next_ < total_) refill();
  }

 private:
  void refill() {
    const std::uint64_t take =
        std::min<std::uint64_t>(buffer_edges_, total_ - next_);
    buffer_.resize(take);
    blob_.read(next_ * sizeof(Edge), buffer_.data(), take * sizeof(Edge));
    next_ += take;
    pos_ = 0;
  }

  const ssd::Blob& blob_;
  std::uint64_t total_;
  std::size_t buffer_edges_;
  std::vector<Edge> buffer_;
  std::uint64_t next_ = 0;
  std::size_t pos_ = 0;
};

}  // namespace

ExternalCsrBuilder::ExternalCsrBuilder(ssd::Storage& storage,
                                       std::string prefix,
                                       VertexId num_vertices, Options options)
    : storage_(storage),
      prefix_(std::move(prefix)),
      num_vertices_(num_vertices),
      options_(options),
      in_degrees_(num_vertices, 0) {
  MLVC_CHECK_MSG(options_.memory_budget_bytes >= 64_KiB,
                 "builder budget unreasonably small");
  buffer_capacity_ = options_.memory_budget_bytes / sizeof(Edge);
  buffer_.reserve(buffer_capacity_);
}

ExternalCsrBuilder::~ExternalCsrBuilder() {
  for (ssd::Blob* run : runs_) {
    storage_.remove_blob(run->name());
  }
}

void ExternalCsrBuilder::add_edge(VertexId src, VertexId dst, float weight) {
  MLVC_CHECK_MSG(src < num_vertices_ && dst < num_vertices_,
                 "edge (" << src << "," << dst << ") out of range");
  MLVC_CHECK_MSG(!finished_, "builder already finished");
  if (src == dst) return;  // self-loops dropped, as in EdgeList::normalize
  buffer_.push_back(Edge{src, dst, weight});
  ++in_degrees_[dst];
  ++ingested_;
  if (options_.make_undirected) {
    buffer_.push_back(Edge{dst, src, weight});
    ++in_degrees_[src];
    ++ingested_;
  }
  if (buffer_.size() + 1 >= buffer_capacity_) spill_run();
}

void ExternalCsrBuilder::add_edges(std::span<const Edge> edges) {
  for (const Edge& e : edges) add_edge(e.src, e.dst, e.weight);
}

void ExternalCsrBuilder::spill_run() {
  if (buffer_.empty()) return;
  parallel_sort(buffer_.begin(), buffer_.end());
  ssd::Blob& run = storage_.create_blob(
      prefix_ + "/run_" + std::to_string(runs_.size()),
      ssd::IoCategory::kSortRun);
  run.append(buffer_.data(), buffer_.size() * sizeof(Edge));
  runs_.push_back(&run);
  buffer_.clear();
}

std::unique_ptr<StoredCsrGraph> ExternalCsrBuilder::finish(
    std::size_t bytes_per_update, std::size_t sort_budget_bytes,
    std::size_t merge_threshold) {
  MLVC_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;
  spill_run();

  // Duplicates are dropped during the merge, so the in-degree counts used
  // for interval sizing may overcount — that is safe (intervals only get
  // smaller than needed) and matches the paper's conservative sizing.
  VertexIntervals intervals = VertexIntervals::partition_by_in_degree(
      in_degrees_, bytes_per_update, sort_budget_bytes);
  if (intervals.count() == 0 && num_vertices_ > 0) {
    intervals = VertexIntervals::uniform(num_vertices_, num_vertices_);
  }

  // K-way merge with a tournament over run cursors; each cursor gets an
  // equal slice of the memory budget.
  std::vector<std::unique_ptr<RunCursor>> cursors;
  const std::size_t per_run_edges =
      runs_.empty() ? 1
                    : std::max<std::size_t>(
                          1024, options_.memory_budget_bytes /
                                    (sizeof(Edge) * (runs_.size() + 1)));
  for (ssd::Blob* run : runs_) {
    cursors.push_back(std::make_unique<RunCursor>(*run, per_run_edges));
  }

  using HeapItem = std::pair<Edge, std::size_t>;  // (edge, cursor index)
  const auto heap_cmp = [](const HeapItem& a, const HeapItem& b) {
    return b.first < a.first;  // min-heap
  };
  std::priority_queue<HeapItem, std::vector<HeapItem>, decltype(heap_cmp)>
      heap(heap_cmp);
  for (std::size_t c = 0; c < cursors.size(); ++c) {
    if (!cursors[c]->exhausted()) {
      heap.emplace(cursors[c]->peek(), c);
      cursors[c]->advance();
    }
  }

  bool have_prev = false;
  Edge prev{};
  const auto next_edge = [&](Edge& out) -> bool {
    while (!heap.empty()) {
      auto [edge, c] = heap.top();
      heap.pop();
      if (!cursors[c]->exhausted()) {
        heap.emplace(cursors[c]->peek(), c);
        cursors[c]->advance();
      }
      if (have_prev && edge == prev) continue;  // dedupe (src,dst)
      prev = edge;
      have_prev = true;
      out = edge;
      return true;
    }
    return false;
  };

  StoredCsrGraph::Options csr_options;
  csr_options.with_weights = options_.with_weights;
  csr_options.merge_threshold = merge_threshold;
  csr_options.format = options_.format;
  auto graph = std::make_unique<StoredCsrGraph>(
      storage_, prefix_, std::move(intervals), next_edge, csr_options);

  for (ssd::Blob* run : runs_) {
    storage_.remove_blob(run->name());
  }
  runs_.clear();
  return graph;
}

}  // namespace mlvc::graph
