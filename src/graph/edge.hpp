// Edge and edge-list primitives.
#pragma once

#include <compare>
#include <cstdint>

#include "common/types.hpp"

namespace mlvc::graph {

/// A directed edge with an optional weight. Weight is carried everywhere for
/// generality but only materialized on storage when a graph is built
/// `with_weights` (apps like CDLP read edge weights; BFS does not).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  /// Orders by (src, dst); weight is payload, not identity.
  friend std::strong_ordering operator<=>(const Edge& a, const Edge& b) {
    if (auto c = a.src <=> b.src; c != 0) return c;
    return a.dst <=> b.dst;
  }
};

static_assert(sizeof(Edge) == 12, "Edge must stay packed for on-disk runs");

}  // namespace mlvc::graph
