// CSR graph resident on (simulated) flash storage, partitioned by vertex
// interval.
//
// §V.E of the paper: "we partition the CSR format graph based on the vertex
// intervals. Each vertex interval's graph data is stored separately in the
// CSR format" so that structural updates only rewrite one interval's
// vectors, and batched updates amortize even that.
//
// Layout per interval i (all page-accounted blobs in ssd::Storage):
//   csr/<i>/rowptr : (width(i) + 1) x EdgeIndex — local offsets into colidx
//   csr/<i>/colidx : local_edge_count x VertexId
//   csr/<i>/val    : local_edge_count x float    (only with_weights)
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "graph/intervals.hpp"
#include "ssd/page_cache.hpp"
#include "ssd/storage.hpp"

namespace mlvc::graph {

/// A buffered add-edge / remove-edge mutation (§V.E).
struct StructuralUpdate {
  enum class Kind : std::uint8_t { kAddEdge, kRemoveEdge };
  Kind kind = Kind::kAddEdge;
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;
};

/// Construction options for StoredCsrGraph (namespace-scope so it can be
/// used as a default argument; nested types with member initializers cannot).
struct StoredCsrOptions {
  bool with_weights = false;
  /// Buffered structural updates per interval before an automatic merge
  /// into the interval's CSR vectors.
  std::size_t merge_threshold = 4096;
  /// On-disk adjacency layout. kV1 = raw u32 colidx (element-addressable).
  /// kV2 = delta+zigzag+varint blocks of kCsrBlockEdges edges with a
  /// resident skip index (colidx.skip blob); reads decode transparently.
  /// rowptr and val stay fixed-width in both formats.
  OnDiskFormat format = OnDiskFormat::kV2;
  /// Also store the transposed (in-edge) CSR as a sibling graph under
  /// `<prefix>/t` — same interval boundaries, same on-disk format, no
  /// weights. The engine's pull direction (DESIGN.md §4e) streams it to
  /// gather messages without log writes; stores built without it simply run
  /// push-only. The streaming constructor ignores this flag (a transpose
  /// cannot be built from one sorted forward pass); use mlvc_convert to add
  /// one later.
  bool with_transpose = true;
};

/// Edges per compressed adjacency block (v2). Each block is independently
/// decodable (first id absolute, rest zigzag'd deltas), so a random
/// adjacency-batch read touches only the blocks its span overlaps; the
/// resident skip index costs 8 bytes per block (~1 MiB per GiB of v1
/// colidx).
inline constexpr EdgeIndex kCsrBlockEdges = 2048;

class StoredCsrGraph {
 public:
  using Options = StoredCsrOptions;

  /// Materialize `csr` onto `storage` under `name_prefix`, partitioned by
  /// `intervals`.
  StoredCsrGraph(ssd::Storage& storage, std::string name_prefix,
                 const CsrGraph& csr, VertexIntervals intervals,
                 Options options = Options());

  /// Streaming construction for graphs too big to hold in memory: consume
  /// edges in nondecreasing (src, dst) order from `next_edge` (returning
  /// false when exhausted) and write interval blobs in bounded-size chunks.
  /// Used by ExternalCsrBuilder.
  StoredCsrGraph(ssd::Storage& storage, std::string name_prefix,
                 VertexIntervals intervals,
                 const std::function<bool(Edge&)>& next_edge,
                 Options options = Options());

  /// Re-open a graph previously materialized under `name_prefix` on
  /// `storage` (same process or a fresh one over the same directory). The
  /// format, weights flag, interval boundaries, and per-interval edge
  /// counts come from the versioned csr/meta blob, so a v2 binary opens v1
  /// graphs (and vice versa) transparently. Throws mlvc::Error on a
  /// missing/corrupt header.
  static std::unique_ptr<StoredCsrGraph> open(ssd::Storage& storage,
                                              std::string name_prefix);

  VertexId num_vertices() const noexcept { return intervals_.num_vertices(); }
  EdgeIndex num_edges() const noexcept { return num_edges_; }
  const VertexIntervals& intervals() const noexcept { return intervals_; }
  bool has_weights() const noexcept { return options_.with_weights; }
  OnDiskFormat format() const noexcept { return options_.format; }
  ssd::Storage& storage() noexcept { return storage_; }

  /// Out-degree of every vertex, kept in host memory. 8 bytes per vertex —
  /// the same class of metadata the paper keeps resident (the degree array
  /// is needed to size reads before touching storage).
  EdgeIndex out_degree(VertexId v) const {
    MLVC_CHECK(v < degrees_.size());
    return degrees_[v];
  }

  // ---- page-accounted reads ----------------------------------------------

  /// Read local row-pointer entries [local_begin, local_begin + count) of
  /// interval i. Entry k is the colidx offset of local vertex k; callers
  /// read count = width + 1 to get the closing offset.
  void read_local_row_ptrs(IntervalId i, VertexId local_begin,
                           std::size_t count, std::span<EdgeIndex> out) const;

  /// Read colidx entries [lo, hi) of interval i.
  void read_adjacency(IntervalId i, EdgeIndex lo, EdgeIndex hi,
                      std::span<VertexId> out) const;

  /// Read edge values [lo, hi) of interval i (graph must have weights).
  void read_values(IntervalId i, EdgeIndex lo, EdgeIndex hi,
                   std::span<float> out) const;

  /// One element range [lo, hi) of a per-interval vector, destined for
  /// `out[0 .. hi-lo)`. Used by the vectored read paths below.
  struct ElemRange {
    EdgeIndex lo = 0;
    EdgeIndex hi = 0;
    void* out = nullptr;
  };

  /// Vectored forms: every range in one Blob::read_multi call, so a batch of
  /// coalesced page windows costs one kernel round trip. Accounting is
  /// identical to the scalar calls. Ranges index EdgeIndex entries for
  /// rowptr, VertexId entries for adjacency, float entries for values.
  void read_local_row_ptrs_multi(IntervalId i,
                                 std::span<const ElemRange> ranges) const;
  void read_adjacency_multi(IntervalId i,
                            std::span<const ElemRange> ranges) const;
  void read_values_multi(IntervalId i,
                         std::span<const ElemRange> ranges) const;

  EdgeIndex interval_edge_count(IntervalId i) const {
    MLVC_CHECK(i < intervals_.count());
    return interval_edges_[i];
  }

  /// Route adjacency (colidx) reads through a host-side CLOCK page cache of
  /// `capacity_bytes` (0 disables). Cached hits cost no storage pages — they
  /// are counted as cache_hit_pages in IoStats instead. The cache is
  /// invalidated whenever an interval's CSR vectors are rewritten
  /// (structural-update merges), so readers always see current data.
  void set_adjacency_cache(std::size_t capacity_bytes);

  /// Install an externally owned (shared) cache instead: the multi-tenant
  /// path, where one RuntimeContext-level cache backs every query over this
  /// graph and per-query attribution/admission runs through
  /// ssd::PageCache::QuerySlot. Pass nullptr to disable caching.
  void set_adjacency_cache(std::shared_ptr<ssd::PageCache> cache);

  bool adjacency_cache_enabled() const noexcept {
    return adjacency_cache_ != nullptr;
  }
  /// The installed adjacency cache (nullptr when disabled).
  ssd::PageCache* adjacency_cache() const noexcept {
    return adjacency_cache_.get();
  }

  const ssd::Blob& colidx_blob(IntervalId i) const;
  const ssd::Blob& rowptr_blob(IntervalId i) const;

  // ---- transposed (in-edge) CSR ------------------------------------------

  /// Whether a transpose sibling is stored/attached. open() auto-attaches
  /// one when `<prefix>/t/csr/meta` exists, so v1-era stores (no transpose)
  /// keep opening fine and report false here.
  bool has_transpose() const noexcept { return transpose_ != nullptr; }

  /// The transposed graph: vertex v's "out-edges" there are v's in-neighbors
  /// here, ascending. Shares this graph's interval boundaries, so interval i
  /// of the transpose is exactly the in-adjacency of interval i's vertices.
  StoredCsrGraph& transpose() {
    MLVC_CHECK_MSG(transpose_ != nullptr, "store has no transpose");
    return *transpose_;
  }
  const StoredCsrGraph& transpose() const {
    MLVC_CHECK_MSG(transpose_ != nullptr, "store has no transpose");
    return *transpose_;
  }

  /// On-disk bytes of interval i's adjacency stream (compressed bytes under
  /// v2, raw element bytes under v1). For compression-ratio reporting.
  std::uint64_t adjacency_stored_bytes(IntervalId i) const;

  // ---- structural updates (§V.E) -----------------------------------------

  /// Buffer a mutation; merged into the stored CSR automatically once the
  /// source interval accumulates Options::merge_threshold updates.
  void buffer_update(const StructuralUpdate& update);

  std::size_t pending_update_count(IntervalId i) const;

  /// Force-merge all buffered updates of interval i into its CSR vectors
  /// (full interval rewrite — the cost the batching amortizes).
  void merge_interval(IntervalId i);

  /// Apply interval i's pending updates for source vertex v on top of the
  /// stored adjacency (the paper's Graph Loader "always accesses these
  /// buffered updates to fetch the most current graph data").
  void overlay_pending(VertexId v, std::vector<VertexId>& adjacency,
                       std::vector<float>* weights) const;

 private:
  /// Tag ctor for open(): binds storage/prefix, everything else loaded from
  /// the meta blob by load_meta().
  StoredCsrGraph(ssd::Storage& storage, std::string name_prefix);

  std::string blob_name(IntervalId i, const char* what) const;
  /// Counting-sort the reverse CSR out of `csr` and materialize it as the
  /// `<prefix>/t` sibling (in-memory construction only).
  void build_transpose(const CsrGraph& csr);
  void write_interval(IntervalId i, std::span<const EdgeIndex> local_rowptr,
                      std::span<const VertexId> colidx,
                      std::span<const float> val);
  /// Persist the versioned header (format, weights, boundaries, edge
  /// counts) to the csr/meta blob. Called at the end of construction and
  /// after every structural merge.
  void write_meta();
  void load_meta();
  /// Read + decode colidx entries [lo, hi) of a v2 interval into out.
  void read_adjacency_v2(IntervalId i, EdgeIndex lo, EdgeIndex hi,
                         VertexId* out) const;

  ssd::Storage& storage_;
  std::string prefix_;
  VertexIntervals intervals_;
  Options options_;
  EdgeIndex num_edges_ = 0;
  std::vector<EdgeIndex> degrees_;
  std::vector<EdgeIndex> interval_edges_;
  std::vector<ssd::Blob*> rowptr_blobs_;
  std::vector<ssd::Blob*> colidx_blobs_;
  std::vector<ssd::Blob*> val_blobs_;
  /// v2 only: per-interval block skip index — byte offset of each
  /// compressed block in the colidx blob, plus one closing total. Kept
  /// resident (8 B per kCsrBlockEdges edges) and mirrored in the
  /// colidx.skip blob for open().
  std::vector<std::vector<std::uint64_t>> skip_index_;
  std::vector<ssd::Blob*> skip_blobs_;
  /// Optional adjacency page cache; mutable because reads are logically
  /// const (the cache has its own internal lock). shared_ptr so a
  /// RuntimeContext-owned cache can be installed across many graphs/queries
  /// while a privately sized cache keeps working for one-shot runs.
  mutable std::shared_ptr<ssd::PageCache> adjacency_cache_;

  /// Transposed sibling graph (nullptr when not stored). Structural updates
  /// buffered here are mirrored into it, and cache installs propagate, so
  /// the two stay views of the same logical graph.
  std::unique_ptr<StoredCsrGraph> transpose_;

  mutable std::mutex updates_mutex_;
  std::vector<std::vector<StructuralUpdate>> pending_;  // per interval
};

}  // namespace mlvc::graph
