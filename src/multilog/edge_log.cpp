#include "multilog/edge_log.hpp"

#include <cstring>

#include "common/error.hpp"

namespace mlvc::multilog {

EdgeLog::EdgeLog(ssd::Storage& storage, std::string prefix,
                 EdgeLogConfig config)
    : storage_(storage),
      prefix_(std::move(prefix)),
      config_(config),
      page_size_(storage.page_size()) {
  reset_generation(generations_[0], prefix_ + "/edgelog_gen0");
  reset_generation(generations_[1], prefix_ + "/edgelog_gen1");
}

void EdgeLog::reset_generation(Generation& gen, const std::string& name) {
  gen.blob = &storage_.create_blob(name, ssd::IoCategory::kEdgeLog);
  gen.index.clear();
  gen.top.clear();
  gen.flushed_bytes = 0;
}

std::size_t EdgeLog::entry_bytes(VertexId degree) const {
  // Adjacency only; the vertex id and degree live in the in-memory index,
  // so every logged byte is useful on read-back.
  return static_cast<std::size_t>(degree) *
         (sizeof(VertexId) + (config_.with_weights ? sizeof(float) : 0));
}

bool EdgeLog::log_edges(VertexId v, std::span<const VertexId> adjacency,
                        std::span<const float> weights) {
  MLVC_CHECK_MSG(!config_.with_weights || weights.size() == adjacency.size(),
                 "weighted edge log requires a weight per edge");
  std::lock_guard<std::mutex> lock(mutex_);
  Generation& gen = generations_[produce_index_];
  if (gen.index.count(v) != 0) return true;  // already logged this superstep

  if (config_.buffer_budget_bytes != 0) {
    // Budget covers the index (~48 B/entry with hash overhead) plus the
    // resident tail; decline once exceeded rather than grow unbounded.
    const std::size_t index_cost = (gen.index.size() + 1) * 48;
    if (index_cost + gen.top.size() + entry_bytes(adjacency.size()) >
        config_.buffer_budget_bytes) {
      return false;
    }
  }

  const std::uint64_t offset = gen.flushed_bytes + gen.top.size();
  const std::size_t old_size = gen.top.size();
  gen.top.resize(old_size + entry_bytes(static_cast<VertexId>(adjacency.size())));
  std::byte* out = gen.top.data() + old_size;
  std::memcpy(out, adjacency.data(), adjacency.size_bytes());
  if (config_.with_weights) {
    std::memcpy(out + adjacency.size_bytes(), weights.data(),
                weights.size_bytes());
  }

  // Page-granular flush of every full page in the tail.
  while (gen.top.size() >= page_size_) {
    gen.blob->append(gen.top.data(), page_size_);
    gen.top.erase(gen.top.begin(),
                  gen.top.begin() + static_cast<std::ptrdiff_t>(page_size_));
    gen.flushed_bytes += page_size_;
  }

  gen.index.emplace(v, Entry{offset, static_cast<VertexId>(adjacency.size())});
  produced_edges_ += adjacency.size();
  return true;
}

std::uint64_t EdgeLog::produced_vertices() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generations_[produce_index_].index.size();
}

std::uint64_t EdgeLog::produced_edges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return produced_edges_;
}

bool EdgeLog::contains(VertexId v) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return generations_[1 - produce_index_].index.count(v) != 0;
}

void EdgeLog::read_stream(const Generation& gen, std::uint64_t offset,
                          void* out, std::size_t len) const {
  std::byte* dst = static_cast<std::byte*>(out);
  if (offset < gen.flushed_bytes) {
    const std::size_t from_blob = static_cast<std::size_t>(
        std::min<std::uint64_t>(len, gen.flushed_bytes - offset));
    gen.blob->read(offset, dst, from_blob);
    dst += from_blob;
    offset += from_blob;
    len -= from_blob;
  }
  if (len > 0) {
    // Resident tail: free, as it never left host memory.
    const std::size_t tail_off =
        static_cast<std::size_t>(offset - gen.flushed_bytes);
    MLVC_CHECK(tail_off + len <= gen.top.size());
    std::memcpy(dst, gen.top.data() + tail_off, len);
  }
}

bool EdgeLog::load_edges(VertexId v, std::vector<VertexId>& adjacency,
                         std::vector<float>* weights) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const Generation& gen = generations_[1 - produce_index_];
  const auto it = gen.index.find(v);
  if (it == gen.index.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  const Entry& e = it->second;
  adjacency.resize(e.degree);
  read_stream(gen, e.offset, adjacency.data(),
              e.degree * sizeof(VertexId));
  if (config_.with_weights && weights != nullptr) {
    weights->resize(e.degree);
    read_stream(gen, e.offset + e.degree * sizeof(VertexId), weights->data(),
                e.degree * sizeof(float));
  }
  return true;
}

void EdgeLog::swap_generations() {
  std::lock_guard<std::mutex> lock(mutex_);
  const unsigned consume = 1 - produce_index_;
  ++swap_count_;
  reset_generation(generations_[consume],
                   prefix_ + "/edgelog_s" + std::to_string(swap_count_));
  produce_index_ = consume;
  produced_edges_ = 0;
}

void EdgeLog::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++swap_count_;
  reset_generation(generations_[0], prefix_ + "/edgelog_reset0_s" +
                                        std::to_string(swap_count_));
  reset_generation(generations_[1], prefix_ + "/edgelog_reset1_s" +
                                        std::to_string(swap_count_));
  produce_index_ = 0;
  produced_edges_ = 0;
}

}  // namespace mlvc::multilog
