// The sort-and-group unit (§V.B of the paper).
//
// Loads per-interval logs (fused while they fit in the sort budget), groups
// them in memory by destination vertex — the whole point of the multi-log:
// each interval's updates fit in host memory, so no external sort — and
// optionally applies the application's combine operator (§V.D) before
// handing each group to ProcessVertex.
//
// Because an interval group's destinations are bounded by its vertex range
// (that is what the §V.A.1 interval sizing guarantees), grouping is a
// counting-sort problem, not a comparison-sort problem. The default path is
// therefore a fused counting scatter keyed by dst - range_begin: one
// parallel pass over the raw log bytes builds per-chunk histograms while
// decoding destination headers, a prefix sum over the fused-interval-width
// histogram yields the final group offsets for free, and a second pass
// scatters records straight from the log buffer into their final grouped
// positions — no intermediate decode copy, no O(n log n) sort, no separate
// group-offset scan. The comparison-sort path survives as an automatic
// fallback for nearly-empty logs over wide vertex ranges (width >> n, where
// the histogram itself would dominate) and as an ablation variant.
#pragma once

#include <algorithm>
#include <cstring>
#include <limits>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "common/types.hpp"
#include "multilog/log_codec.hpp"
#include "multilog/record.hpp"

namespace mlvc::multilog {

/// Sort records by destination vertex id. Order of equal-destination records
/// is unspecified — vertex programs must treat their inbox as a multiset,
/// which the BSP model requires anyway.
template <typename Message>
void sort_records(std::vector<Record<Message>>& records) {
  parallel_sort(records.begin(), records.end(),
                [](const Record<Message>& a, const Record<Message>& b) {
                  return a.dst < b.dst;
                });
}

/// Invoke fn(dst, span_of_records) for every destination group in a sorted
/// record array.
template <typename Message, typename Fn>
void for_each_group(std::span<const Record<Message>> sorted, Fn&& fn) {
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j].dst == sorted[i].dst) ++j;
    fn(sorted[i].dst, sorted.subspan(i, j - i));
    i = j;
  }
}

/// Group boundaries of a sorted record array: indices of group starts plus a
/// final end sentinel. Lets the engine parallelize per-group processing.
template <typename Message>
std::vector<std::size_t> group_offsets(
    std::span<const Record<Message>> sorted) {
  std::vector<std::size_t> offsets;
  std::size_t i = 0;
  while (i < sorted.size()) {
    offsets.push_back(i);
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j].dst == sorted[i].dst) ++j;
    i = j;
  }
  offsets.push_back(sorted.size());
  return offsets;
}

/// Apply a combine operator in place on a *sorted* record array: all records
/// with the same destination collapse to one. Returns the new size. This is
/// the §V.D optimization path for associative+commutative applications.
template <typename Message, typename Combine>
std::size_t combine_sorted(std::vector<Record<Message>>& records,
                           Combine&& combine) {
  if (records.empty()) return 0;
  std::size_t out = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].dst == records[out].dst) {
      records[out].payload = combine(records[out].payload, records[i].payload);
    } else {
      records[++out] = records[i];
    }
  }
  records.resize(out + 1);
  return records.size();
}

// ---- fused counting-scatter grouping ---------------------------------------

/// One fused interval group's log, decoded and grouped by destination:
/// records ordered by ascending dst, offsets = start index of every
/// non-empty destination group plus an end sentinel (the layout
/// group_offsets() produces, so consumers are path-agnostic).
template <typename Message>
struct GroupedLog {
  std::vector<Record<Message>> records;
  std::vector<std::size_t> offsets = {0};
  /// Records present in the raw log, before any combine shrinks them —
  /// messages_consumed counts what was sent, not what survived combine.
  std::size_t decoded = 0;
  /// The implementation actually used (never kAuto).
  SortGroupPath path = SortGroupPath::kComparisonSort;
};

/// Heuristic for SortGroupPath::kAuto: the counting scatter costs
/// O(n + width) time and O(chunks × width) histogram bytes, so it wins
/// whenever the fused range is not vastly wider than the log is long. The
/// §V.A.1 sizing rule bounds width by the sort budget, so on dense logs —
/// the case that matters, per the paper — this always picks the scatter;
/// nearly-empty tail-superstep logs over wide ranges fall back.
inline bool counting_scatter_fits(std::size_t n_records, std::size_t width) {
  if (n_records > std::numeric_limits<std::uint32_t>::max()) {
    return false;  // per-chunk cursors are 32-bit
  }
  return width <= std::max<std::size_t>(4096, 2 * n_records);
}

namespace detail {

/// Records per parallel chunk. Chunk boundaries are a pure function of the
/// record count, so the scatter is deterministic (and stable: equal-dst
/// records keep log-append order) under any thread scheduling.
inline constexpr std::size_t kScatterChunkRecords = std::size_t{1} << 15;

/// Validate one raw record's destination against the fused range. An
/// out-of-range destination means a corrupt log page; the scatter would
/// otherwise index past its histogram, so this surfaces as a typed error.
inline void check_dst_in_range(VertexId dst, VertexId range_begin,
                               VertexId range_end) {
  MLVC_CHECK_MSG(dst >= range_begin && dst < range_end,
                 "log record destination " << dst
                                           << " outside interval range ["
                                           << range_begin << ", " << range_end
                                           << ") — corrupt log page?");
}

/// The fused counting scatter, no combine: histogram pass + prefix sum +
/// scatter pass, straight from the raw log bytes into final grouped
/// positions.
template <typename Message>
GroupedLog<Message> scatter_group(std::span<const std::byte> bytes,
                                  VertexId range_begin, VertexId range_end) {
  using Rec = Record<Message>;
  constexpr std::size_t kRec = sizeof(Rec);
  GroupedLog<Message> out;
  out.path = SortGroupPath::kCountingScatter;
  const std::size_t n = checked_record_count<Message>(bytes);
  out.decoded = n;
  if (n == 0) return out;
  MLVC_CHECK(n <= std::numeric_limits<std::uint32_t>::max());
  const std::size_t width =
      static_cast<std::size_t>(range_end - range_begin);
  const std::byte* base = bytes.data();
  const auto bounds =
      chunk_bounds(n, kScatterChunkRecords, hardware_threads());
  const std::size_t n_chunks = bounds.size() - 1;

  // Pass 1: per-chunk histograms keyed by dst - range_begin, built while
  // the destination headers are decoded straight from the log bytes.
  std::vector<std::uint32_t> hist(n_chunks * width, 0);
  parallel_for(std::size_t{0}, n_chunks, [&](std::size_t c) {
    std::uint32_t* h = hist.data() + c * width;
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      VertexId dst;
      std::memcpy(&dst, base + i * kRec, sizeof(VertexId));
      check_dst_in_range(dst, range_begin, range_end);
      ++h[dst - range_begin];
    }
  });

  // Prefix sum over the fused-interval-width histogram: starts[d] becomes
  // destination d's first slot, which is also its group offset.
  std::vector<std::size_t> starts(width);
  const auto wb = chunk_bounds(width, std::size_t{4096}, hardware_threads());
  parallel_for(std::size_t{0}, wb.size() - 1, [&](std::size_t wc) {
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < n_chunks; ++c) total += hist[c * width + d];
      starts[d] = total;
    }
  });
  const std::size_t total =
      parallel_exclusive_scan(std::span<std::size_t>(starts));
  MLVC_CHECK(total == n);
  out.offsets.clear();
  for (std::size_t d = 0; d < width; ++d) {
    const std::size_t next = d + 1 < width ? starts[d + 1] : n;
    if (next != starts[d]) out.offsets.push_back(starts[d]);
  }
  out.offsets.push_back(n);

  // Turn the per-chunk histograms into per-chunk write cursors: chunk c's
  // records for destination d land at starts[d] + (d-counts of chunks < c).
  parallel_for(std::size_t{0}, wb.size() - 1, [&](std::size_t wc) {
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      std::size_t pos = starts[d];
      for (std::size_t c = 0; c < n_chunks; ++c) {
        const std::uint32_t cnt = hist[c * width + d];
        hist[c * width + d] = static_cast<std::uint32_t>(pos);
        pos += cnt;
      }
    }
  });

  // Pass 2: scatter records from the log buffer into their final grouped
  // positions — one memcpy per record, fusing decode and grouping.
  out.records.resize(n);
  Rec* recs = out.records.data();
  parallel_for(std::size_t{0}, n_chunks, [&](std::size_t c) {
    std::uint32_t* cursors = hist.data() + c * width;
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      Rec r;
      std::memcpy(&r, base + i * kRec, kRec);
      recs[cursors[r.dst - range_begin]++] = r;
    }
  });
  return out;
}

/// Scatter-with-combine (§V.D fused into §V.B): a single parallel pass over
/// the raw log combines each chunk's records into per-chunk accumulator
/// slots (one per destination), then a width-parallel reduction folds the
/// chunk accumulators — in chunk order, so the result is deterministic —
/// into exactly one output record per live destination. The n-record
/// intermediate array of the unfused path never exists.
template <typename Message, typename Combine>
GroupedLog<Message> scatter_group_combine(std::span<const std::byte> bytes,
                                          VertexId range_begin,
                                          VertexId range_end,
                                          Combine&& combine) {
  using Rec = Record<Message>;
  constexpr std::size_t kRec = sizeof(Rec);
  GroupedLog<Message> out;
  out.path = SortGroupPath::kCountingScatter;
  const std::size_t n = checked_record_count<Message>(bytes);
  out.decoded = n;
  if (n == 0) return out;
  MLVC_CHECK(n <= std::numeric_limits<std::uint32_t>::max());
  const std::size_t width =
      static_cast<std::size_t>(range_end - range_begin);
  const std::byte* base = bytes.data();
  const auto bounds =
      chunk_bounds(n, kScatterChunkRecords, hardware_threads());
  const std::size_t n_chunks = bounds.size() - 1;

  std::vector<std::uint32_t> hist(n_chunks * width, 0);
  std::vector<Message> accs(n_chunks * width);
  parallel_for(std::size_t{0}, n_chunks, [&](std::size_t c) {
    std::uint32_t* h = hist.data() + c * width;
    Message* a = accs.data() + c * width;
    for (std::size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
      Rec r;
      std::memcpy(&r, base + i * kRec, kRec);
      check_dst_in_range(r.dst, range_begin, range_end);
      const std::size_t d = r.dst - range_begin;
      a[d] = h[d] ? combine(a[d], r.payload) : r.payload;
      ++h[d];
    }
  });

  // Count live destinations per width chunk, then assign output slots.
  const auto wb = chunk_bounds(width, std::size_t{4096}, hardware_threads());
  const std::size_t n_wc = wb.size() - 1;
  std::vector<std::size_t> slot_base(n_wc, 0);
  parallel_for(std::size_t{0}, n_wc, [&](std::size_t wc) {
    std::size_t live = 0;
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      for (std::size_t c = 0; c < n_chunks; ++c) {
        if (hist[c * width + d] != 0) {
          ++live;
          break;
        }
      }
    }
    slot_base[wc] = live;
  });
  const std::size_t n_groups =
      parallel_exclusive_scan(std::span<std::size_t>(slot_base));

  out.records.resize(n_groups);
  Rec* recs = out.records.data();
  parallel_for(std::size_t{0}, n_wc, [&](std::size_t wc) {
    std::size_t slot = slot_base[wc];
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      Message acc{};
      bool live = false;
      for (std::size_t c = 0; c < n_chunks; ++c) {
        if (hist[c * width + d] == 0) continue;
        const Message& m = accs[c * width + d];
        acc = live ? combine(acc, m) : m;
        live = true;
      }
      if (live) {
        recs[slot] = Rec{static_cast<VertexId>(range_begin + d), acc};
        ++slot;
      }
    }
  });
  out.offsets.resize(n_groups + 1);
  for (std::size_t i = 0; i <= n_groups; ++i) out.offsets[i] = i;
  return out;
}

inline bool choose_scatter(SortGroupPath policy, std::size_t n_records,
                           std::size_t width) {
  switch (policy) {
    case SortGroupPath::kCountingScatter: return true;
    case SortGroupPath::kComparisonSort: return false;
    case SortGroupPath::kAuto: break;
  }
  return counting_scatter_fits(n_records, width);
}

// ---- v2 (chunked delta+varint) decode fused into the scatter ---------------

/// Group consecutive encoded chunks into parallel work units of about
/// kScatterChunkRecords records each. A pure function of the chunk index, so
/// the v2 scatter is as deterministic as the v1 one.
inline std::vector<std::size_t> chunk_units(const LogChunkIndex& idx) {
  const std::size_t n_enc = idx.chunk_offsets.size();
  std::vector<std::size_t> ub;
  ub.push_back(0);
  std::size_t unit_start_rec = 0;
  for (std::size_t c = 0; c < n_enc; ++c) {
    if (idx.rec_offsets[c + 1] - unit_start_rec >= kScatterChunkRecords) {
      ub.push_back(c + 1);
      unit_start_rec = idx.rec_offsets[c + 1];
    }
  }
  if (ub.back() != n_enc) ub.push_back(n_enc);
  return ub;
}

/// Fill record bytes [4, record_size) — everything after the destination —
/// from a chunk's payload cursor. The uvarint branch writes the message's
/// exact bit pattern (encode zero-extends it into a u64); the fixed branch
/// copies the raw record tail, padding bytes included, so the decoded
/// record is byte-identical to what the producer staged.
template <typename Message>
void read_chunk_payload(const std::uint8_t** cur, const std::uint8_t* end,
                        Record<Message>* r) {
  constexpr std::size_t kArea = sizeof(Record<Message>) - sizeof(VertexId);
  auto* out = reinterpret_cast<std::byte*>(r) + sizeof(VertexId);
  if constexpr (kPayloadVarint<Message>) {
    static_assert(kArea <= 8);
    const std::uint64_t v = get_uvarint(cur, end);
    std::memcpy(out, &v, kArea);
  } else {
    MLVC_CHECK_MSG(static_cast<std::size_t>(end - *cur) >= kArea,
                   "log chunk payload area truncated");
    std::memcpy(out, *cur, kArea);
    *cur += kArea;
  }
}

/// Decode every record of encoded chunks [c_begin, c_end) in append order,
/// calling fn(const Record&). One dst-array scratch per call (bounded by
/// kLogChunkMaxRecords), reused across chunks.
template <typename Message, typename Fn>
void for_each_unit_record(const std::uint8_t* data, const LogChunkIndex& idx,
                          std::size_t c_begin, std::size_t c_end, Fn&& fn) {
  using Rec = Record<Message>;
  std::vector<VertexId> dsts;
  for (std::size_t c = c_begin; c < c_end; ++c) {
    const std::uint8_t* chunk = data + idx.chunk_offsets[c];
    const LogChunkHeader h = read_chunk_header(chunk);
    dsts.resize(h.n_records);
    std::size_t k = 0;
    for_each_chunk_dst(chunk, h, [&](VertexId dst) { dsts[k++] = dst; });
    const std::uint8_t* cur = chunk + kLogChunkHeaderBytes + h.dst_bytes;
    const std::uint8_t* end = chunk + kLogChunkHeaderBytes + h.body_bytes;
    for (k = 0; k < h.n_records; ++k) {
      Rec r;
      r.dst = dsts[k];
      read_chunk_payload<Message>(&cur, end, &r);
      fn(static_cast<const Rec&>(r));
    }
    MLVC_CHECK_MSG(cur == end, "log chunk payload area length mismatch");
  }
}

/// v2 counting scatter, no combine: the histogram pass decodes only the
/// destination streams (skipping payload areas via the header's dst_bytes),
/// the scatter pass decodes records straight into their final grouped
/// positions — decompression is fused into the same two passes the v1 path
/// makes over raw bytes; no intermediate expanded copy of the log exists.
template <typename Message>
GroupedLog<Message> scatter_group_v2(std::span<const std::byte> bytes,
                                     const LogChunkIndex& idx,
                                     VertexId range_begin, VertexId range_end) {
  using Rec = Record<Message>;
  GroupedLog<Message> out;
  out.path = SortGroupPath::kCountingScatter;
  const std::size_t n = idx.n_records();
  out.decoded = n;
  if (n == 0) return out;
  MLVC_CHECK(n <= std::numeric_limits<std::uint32_t>::max());
  const std::size_t width = static_cast<std::size_t>(range_end - range_begin);
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::vector<std::size_t> ub = chunk_units(idx);
  const std::size_t n_units = ub.size() - 1;

  // Pass 1: per-unit histograms from the dst streams alone.
  std::vector<std::uint32_t> hist(n_units * width, 0);
  parallel_for(std::size_t{0}, n_units, [&](std::size_t u) {
    std::uint32_t* h = hist.data() + u * width;
    for (std::size_t c = ub[u]; c < ub[u + 1]; ++c) {
      const std::uint8_t* chunk = data + idx.chunk_offsets[c];
      for_each_chunk_dst(chunk, read_chunk_header(chunk), [&](VertexId dst) {
        check_dst_in_range(dst, range_begin, range_end);
        ++h[dst - range_begin];
      });
    }
  });

  // Prefix sum + group offsets + per-unit cursors: identical to the v1 path.
  std::vector<std::size_t> starts(width);
  const auto wb = chunk_bounds(width, std::size_t{4096}, hardware_threads());
  parallel_for(std::size_t{0}, wb.size() - 1, [&](std::size_t wc) {
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      std::size_t total = 0;
      for (std::size_t u = 0; u < n_units; ++u) total += hist[u * width + d];
      starts[d] = total;
    }
  });
  const std::size_t total =
      parallel_exclusive_scan(std::span<std::size_t>(starts));
  MLVC_CHECK(total == n);
  out.offsets.clear();
  for (std::size_t d = 0; d < width; ++d) {
    const std::size_t next = d + 1 < width ? starts[d + 1] : n;
    if (next != starts[d]) out.offsets.push_back(starts[d]);
  }
  out.offsets.push_back(n);
  parallel_for(std::size_t{0}, wb.size() - 1, [&](std::size_t wc) {
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      std::size_t pos = starts[d];
      for (std::size_t u = 0; u < n_units; ++u) {
        const std::uint32_t cnt = hist[u * width + d];
        hist[u * width + d] = static_cast<std::uint32_t>(pos);
        pos += cnt;
      }
    }
  });

  // Pass 2: full decode, scattered straight to final grouped positions.
  out.records.resize(n);
  Rec* recs = out.records.data();
  parallel_for(std::size_t{0}, n_units, [&](std::size_t u) {
    std::uint32_t* cursors = hist.data() + u * width;
    for_each_unit_record<Message>(data, idx, ub[u], ub[u + 1],
                                  [&](const Rec& r) {
                                    recs[cursors[r.dst - range_begin]++] = r;
                                  });
  });
  return out;
}

/// v2 scatter-with-combine: decode fused into the single accumulate pass
/// (mirrors scatter_group_combine over chunk units).
template <typename Message, typename Combine>
GroupedLog<Message> scatter_group_combine_v2(std::span<const std::byte> bytes,
                                             const LogChunkIndex& idx,
                                             VertexId range_begin,
                                             VertexId range_end,
                                             Combine&& combine) {
  using Rec = Record<Message>;
  GroupedLog<Message> out;
  out.path = SortGroupPath::kCountingScatter;
  const std::size_t n = idx.n_records();
  out.decoded = n;
  if (n == 0) return out;
  MLVC_CHECK(n <= std::numeric_limits<std::uint32_t>::max());
  const std::size_t width = static_cast<std::size_t>(range_end - range_begin);
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  const std::vector<std::size_t> ub = chunk_units(idx);
  const std::size_t n_units = ub.size() - 1;

  std::vector<std::uint32_t> hist(n_units * width, 0);
  std::vector<Message> accs(n_units * width);
  parallel_for(std::size_t{0}, n_units, [&](std::size_t u) {
    std::uint32_t* h = hist.data() + u * width;
    Message* a = accs.data() + u * width;
    for_each_unit_record<Message>(
        data, idx, ub[u], ub[u + 1], [&](const Rec& r) {
          check_dst_in_range(r.dst, range_begin, range_end);
          const std::size_t d = r.dst - range_begin;
          a[d] = h[d] ? combine(a[d], r.payload) : r.payload;
          ++h[d];
        });
  });

  const auto wb = chunk_bounds(width, std::size_t{4096}, hardware_threads());
  const std::size_t n_wc = wb.size() - 1;
  std::vector<std::size_t> slot_base(n_wc, 0);
  parallel_for(std::size_t{0}, n_wc, [&](std::size_t wc) {
    std::size_t live = 0;
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      for (std::size_t u = 0; u < n_units; ++u) {
        if (hist[u * width + d] != 0) {
          ++live;
          break;
        }
      }
    }
    slot_base[wc] = live;
  });
  const std::size_t n_groups =
      parallel_exclusive_scan(std::span<std::size_t>(slot_base));

  out.records.resize(n_groups);
  Rec* recs = out.records.data();
  parallel_for(std::size_t{0}, n_wc, [&](std::size_t wc) {
    std::size_t slot = slot_base[wc];
    for (std::size_t d = wb[wc]; d < wb[wc + 1]; ++d) {
      Message acc{};
      bool live = false;
      for (std::size_t u = 0; u < n_units; ++u) {
        if (hist[u * width + d] == 0) continue;
        const Message& m = accs[u * width + d];
        acc = live ? combine(acc, m) : m;
        live = true;
      }
      if (live) {
        recs[slot] = Rec{static_cast<VertexId>(range_begin + d), acc};
        ++slot;
      }
    }
  });
  out.offsets.resize(n_groups + 1);
  for (std::size_t i = 0; i <= n_groups; ++i) out.offsets[i] = i;
  return out;
}

}  // namespace detail

/// Decode + group one fused interval group's raw log (destinations all in
/// [range_begin, range_end)), no combine. `policy` kAuto picks the counting
/// scatter unless the histogram would be too large relative to the record
/// count; forcing a path is for tests and ablation.
template <typename Message>
GroupedLog<Message> sort_and_group(std::span<const std::byte> bytes,
                                   VertexId range_begin, VertexId range_end,
                                   SortGroupPath policy) {
  const std::size_t n = bytes.size() / sizeof(Record<Message>);
  if (detail::choose_scatter(policy, n, range_end - range_begin)) {
    return detail::scatter_group<Message>(bytes, range_begin, range_end);
  }
  GroupedLog<Message> out;
  out.path = SortGroupPath::kComparisonSort;
  out.records = decode_records<Message>(bytes);
  out.decoded = out.records.size();
  sort_records(out.records);
  out.offsets = group_offsets(
      std::span<const Record<Message>>(out.records.data(), out.records.size()));
  return out;
}

/// As above, with the application's combine operator (§V.D) fused in: the
/// result carries exactly one record per live destination. Combine must be
/// associative and commutative — fold order differs between the two paths.
template <typename Message, typename Combine>
GroupedLog<Message> sort_and_group(std::span<const std::byte> bytes,
                                   VertexId range_begin, VertexId range_end,
                                   SortGroupPath policy, Combine&& combine) {
  const std::size_t n = bytes.size() / sizeof(Record<Message>);
  if (detail::choose_scatter(policy, n, range_end - range_begin)) {
    return detail::scatter_group_combine<Message>(
        bytes, range_begin, range_end, std::forward<Combine>(combine));
  }
  GroupedLog<Message> out;
  out.path = SortGroupPath::kComparisonSort;
  out.records = decode_records<Message>(bytes);
  out.decoded = out.records.size();
  sort_records(out.records);
  combine_sorted(out.records, std::forward<Combine>(combine));
  out.offsets = group_offsets(
      std::span<const Record<Message>>(out.records.data(), out.records.size()));
  return out;
}

// ---- v2 (chunked delta+varint) entry points --------------------------------
//
// Same contracts as sort_and_group, over a v2 chunk stream (the shape
// MultiLogStore::load_interval returns under OnDiskFormat::kV2). The stream
// must be whole chunks — the engine's torn-page funnel
// (index_log_chunks under TornPagePolicy::kTruncate) runs at load time,
// so a tear never reaches the scatter. Record order within the stream is
// append order, exactly the order the v1 byte stream carries, so both
// formats produce identical grouped output.

/// Expand a v2 chunk stream into typed records (the comparison-sort
/// fallback's decode; also used by checkpoint transcoding tests).
template <typename Message>
std::vector<Record<Message>> decode_records_v2(std::span<const std::byte> bytes) {
  std::vector<std::byte> raw;
  decode_chunks_to_records(bytes, sizeof(Record<Message>),
                           kPayloadVarint<Message>, raw);
  return decode_records<Message>(raw);
}

template <typename Message>
GroupedLog<Message> sort_and_group_v2(std::span<const std::byte> bytes,
                                      VertexId range_begin, VertexId range_end,
                                      SortGroupPath policy) {
  const LogChunkIndex idx = index_log_chunks(bytes, TornPagePolicy::kThrow);
  if (detail::choose_scatter(policy, idx.n_records(),
                             range_end - range_begin)) {
    return detail::scatter_group_v2<Message>(bytes, idx, range_begin,
                                             range_end);
  }
  GroupedLog<Message> out;
  out.path = SortGroupPath::kComparisonSort;
  out.records = decode_records_v2<Message>(bytes);
  out.decoded = out.records.size();
  sort_records(out.records);
  out.offsets = group_offsets(
      std::span<const Record<Message>>(out.records.data(), out.records.size()));
  return out;
}

template <typename Message, typename Combine>
GroupedLog<Message> sort_and_group_v2(std::span<const std::byte> bytes,
                                      VertexId range_begin, VertexId range_end,
                                      SortGroupPath policy,
                                      Combine&& combine) {
  const LogChunkIndex idx = index_log_chunks(bytes, TornPagePolicy::kThrow);
  if (detail::choose_scatter(policy, idx.n_records(),
                             range_end - range_begin)) {
    return detail::scatter_group_combine_v2<Message>(
        bytes, idx, range_begin, range_end, std::forward<Combine>(combine));
  }
  GroupedLog<Message> out;
  out.path = SortGroupPath::kComparisonSort;
  out.records = decode_records_v2<Message>(bytes);
  out.decoded = out.records.size();
  sort_records(out.records);
  combine_sorted(out.records, std::forward<Combine>(combine));
  out.offsets = group_offsets(
      std::span<const Record<Message>>(out.records.data(), out.records.size()));
  return out;
}

}  // namespace mlvc::multilog
