// The sort-and-group unit (§V.B of the paper).
//
// Loads per-interval logs (fused while they fit in the sort budget), sorts
// them in memory by destination vertex — the whole point of the multi-log:
// each interval's updates fit in host memory, so no external sort — groups
// records by destination, and optionally applies the application's combine
// operator (§V.D) before handing each group to ProcessVertex.
#pragma once

#include <algorithm>
#include <span>
#include <vector>

#include "common/parallel.hpp"
#include "multilog/record.hpp"

namespace mlvc::multilog {

/// Sort records by destination vertex id. Order of equal-destination records
/// is unspecified — vertex programs must treat their inbox as a multiset,
/// which the BSP model requires anyway.
template <typename Message>
void sort_records(std::vector<Record<Message>>& records) {
  parallel_sort(records.begin(), records.end(),
                [](const Record<Message>& a, const Record<Message>& b) {
                  return a.dst < b.dst;
                });
}

/// Invoke fn(dst, span_of_records) for every destination group in a sorted
/// record array.
template <typename Message, typename Fn>
void for_each_group(std::span<const Record<Message>> sorted, Fn&& fn) {
  std::size_t i = 0;
  while (i < sorted.size()) {
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j].dst == sorted[i].dst) ++j;
    fn(sorted[i].dst, sorted.subspan(i, j - i));
    i = j;
  }
}

/// Group boundaries of a sorted record array: indices of group starts plus a
/// final end sentinel. Lets the engine parallelize per-group processing.
template <typename Message>
std::vector<std::size_t> group_offsets(
    std::span<const Record<Message>> sorted) {
  std::vector<std::size_t> offsets;
  std::size_t i = 0;
  while (i < sorted.size()) {
    offsets.push_back(i);
    std::size_t j = i + 1;
    while (j < sorted.size() && sorted[j].dst == sorted[i].dst) ++j;
    i = j;
  }
  offsets.push_back(sorted.size());
  return offsets;
}

/// Apply a combine operator in place on a *sorted* record array: all records
/// with the same destination collapse to one. Returns the new size. This is
/// the §V.D optimization path for associative+commutative applications.
template <typename Message, typename Combine>
std::size_t combine_sorted(std::vector<Record<Message>>& records,
                           Combine&& combine) {
  if (records.empty()) return 0;
  std::size_t out = 0;
  for (std::size_t i = 1; i < records.size(); ++i) {
    if (records[i].dst == records[out].dst) {
      records[out].payload = combine(records[out].payload, records[i].payload);
    } else {
      records[++out] = records[i];
    }
  }
  records.resize(out + 1);
  return records.size();
}

}  // namespace mlvc::multilog
