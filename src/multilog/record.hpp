// Typed view over the byte-oriented multi-log.
//
// A logged record is <v_dest, m> (§V.A): a 4-byte destination header
// followed by the application's message payload. Message types must be
// trivially copyable — they are memcpy'd into log pages and back.
#pragma once

#include <cstring>
#include <span>
#include <type_traits>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "multilog/log_codec.hpp"
#include "multilog/multilog_store.hpp"

namespace mlvc::multilog {

template <typename Message>
struct Record {
  static_assert(std::is_trivially_copyable_v<Message>,
                "messages are stored in logs by memcpy");
  VertexId dst;
  Message payload;
};

template <typename Message>
inline constexpr std::size_t kRecordSize = sizeof(Record<Message>);

/// Append a typed message to the store.
template <typename Message>
void append_record(MultiLogStore& store, VertexId dst, const Message& m) {
  Record<Message> rec{dst, m};
  store.append(dst, &rec);
}

/// Append a typed message through a thread-local staging area (the lock-free
/// produce path; see MultiLogStore::Staging).
template <typename Message>
void append_record_staged(MultiLogStore& store, MultiLogStore::Staging& staging,
                          VertexId dst, const Message& m) {
  Record<Message> rec{dst, m};
  store.append_staged_fixed<sizeof(rec)>(staging, dst, &rec);
}

// TornPagePolicy lives in multilog/log_codec.hpp (shared by the v1 record
// funnel below and the v2 chunk-stream funnel).

/// v2 on-disk format: varint-encode the payload bytes after the destination
/// header when the message is a small integral with no struct padding
/// (BFS/WCC/k-core style); floats and padded records keep the fixed-width
/// fallback. Must be a pure function of the Message type — the checkpoint
/// transcoder and every store over the same app must agree.
template <typename Message>
inline constexpr bool kPayloadVarint =
    std::is_integral_v<Message> && sizeof(Message) <= 8 &&
    sizeof(Record<Message>) == sizeof(VertexId) + sizeof(Message);

/// Bytes to keep from `bytes` so the buffer is a whole number of
/// `record_size`-byte records — i.e. the length with the torn tail dropped.
inline std::size_t truncate_torn_tail(std::size_t bytes,
                                      std::size_t record_size) {
  return bytes - bytes % record_size;
}

/// Number of records in a raw log buffer, validating that the buffer is a
/// whole number of records. The store guarantees this for healthy logs, so
/// a remainder means a torn or truncated log page — every grouping path
/// (decode + sort and counting scatter alike) funnels through this check so
/// corruption surfaces as a typed mlvc::Error instead of undefined
/// behaviour. Under TornPagePolicy::kTruncate the partial tail is ignored
/// instead (the record count excludes it); the engine's recovery path uses
/// this after a crash.
template <typename Message>
std::size_t checked_record_count(std::span<const std::byte> bytes,
                                 TornPagePolicy policy = TornPagePolicy::kThrow) {
  if (policy == TornPagePolicy::kTruncate) {
    return bytes.size() / sizeof(Record<Message>);
  }
  MLVC_CHECK_MSG(bytes.size() % sizeof(Record<Message>) == 0,
                 "log buffer of " << bytes.size()
                                  << " bytes is not a whole number of "
                                  << sizeof(Record<Message>)
                                  << "-byte records — torn/truncated page?");
  return bytes.size() / sizeof(Record<Message>);
}

/// Reinterpret a loaded byte buffer as records. We copy into a properly
/// aligned vector (log pages have no alignment guarantees mid-stream).
template <typename Message>
std::vector<Record<Message>> decode_records(std::span<const std::byte> bytes) {
  std::vector<Record<Message>> out(checked_record_count<Message>(bytes));
  std::memcpy(out.data(), bytes.data(), bytes.size());
  return out;
}

}  // namespace mlvc::multilog
