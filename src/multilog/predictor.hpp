// History-based active-vertex prediction (§V.C of the paper).
//
// "If the vertex v_i was active at least once in the past N supersteps, it
// predicts the vertex to be active. More complex prediction schemes were
// considered, but this simple history-based prediction with N equal to one
// proved effective."
//
// The predictor also exposes accuracy counters for the Figure 9 experiment.
#pragma once

#include <deque>
#include <utility>

#include "common/bitset.hpp"
#include "common/types.hpp"

namespace mlvc::multilog {

class HistoryPredictor {
 public:
  /// `history_depth` is the paper's N. Depth 0 disables prediction (always
  /// predicts inactive) — used by the ablation bench.
  HistoryPredictor(VertexId num_vertices, unsigned history_depth = 1)
      : num_vertices_(num_vertices), depth_(history_depth) {}

  unsigned depth() const noexcept { return depth_; }

  /// Push the active set of a finished superstep.
  void observe(const DynamicBitset& active) {
    MLVC_CHECK(active.size() == num_vertices_);
    if (depth_ == 0) return;
    history_.push_back(active);
    if (history_.size() > depth_) history_.pop_front();
  }

  /// Will v likely be active next superstep?
  bool predict_active(VertexId v) const {
    MLVC_CHECK(v < num_vertices_);
    for (const DynamicBitset& h : history_) {
      if (h.test(v)) return true;
    }
    return false;
  }

  /// True once at least one superstep has been observed (before that,
  /// predict_active is uniformly false and range scans below are empty).
  bool has_history() const noexcept { return !history_.empty(); }

  /// Scheduler priority estimation: visit every vertex in [begin, end)
  /// predicted active next superstep. The hub-degree schedule policy weighs
  /// an interval by the out-degree mass of THIS set rather than the whole
  /// interval — the history that drives the §V.C logging decision doubles
  /// as the per-interval impact estimate. The common depth-1 case is one
  /// bitset range scan; deeper histories fall back to per-vertex checks.
  template <typename Fn>
  void for_each_predicted_in_range(VertexId begin, VertexId end,
                                   Fn&& fn) const {
    if (history_.empty()) return;
    if (history_.size() == 1) {
      history_.front().for_each_set_in_range(begin, end,
                                             std::forward<Fn>(fn));
      return;
    }
    for (VertexId v = begin; v < end; ++v) {
      if (predict_active(v)) fn(static_cast<std::size_t>(v));
    }
  }

  /// Score a finished superstep against what was predicted before it:
  /// returns (correctly predicted active, actually active).
  struct Accuracy {
    std::size_t predicted_and_active = 0;
    std::size_t active = 0;
    double recall() const {
      return active == 0 ? 0.0
                         : static_cast<double>(predicted_and_active) / active;
    }
  };
  Accuracy score(const DynamicBitset& actual_active) const {
    Accuracy acc;
    actual_active.for_each_set([&](std::size_t v) {
      ++acc.active;
      if (predict_active(static_cast<VertexId>(v))) ++acc.predicted_and_active;
    });
    return acc;
  }

 private:
  VertexId num_vertices_;
  unsigned depth_;
  std::deque<DynamicBitset> history_;
};

}  // namespace mlvc::multilog
