#include "multilog/multilog_store.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "multilog/log_codec.hpp"

namespace mlvc::multilog {

MultiLogStore::MultiLogStore(ssd::Storage& storage, std::string prefix,
                             const graph::VertexIntervals& intervals,
                             MultiLogConfig config)
    : storage_(storage),
      prefix_(std::move(prefix)),
      intervals_(&intervals),
      config_(config),
      page_size_(storage.page_size()) {
  MLVC_CHECK_MSG(config_.record_size >= sizeof(VertexId),
                 "record must at least hold the destination header");
  MLVC_CHECK_MSG(config_.record_size <= page_size_,
                 "a record must fit in one page");
  const IntervalId n = intervals.count();
  MLVC_CHECK_MSG(n > 0, "multi-log needs at least one interval");
  if (config_.buffer_budget_bytes != 0) {
    // §V.A.3: "at least one log buffer is allocated for each vertex
    // interval", so one top page per interval is mandatory resident state.
    // The budget is advisory beyond that floor (the paper's own numbers —
    // ~5000 intervals x 16 KiB vs A% = 5% of 1 GB — exceed a strict bound
    // too; their buffer is "10-100s of MBs"). We only reject budgets that
    // cannot hold even a single page.
    MLVC_CHECK_MSG(config_.buffer_budget_bytes >= page_size_,
                   "multi-log buffer budget ("
                       << config_.buffer_budget_bytes
                       << " B) smaller than one page (" << page_size_
                       << " B)");
  }
  if (config_.format == OnDiskFormat::kV2) {
    // v2 chunk streams are self-delimiting, so pages fill completely and
    // chunks straddle page boundaries — no per-page record alignment.
    usable_page_bytes_ = page_size_;
    MLVC_CHECK_MSG(!config_.payload_varint ||
                       config_.record_size - sizeof(VertexId) <= 8,
                   "varint payloads must fit a u64");
    MLVC_CHECK_MSG(kLogChunkHeaderBytes +
                           worst_chunk_record_bytes(config_.record_size,
                                                    config_.payload_varint) <=
                       0xFFFF,
                   "record too large for the v2 chunk format");
  } else {
    usable_page_bytes_ =
        (page_size_ / config_.record_size) * config_.record_size;
  }
  if (config_.staging_records > 0) {
    staging_slot_bytes_ = config_.staging_records * config_.record_size;
    if (config_.buffer_budget_bytes > 0) {
      // Worst case one thread stages a full slot for every interval; keep
      // that within the (advisory) log-buffer budget, but never below one
      // record — a 1-deep slot still batches the interval_of hoist.
      const std::size_t cap =
          std::max<std::size_t>(config_.buffer_budget_bytes / n,
                                config_.record_size);
      staging_slot_bytes_ = std::min(staging_slot_bytes_, cap);
      staging_slot_bytes_ -= staging_slot_bytes_ % config_.record_size;
    }
  }
  interval_locks_.reserve(n);
  for (IntervalId i = 0; i < n; ++i) {
    interval_locks_.push_back(std::make_unique<std::mutex>());
  }
  produce_seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(n);
  for (IntervalId i = 0; i < n; ++i) {
    produce_seq_[i].store(0, std::memory_order_relaxed);
  }
  if (config_.expect_fresh_blobs) {
    MLVC_CHECK_MSG(!storage_.has_blob(prefix_ + "/log_gen0") &&
                       !storage_.has_blob(prefix_ + "/log_gen1"),
                   "multi-log prefix '"
                       << prefix_
                       << "' already in use by a live or leaked store");
  }
  reset_generation(generations_[0], prefix_ + "/log_gen0");
  reset_generation(generations_[1], prefix_ + "/log_gen1");
}

MultiLogStore::~MultiLogStore() {
  try {
    std::lock_guard<std::mutex> lock(evict_mutex_);
    wait_background_evictions();
  } catch (...) {
    // Destructor: the log is going away, a failed flush of it is moot.
  }
}

void MultiLogStore::reset_generation(Generation& gen,
                                     const std::string& blob_name) {
  const IntervalId n = intervals_->count();
  gen.blob = &storage_.create_blob(blob_name, ssd::IoCategory::kMessageLog);
  gen.pages.assign(n, {});
  gen.top.assign(n, {});
  gen.top_fill.assign(n, 0);
  gen.counts.assign(n, 0);
  gen.next_page = 0;
}

void MultiLogStore::append_bytes_locked(Generation& gen, IntervalId i,
                                        const std::byte* data, std::size_t len,
                                        std::uint64_t n_records) {
  auto& top = gen.top[i];
  if (top.empty()) top.resize(page_size_);  // zero-fills the slack tail too
  std::size_t& fill = gen.top_fill[i];
  while (len > 0) {
    // fill and len are both whole records, so `take` is too: records never
    // straddle a page boundary and every flushed page passes
    // checked_record_count on its own.
    const std::size_t take = std::min(len, usable_page_bytes_ - fill);
    std::memcpy(top.data() + fill, data, take);
    fill += take;
    data += take;
    len -= take;
    if (fill == usable_page_bytes_) {
      // Page-granular eviction (§V.A.3): the full top page joins the batch
      // eviction queue and the interval starts a fresh one.
      queue_eviction(gen, i, top.data());
      fill = 0;
    }
  }
  gen.counts[i] += n_records;
  // Quiesce signal: every produce-side append funnels through here (both
  // call sites pass the produce generation), so the per-interval sequence
  // advances exactly when interval i's pending log grows.
  produce_seq_[i].fetch_add(n_records, std::memory_order_relaxed);
  // Logical (decoded) produce bytes, regardless of on-disk format — the
  // physical side is whatever the eviction batches hand the blob.
  storage_.stats().record_logical_write(ssd::IoCategory::kMessageLog,
                                        n_records * config_.record_size);
}

void MultiLogStore::append_single(IntervalId i, const void* record) {
  Generation& gen = generations_[produce_index_];
  if (config_.format == OnDiskFormat::kV2) {
    // One-record chunk (the locked slow path trades compression for
    // simplicity; the staged path encodes whole slots).
    thread_local std::vector<std::uint8_t> enc;
    enc.clear();
    encode_log_records(static_cast<const std::byte*>(record), 1,
                       config_.record_size, config_.payload_varint, enc);
    std::lock_guard<std::mutex> lock(*interval_locks_[i]);
    append_bytes_locked(gen, i,
                        reinterpret_cast<const std::byte*>(enc.data()),
                        enc.size(), 1);
    return;
  }
  std::lock_guard<std::mutex> lock(*interval_locks_[i]);
  append_bytes_locked(gen, i, static_cast<const std::byte*>(record),
                      config_.record_size, 1);
}

void MultiLogStore::append(VertexId dst, const void* record) {
  append_single(intervals_->interval_of(dst), record);
}

MultiLogStore::Staging MultiLogStore::make_staging() const {
  Staging s;
  // Slots exist even with staging disabled (they stay clean forever, so the
  // inline fast path never fires and falls through to the locked append) —
  // the last-interval cache must be safe to populate either way.
  s.slots_.resize(intervals_->count());
  if (staging_slot_bytes_ > 0) s.dirty_.reserve(intervals_->count());
  return s;
}

void MultiLogStore::stage_slow(Staging& staging, VertexId dst,
                               const void* record) {
  // Last-interval cache: sends walk a vertex's out-edges, which cluster in
  // destination ranges, so most lookups skip the interval_of binary search.
  if (dst < staging.cache_begin_ || dst >= staging.cache_end_) {
    staging.cache_interval_ = intervals_->interval_of(dst);
    staging.cache_begin_ = intervals_->begin(staging.cache_interval_);
    staging.cache_end_ = intervals_->end(staging.cache_interval_);
  }
  const IntervalId i = staging.cache_interval_;
  if (staging_slot_bytes_ == 0) {
    // Staging disabled: the old locked per-record path (still benefits from
    // the cached interval lookup).
    append_single(i, record);
    return;
  }
  Staging::Slot& slot = staging.slots_[i];
  if (!slot.dirty) {
    if (staging.dirty_.empty()) staging.swap_tag_ = swap_count_;
    slot.dirty = true;
    staging.dirty_.push_back(i);
    if (slot.buf.size() != staging_slot_bytes_) {
      slot.buf.resize(staging_slot_bytes_);
    }
  }
  std::memcpy(slot.buf.data() + slot.fill, record, config_.record_size);
  slot.fill += config_.record_size;
  if (slot.fill == staging_slot_bytes_) flush_slot(staging, i);
}

void MultiLogStore::flush_slot(Staging& staging, IntervalId i) {
  Staging::Slot& slot = staging.slots_[i];
  if (slot.fill == 0) return;
  MLVC_CHECK_MSG(staging.swap_tag_ == swap_count_,
                 "staging flushed across a generation swap — flush_staging() "
                 "before swap_generations()");
  const std::uint64_t n_records = slot.fill / config_.record_size;
  const std::byte* data = slot.buf.data();
  std::size_t len = slot.fill;
  // v2: delta+varint encode the staged slot on the producing thread, outside
  // the interval lock — this is where the compression work happens on the
  // lock-free produce path. Destinations within a slot cluster (sends walk
  // sorted adjacency lists), so the delta stream stays short.
  thread_local std::vector<std::uint8_t> enc;
  if (config_.format == OnDiskFormat::kV2) {
    enc.clear();
    encode_log_records(data, n_records, config_.record_size,
                       config_.payload_varint, enc);
    data = reinterpret_cast<const std::byte*>(enc.data());
    len = enc.size();
  }
  WallTimer timer;
  {
    Generation& gen = generations_[produce_index_];
    std::lock_guard<std::mutex> lock(*interval_locks_[i]);
    append_bytes_locked(gen, i, data, len, n_records);
  }
  staging.stall_seconds_ += timer.elapsed_seconds();
  ++staging.flush_count_;
  slot.fill = 0;  // keeps the buffer; slot stays on the dirty list
}

void MultiLogStore::flush_staging(Staging& staging) {
  for (IntervalId i : staging.dirty_) {
    flush_slot(staging, i);
    staging.slots_[i].dirty = false;
  }
  staging.dirty_.clear();
}

std::uint64_t MultiLogStore::produced_count(IntervalId i) const {
  MLVC_CHECK(i < intervals_->count());
  const Generation& gen = generations_[produce_index_];
  std::lock_guard<std::mutex> lock(*interval_locks_[i]);
  return gen.counts[i];
}

void MultiLogStore::queue_eviction(Generation& gen, IntervalId interval,
                                   const std::byte* page) {
  std::lock_guard<std::mutex> lock(evict_mutex_);
  gen.evict_buffer.insert(gen.evict_buffer.end(), page, page + page_size_);
  gen.evict_owners.push_back(interval);
  if (gen.evict_owners.size() >=
      std::max<std::size_t>(1, config_.evict_batch_pages)) {
    flush_evictions(gen);
  }
}

void MultiLogStore::flush_evictions(Generation& gen) {
  // Caller holds evict_mutex_. One contiguous append covers the whole batch
  // — this is what lets log write-back run at streaming bandwidth, per the
  // paper's §V.A.3 design.
  if (gen.evict_owners.empty()) return;
  if (config_.async_io == nullptr) {
    const std::uint64_t offset =
        gen.blob->append(gen.evict_buffer.data(), gen.evict_buffer.size());
    std::uint64_t page_no = offset / page_size_;
    for (IntervalId owner : gen.evict_owners) {
      gen.pages[owner].push_back(page_no++);
    }
    gen.evict_buffer.clear();
    gen.evict_owners.clear();
    return;
  }
  // Background path: reserve the blob range now so every interval's page
  // chain stays in append order (the log is a per-interval record stream —
  // order is load-bearing), then hand the batch to an I/O thread. Readers of
  // these pages are gated behind wait_background_evictions().
  const std::uint64_t offset = gen.blob->reserve(gen.evict_buffer.size());
  std::uint64_t page_no = offset / page_size_;
  for (IntervalId owner : gen.evict_owners) {
    gen.pages[owner].push_back(page_no++);
  }
  auto data = std::make_shared<std::vector<std::byte>>(
      std::move(gen.evict_buffer));
  ssd::Blob* blob = gen.blob;
  pending_evictions_.add(config_.async_io->submit(
      [blob, offset, data] { blob->write(offset, data->data(), data->size()); }));
  gen.evict_buffer.clear();
  gen.evict_owners.clear();
}

void MultiLogStore::wait_background_evictions() {
  pending_evictions_.wait();
}

void MultiLogStore::swap_generations() {
  // Everything queued for eviction must be on storage before the produce
  // generation becomes readable.
  {
    std::lock_guard<std::mutex> lock(evict_mutex_);
    flush_evictions(generations_[produce_index_]);
    wait_background_evictions();
  }
  // The consume generation's data has been fully read; recycle it as the
  // new produce generation.
  const unsigned consume = 1 - produce_index_;
  ++swap_count_;
  reset_generation(generations_[consume],
                   prefix_ + "/log_gen" + std::to_string(swap_count_ % 2) +
                       "_s" + std::to_string(swap_count_));
  produce_index_ = consume;
}

std::uint64_t MultiLogStore::current_count(IntervalId i) const {
  MLVC_CHECK(i < intervals_->count());
  return generations_[1 - produce_index_].counts[i];
}

std::uint64_t MultiLogStore::total_current_count() const {
  const Generation& gen = generations_[1 - produce_index_];
  std::uint64_t total = 0;
  for (std::uint64_t c : gen.counts) total += c;
  return total;
}

std::uint64_t MultiLogStore::current_pages(IntervalId i) const {
  MLVC_CHECK(i < intervals_->count());
  return generations_[1 - produce_index_].pages[i].size();
}

void MultiLogStore::load_interval(IntervalId i,
                                  std::vector<std::byte>& out) const {
  MLVC_CHECK(i < intervals_->count());
  const Generation& gen = generations_[1 - produce_index_];
  // v1 invariant: the physical stream is exactly the logical records. v2
  // streams are the encoded chunk bytes; the decoded size is what the
  // logical counter reports.
  const std::uint64_t logical = gen.counts[i] * config_.record_size;
  const std::uint64_t bytes = config_.format == OnDiskFormat::kV2
                                  ? stream_bytes(gen, i)
                                  : logical;
  if (bytes == 0) return;
  storage_.stats().record_logical_read(ssd::IoCategory::kMessageLog, logical);
  const std::size_t base = out.size();
  out.resize(base + bytes);
  std::byte* dst = out.data() + base;
  std::size_t written = 0;
  // Runs of adjacent page numbers (frequent thanks to batched eviction)
  // coalesce into one op each; the whole interval is then fetched with a
  // single vectored read call. When the record size does not divide the page
  // size, each page carries a zero-padded slack tail that must be skipped,
  // so pages are fetched one op each (still a single vectored call).
  const auto& pages = gen.pages[i];
  std::vector<ssd::ReadOp> ops;
  if (usable_page_bytes_ == page_size_) {
    std::size_t p = 0;
    while (p < pages.size()) {
      std::size_t q = p + 1;
      while (q < pages.size() && pages[q] == pages[q - 1] + 1) ++q;
      ops.push_back({pages[p] * page_size_, dst + written,
                     (q - p) * page_size_});
      written += (q - p) * page_size_;
      p = q;
    }
  } else {
    ops.reserve(pages.size());
    for (std::uint64_t page_no : pages) {
      ops.push_back({page_no * page_size_, dst + written, usable_page_bytes_});
      written += usable_page_bytes_;
    }
  }
  gen.blob->read_multi(ops);
  const std::size_t tail = gen.top_fill[i];
  if (tail > 0) {
    // Resident tail: never hit storage, so no I/O charged.
    std::memcpy(dst + written, gen.top[i].data(), tail);
    written += tail;
  }
  MLVC_CHECK_MSG(written == bytes,
                 "log byte accounting mismatch for interval "
                     << i << ": " << written << " vs " << bytes);
}

void MultiLogStore::reset_all() {
  {
    // Both generations are being discarded; let in-flight writes finish so
    // nothing scribbles on a recycled blob. Their errors are moot.
    std::lock_guard<std::mutex> lock(evict_mutex_);
    try {
      wait_background_evictions();
    } catch (...) {
    }
  }
  ++swap_count_;
  reset_generation(generations_[0],
                   prefix_ + "/log_reset0_s" + std::to_string(swap_count_));
  reset_generation(generations_[1],
                   prefix_ + "/log_reset1_s" + std::to_string(swap_count_));
  produce_index_ = 0;
}

void MultiLogStore::restore_current_interval(
    IntervalId i, std::span<const std::byte> bytes) {
  MLVC_CHECK(i < intervals_->count());
  std::uint64_t n_records = 0;
  if (config_.format == OnDiskFormat::kV2) {
    // The image must be a whole chunk stream (checkpoint CRCs catch tears
    // before this; a torn crash-recovery stream is truncated by the engine's
    // load funnel, not here).
    const auto checked = index_log_chunks(bytes, TornPagePolicy::kThrow);
    n_records = checked.n_records();
  } else {
    MLVC_CHECK_MSG(bytes.size() % config_.record_size == 0,
                   "restore image not a whole number of records");
    n_records = bytes.size() / config_.record_size;
  }
  Generation& gen = generations_[1 - produce_index_];
  std::lock_guard<std::mutex> lock(*interval_locks_[i]);
  MLVC_CHECK_MSG(gen.counts[i] == 0,
                 "restore into a non-empty interval log; reset_all() first");
  // Full pages to the blob, remainder into the resident tail — the same
  // physical shape a normally-written log has (usable_page_bytes_ of records
  // per page, zero-padded slack when the record size doesn't divide pages).
  std::size_t off = 0;
  std::vector<std::byte> page(page_size_, std::byte{0});
  while (bytes.size() - off >= usable_page_bytes_) {
    std::memcpy(page.data(), bytes.data() + off, usable_page_bytes_);
    const std::uint64_t blob_off = gen.blob->append(page.data(), page_size_);
    gen.pages[i].push_back(blob_off / page_size_);
    off += usable_page_bytes_;
  }
  const std::size_t tail = bytes.size() - off;
  if (tail > 0) {
    gen.top[i].assign(page_size_, std::byte{0});
    std::memcpy(gen.top[i].data(), bytes.data() + off, tail);
    gen.top_fill[i] = tail;
  }
  gen.counts[i] = n_records;
}

std::uint64_t MultiLogStore::drain_produce_interval(
    IntervalId i, std::vector<std::byte>& out) {
  MLVC_CHECK(i < intervals_->count());
  Generation& gen = generations_[produce_index_];
  // Lock order matters: interval first, then evict — the same order the
  // append path uses (queue_eviction runs under the interval lock). Holding
  // the interval lock before flushing evictions means no appender can queue
  // further pages of this interval in between, so the page list read below
  // is complete; holding evict_mutex_ across the reads keeps concurrent
  // drains/appends of *other* intervals from growing gen.pages under us.
  std::lock_guard<std::mutex> lock(*interval_locks_[i]);
  std::lock_guard<std::mutex> evict_lock(evict_mutex_);
  flush_evictions(gen);
  wait_background_evictions();
  const std::uint64_t count = gen.counts[i];
  const std::uint64_t bytes = config_.format == OnDiskFormat::kV2
                                  ? stream_bytes(gen, i)
                                  : count * config_.record_size;
  if (bytes == 0) return 0;
  storage_.stats().record_logical_read(ssd::IoCategory::kMessageLog,
                                       count * config_.record_size);
  const std::size_t base = out.size();
  out.resize(base + bytes);
  std::byte* dst = out.data() + base;
  std::size_t written = 0;
  for (std::uint64_t page_no : gen.pages[i]) {
    gen.blob->read(page_no * page_size_, dst + written, usable_page_bytes_);
    written += usable_page_bytes_;
  }
  if (gen.top_fill[i] > 0) {
    std::memcpy(dst + written, gen.top[i].data(), gen.top_fill[i]);
    written += gen.top_fill[i];
  }
  MLVC_CHECK(written == bytes);
  gen.pages[i].clear();
  gen.top_fill[i] = 0;
  gen.counts[i] = 0;
  return count;
}

}  // namespace mlvc::multilog
