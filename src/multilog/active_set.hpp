// Active vertex set (§V.B.1: ExtractActiveVert).
//
// Tracks which vertices must run in the current superstep. A vertex is
// active if it received a message last superstep or stayed active (did not
// call deactivate). Thread-safe activation so parallel vertex processing can
// mark next-superstep activations directly.
#pragma once

#include <vector>

#include "common/bitset.hpp"
#include "common/types.hpp"
#include "graph/intervals.hpp"

namespace mlvc::multilog {

class ActiveSet {
 public:
  explicit ActiveSet(VertexId num_vertices) : bits_(num_vertices) {}

  VertexId num_vertices() const noexcept {
    return static_cast<VertexId>(bits_.size());
  }

  void activate(VertexId v) { bits_.set(v); }
  bool is_active(VertexId v) const { return bits_.test(v); }
  std::size_t count() const { return bits_.count(); }
  bool empty() const { return count() == 0; }
  void clear() { bits_.clear_all(); }

  /// Ascending list of active vertices within [begin, end).
  std::vector<VertexId> active_in_range(VertexId begin, VertexId end) const {
    std::vector<VertexId> out;
    for (VertexId v = begin; v < end; ++v) {
      if (bits_.test(v)) out.push_back(v);
    }
    return out;
  }

  /// Active-vertex count within [begin, end) — the per-interval density the
  /// direction heuristic feeds on. Word-masked popcount, not a per-bit scan.
  std::size_t count_in_range(VertexId begin, VertexId end) const {
    return bits_.count_in_range(begin, end);
  }

  /// Snapshot to a plain bitset (for the history predictor).
  DynamicBitset snapshot() const { return bits_.snapshot(); }

 private:
  AtomicBitset bits_;
};

}  // namespace mlvc::multilog
