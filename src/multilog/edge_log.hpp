// The edge log (§V.C of the paper).
//
// While processing superstep s, the out-edges of vertices predicted active
// in superstep s+1 — and whose CSR pages were inefficiently utilized — are
// re-logged densely here. In superstep s+1 the graph loader fetches those
// adjacency lists from the edge log (few, dense pages) instead of the CSR
// (many, sparse pages): "when logging N active vertex outgoing edges into a
// single edge-log page, one can reduce N-1 page reads from the original
// graph".
//
// Like the message multi-log, two generations rotate at the superstep
// boundary. Entries are found via an in-memory index (vertex -> byte offset)
// whose size is capped by the edge-log budget (B% in Figure 4); once the cap
// is hit, further logging requests are declined — a graceful degradation,
// never an error.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "ssd/storage.hpp"

namespace mlvc::multilog {

struct EdgeLogConfig {
  bool with_weights = false;
  /// Cap on in-memory metadata (index + top page). 0 = uncapped.
  std::size_t buffer_budget_bytes = 0;
};

class EdgeLog {
 public:
  EdgeLog(ssd::Storage& storage, std::string prefix, EdgeLogConfig config);

  // ---- produce side (for next superstep) ----------------------------------

  /// Log v's out-edges. Returns false (and logs nothing) if the budget cap
  /// is reached. Thread-safe.
  bool log_edges(VertexId v, std::span<const VertexId> adjacency,
                 std::span<const float> weights = {});

  std::uint64_t produced_vertices() const;
  std::uint64_t produced_edges() const;

  // ---- consume side (written last superstep) -------------------------------

  bool contains(VertexId v) const;

  /// Fetch v's logged adjacency; returns false if v is not in the log.
  /// Reads are charged to IoCategory::kEdgeLog (only for spilled bytes; the
  /// resident tail costs nothing, as on real hardware).
  bool load_edges(VertexId v, std::vector<VertexId>& adjacency,
                  std::vector<float>* weights) const;

  std::uint64_t hit_count() const noexcept { return hits_; }
  std::uint64_t miss_count() const noexcept { return misses_; }

  // ---- superstep boundary --------------------------------------------------

  void swap_generations();

  /// Drop both generations (the edge log is a cache — checkpoint rollback
  /// just empties it). Unlike two swap_generations() calls, this leaves no
  /// stale consume-side index behind.
  void reset();

 private:
  struct Entry {
    std::uint64_t offset = 0;  // logical byte offset in the generation stream
    VertexId degree = 0;
  };
  struct Generation {
    ssd::Blob* blob = nullptr;
    std::unordered_map<VertexId, Entry> index;
    std::vector<std::byte> top;        // unflushed tail
    std::uint64_t flushed_bytes = 0;   // bytes already in the blob
  };

  std::size_t entry_bytes(VertexId degree) const;
  void reset_generation(Generation& gen, const std::string& name);
  void read_stream(const Generation& gen, std::uint64_t offset, void* out,
                   std::size_t len) const;

  ssd::Storage& storage_;
  std::string prefix_;
  EdgeLogConfig config_;
  std::size_t page_size_;

  mutable std::mutex mutex_;
  Generation generations_[2];
  unsigned produce_index_ = 0;
  unsigned swap_count_ = 0;
  std::uint64_t produced_edges_ = 0;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

}  // namespace mlvc::multilog
