// Page utilization tracking (§IV.C / Figures 3 and 9 of the paper).
//
// For every adjacency (colidx) page the graph loader touches, records how
// many of its bytes were actually needed. A page with >0% and <10% useful
// bytes is "inefficiently used" — the read-amplification the edge-log
// optimizer attacks. The tracker keeps the previous superstep's inefficient
// set so the optimizer can predict ("pages that use less than a threshold in
// the current superstep will be predicted as inefficiently used") and so the
// Figure 9 bench can score that prediction.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace mlvc::multilog {

class PageUtilTracker {
 public:
  /// `threshold` is the paper's 10% cutoff for "inefficiently used".
  explicit PageUtilTracker(std::size_t page_size, double threshold = 0.10)
      : page_size_(page_size), threshold_(threshold) {
    MLVC_CHECK(page_size_ > 0 && threshold_ > 0 && threshold_ <= 1.0);
  }

  /// Record that `useful_bytes` of page (blob_id, page_no) were needed by
  /// the current superstep's loads. Thread-safe: pipelined execution issues
  /// adjacency loads from I/O threads while compute proceeds.
  void record(std::uint64_t blob_id, std::uint64_t page_no,
              std::size_t useful_bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    useful_[key(blob_id, page_no)] += useful_bytes;
  }

  /// Was this page inefficiently used in the *previous* superstep? This is
  /// the optimizer's prediction signal for the current superstep.
  bool was_inefficient(std::uint64_t blob_id, std::uint64_t page_no) const {
    std::lock_guard<std::mutex> lock(mutex_);
    return previous_inefficient_.count(key(blob_id, page_no)) != 0;
  }

  struct SuperstepSummary {
    std::size_t pages_touched = 0;
    std::size_t pages_inefficient = 0;           // 0% < util < threshold
    std::size_t inefficient_predicted = 0;       // and predicted as such
    double inefficient_fraction() const {
      return pages_touched == 0
                 ? 0.0
                 : static_cast<double>(pages_inefficient) / pages_touched;
    }
    double prediction_recall() const {
      return pages_inefficient == 0
                 ? 0.0
                 : static_cast<double>(inefficient_predicted) /
                       pages_inefficient;
    }
  };

  /// Close the current superstep: classify pages, score the prediction, and
  /// roll the inefficient set into "previous".
  SuperstepSummary finish_superstep() {
    std::lock_guard<std::mutex> lock(mutex_);
    SuperstepSummary s;
    std::unordered_set<std::uint64_t> inefficient;
    for (const auto& [k, bytes] : useful_) {
      ++s.pages_touched;
      const double util =
          static_cast<double>(bytes) / static_cast<double>(page_size_);
      if (bytes > 0 && util < threshold_) {
        ++s.pages_inefficient;
        inefficient.insert(k);
        if (previous_inefficient_.count(k) != 0) ++s.inefficient_predicted;
      }
    }
    previous_inefficient_ = std::move(inefficient);
    useful_.clear();
    return s;
  }

  std::size_t page_size() const noexcept { return page_size_; }
  double threshold() const noexcept { return threshold_; }

 private:
  static std::uint64_t key(std::uint64_t blob_id, std::uint64_t page_no) {
    return blob_id * 0x9E3779B97F4A7C15ull ^ page_no;
  }

  std::size_t page_size_;
  double threshold_;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::size_t> useful_;
  std::unordered_set<std::uint64_t> previous_inefficient_;
};

}  // namespace mlvc::multilog
