// The multi-log update unit (§V.A of the paper).
//
// One message log per destination vertex interval. SendUpdate(dst, m)
// appends the fixed-size record <dst, m> to the log of dst's interval. Each
// interval keeps one page-sized "top page" buffer in host memory; a full top
// page is flushed to storage (page-granular eviction, §V.A.3). Physically,
// all flushed pages of one generation live in a single storage blob — a
// page-chained log per interval — so thousands of intervals don't need
// thousands of file descriptors, while reads/writes still hit exactly the
// interval's own pages. The device model stripes consecutive pages across
// channels, reproducing the paper's "logs interspersed across channels".
//
// Two generations exist at once: the *current* generation (written last
// superstep, now being consumed) and the *produce* generation (receiving
// this superstep's sends). swap_generations() rotates them at the superstep
// boundary.
//
// The store is byte-oriented (record_size fixed at construction) so it can
// be compiled once and unit-tested independently of any message type; the
// engine layers a typed view on top (multilog/record.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/intervals.hpp"
#include "ssd/async_io.hpp"
#include "ssd/storage.hpp"

namespace mlvc::multilog {

struct MultiLogConfig {
  /// Bytes per logged record, including the 4-byte destination header.
  std::size_t record_size = 8;

  /// On-disk layout of the flushed logs. kV1 stores fixed-width records,
  /// page-aligned (records never straddle a page). kV2 stores the
  /// delta+varint chunk stream of multilog/log_codec.hpp: pages fill
  /// completely, chunks may straddle page boundaries, and load_interval
  /// returns the encoded stream (record counts stay logical either way).
  /// The engine picks this from EngineOptions::on_disk_format; the default
  /// here stays v1 so byte-oriented unit tests keep raw-record semantics.
  OnDiskFormat format = OnDiskFormat::kV1;
  /// v2 only: varint-encode the post-destination payload bytes (small
  /// integral messages); false keeps payloads fixed-width (floats, padded
  /// records). Must match multilog::kPayloadVarint<Message> for typed use.
  bool payload_varint = false;
  /// Host memory available for top pages (A% of the budget, §V.A.3). The
  /// paper notes at least one page per interval must be resident; we enforce
  /// exactly one top page per interval and check the budget covers it.
  std::size_t buffer_budget_bytes = 0;  // 0 = don't enforce

  /// Per-thread, per-interval staging depth (records) for append_staged().
  /// A Staging object buffers up to this many records per interval with no
  /// lock and no shared state, flushing into the shared top page in one
  /// chunk. 0 = staging degrades to the per-record locked append (the old
  /// produce path). When buffer_budget_bytes is set, the depth is clamped so
  /// one thread's worst-case resident staging (every interval's slot full)
  /// stays within the budget.
  std::size_t staging_records = 0;

  /// Full pages queue in a small eviction buffer and are written to the
  /// generation blob in one batched, contiguous append of this many pages
  /// (§V.A.3: evictions are batched and striped to "maximize log writeback
  /// bandwidth"). 1 = write each page immediately.
  std::size_t evict_batch_pages = 16;

  /// When set, full eviction batches are written to the generation blob by
  /// these I/O threads instead of inline on the producing compute thread
  /// (the paper's §VI async-I/O overlap). Blob offsets — and therefore page
  /// numbers — are still assigned synchronously, so log layout and page
  /// accounting are byte-identical to the inline path. Non-owning.
  ssd::AsyncIo* async_io = nullptr;

  /// Reject construction when this prefix's generation blobs already exist.
  /// Two LIVE stores sharing a prefix silently truncate each other's logs
  /// (create_blob truncates), so context-mode engines — whose "q<id>"
  /// prefixes are unique by construction — set this to turn an id collision
  /// into a loud error. One-shot runs leave it off: rebuilding an engine
  /// over an existing storage directory is legal there (test_checkpoint
  /// does exactly that).
  bool expect_fresh_blobs = false;
};

class MultiLogStore {
 public:
  MultiLogStore(ssd::Storage& storage, std::string prefix,
                const graph::VertexIntervals& intervals, MultiLogConfig config);

  /// Waits for outstanding background eviction writes (errors are dropped —
  /// the data is being discarded anyway).
  ~MultiLogStore();

  std::size_t record_size() const noexcept { return config_.record_size; }
  OnDiskFormat format() const noexcept { return config_.format; }
  bool payload_varint() const noexcept { return config_.payload_varint; }
  IntervalId interval_count() const noexcept {
    return static_cast<IntervalId>(intervals_->count());
  }

  // ---- produce side (messages for the *next* superstep) -------------------

  /// Append one record for destination vertex `dst`. `record` must be
  /// record_size bytes whose first 4 bytes equal `dst`. Thread-safe (per
  /// interval lock).
  void append(VertexId dst, const void* record);

  /// Thread-local staging for the produce path. One Staging object belongs
  /// to exactly one thread; append_staged() touches no lock and no shared
  /// state until a slot fills (staging_records deep) and is flushed into the
  /// shared top page in one chunk — one interval-lock acquisition per chunk
  /// instead of one per record. Interval lookup is the O(1) block index
  /// (VertexIntervals::interval_of); the staging-off locked path additionally
  /// hoists it behind a last-interval cache (sends cluster by destination).
  ///
  /// Records parked in a Staging are invisible to produced_count /
  /// drain_produce_interval / swap_generations until flushed; the owner must
  /// flush_staging() before any of those read the produce generation.
  class Staging {
   public:
    Staging() = default;

    /// Flushed-chunk count and wall time spent inside flushes (the residual
    /// serialized section of the scatter path) since the last reset_stats().
    std::uint64_t flush_count() const noexcept { return flush_count_; }
    double stall_seconds() const noexcept { return stall_seconds_; }
    void reset_stats() noexcept {
      flush_count_ = 0;
      stall_seconds_ = 0;
    }

    /// Drop any buffered records without flushing them (checkpoint rollback:
    /// records staged by an aborted superstep must not leak into the next
    /// generation).
    void discard() {
      for (IntervalId i : dirty_) {
        slots_[i].fill = 0;
        slots_[i].dirty = false;
      }
      dirty_.clear();
      cache_begin_ = cache_end_ = 0;
    }

    bool empty() const noexcept { return dirty_.empty(); }

   private:
    friend class MultiLogStore;
    struct Slot {
      std::vector<std::byte> buf;  // fixed capacity once allocated
      std::size_t fill = 0;        // bytes of buf holding records
      bool dirty = false;
    };
    std::vector<Slot> slots_;          // one per interval; buffers lazily
    std::vector<IntervalId> dirty_;    // intervals with buffered records
    // Last-interval cache for the interval_of hoist.
    VertexId cache_begin_ = 0;
    VertexId cache_end_ = 0;
    IntervalId cache_interval_ = 0;
    // Generation tag: swap_count_ observed when the staging first became
    // dirty; flushing across a swap_generations() is a contract violation.
    unsigned swap_tag_ = 0;
    std::uint64_t flush_count_ = 0;
    double stall_seconds_ = 0;
  };

  /// Create a staging area sized for this store's intervals. Call once per
  /// compute thread; the result must not be shared between threads.
  Staging make_staging() const;

  /// Append one record through `staging`. Equivalent to append() record by
  /// record up to ordering: per-staging append order is preserved within an
  /// interval, interleaving between threads happens at chunk granularity.
  /// Defined inline below — the hot path (slot live, room left) is an O(1)
  /// interval lookup plus a memcpy, no lock and no shared state.
  void append_staged(Staging& staging, VertexId dst, const void* record);

  /// append_staged with the record size fixed at compile time (typed
  /// callers); kRecordSize must equal record_size().
  template <std::size_t kRecordSize>
  void append_staged_fixed(Staging& staging, VertexId dst, const void* record);

  /// Flush every buffered slot of `staging` into the shared top pages.
  void flush_staging(Staging& staging);

  /// Bytes of each flushed page that hold records. Pages always contain a
  /// whole number of records (floor(page_size / record_size) of them); when
  /// record_size does not divide the page size the slack tail of every page
  /// is zero padding, written but never read back.
  std::size_t usable_page_bytes() const noexcept { return usable_page_bytes_; }

  /// Records appended to interval i's produce-generation log so far. This is
  /// the counter §V.A.2 uses to estimate log sizes for interval fusion.
  std::uint64_t produced_count(IntervalId i) const;

  /// Per-interval producer sequence: total records ever appended to interval
  /// i's produce side, monotone across generation swaps (never reset). This
  /// is the interval-granular quiesce signal the scheduler uses: a chain
  /// records the sequence right after draining i's log, and any later
  /// mismatch means producers appended behind the drain. Lock-free read —
  /// exact whenever no appender is concurrently live for i (the engine reads
  /// it from the main thread with no parallel region active).
  std::uint64_t produce_seq(IntervalId i) const noexcept {
    return produce_seq_[i].load(std::memory_order_relaxed);
  }

  // ---- superstep boundary --------------------------------------------------

  /// Discard the consumed generation, make the produced one current. Partial
  /// top pages stay in host memory and are served from there on load (no
  /// I/O charged — they never left the host).
  void swap_generations();

  // ---- consume side (messages sent during the *previous* superstep) -------

  std::uint64_t current_count(IntervalId i) const;
  std::uint64_t total_current_count() const;

  /// Logical (decoded) byte size of interval i's current log — records x
  /// record_size regardless of on-disk format, which is what fusion planning
  /// sizes its sort budget against.
  std::uint64_t current_bytes(IntervalId i) const {
    return current_count(i) * config_.record_size;
  }

  /// Load interval i's full current log (spilled pages + resident tail) into
  /// `out`, appended. Page reads are charged to IoCategory::kMessageLog
  /// (physical bytes); the decoded size is recorded as logical bytes. Under
  /// v1 the bytes are raw records; under v2 they are the encoded chunk
  /// stream (current_bytes(i) is the decoded size).
  void load_interval(IntervalId i, std::vector<std::byte>& out) const;

  /// Number of pages interval i's current log occupies on storage.
  std::uint64_t current_pages(IntervalId i) const;

  /// Checkpoint support: replace interval i's *current* (consume-side) log
  /// with a whole-log image (as produced by load_interval). Caller must
  /// reset_all() first so both generations start empty.
  void restore_current_interval(IntervalId i, std::span<const std::byte> bytes);

  /// Drop all logs in both generations (checkpoint rollback).
  void reset_all();

  /// Asynchronous-mode support (§V.F): move everything appended to interval
  /// i's *produce* log so far into `out` and reset that log, so messages
  /// sent earlier in the same superstep can be delivered to intervals
  /// processed later ("the latest updates from the source vertices will be
  /// delivered to the target vertices, either from the current superstep or
  /// the previous one"). Returns the number of records drained.
  std::uint64_t drain_produce_interval(IntervalId i,
                                       std::vector<std::byte>& out);

 private:
  struct Generation {
    ssd::Blob* blob = nullptr;                       // flushed pages
    std::vector<std::vector<std::uint64_t>> pages;   // per-interval page nos
    std::vector<std::vector<std::byte>> top;         // per-interval tail
    std::vector<std::size_t> top_fill;               // bytes used in tail
    std::vector<std::uint64_t> counts;               // records per interval
    // Eviction queue: full pages awaiting one batched contiguous append.
    std::vector<std::byte> evict_buffer;
    std::vector<IntervalId> evict_owners;
    std::uint64_t next_page = 0;
  };

  void reset_generation(Generation& gen, const std::string& blob_name);
  /// Copy `len` stream bytes carrying `n_records` records into interval i's
  /// top page, evicting each page as it fills (to usable_page_bytes_, which
  /// is the whole page under v2 — encoded chunks straddle pages). Caller
  /// holds interval i's lock. Under v1, len is n_records whole records and
  /// records never straddle a page boundary.
  void append_bytes_locked(Generation& gen, IntervalId i,
                           const std::byte* data, std::size_t len,
                           std::uint64_t n_records);
  /// Locked-path single-record append (append() and the staging-off slow
  /// path): encodes under v2, raw copy under v1.
  void append_single(IntervalId i, const void* record);
  /// Physical stream bytes of interval i in `gen`: spilled pages plus the
  /// resident tail. Equals counts[i] * record_size under v1.
  std::uint64_t stream_bytes(const Generation& gen, IntervalId i) const {
    return gen.pages[i].size() * usable_page_bytes_ + gen.top_fill[i];
  }
  /// Flush one staging slot's buffered records under the interval lock.
  void flush_slot(Staging& staging, IntervalId i);
  /// append_staged cold path: interval-cache refresh, first touch of a slot
  /// (allocation + dirty-list insertion), and the staging-off locked append.
  void stage_slow(Staging& staging, VertexId dst, const void* record);
  void queue_eviction(Generation& gen, IntervalId interval,
                      const std::byte* page);
  void flush_evictions(Generation& gen);
  /// Block until every background eviction write issued so far has landed on
  /// storage, rethrowing the first captured I/O error. Caller must hold
  /// evict_mutex_.
  void wait_background_evictions();

  ssd::Storage& storage_;
  std::string prefix_;
  const graph::VertexIntervals* intervals_;
  MultiLogConfig config_;
  std::size_t page_size_;
  /// Record-holding prefix of every page: floor(page_size / record_size)
  /// whole records. Eviction, load and drain all work in these units.
  std::size_t usable_page_bytes_ = 0;
  /// Capacity of one staging slot in bytes (whole records); 0 = staging off.
  std::size_t staging_slot_bytes_ = 0;

  std::vector<std::unique_ptr<std::mutex>> interval_locks_;
  mutable std::mutex evict_mutex_;
  ssd::IoBatch pending_evictions_;  // guarded by evict_mutex_
  Generation generations_[2];
  unsigned produce_index_ = 0;  // generations_[produce_index_] receives sends
  unsigned swap_count_ = 0;
  /// Monotone per-interval producer sequence (see produce_seq()); bumped in
  /// append_bytes_locked, the single funnel every produce-side append passes
  /// through. Atomic so the scheduler can read it without the interval lock.
  std::unique_ptr<std::atomic<std::uint64_t>[]> produce_seq_;
};

inline void MultiLogStore::append_staged(Staging& staging, VertexId dst,
                                         const void* record) {
  if (staging_slot_bytes_ != 0) [[likely]] {
    const IntervalId i = intervals_->interval_of(dst);  // O(1) block index
    Staging::Slot& slot = staging.slots_[i];
    if (slot.dirty) [[likely]] {
      const std::size_t rs = config_.record_size;
      std::memcpy(slot.buf.data() + slot.fill, record, rs);
      slot.fill += rs;
      if (slot.fill == staging_slot_bytes_) [[unlikely]] {
        flush_slot(staging, i);
      }
      return;
    }
  }
  stage_slow(staging, dst, record);
}

/// Compile-time record-size variant of append_staged for the typed layer
/// (record.hpp): the copy collapses to a fixed-width move instead of a
/// runtime-size memcpy dispatch. kRecordSize must equal record_size() —
/// the same contract append()/append_record already rely on.
template <std::size_t kRecordSize>
void MultiLogStore::append_staged_fixed(Staging& staging, VertexId dst,
                                        const void* record) {
  if (staging_slot_bytes_ != 0) [[likely]] {
    const IntervalId i = intervals_->interval_of(dst);
    Staging::Slot& slot = staging.slots_[i];
    if (slot.dirty) [[likely]] {
      std::memcpy(slot.buf.data() + slot.fill, record, kRecordSize);
      slot.fill += kRecordSize;
      if (slot.fill == staging_slot_bytes_) [[unlikely]] {
        flush_slot(staging, i);
      }
      return;
    }
  }
  stage_slow(staging, dst, record);
}

}  // namespace mlvc::multilog
