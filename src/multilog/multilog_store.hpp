// The multi-log update unit (§V.A of the paper).
//
// One message log per destination vertex interval. SendUpdate(dst, m)
// appends the fixed-size record <dst, m> to the log of dst's interval. Each
// interval keeps one page-sized "top page" buffer in host memory; a full top
// page is flushed to storage (page-granular eviction, §V.A.3). Physically,
// all flushed pages of one generation live in a single storage blob — a
// page-chained log per interval — so thousands of intervals don't need
// thousands of file descriptors, while reads/writes still hit exactly the
// interval's own pages. The device model stripes consecutive pages across
// channels, reproducing the paper's "logs interspersed across channels".
//
// Two generations exist at once: the *current* generation (written last
// superstep, now being consumed) and the *produce* generation (receiving
// this superstep's sends). swap_generations() rotates them at the superstep
// boundary.
//
// The store is byte-oriented (record_size fixed at construction) so it can
// be compiled once and unit-tested independently of any message type; the
// engine layers a typed view on top (multilog/record.hpp).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/intervals.hpp"
#include "ssd/async_io.hpp"
#include "ssd/storage.hpp"

namespace mlvc::multilog {

struct MultiLogConfig {
  /// Bytes per logged record, including the 4-byte destination header.
  std::size_t record_size = 8;
  /// Host memory available for top pages (A% of the budget, §V.A.3). The
  /// paper notes at least one page per interval must be resident; we enforce
  /// exactly one top page per interval and check the budget covers it.
  std::size_t buffer_budget_bytes = 0;  // 0 = don't enforce

  /// Full pages queue in a small eviction buffer and are written to the
  /// generation blob in one batched, contiguous append of this many pages
  /// (§V.A.3: evictions are batched and striped to "maximize log writeback
  /// bandwidth"). 1 = write each page immediately.
  std::size_t evict_batch_pages = 16;

  /// When set, full eviction batches are written to the generation blob by
  /// these I/O threads instead of inline on the producing compute thread
  /// (the paper's §VI async-I/O overlap). Blob offsets — and therefore page
  /// numbers — are still assigned synchronously, so log layout and page
  /// accounting are byte-identical to the inline path. Non-owning.
  ssd::AsyncIo* async_io = nullptr;
};

class MultiLogStore {
 public:
  MultiLogStore(ssd::Storage& storage, std::string prefix,
                const graph::VertexIntervals& intervals, MultiLogConfig config);

  /// Waits for outstanding background eviction writes (errors are dropped —
  /// the data is being discarded anyway).
  ~MultiLogStore();

  std::size_t record_size() const noexcept { return config_.record_size; }
  IntervalId interval_count() const noexcept {
    return static_cast<IntervalId>(intervals_->count());
  }

  // ---- produce side (messages for the *next* superstep) -------------------

  /// Append one record for destination vertex `dst`. `record` must be
  /// record_size bytes whose first 4 bytes equal `dst`. Thread-safe (per
  /// interval lock).
  void append(VertexId dst, const void* record);

  /// Records appended to interval i's produce-generation log so far. This is
  /// the counter §V.A.2 uses to estimate log sizes for interval fusion.
  std::uint64_t produced_count(IntervalId i) const;

  // ---- superstep boundary --------------------------------------------------

  /// Discard the consumed generation, make the produced one current. Partial
  /// top pages stay in host memory and are served from there on load (no
  /// I/O charged — they never left the host).
  void swap_generations();

  // ---- consume side (messages sent during the *previous* superstep) -------

  std::uint64_t current_count(IntervalId i) const;
  std::uint64_t total_current_count() const;

  /// Byte size of interval i's current log (for fusion planning).
  std::uint64_t current_bytes(IntervalId i) const {
    return current_count(i) * config_.record_size;
  }

  /// Load interval i's full current log (spilled pages + resident tail) into
  /// `out`, appended. Page reads are charged to IoCategory::kMessageLog.
  void load_interval(IntervalId i, std::vector<std::byte>& out) const;

  /// Number of pages interval i's current log occupies on storage.
  std::uint64_t current_pages(IntervalId i) const;

  /// Checkpoint support: replace interval i's *current* (consume-side) log
  /// with a whole-log image (as produced by load_interval). Caller must
  /// reset_all() first so both generations start empty.
  void restore_current_interval(IntervalId i, std::span<const std::byte> bytes);

  /// Drop all logs in both generations (checkpoint rollback).
  void reset_all();

  /// Asynchronous-mode support (§V.F): move everything appended to interval
  /// i's *produce* log so far into `out` and reset that log, so messages
  /// sent earlier in the same superstep can be delivered to intervals
  /// processed later ("the latest updates from the source vertices will be
  /// delivered to the target vertices, either from the current superstep or
  /// the previous one"). Returns the number of records drained.
  std::uint64_t drain_produce_interval(IntervalId i,
                                       std::vector<std::byte>& out);

 private:
  struct Generation {
    ssd::Blob* blob = nullptr;                       // flushed pages
    std::vector<std::vector<std::uint64_t>> pages;   // per-interval page nos
    std::vector<std::vector<std::byte>> top;         // per-interval tail
    std::vector<std::size_t> top_fill;               // bytes used in tail
    std::vector<std::uint64_t> counts;               // records per interval
    // Eviction queue: full pages awaiting one batched contiguous append.
    std::vector<std::byte> evict_buffer;
    std::vector<IntervalId> evict_owners;
    std::uint64_t next_page = 0;
  };

  void reset_generation(Generation& gen, const std::string& blob_name);
  void queue_eviction(Generation& gen, IntervalId interval,
                      const std::byte* page);
  void flush_evictions(Generation& gen);
  /// Block until every background eviction write issued so far has landed on
  /// storage, rethrowing the first captured I/O error. Caller must hold
  /// evict_mutex_.
  void wait_background_evictions();

  ssd::Storage& storage_;
  std::string prefix_;
  const graph::VertexIntervals* intervals_;
  MultiLogConfig config_;
  std::size_t page_size_;

  std::vector<std::unique_ptr<std::mutex>> interval_locks_;
  mutable std::mutex evict_mutex_;
  ssd::IoBatch pending_evictions_;  // guarded by evict_mutex_
  Generation generations_[2];
  unsigned produce_index_ = 0;  // generations_[produce_index_] receives sends
  unsigned swap_count_ = 0;
};

}  // namespace mlvc::multilog
