// Modeled near-storage (computational-storage) combine.
//
// On a striped store the raw message log for one fused interval group is
// spread over N devices in stripe_unit extents. The host combine path ships
// every raw record across the bus and reduces it in one counting scatter.
// A computational-storage device can instead reduce the records *it holds*
// before they leave the drive — per-device reduction tables — so only one
// record per live destination per device crosses the bus, and the host
// finishes with a small merge. This header models that split exactly: the
// loaded log buffer is partitioned into the per-device sub-streams the
// stripe layout implies, each sub-stream is grouped+combined independently
// ("inside" its device), and the reduced outputs are merged on the host.
//
// The result is identical to the host path up to combine fold order: exact
// for idempotent combines (BFS/WCC min), within rounding for floating sums
// (PageRank). The bus-traffic delta — raw log bytes vs reduced record
// bytes — is reported through DeviceCombineStats so IoStats can expose the
// bytes-crossed-bus ablation (nvmevirt-graph-ISC's 4-CSD aggregation
// design, see ROADMAP).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "multilog/log_codec.hpp"
#include "multilog/record.hpp"
#include "multilog/sort_group.hpp"

namespace mlvc::multilog {

/// Traffic model for one device-side combine invocation.
struct DeviceCombineStats {
  /// Raw records entering the per-device reduction tables.
  std::uint64_t records_in = 0;
  /// Records surviving them (what actually crosses the bus).
  std::uint64_t records_out = 0;
  /// Bytes the host path would have moved: the raw log buffer as loaded.
  std::uint64_t raw_bytes = 0;
  /// Bytes crossing the bus under device combine: the reduced records.
  std::uint64_t bus_bytes = 0;
};

namespace detail {

/// Partition the loaded log buffer into the per-device sub-streams the
/// stripe layout implies. v1 fixed-width records are assigned in blocks of
/// one stripe unit's worth of records (a record that straddles a stripe
/// boundary is charged to the stripe holding its first byte); v2
/// self-delimiting chunks are walked whole, accumulating ~stripe_unit
/// bytes per device before rotating — both mirror where the bytes
/// physically live without splitting any record across devices.
inline std::vector<std::vector<std::byte>> split_by_device(
    std::span<const std::byte> bytes, bool v2_format, std::size_t record_size,
    unsigned num_devices, std::size_t stripe_unit) {
  std::vector<std::vector<std::byte>> per_dev(num_devices);
  if (bytes.empty()) return per_dev;
  if (!v2_format) {
    const std::size_t block_records = std::max<std::size_t>(
        1, stripe_unit / record_size);
    const std::size_t block_bytes = block_records * record_size;
    std::size_t pos = 0;
    unsigned dev = 0;
    while (pos < bytes.size()) {
      const std::size_t n = std::min(block_bytes, bytes.size() - pos);
      per_dev[dev].insert(per_dev[dev].end(), bytes.begin() + pos,
                          bytes.begin() + pos + n);
      pos += n;
      dev = (dev + 1) % num_devices;
    }
    return per_dev;
  }
  // v2: whole chunks only — a chunk is the decode unit, so every device's
  // sub-stream stays independently decodable.
  const LogChunkIndex idx = index_log_chunks(bytes, TornPagePolicy::kThrow);
  unsigned dev = 0;
  std::size_t acc = 0;
  for (std::size_t c = 0; c < idx.chunk_offsets.size(); ++c) {
    const std::size_t begin = idx.chunk_offsets[c];
    const std::size_t end = c + 1 < idx.chunk_offsets.size()
                                ? idx.chunk_offsets[c + 1]
                                : idx.valid_bytes;
    per_dev[dev].insert(per_dev[dev].end(), bytes.begin() + begin,
                        bytes.begin() + end);
    acc += end - begin;
    if (acc >= stripe_unit) {
      dev = (dev + 1) % num_devices;
      acc = 0;
    }
  }
  return per_dev;
}

}  // namespace detail

/// Group + combine one fused interval group's log with the combine step
/// placed device-side. Drop-in replacement for the combining
/// sort_and_group / sort_and_group_v2 calls: same grouped-output contract
/// (records ascending by dst, offsets with end sentinel, one record per
/// live destination). Devices are processed in device order — each
/// device's reduction is internally deterministic — so the result is
/// reproducible run to run.
template <typename Message, typename Combine>
GroupedLog<Message> device_side_combine(
    std::span<const std::byte> bytes, bool v2_format, VertexId range_begin,
    VertexId range_end, SortGroupPath policy, unsigned num_devices,
    std::size_t stripe_unit, Combine&& combine,
    DeviceCombineStats* stats = nullptr) {
  std::vector<std::vector<std::byte>> per_dev = detail::split_by_device(
      bytes, v2_format, sizeof(Record<Message>), num_devices, stripe_unit);

  GroupedLog<Message> out;
  DeviceCombineStats st;
  st.raw_bytes = bytes.size();
  bool path_set = false;
  for (const std::vector<std::byte>& sub : per_dev) {
    if (sub.empty()) continue;
    // "Inside" device d: reduce its resident records with its own table.
    GroupedLog<Message> reduced =
        v2_format ? sort_and_group_v2<Message>(sub, range_begin, range_end,
                                               policy, combine)
                  : sort_and_group<Message>(sub, range_begin, range_end,
                                            policy, combine);
    st.records_in += reduced.decoded;
    st.records_out += reduced.records.size();
    out.decoded += reduced.decoded;
    if (!path_set) {
      out.path = reduced.path;
      path_set = true;
    }
    out.records.insert(out.records.end(),
                       std::make_move_iterator(reduced.records.begin()),
                       std::make_move_iterator(reduced.records.end()));
  }
  st.bus_bytes = st.records_out * sizeof(Record<Message>);

  // Host-side merge of the per-device reduced streams: at most num_devices
  // records per destination remain, so this pass is small by construction.
  sort_records(out.records);
  combine_sorted(out.records, std::forward<Combine>(combine));
  out.offsets = group_offsets(
      std::span<const Record<Message>>(out.records.data(), out.records.size()));
  if (stats) *stats = st;
  return out;
}

}  // namespace mlvc::multilog
