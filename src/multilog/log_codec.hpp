// Chunked delta+varint codec for the v2 on-disk message-log format.
//
// A v2 log is a byte stream of self-delimiting chunks; the multi-log's pages
// are plain page_size slices of that stream, so chunks may straddle page
// boundaries and concatenating two valid streams yields a valid stream (the
// engine concatenates interval logs before sort-and-group). Chunk layout:
//
//   [u16 n_records][u16 dst_bytes][u16 body_bytes]   6-byte header
//   [dst stream:      dst_bytes]                      first dst absolute
//                                                     uvarint, rest zigzag'd
//                                                     deltas (send order)
//   [payload area:    body_bytes - dst_bytes]         one payload per record,
//                                                     uvarint when
//                                                     payload_varint, else
//                                                     record_size - 4 raw
//                                                     bytes each
//
// Destinations within a staged chunk cluster (sends walk sorted adjacency
// lists), so the delta stream is short; incompressible payloads (floats)
// keep their fixed width. Record order within a chunk is append order — the
// decoder reproduces the exact record sequence of the v1 stream, so both
// formats group to identical results.
//
// Torn-page funnel: a crash can only shorten the stream, so a tear shows up
// in the header-only walk as a stream ending mid-header or mid-chunk.
// TornPagePolicy::kTruncate drops the partial chunk; kThrow surfaces a typed
// mlvc::Error. A header that cannot be valid at any length (zero records,
// dst stream larger than the body) is corruption, not truncation, and
// always throws.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "common/varint.hpp"

namespace mlvc::multilog {

/// What to do when a raw log buffer ends mid-record (v1) or mid-chunk (v2) —
/// a torn or truncated trailing page left by a crash mid-append.
enum class TornPagePolicy {
  kThrow,     // strict: surface as a typed mlvc::Error
  kTruncate,  // recovery: drop the partial tail and continue
};

inline constexpr std::size_t kLogChunkHeaderBytes = 6;

/// Encoder cap on records per chunk (the u16 body size field caps it harder
/// for large records). Bounds the decoder's per-chunk scratch.
inline constexpr std::size_t kLogChunkMaxRecords = 4096;

/// Worst-case encoded bytes one record can add to a chunk body: a u32
/// destination varint (absolute or zigzag'd delta) is at most 5 bytes.
inline std::size_t worst_chunk_record_bytes(std::size_t record_size,
                                            bool payload_varint) {
  return 5 + (payload_varint ? kMaxVarintBytes
                             : record_size - sizeof(VertexId));
}

inline std::size_t max_records_per_chunk(std::size_t record_size,
                                         bool payload_varint) {
  const std::size_t per = worst_chunk_record_bytes(record_size, payload_varint);
  return std::max<std::size_t>(
      1, std::min<std::size_t>(kLogChunkMaxRecords, 0xFFFF / per));
}

struct LogChunkHeader {
  std::size_t n_records = 0;
  std::size_t dst_bytes = 0;
  std::size_t body_bytes = 0;
};

/// Parse a header the caller has verified has kLogChunkHeaderBytes of room.
inline LogChunkHeader read_chunk_header(const std::uint8_t* p) {
  std::uint16_t n = 0, d = 0, b = 0;
  std::memcpy(&n, p + 0, 2);
  std::memcpy(&d, p + 2, 2);
  std::memcpy(&b, p + 4, 2);
  return {n, d, b};
}

/// Encode `n` fixed-width records (first 4 bytes = destination id) into the
/// chunk stream appended to `out`. Splits into multiple chunks so every size
/// field fits u16. payload_varint requires the payload to be at most 8 bytes
/// (it is read as a little-endian u64 bit pattern and round-trips exactly,
/// signed or not).
inline void encode_log_records(const std::byte* records, std::size_t n,
                               std::size_t record_size, bool payload_varint,
                               std::vector<std::uint8_t>& out) {
  const std::size_t payload_bytes = record_size - sizeof(VertexId);
  MLVC_CHECK_MSG(!payload_varint || payload_bytes <= 8,
                 "varint payloads must fit a u64");
  const std::size_t per_chunk =
      max_records_per_chunk(record_size, payload_varint);
  std::size_t off = 0;
  while (off < n) {
    const std::size_t take = std::min(n - off, per_chunk);
    const std::size_t header_pos = out.size();
    out.resize(header_pos + kLogChunkHeaderBytes);
    std::int64_t prev = 0;
    for (std::size_t k = 0; k < take; ++k) {
      VertexId dst = 0;
      std::memcpy(&dst, records + (off + k) * record_size, sizeof(VertexId));
      const std::int64_t cur = static_cast<std::int64_t>(dst);
      if (k == 0) {
        put_uvarint(out, static_cast<std::uint64_t>(cur));
      } else {
        put_uvarint(out, zigzag_encode(cur - prev));
      }
      prev = cur;
    }
    const std::size_t dst_bytes = out.size() - header_pos - kLogChunkHeaderBytes;
    for (std::size_t k = 0; k < take; ++k) {
      const std::byte* payload =
          records + (off + k) * record_size + sizeof(VertexId);
      if (payload_varint) {
        std::uint64_t v = 0;
        std::memcpy(&v, payload, payload_bytes);
        put_uvarint(out, v);
      } else {
        const auto* p = reinterpret_cast<const std::uint8_t*>(payload);
        out.insert(out.end(), p, p + payload_bytes);
      }
    }
    const std::size_t body = out.size() - header_pos - kLogChunkHeaderBytes;
    MLVC_CHECK(take <= 0xFFFF && dst_bytes <= 0xFFFF && body <= 0xFFFF);
    const std::uint16_t h[3] = {static_cast<std::uint16_t>(take),
                                static_cast<std::uint16_t>(dst_bytes),
                                static_cast<std::uint16_t>(body)};
    std::memcpy(out.data() + header_pos, h, kLogChunkHeaderBytes);
    off += take;
  }
}

/// One serial header walk over a chunk stream: per-chunk byte offsets plus a
/// record-count prefix sum (rec_offsets[c] = records before chunk c). This is
/// the torn-page funnel for v2 — see TornPagePolicy above for tear vs
/// corruption semantics.
struct LogChunkIndex {
  std::vector<std::size_t> chunk_offsets;  // start byte of each whole chunk
  std::vector<std::size_t> rec_offsets;    // size chunk_offsets.size() + 1
  std::size_t valid_bytes = 0;             // prefix covered by whole chunks
  std::size_t dropped_bytes = 0;           // torn tail (kTruncate only)
  std::uint64_t n_records() const { return rec_offsets.back(); }
};

inline LogChunkIndex index_log_chunks(std::span<const std::byte> bytes,
                                      TornPagePolicy policy) {
  LogChunkIndex idx;
  idx.rec_offsets.push_back(0);
  const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
  std::size_t pos = 0;
  bool torn = false;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kLogChunkHeaderBytes) {
      torn = true;
      break;
    }
    const LogChunkHeader h = read_chunk_header(data + pos);
    // Each destination varint is at least one byte, so a valid header has
    // dst_bytes in [n_records, body_bytes]. Violations cannot come from a
    // shortened stream — they are corruption and throw under either policy.
    MLVC_CHECK_MSG(h.n_records > 0 && h.dst_bytes >= h.n_records &&
                       h.dst_bytes <= h.body_bytes,
                   "corrupt log chunk header at byte "
                       << pos << " (" << h.n_records << " records, "
                       << h.dst_bytes << " dst bytes, " << h.body_bytes
                       << " body bytes)");
    if (bytes.size() - pos - kLogChunkHeaderBytes < h.body_bytes) {
      torn = true;
      break;
    }
    idx.chunk_offsets.push_back(pos);
    idx.rec_offsets.push_back(idx.rec_offsets.back() + h.n_records);
    pos += kLogChunkHeaderBytes + h.body_bytes;
  }
  if (torn) {
    MLVC_CHECK_MSG(policy == TornPagePolicy::kTruncate,
                   "log chunk stream ends mid-chunk at byte "
                       << pos << " of " << bytes.size()
                       << " — torn/truncated page?");
    idx.dropped_bytes = bytes.size() - pos;
  }
  idx.valid_bytes = pos;
  return idx;
}

/// Decode one chunk's destination stream, calling fn(dst) per record in
/// append order. Varint truncation/overflow inside the body surfaces as a
/// typed mlvc::Error (the header walk only validates chunk framing).
template <typename Fn>
void for_each_chunk_dst(const std::uint8_t* chunk, const LogChunkHeader& h,
                        Fn&& fn) {
  const std::uint8_t* cur = chunk + kLogChunkHeaderBytes;
  const std::uint8_t* end = cur + h.dst_bytes;
  std::int64_t prev = 0;
  for (std::size_t k = 0; k < h.n_records; ++k) {
    std::int64_t v;
    if (k == 0) {
      v = static_cast<std::int64_t>(get_uvarint(&cur, end));
    } else {
      v = prev + zigzag_decode(get_uvarint(&cur, end));
    }
    if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX)) {
      throw Error("log chunk: delta-decoded destination out of u32 range");
    }
    fn(static_cast<VertexId>(v));
    prev = v;
  }
  MLVC_CHECK_MSG(cur == end, "log chunk dst stream length mismatch");
}

/// Inverse of encode_log_records over a whole (healthy) stream: expand
/// chunks back to fixed-width records, appended to `out`. Used by the
/// checkpoint transcoder and the comparison-sort fallback.
inline void decode_chunks_to_records(std::span<const std::byte> chunks,
                                     std::size_t record_size,
                                     bool payload_varint,
                                     std::vector<std::byte>& out) {
  const LogChunkIndex idx = index_log_chunks(chunks, TornPagePolicy::kThrow);
  const std::size_t payload_bytes = record_size - sizeof(VertexId);
  const auto* data = reinterpret_cast<const std::uint8_t*>(chunks.data());
  std::size_t base = out.size();
  out.resize(base + idx.n_records() * record_size);
  for (std::size_t c = 0; c < idx.chunk_offsets.size(); ++c) {
    const std::uint8_t* chunk = data + idx.chunk_offsets[c];
    const LogChunkHeader h = read_chunk_header(chunk);
    std::byte* rec = out.data() + base;
    for_each_chunk_dst(chunk, h, [&](VertexId dst) {
      std::memcpy(rec, &dst, sizeof(VertexId));
      rec += record_size;
    });
    const std::uint8_t* cur = chunk + kLogChunkHeaderBytes + h.dst_bytes;
    const std::uint8_t* end = chunk + kLogChunkHeaderBytes + h.body_bytes;
    rec = out.data() + base;
    for (std::size_t k = 0; k < h.n_records; ++k) {
      std::byte* payload = rec + sizeof(VertexId);
      if (payload_varint) {
        const std::uint64_t v = get_uvarint(&cur, end);
        std::memcpy(payload, &v, payload_bytes);
      } else {
        MLVC_CHECK_MSG(static_cast<std::size_t>(end - cur) >= payload_bytes,
                       "log chunk payload area truncated");
        std::memcpy(payload, cur, payload_bytes);
        cur += payload_bytes;
      }
      rec += record_size;
    }
    MLVC_CHECK_MSG(cur == end, "log chunk payload area length mismatch");
    base += h.n_records * record_size;
  }
}

/// encode_log_records over an untyped record image (checkpoint transcoder's
/// v1 -> v2 direction). `records.size()` must be whole records.
inline void encode_records_to_chunks(std::span<const std::byte> records,
                                     std::size_t record_size,
                                     bool payload_varint,
                                     std::vector<std::uint8_t>& out) {
  MLVC_CHECK_MSG(records.size() % record_size == 0,
                 "record image not a whole number of records");
  encode_log_records(records.data(), records.size() / record_size, record_size,
                     payload_varint, out);
}

}  // namespace mlvc::multilog
