// GraphChi-style shard storage (§II.A of the paper; Kyrola et al., OSDI'12).
//
// The graph is split into P vertex intervals; shard i holds every in-edge of
// interval i, sorted by source vertex. Messages travel as edge values: a
// send writes the payload into the out-edge's record; the destination reads
// it from its in-edge when its shard is the memory shard.
//
// Because the engines here run strict BSP (so results are comparable across
// engines), each edge record carries *two* payload slots selected by
// superstep parity — writes at superstep s go to slot s%2, reads at s
// consume slot (s-1)%2. A single-slot design would overwrite messages that
// the destination interval (processed later in the same superstep) has not
// consumed yet. This grows GraphChi's records slightly; the comparison is
// thereby conservative in GraphChi's favor on a per-page basis (its shards
// hold fewer edges per page, but MultiLogVC's advantage in the paper comes
// from skipping whole shards, not from record width).
//
// Record layout (byte-oriented; payload width fixed at construction):
//   u32 src | u32 dst | u16 stamp0 | u16 stamp1 | payload0 | payload1
// stampX = (superstep that wrote slot X) mod 2^16, kNoStamp if empty; the
// run cap (max_supersteps) keeps stamps far below the 16-bit wrap.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"
#include "graph/intervals.hpp"
#include "ssd/storage.hpp"

namespace mlvc::graphchi {

class ShardedGraph {
 public:
  static constexpr std::uint16_t kNoStamp = 0xFFFFu;

  ShardedGraph(ssd::Storage& storage, std::string prefix,
               const graph::CsrGraph& csr, graph::VertexIntervals intervals,
               std::size_t payload_bytes);

  const graph::VertexIntervals& intervals() const noexcept {
    return intervals_;
  }
  ssd::Storage& storage() const noexcept { return storage_; }
  IntervalId num_shards() const noexcept { return intervals_.count(); }
  VertexId num_vertices() const noexcept { return intervals_.num_vertices(); }
  EdgeIndex num_edges() const noexcept { return num_edges_; }

  std::size_t payload_bytes() const noexcept { return payload_bytes_; }
  std::size_t record_size() const noexcept { return record_size_; }

  // Field offsets within a record.
  std::size_t src_offset() const noexcept { return 0; }
  std::size_t dst_offset() const noexcept { return 4; }
  std::size_t stamp_offset(unsigned slot) const noexcept {
    return 8 + 2 * slot;
  }
  std::size_t payload_offset(unsigned slot) const noexcept {
    return 12 + payload_bytes_ * slot;
  }

  EdgeIndex shard_edge_count(IntervalId shard) const;

  /// Record-index range [first, last) of edges in `shard` whose source lies
  /// in `src_interval` (the sliding window).
  struct WindowRange {
    EdgeIndex first = 0;
    EdgeIndex last = 0;
    EdgeIndex count() const { return last - first; }
  };
  WindowRange window(IntervalId shard, IntervalId src_interval) const;

  /// Load record range [first, last) of a shard (page-accounted, kShard).
  void load_records(IntervalId shard, EdgeIndex first, EdgeIndex last,
                    std::vector<std::byte>& out) const;
  /// Write the range back.
  void store_records(IntervalId shard, EdgeIndex first,
                     std::span<const std::byte> bytes);

 private:
  ssd::Storage& storage_;
  std::string prefix_;
  graph::VertexIntervals intervals_;
  std::size_t payload_bytes_;
  std::size_t record_size_;
  EdgeIndex num_edges_ = 0;
  std::vector<ssd::Blob*> shard_blobs_;
  /// window_starts_[shard][j] = first record of shard whose src is in
  /// interval j; entry [shard][P] is the shard's edge count.
  std::vector<std::vector<EdgeIndex>> window_starts_;
};

/// Interval partition for GraphChi: each interval's in-edges (one shard)
/// plus its out-edges (the windows it drags in) must fit the execution
/// memory. `record_size` is the shard record size for the app's payload.
graph::VertexIntervals partition_for_shards(const graph::CsrGraph& csr,
                                            std::size_t record_size,
                                            std::size_t memory_budget_bytes);

}  // namespace mlvc::graphchi
