#include "graphchi/sharded_graph.hpp"

#include <cstring>

#include "common/error.hpp"

namespace mlvc::graphchi {

ShardedGraph::ShardedGraph(ssd::Storage& storage, std::string prefix,
                           const graph::CsrGraph& csr,
                           graph::VertexIntervals intervals,
                           std::size_t payload_bytes)
    : storage_(storage),
      prefix_(std::move(prefix)),
      intervals_(std::move(intervals)),
      payload_bytes_((payload_bytes + 3) / 4 * 4),  // keep records u32-aligned
      record_size_(12 + 2 * payload_bytes_),
      num_edges_(csr.num_edges()) {
  MLVC_CHECK_MSG(intervals_.num_vertices() == csr.num_vertices(),
                 "interval boundaries do not cover the graph");
  const IntervalId p = intervals_.count();
  MLVC_CHECK_MSG(p > 0, "sharded graph needs at least one interval");

  shard_blobs_.resize(p);
  window_starts_.assign(p, std::vector<EdgeIndex>(p + 1, 0));

  // Per-shard append buffers; iterating the CSR by ascending source yields
  // each shard's records already sorted by src — exactly the shard invariant.
  constexpr std::size_t kFlushRecords = 16 * 1024;
  std::vector<std::vector<std::byte>> buffers(p);
  std::vector<EdgeIndex> shard_counts(p, 0);
  for (IntervalId i = 0; i < p; ++i) {
    shard_blobs_[i] = &storage_.create_blob(
        prefix_ + "/shard_" + std::to_string(i), ssd::IoCategory::kShard);
    buffers[i].reserve(kFlushRecords * record_size_);
  }

  std::vector<std::byte> record(record_size_);
  for (std::byte& b : record) b = std::byte{0};
  IntervalId src_interval = 0;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    while (v >= intervals_.end(src_interval)) ++src_interval;
    for (VertexId dst : csr.neighbors(v)) {
      const IntervalId shard = intervals_.interval_of(dst);
      std::memcpy(record.data() + src_offset(), &v, sizeof(VertexId));
      std::memcpy(record.data() + dst_offset(), &dst, sizeof(VertexId));
      const std::uint16_t no_stamp = kNoStamp;
      std::memcpy(record.data() + stamp_offset(0), &no_stamp, 2);
      std::memcpy(record.data() + stamp_offset(1), &no_stamp, 2);
      auto& buf = buffers[shard];
      buf.insert(buf.end(), record.begin(), record.end());
      if (buf.size() >= kFlushRecords * record_size_) {
        shard_blobs_[shard]->append(buf.data(), buf.size());
        buf.clear();
      }
      ++shard_counts[shard];
      // Tally per (shard, src_interval); prefix-summed into window starts
      // below.
      ++window_starts_[shard][src_interval + 1];
    }
  }
  for (IntervalId i = 0; i < p; ++i) {
    if (!buffers[i].empty()) {
      shard_blobs_[i]->append(buffers[i].data(), buffers[i].size());
    }
    for (IntervalId j = 1; j <= p; ++j) {
      window_starts_[i][j] += window_starts_[i][j - 1];
    }
    MLVC_CHECK(window_starts_[i][p] == shard_counts[i]);
  }
}

EdgeIndex ShardedGraph::shard_edge_count(IntervalId shard) const {
  MLVC_CHECK(shard < num_shards());
  return window_starts_[shard][num_shards()];
}

ShardedGraph::WindowRange ShardedGraph::window(IntervalId shard,
                                               IntervalId src_interval) const {
  MLVC_CHECK(shard < num_shards() && src_interval < num_shards());
  return {window_starts_[shard][src_interval],
          window_starts_[shard][src_interval + 1]};
}

void ShardedGraph::load_records(IntervalId shard, EdgeIndex first,
                                EdgeIndex last,
                                std::vector<std::byte>& out) const {
  MLVC_CHECK(shard < num_shards() && first <= last &&
             last <= shard_edge_count(shard));
  out.resize((last - first) * record_size_);
  if (out.empty()) return;
  shard_blobs_[shard]->read(first * record_size_, out.data(), out.size());
}

void ShardedGraph::store_records(IntervalId shard, EdgeIndex first,
                                 std::span<const std::byte> bytes) {
  MLVC_CHECK(shard < num_shards());
  MLVC_CHECK(bytes.size() % record_size_ == 0);
  shard_blobs_[shard]->write(first * record_size_, bytes.data(), bytes.size());
}

graph::VertexIntervals partition_for_shards(const graph::CsrGraph& csr,
                                            std::size_t record_size,
                                            std::size_t memory_budget_bytes) {
  // GraphChi's rule: a shard (the interval's in-edges) fits in the memory
  // budget; the out-edge windows are streamed through sliding buffers, not
  // held resident. Over-sharding must be avoided — with P shards every
  // superstep performs O(P^2) window loads, and each window load touches at
  // least one page, so an inflated P floods the page counters with sub-page
  // reads real GraphChi deployments do not see.
  const auto in_degrees = csr.in_degrees();
  return graph::VertexIntervals::partition_by_in_degree(
      in_degrees, record_size, memory_budget_bytes);
}

}  // namespace mlvc::graphchi
