// The GraphChi baseline engine (§II.A and §VI of the paper).
//
// Parallel-sliding-windows execution: for each vertex interval, load its
// whole shard (all in-edges) plus the interval's out-edge windows from every
// other shard, process vertices, write modified blocks back. The defining
// property the paper exploits: even one active vertex in an interval forces
// the entire shard (and all its windows) to be read — shard I/O does not
// shrink with the active set.
//
// Semantics are strict BSP (messages sent at superstep s are consumed at
// s+1, via the double-slot records in ShardedGraph), so any application
// produces identical results on this engine and on MultiLogVC — the
// equivalence the integration tests assert.
#pragma once

#include <atomic>
#include <cstring>

#include "common/bitset.hpp"
#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/message_range.hpp"
#include "core/options.hpp"
#include "core/stats.hpp"
#include "core/vertex_program.hpp"
#include "core/vertex_value_store.hpp"
#include "graphchi/sharded_graph.hpp"

namespace mlvc::graphchi {

struct GraphChiOptions {
  std::size_t memory_budget_bytes = 64_MiB;
  Superstep max_supersteps = 15;
  std::uint64_t seed = 1;
  bool values_on_storage = true;
};

template <core::VertexApp App>
class GraphChiEngine {
 public:
  using Value = typename App::Value;
  using Message = typename App::Message;

  GraphChiEngine(ssd::Storage& storage, const graph::CsrGraph& csr, App app,
                 GraphChiOptions options)
      : app_(std::move(app)),
        options_(options),
        shards_(storage, "graphchi", csr,
                partition_for_shards(csr, 12 + 2 * ((sizeof(Message) + 3) / 4 * 4),
                                     options.memory_budget_bytes),
                sizeof(Message)),
        values_(storage, "graphchi/values", csr.num_vertices(),
                [this](VertexId v) { return app_.initial_value(v); },
                options.values_on_storage),
        sticky_active_(csr.num_vertices()) {
    MLVC_CHECK_MSG(!App::kNeedsWeights,
                   "the GraphChi baseline stores messages in edge values and "
                   "does not materialize separate edge weights");
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      if (app_.initially_active(v)) sticky_active_.set(v);
    }
    stats_.engine = "GraphChi";
    stats_.app = app_.name();
  }

  template <typename StepFn>
  core::RunStats run_with_callback(StepFn&& on_superstep) {
    std::uint64_t prev_messages = 0;
    for (Superstep s = 0; s < options_.max_supersteps; ++s) {
      const bool any_input = (s == 0) || prev_messages > 0 ||
                             sticky_active_.count() > 0;
      if (!any_input) break;
      if (s == 0 && sticky_active_.count() == 0) break;
      core::SuperstepStats step = execute_superstep(s);
      prev_messages = step.messages_produced;
      const bool keep_going = on_superstep(step);
      stats_.supersteps.push_back(std::move(step));
      if (!keep_going) break;
    }
    return stats_;
  }

  core::RunStats run() {
    return run_with_callback([](const core::SuperstepStats&) { return true; });
  }

  std::vector<Value> values() const { return values_.all(); }
  const core::RunStats& stats() const { return stats_; }
  const ShardedGraph& shards() const { return shards_; }

  // ---- context -------------------------------------------------------------
  class Context {
   public:
    Context(GraphChiEngine& engine, VertexId v, Superstep s,
            std::span<std::byte* const> out_records, Value value)
        : engine_(engine),
          v_(v),
          superstep_(s),
          out_records_(out_records),
          value_(value) {}

    VertexId id() const { return v_; }
    Superstep superstep() const { return superstep_; }
    VertexId num_vertices() const { return engine_.shards_.num_vertices(); }

    const Value& value() const { return value_; }
    void set_value(const Value& v) { value_ = v; }

    std::size_t out_degree() const { return out_records_.size(); }
    VertexId out_edge(std::size_t i) const {
      VertexId dst;
      std::memcpy(&dst, out_records_[i] + engine_.shards_.dst_offset(),
                  sizeof(VertexId));
      return dst;
    }
    float out_weight(std::size_t) const { return 1.0f; }

    void send(VertexId dst, const Message& m) {
      for (std::size_t i = 0; i < out_records_.size(); ++i) {
        if (out_edge(i) == dst) {
          engine_.write_message(out_records_[i], superstep_, m);
          return;
        }
      }
      MLVC_CHECK_MSG(false, "GraphChi send() target " << dst
                                                      << " is not an out-"
                                                         "neighbor of "
                                                      << v_);
    }
    void send_to_all_neighbors(const Message& m) {
      for (std::size_t i = 0; i < out_records_.size(); ++i) {
        engine_.write_message(out_records_[i], superstep_, m);
      }
    }

    void deactivate() { deactivated_ = true; }

    SplitMix64 rng() const {
      return stream_for(engine_.options_.seed, v_, superstep_);
    }

    bool deactivated() const { return deactivated_; }
    const Value& current_value() const { return value_; }

   private:
    GraphChiEngine& engine_;
    VertexId v_;
    Superstep superstep_;
    std::span<std::byte* const> out_records_;
    Value value_;
    bool deactivated_ = false;
  };

 private:
  friend class Context;

  void write_message(std::byte* record, Superstep s, const Message& m) {
    const unsigned slot = s % 2;
    std::memcpy(record + shards_.payload_offset(slot), &m, sizeof(Message));
    const std::uint16_t stamp = static_cast<std::uint16_t>(s);
    std::memcpy(record + shards_.stamp_offset(slot), &stamp, 2);
    messages_produced_.fetch_add(1, std::memory_order_relaxed);
  }

  core::SuperstepStats execute_superstep(Superstep s) {
    core::SuperstepStats step;
    step.superstep = s;
    auto& storage = shards_.storage();
    const auto io_before = storage.stats().snapshot();
    const auto dev_before = storage.device().snapshot();
    WallTimer wall;

    messages_produced_.store(0, std::memory_order_relaxed);
    const auto& intervals = shards_.intervals();
    const IntervalId p = shards_.num_shards();
    const std::size_t rec = shards_.record_size();
    std::uint64_t active_count = 0;
    std::uint64_t consumed = 0;

    for (IntervalId i = 0; i < p; ++i) {
      const VertexId vb = intervals.begin(i);
      const VertexId ve = intervals.end(i);
      const VertexId width = ve - vb;

      // ---- load: memory shard + this interval's window in every shard ----
      std::vector<std::vector<std::byte>> blocks(p);
      std::vector<ShardedGraph::WindowRange> ranges(p);
      std::vector<std::uint8_t> dirty(p, 0);
      for (IntervalId j = 0; j < p; ++j) {
        if (j == i) {
          ranges[j] = {0, shards_.shard_edge_count(j)};
        } else {
          ranges[j] = shards_.window(j, i);
        }
        shards_.load_records(j, ranges[j].first, ranges[j].last, blocks[j]);
      }

      // ---- phase 1: harvest last superstep's messages from in-edges ------
      // (read-only pass, so in-place sends in phase 2 cannot clobber
      // unconsumed input: the double-slot records keep slots disjoint).
      std::vector<std::vector<Message>> inbox(width);
      if (s > 0) {
        const unsigned slot = (s - 1) % 2;
        const std::uint16_t want = static_cast<std::uint16_t>(s - 1);
        const std::vector<std::byte>& mem = blocks[i];
        const std::size_t n_records = mem.size() / rec;
        for (std::size_t r = 0; r < n_records; ++r) {
          const std::byte* record = mem.data() + r * rec;
          std::uint16_t stamp;
          std::memcpy(&stamp, record + shards_.stamp_offset(slot), 2);
          if (stamp != want) continue;
          VertexId dst;
          std::memcpy(&dst, record + shards_.dst_offset(), sizeof(VertexId));
          Message m;
          std::memcpy(&m, record + shards_.payload_offset(slot),
                      sizeof(Message));
          inbox[dst - vb].push_back(m);
          ++consumed;
        }
      }

      // ---- out-edge index: records with src in this interval -------------
      std::vector<std::vector<std::byte*>> out_records(width);
      for (IntervalId j = 0; j < p; ++j) {
        const auto wr = j == i ? shards_.window(j, i) : ranges[j];
        // Window records inside blocks[j] start at (wr.first - ranges[j].first).
        for (EdgeIndex r = wr.first; r < wr.last; ++r) {
          std::byte* record =
              blocks[j].data() + (r - ranges[j].first) * rec;
          VertexId src;
          std::memcpy(&src, record + shards_.src_offset(), sizeof(VertexId));
          out_records[src - vb].push_back(record);
        }
      }

      // ---- actives: receivers ∪ sticky ------------------------------------
      std::vector<VertexId> actives;
      for (VertexId v = vb; v < ve; ++v) {
        if (!inbox[v - vb].empty() || sticky_active_.test(v)) {
          actives.push_back(v);
        }
      }
      active_count += actives.size();

      // ---- phase 2: process -------------------------------------------------
      // GraphChi sweeps the interval's full vertex-value range regardless of
      // how many vertices are active.
      std::vector<Value> vals = values_.load_range(vb, ve);
      std::vector<std::uint8_t> block_dirty(p, 0);
      std::vector<std::uint8_t> deactivated(actives.size(), 0);
      parallel_for(std::size_t{0}, actives.size(), [&](std::size_t k) {
        const VertexId v = actives[k];
        Context ctx(*this, v, s, out_records[v - vb], vals[v - vb]);
        const auto msgs =
            core::MessageRange<Message>::from_array(inbox[v - vb]);
        app_.process(ctx, msgs);
        vals[v - vb] = ctx.current_value();
        deactivated[k] = ctx.deactivated() ? 1 : 0;
      });
      for (std::size_t k = 0; k < actives.size(); ++k) {
        sticky_active_.set(actives[k], deactivated[k] == 0);
      }
      // A block is dirty iff some record in it received a message this
      // superstep (stamp slot s%2 == s); a cheap scan that spares GraphChi
      // write-backs of untouched windows in sparse supersteps.
      {
        const unsigned slot = s % 2;
        const std::uint16_t want = static_cast<std::uint16_t>(s);
        for (IntervalId j = 0; j < p; ++j) {
          const std::size_t n_records = blocks[j].size() / rec;
          for (std::size_t r = 0; r < n_records; ++r) {
            std::uint16_t stamp;
            std::memcpy(&stamp,
                        blocks[j].data() + r * rec + shards_.stamp_offset(slot),
                        2);
            if (stamp == want) {
              block_dirty[j] = 1;
              break;
            }
          }
        }
      }

      // ---- write back ------------------------------------------------------
      for (IntervalId j = 0; j < p; ++j) {
        if (block_dirty[j] && !blocks[j].empty()) {
          shards_.store_records(j, ranges[j].first, blocks[j]);
        }
      }
      values_.store_range(vb, vals);
    }

    step.active_vertices = active_count;
    step.messages_consumed = consumed;
    step.messages_produced = messages_produced_.load();
    step.edges_activated = step.messages_produced;
    step.total_wall_seconds = wall.elapsed_seconds();
    step.compute_wall_seconds = step.total_wall_seconds;
    step.io = storage.stats().snapshot() - io_before;
    step.modeled_storage_seconds = storage.device().modeled_seconds_between(
        dev_before, storage.device().snapshot());
    return step;
  }

  App app_;
  GraphChiOptions options_;
  ShardedGraph shards_;
  core::VertexValueStore<Value> values_;
  DynamicBitset sticky_active_;
  core::RunStats stats_;
  std::atomic<std::uint64_t> messages_produced_{0};
};

}  // namespace mlvc::graphchi
