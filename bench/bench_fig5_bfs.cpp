// Figure 5 — BFS on MultiLogVC vs GraphChi.
//
//  5a: speedup (GraphChi time / MultiLogVC time) as a function of the
//      fraction of the graph the search must traverse before stopping;
//  5b: page-access ratio (GraphChi pages / MultiLogVC pages), same sweep;
//  5c: MultiLogVC's execution-time split between storage and compute.
//
// Traversal fraction is implemented exactly as the paper describes the
// demand: the run stops once the search has discovered that fraction of the
// reachable graph.
#include "apps/bfs.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"
#include "tests/reference.hpp"

namespace mlvc::bench {
namespace {

StepCallback stop_at_fraction(std::uint64_t target_vertices,
                              std::uint64_t* discovered) {
  *discovered = 0;
  return [target_vertices, discovered](const core::SuperstepStats& s) {
    *discovered += s.active_vertices;
    return *discovered < target_vertices;
  };
}

void run_dataset(const Dataset& data, metrics::Table& table) {
  const ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 64};

  // Start from the periphery (the vertex farthest from vertex 0), matching
  // the paper's choice of source-target pairs with meaningful traversal
  // depth; a hub source floods the graph in two supersteps.
  const auto from_hub = reference::bfs_distances(data.csr, 0);
  VertexId source = 0;
  std::uint32_t best = 0;
  for (VertexId v = 0; v < data.csr.num_vertices(); ++v) {
    if (from_hub[v] != apps::Bfs::kUnreached && from_hub[v] > best) {
      best = from_hub[v];
      source = v;
    }
  }

  const auto ref = reference::bfs_distances(data.csr, source);
  std::uint64_t reachable = 0;
  for (auto d : ref) {
    if (d != apps::Bfs::kUnreached) ++reachable;
  }

  for (double fraction : {0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto target =
        static_cast<std::uint64_t>(fraction * static_cast<double>(reachable));
    apps::Bfs app{.source = source};

    std::uint64_t mlvc_seen = 0, gc_seen = 0;
    const auto mlvc = run_mlvc(data, app, cfg,
                               stop_at_fraction(target, &mlvc_seen));
    const auto gc = run_graphchi(data, app, cfg,
                                 stop_at_fraction(target, &gc_seen));

    const double storage_pct =
        100.0 * mlvc.modeled_storage_seconds() /
        std::max(1e-12, mlvc.modeled_total_seconds());
    table.add_row({data.name, format_fixed(fraction, 2),
                   format_fixed(metrics::speedup(gc, mlvc), 2),
                   format_fixed(metrics::page_ratio(gc, mlvc), 1),
                   format_fixed(storage_pct, 1),
                   std::to_string(mlvc.total_pages()),
                   std::to_string(gc.total_pages()),
                   std::to_string(mlvc.supersteps.size())});
  }
}

void run() {
  print_header("Figure 5: BFS application performance",
               "Fig 5a speedup vs traversal fraction (paper avg 17.8x); "
               "Fig 5b page ratio (90x at 0.1 down to 6x at 1.0); "
               "Fig 5c storage-time share (75% -> 90%)");
  metrics::Table table({"dataset", "traversal", "speedup_vs_graphchi",
                        "page_ratio", "mlvc_storage_%", "mlvc_pages",
                        "graphchi_pages", "supersteps"});
  const auto cf = make_cf();
  const auto yws = make_yws();
  std::cout << "CF':  " << graph::compute_stats(cf.csr).to_string() << "\n";
  std::cout << "YWS': " << graph::compute_stats(yws.csr).to_string() << "\n\n";
  run_dataset(cf, table);
  run_dataset(yws, table);
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "fig5_bfs");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
