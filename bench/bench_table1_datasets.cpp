// Table I — graph datasets.
//
// The paper lists com-friendster (124.8M vertices / 3.6B edges) and Yahoo
// WebScope (1.4B / 12.9B). We print the synthetic stand-ins' statistics and
// the scaling ratio (DESIGN.md §2): the memory budget used by the benches
// is shrunk by roughly the same factor as the graphs, so graph:memory ratio
// matches the paper's ~100 GB : 1 GB setup.
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

int main() {
  using namespace mlvc;
  bench::print_header(
      "Table I: graph datasets",
      "com-friendster 124,836,180 V / 3,612,134,270 E; "
      "YahooWebScope 1,413,511,394 V / 12,869,122,070 E");

  metrics::Table table({"dataset", "paper_vertices", "paper_edges",
                        "repro_vertices", "repro_edges", "avg_deg", "max_deg",
                        "p99_deg"});
  const auto add = [&](const bench::Dataset& d, const char* pv,
                       const char* pe) {
    const auto s = graph::compute_stats(d.csr);
    table.add_row({d.name, pv, pe, format_count(s.num_vertices),
                   format_count(s.num_edges), format_fixed(s.avg_out_degree, 1),
                   format_count(s.max_out_degree),
                   format_count(s.p99_degree)});
  };
  add(bench::make_cf(), "124,836,180", "3,612,134,270");
  add(bench::make_yws(), "1,413,511,394", "12,869,122,070");
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "table1_datasets");

  std::cout << "\nscaling: benches use a 1 MiB host budget against these "
               "~5-15 MiB graphs,\npreserving the paper's ~1:40-1:100 "
               "memory:graph ratio (1 GB vs 40-100 GB).\n";
  return 0;
}
