// Related-engines comparison (§IX of the paper).
//
// The paper positions MultiLogVC against the broader design space:
// edge-centric streaming engines (X-Stream/GridGraph) "aim to sequentially
// access the graph data stored in secondary storage. However, their
// efficiency suffers when graphs applications require random and sparse
// accesses to graph data such as BFS". This bench runs BFS (sparse
// frontier), delta-PageRank (dense then sparse) and WCC (dense then sparse)
// on all four engines in this repo and reports modeled time and pages.
#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/wcc.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"
#include "xstream/apps.hpp"
#include "xstream/engine.hpp"

namespace mlvc::bench {
namespace {

template <typename XsApp>
core::RunStats run_xstream(const Dataset& data, XsApp app,
                           const ScaledConfig& cfg) {
  ssd::TempDir dir("xs_bench");
  ssd::Storage storage(dir.path(), cfg.device());
  xstream::XStreamEngine<XsApp> engine(
      storage, data.csr, app,
      {.memory_budget_bytes = cfg.memory_budget,
       .max_supersteps = cfg.max_supersteps});
  return engine.run();
}

void add_row(metrics::Table& table, const Dataset& data, const char* app,
             const core::RunStats& stats, const core::RunStats& baseline) {
  table.add_row({data.name, app, stats.engine,
                 format_fixed(stats.modeled_total_seconds(), 3),
                 std::to_string(stats.total_pages()),
                 format_fixed(metrics::speedup(baseline, stats), 2),
                 std::to_string(stats.supersteps.size())});
}

void run() {
  print_header(
      "Related engines: MultiLogVC vs GraphChi vs GraFBoost vs X-Stream",
      "§IX: edge-centric streaming wins on dense scans but 'efficiency "
      "suffers' on sparse/random access patterns like BFS");
  metrics::Table table({"dataset", "app", "engine", "modeled_s", "pages",
                        "speedup_vs_graphchi", "supersteps"});
  const ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 15};
  const ScaledConfig bfs_cfg{.memory_budget = 1_MiB, .max_supersteps = 40};

  for (const auto& data : {make_cf(), make_yws()}) {
    {  // BFS — the sparse-frontier case.
      apps::Bfs app{.source = 0};
      const auto gc = run_graphchi(data, app, bfs_cfg);
      add_row(table, data, "bfs", gc, gc);
      add_row(table, data, "bfs", run_mlvc(data, app, bfs_cfg), gc);
      add_row(table, data, "bfs", run_grafboost(data, app, bfs_cfg, true),
              gc);
      add_row(table, data, "bfs",
              run_xstream(data, xstream::XsBfs{.source = 0}, bfs_cfg), gc);
    }
    {  // PageRank — dense early supersteps.
      apps::PageRank app;
      const auto gc = run_graphchi(data, app, cfg);
      add_row(table, data, "pagerank", gc, gc);
      add_row(table, data, "pagerank", run_mlvc(data, app, cfg), gc);
      add_row(table, data, "pagerank",
              run_grafboost(data, app, cfg, true), gc);
      add_row(table, data, "pagerank",
              run_xstream(data, xstream::XsPageRank{}, cfg), gc);
    }
    {  // WCC — dense start, fast collapse.
      apps::Wcc app;
      const auto gc = run_graphchi(data, app, cfg);
      add_row(table, data, "wcc", gc, gc);
      add_row(table, data, "wcc", run_mlvc(data, app, cfg), gc);
      add_row(table, data, "wcc", run_grafboost(data, app, cfg, true), gc);
      add_row(table, data, "wcc", run_xstream(data, xstream::XsWcc{}, cfg),
              gc);
    }
  }
  // The §IX claim needs a high-diameter graph to show: on a road-network
  // grid a BFS frontier stays tiny for hundreds of supersteps, and an
  // engine that streams every edge every superstep pays the full graph
  // hundreds of times over.
  {
    Dataset road{"ROAD",
                 graph::CsrGraph::from_edge_list(graph::generate_grid(200, 150))};
    const ScaledConfig road_cfg{.memory_budget = 1_MiB,
                                .max_supersteps = 400};
    apps::Bfs app{.source = 0};
    const auto gc = run_graphchi(road, app, road_cfg);
    add_row(table, road, "bfs", gc, gc);
    add_row(table, road, "bfs", run_mlvc(road, app, road_cfg), gc);
    add_row(table, road, "bfs", run_grafboost(road, app, road_cfg, true),
            gc);
    add_row(table, road, "bfs",
            run_xstream(road, xstream::XsBfs{.source = 0}, road_cfg), gc);
  }

  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "related_engines");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
