// Figure 8 — MultiLogVC vs GraFBoost, plus the adapted-GraFBoost graph
// coloring comparison from §VIII.
//
// Per the paper: GraFBoost does not load only active graph data, so the
// PageRank comparison covers the first iteration only (paper: 2.8x average,
// ~4x on the larger YWS). The adapted single-log GraFBoost (no combine,
// every message preserved) runs graph coloring end-to-end (paper: 2.72x CF,
// 2.67x YWS in MultiLogVC's favor).
#include "apps/coloring.hpp"
#include "apps/pagerank.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

namespace mlvc::bench {
namespace {

StepCallback first_superstep_only() {
  return [](const core::SuperstepStats&) { return false; };
}

void run() {
  print_header("Figure 8 + adapted-GraFBoost comparison",
               "PR first iteration: MultiLogVC 2.8x GraFBoost on average "
               "(4x on YWS); adapted GraFBoost for GC: 2.72x (CF), 2.67x "
               "(YWS)");
  // Tighter budget than the other benches: the paper's defining regime for
  // this figure is log >> sort memory (29 GB of updates vs a 1 GB host on
  // friendster). With the generous 1 MiB budget a sorted run would span the
  // whole vertex range and GraFBoost's early combine would collapse the log
  // to ~V records — a small-scale artifact the authors' datasets never hit.
  // 256 KiB keeps run_size << V, the paper's operating point.
  const ScaledConfig cfg{.memory_budget = 256_KiB, .max_supersteps = 15};

  metrics::Table pr_table({"dataset", "app", "paper_speedup", "speedup",
                           "mlvc_pages", "grafboost_pages"});
  for (const auto& data : {make_cf(), make_yws()}) {
    apps::PageRank app;
    const auto mlvc = run_mlvc(data, app, cfg, first_superstep_only());
    const auto gb =
        run_grafboost(data, app, cfg, /*use_combine=*/true,
                      first_superstep_only());
    pr_table.add_row({data.name, "pagerank(iter1)",
                      data.name == "CF" ? "~2.8" : "~4.0",
                      format_fixed(metrics::speedup(gb, mlvc), 2),
                      std::to_string(mlvc.total_pages()),
                      std::to_string(gb.total_pages())});
  }
  pr_table.print();
  pr_table.write_csv(metrics::csv_dir_from_env(), "fig8_grafboost_pr");

  std::cout << "\n--- adapted GraFBoost (single log, all messages kept) ---\n";
  metrics::Table gc_table({"dataset", "app", "paper_speedup", "speedup",
                           "mlvc_seconds", "adapted_gb_seconds"});
  for (const auto& data : {make_cf(), make_yws()}) {
    apps::GraphColoring app;
    const auto mlvc = run_mlvc(data, app, cfg);
    const auto gb = run_grafboost(data, app, cfg, /*use_combine=*/false);
    gc_table.add_row({data.name, "graph_coloring",
                      data.name == "CF" ? "2.72" : "2.67",
                      format_fixed(metrics::speedup(gb, mlvc), 2),
                      format_fixed(mlvc.modeled_total_seconds(), 3),
                      format_fixed(gb.modeled_total_seconds(), 3)});
  }
  gc_table.print();
  gc_table.write_csv(metrics::csv_dir_from_env(), "fig8_grafboost_gc");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
