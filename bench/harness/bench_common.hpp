// Shared infrastructure for the figure/table reproduction harnesses.
//
// Scaling (DESIGN.md §2): the paper runs 1 GB of host memory against
// ~40-100 GB graphs on a 16 KiB-page SSD. We scale all three together —
// synthetic graphs a few thousandths of the size, the budget shrunk to keep
// the memory:graph ratio, and 4 KiB model pages so page-count granularity
// scales too. The *ratios* the figures report (speedups, page-access
// ratios, time splits) are preserved; absolute seconds are not comparable
// and are not meant to be.
#pragma once

#include <functional>
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_stats.hpp"
#include "graphchi/engine.hpp"
#include "grafboost/engine.hpp"
#include "metrics/report.hpp"

namespace mlvc::bench {

struct Dataset {
  std::string name;
  graph::CsrGraph csr;
};

/// CF' — com-friendster stand-in (denser power-law social graph).
inline Dataset make_cf(unsigned scale = 16) {
  return {"CF", graph::CsrGraph::from_edge_list(
                    graph::make_cf_like(scale, /*seed=*/42))};
}

/// YWS' — Yahoo WebScope stand-in (larger V, sparser, heavier skew).
inline Dataset make_yws(unsigned scale = 17) {
  return {"YWS", graph::CsrGraph::from_edge_list(
                     graph::make_yws_like(scale, /*seed=*/43))};
}

struct ScaledConfig {
  /// "1 GB" scaled to the synthetic graph size.
  std::size_t memory_budget = 1_MiB;
  Superstep max_supersteps = 15;
  std::size_t page_size = 4_KiB;
  unsigned channels = 8;
  std::uint64_t seed = 1;

  ssd::DeviceConfig device() const {
    ssd::DeviceConfig d;
    d.page_size = page_size;
    d.num_channels = channels;
    return d;
  }
};

using StepCallback = std::function<bool(const core::SuperstepStats&)>;

inline bool always_continue(const core::SuperstepStats&) { return true; }

/// FNV-1a over the raw bytes of a final vertex-value array. Lets ablation
/// variants assert "identical results" in one table cell.
template <typename Value>
std::uint64_t hash_values(const std::vector<Value>& values) {
  std::uint64_t h = 1469598103934665603ull;
  const auto* bytes = reinterpret_cast<const unsigned char*>(values.data());
  for (std::size_t i = 0; i < values.size() * sizeof(Value); ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

/// Same hash, streamed from the engine's value store in chunks — no O(V)
/// materialization.
template <typename Engine>
std::uint64_t hash_engine_values(const Engine& engine) {
  std::uint64_t h = 1469598103934665603ull;
  engine.for_each_value_chunk([&](VertexId, auto chunk) {
    const auto* bytes = reinterpret_cast<const unsigned char*>(chunk.data());
    for (std::size_t i = 0; i < chunk.size_bytes(); ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  });
  return h;
}

template <core::VertexApp App>
core::RunStats run_mlvc(const Dataset& data, App app, const ScaledConfig& cfg,
                        const StepCallback& cb = always_continue,
                        core::EngineOptions* opts_out = nullptr,
                        std::uint64_t* values_hash = nullptr) {
  ssd::TempDir dir("mlvc_bench");
  ssd::Storage storage(dir.path(), cfg.device());
  core::EngineOptions opts;
  opts.memory_budget_bytes = cfg.memory_budget;
  opts.max_supersteps = cfg.max_supersteps;
  opts.seed = cfg.seed;
  if (opts_out != nullptr) opts = *opts_out;
  WallTimer build;
  auto intervals = core::partition_for_app<App>(data.csr, opts);
  graph::StoredCsrGraph stored(storage, "g", data.csr, intervals,
                               {.with_weights = App::kNeedsWeights});
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  const double build_s = build.elapsed_seconds();
  auto stats = engine.run_with_callback(cb);
  stats.build_seconds = build_s;
  if (values_hash != nullptr) *values_hash = hash_engine_values(engine);
  return stats;
}

template <core::VertexApp App>
core::RunStats run_graphchi(const Dataset& data, App app,
                            const ScaledConfig& cfg,
                            const StepCallback& cb = always_continue) {
  ssd::TempDir dir("gc_bench");
  ssd::Storage storage(dir.path(), cfg.device());
  graphchi::GraphChiOptions opts;
  opts.memory_budget_bytes = cfg.memory_budget;
  opts.max_supersteps = cfg.max_supersteps;
  opts.seed = cfg.seed;
  WallTimer build;
  graphchi::GraphChiEngine<App> engine(storage, data.csr, app, opts);
  const double build_s = build.elapsed_seconds();
  auto stats = engine.run_with_callback(cb);
  stats.build_seconds = build_s;
  return stats;
}

template <core::VertexApp App>
core::RunStats run_grafboost(const Dataset& data, App app,
                             const ScaledConfig& cfg, bool use_combine,
                             const StepCallback& cb = always_continue) {
  ssd::TempDir dir("gb_bench");
  ssd::Storage storage(dir.path(), cfg.device());
  core::EngineOptions popts;
  popts.memory_budget_bytes = cfg.memory_budget;
  WallTimer build;
  auto intervals = core::partition_for_app<App>(data.csr, popts);
  graph::StoredCsrGraph stored(storage, "g", data.csr, intervals,
                               {.with_weights = App::kNeedsWeights});
  grafboost::GraFBoostOptions opts;
  opts.memory_budget_bytes = cfg.memory_budget;
  opts.max_supersteps = cfg.max_supersteps;
  opts.seed = cfg.seed;
  opts.use_combine = use_combine;
  grafboost::GraFBoostEngine<App> engine(stored, app, opts);
  const double build_s = build.elapsed_seconds();
  auto stats = engine.run_with_callback(cb);
  stats.build_seconds = build_s;
  return stats;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "\n=== " << title << " ===\n"
            << "paper reference: " << paper << "\n"
            << "(scaled reproduction: shapes/ratios comparable, absolute "
               "numbers are not — see DESIGN.md §2)\n\n";
}

}  // namespace mlvc::bench
