// Figure 7 — per-superstep performance relative to GraphChi.
//
// For PageRank, CDLP, graph coloring, and MIS, the paper plots MultiLogVC's
// advantage per superstep (x-axis: superstep as a fraction of the run):
// early supersteps with many active vertices show parity or slight loss;
// later supersteps with shrinking activity show growing wins. Both engines
// run identical BSP trajectories here, so supersteps align one-to-one.
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "apps/pagerank.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

namespace mlvc::bench {
namespace {

template <core::VertexApp App>
void per_superstep(const Dataset& data, App app, metrics::Table& table) {
  const ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 15};
  const auto mlvc = run_mlvc(data, app, cfg);
  const auto gc = run_graphchi(data, app, cfg);
  const std::size_t n =
      std::min(mlvc.supersteps.size(), gc.supersteps.size());
  for (std::size_t s = 0; s < n; ++s) {
    const double m = mlvc.supersteps[s].modeled_total_seconds();
    const double g = gc.supersteps[s].modeled_total_seconds();
    table.add_row({data.name, app.name(),
                   format_fixed(n > 1 ? double(s) / (n - 1) : 0.0, 2),
                   std::to_string(mlvc.supersteps[s].active_vertices),
                   format_fixed(m > 0 ? g / m : 0.0, 2)});
  }
}

void run() {
  print_header("Figure 7: per-superstep performance relative to GraphChi",
               "early supersteps (many active vertices) near or below "
               "parity; later supersteps increasingly favor MultiLogVC");
  metrics::Table table({"dataset", "app", "superstep_fraction",
                        "active_vertices", "speedup_vs_graphchi"});
  for (const auto& data : {make_cf(), make_yws()}) {
    per_superstep(data, apps::PageRank{}, table);
    per_superstep(data, apps::Cdlp{}, table);
    per_superstep(data, apps::GraphColoring{}, table);
    per_superstep(data, apps::Mis{}, table);
  }
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "fig7_supersteps");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
