// Multi-device striping sweep: devices {1, 2, 4} x combine placement
// {host, device}, measuring (a) modeled aggregate bandwidth of the
// log-load pattern — large reads over a striped message-log blob, the hot
// path striping exists for — and (b) bytes crossed over the host bus on
// real PageRank/WCC runs (the near-storage combine folds log records
// inside each device before they cross). Emits BENCH_stripe.json with one
// run entry per metric, the same {metric, v1, v2, ratio, enforced} shape
// bench_compress uses, consumed by check_bench_regression.py
// --suite stripe.
//
// Gates (exit 1 on failure):
//   - modeled aggregate log-load bandwidth at 4 devices must be >=
//     MLVC_BENCH_STRIPE_MIN_SPEEDUP x the single-device bandwidth
//     (default 1.6): striping must actually buy parallelism.
//   - device-side combine must cut bytes-crossed-bus vs host placement on
//     both PageRank and WCC (ratio > 1.0).
// Whole-engine modeled time is reported but NOT gated: PageRank also
// issues many sub-stripe-unit scattered reads, where each striped call
// still pays a full-cost first page per touched device, so the engine
// total under-states the log-path win (and can even invert at small
// scales) — the per-metric rows make both effects visible.
//
//   bench_stripe [out.json]
//
// Environment:
//   MLVC_BENCH_STRIPE_SCALE        R-MAT scale (default 12)
//   MLVC_BENCH_STRIPE_EDGE_FACTOR  edges per vertex (default 8)
//   MLVC_BENCH_STRIPE_MIN_SPEEDUP  4-device log-load bandwidth gate (1.6)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/pagerank.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "ssd/storage.hpp"

namespace mlvc::bench {
namespace {

struct RunResult {
  double modeled_seconds = 0;
  double bus_bytes = 0;
  double wall_seconds = 0;
};

double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

template <typename App>
RunResult run_one(const graph::CsrGraph& csr, unsigned devices,
                  CombinePlacement placement, unsigned max_supersteps) {
  ssd::TempDir dir("mlvc_bench_stripe");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  device.num_devices = devices;
  ssd::Storage storage(dir.path(), device);

  core::EngineOptions opts;
  opts.memory_budget_bytes = 8_MiB;
  opts.max_supersteps = max_supersteps;
  opts.combine_placement = placement;

  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts));
  core::MultiLogVCEngine<App> engine(stored, App{}, opts);
  const auto stats = engine.run();

  RunResult r;
  r.modeled_seconds = stats.modeled_total_seconds();
  r.bus_bytes = static_cast<double>(stats.bytes_crossed_bus());
  r.wall_seconds = stats.total_wall_seconds();
  return r;
}

/// Modeled seconds to stream a message-log-sized blob back in 1 MiB
/// reads — the interval log-load pattern. Deterministic (pure device
/// model); the striped layout spreads the pages over num_devices x the
/// channel groups and amortizes the full-cost first page per device.
double modeled_log_load_seconds(unsigned devices) {
  ssd::TempDir dir("mlvc_bench_stripe");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  device.num_devices = devices;
  ssd::Storage storage(dir.path(), device);
  ssd::Blob& blob =
      storage.create_blob("log", ssd::IoCategory::kMessageLog);

  constexpr std::size_t kTotal = 16 * 1024 * 1024;
  constexpr std::size_t kChunk = 1024 * 1024;
  std::vector<char> buf(kChunk, 0x5a);
  for (std::size_t off = 0; off < kTotal; off += kChunk) {
    blob.write(off, buf.data(), buf.size());
  }
  const auto before = storage.device().snapshot();
  for (std::size_t off = 0; off < kTotal; off += kChunk) {
    blob.read(off, buf.data(), buf.size());
  }
  return storage.device().modeled_seconds_between(before,
                                                  storage.device().snapshot());
}

int run(const std::string& out_path) {
  // The bench pins its own layout; a CI matrix leg exporting MLVC_DEVICES
  // must not skew the sweep's single-device baseline.
  ::unsetenv("MLVC_DEVICES");
  ::unsetenv("MLVC_STRIPE_UNIT");

  graph::RmatParams params;
  params.scale =
      static_cast<unsigned>(env_double("MLVC_BENCH_STRIPE_SCALE", 12));
  params.edge_factor = env_double("MLVC_BENCH_STRIPE_EDGE_FACTOR", 8);
  params.seed = 7;
  const auto csr =
      graph::CsrGraph::from_edge_list(graph::generate_rmat(params));
  std::cout << "R-MAT scale " << params.scale << ": " << csr.num_vertices()
            << " vertices, " << csr.num_edges() << " edges\n";

  // Log-load bandwidth scaling: the same byte stream over 1/2/4 devices.
  // The traffic is identical across the sweep, so the modeled-seconds
  // ratio IS the aggregate-bandwidth ratio.
  const double ll1 = modeled_log_load_seconds(1);
  const double ll2 = modeled_log_load_seconds(2);
  const double ll4 = modeled_log_load_seconds(4);

  // Whole-engine modeled time (reported, not gated — see header).
  const auto pr1 =
      run_one<apps::PageRank>(csr, 1, CombinePlacement::kHost, 10);
  const auto pr2 =
      run_one<apps::PageRank>(csr, 2, CombinePlacement::kHost, 10);
  const auto pr4 =
      run_one<apps::PageRank>(csr, 4, CombinePlacement::kHost, 10);

  // Combine placement at 4 devices: host vs modeled in-device reduction.
  const auto pr4_dev =
      run_one<apps::PageRank>(csr, 4, CombinePlacement::kDevice, 10);
  const auto wcc4_host = run_one<apps::Wcc>(csr, 4, CombinePlacement::kHost, 30);
  const auto wcc4_dev =
      run_one<apps::Wcc>(csr, 4, CombinePlacement::kDevice, 30);

  // metric, v1 (baseline config), v2 (striped / device config), ratio
  // v1/v2 — higher is better: modeled-seconds rows read as bandwidth
  // speedup, bus-bytes rows as bus-traffic reduction.
  struct Row {
    const char* metric;
    double v1, v2;
    bool enforced;
  };
  const std::vector<Row> rows = {
      {"log_load_modeled_seconds_1v4_devices", ll1, ll4, true},
      {"log_load_modeled_seconds_1v2_devices", ll1, ll2, false},
      {"pagerank_bus_bytes_host_vs_device", pr4.bus_bytes, pr4_dev.bus_bytes,
       true},
      {"wcc_bus_bytes_host_vs_device", wcc4_host.bus_bytes, wcc4_dev.bus_bytes,
       true},
      {"pagerank_modeled_seconds_1v4_devices", pr1.modeled_seconds,
       pr4.modeled_seconds, false},
      {"pagerank_modeled_seconds_1v2_devices", pr1.modeled_seconds,
       pr2.modeled_seconds, false},
      {"pagerank_wall_seconds_1v4_devices", pr1.wall_seconds,
       pr4.wall_seconds, false},
  };

  std::ofstream out(out_path);
  out << "{\"suite\":\"stripe\",\"scale\":" << params.scale
      << ",\"edges\":" << csr.num_edges() << ",\"runs\":[";
  bool first = true;
  for (const auto& row : rows) {
    const double ratio = row.v2 > 0 ? row.v1 / row.v2 : 0;
    if (!first) out << ',';
    first = false;
    out << "{\"metric\":\"" << row.metric << "\",\"v1\":" << row.v1
        << ",\"v2\":" << row.v2 << ",\"ratio\":" << ratio
        << ",\"enforced\":" << (row.enforced ? "true" : "false") << '}';
    std::cout << row.metric << ": " << row.v1 << " -> " << row.v2 << " ("
              << ratio << "x)" << (row.enforced ? "" : "  [not enforced]")
              << "\n";
  }
  out << "]}\n";
  std::cout << "wrote " << out_path << "\n";

  int rc = 0;
  const double min_speedup = env_double("MLVC_BENCH_STRIPE_MIN_SPEEDUP", 1.6);
  const double speedup = ll4 > 0 ? ll1 / ll4 : 0;
  if (speedup < min_speedup) {
    std::cerr << "FAIL: 4-device modeled log-load bandwidth speedup "
              << speedup << "x below the " << min_speedup << "x floor\n";
    rc = 1;
  }
  if (pr4_dev.bus_bytes >= pr4.bus_bytes) {
    std::cerr << "FAIL: device-side combine did not cut PageRank bus bytes ("
              << pr4_dev.bus_bytes << " vs " << pr4.bus_bytes << ")\n";
    rc = 1;
  }
  if (wcc4_dev.bus_bytes >= wcc4_host.bus_bytes) {
    std::cerr << "FAIL: device-side combine did not cut WCC bus bytes ("
              << wcc4_dev.bus_bytes << " vs " << wcc4_host.bus_bytes << ")\n";
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace mlvc::bench

int main(int argc, char** argv) {
  return mlvc::bench::run(argc > 1 ? argv[1] : "BENCH_stripe.json");
}
