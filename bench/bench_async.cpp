// BSP vs asynchronous interval-scheduled execution: delta-convergent
// PageRank over skewed R-MAT graphs, comparing the paper's barrier wave
// against the IntervalScheduler's async chains under each priority policy
// (fifo | hub-degree | log-bytes). Emits BENCH_async.json with one run
// entry per (scale, policy, metric); ratios are bsp/async, so higher means
// the scheduler won.
//
// Gates (exit 1 on failure), both on the scale-LARGE hub-degree config —
// the ISSUE acceptance pair:
//   - effective rounds: async must converge in fewer supersteps than BSP
//     (ratio >= MLVC_BENCH_ASYNC_MIN_ROUNDS_RATIO, default 1.01);
//   - modeled total time: same-wave delivery must not buy rounds with
//     modeled time (ratio >= MLVC_BENCH_ASYNC_MIN_RATIO, default 1.0).
// CI additionally gates drift against the committed baseline via
// check_bench_regression.py --suite async.
//
//   bench_async [out.json]
//
// Environment:
//   MLVC_BENCH_ASYNC_SCALE_SMALL  R-MAT scale, reported only (default 13)
//   MLVC_BENCH_ASYNC_SCALE_LARGE  R-MAT scale, enforced config (default 15)
//   MLVC_BENCH_ASYNC_EDGE_FACTOR  edges per vertex (default 8)
//   MLVC_BENCH_ASYNC_REPS         timing repetitions (default 2; round
//                         counts are deterministic, time gates use the
//                         minimum across repetitions)
//   MLVC_BENCH_ASYNC_MIN_ROUNDS_RATIO / MLVC_BENCH_ASYNC_MIN_RATIO  gates
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/pagerank_delta.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "ssd/storage.hpp"

namespace mlvc::bench {
namespace {

struct RunResult {
  std::uint64_t effective_rounds = 0;
  std::uint64_t intervals_scheduled = 0;
  double modeled_total_seconds = 0;
  double wall_seconds = 0;
};

double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

core::EngineOptions bench_options(SchedulePolicy policy) {
  core::EngineOptions opts;
  // Tight budget so the graph splits into enough intervals for ordering to
  // matter; the generation swap and sort budget behave as in a real
  // out-of-core run.
  opts.memory_budget_bytes = 4_MiB;
  opts.max_supersteps = 50;
  opts.schedule_policy = policy;
  if (policy != SchedulePolicy::kBsp) {
    opts.model = core::ComputationModel::kAsynchronous;
  }
  return opts;
}

RunResult run_policy(const graph::CsrGraph& csr, SchedulePolicy policy) {
  ssd::TempDir dir("mlvc_bench_async");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), device);

  const auto opts = bench_options(policy);
  graph::StoredCsrGraph stored(
      storage, "g", csr,
      core::partition_for_app<apps::PageRankDelta>(csr, opts), {});
  core::MultiLogVCEngine<apps::PageRankDelta> engine(stored,
                                                     apps::PageRankDelta{},
                                                     opts);
  const auto stats = engine.run();

  RunResult r;
  r.effective_rounds = stats.effective_rounds();
  r.intervals_scheduled = stats.intervals_scheduled();
  // Thread-placement-invariant modeled wall time (stats.hpp): modeled
  // device time + every CPU second wherever the pipeline scheduled it.
  // modeled_total_seconds() would charge the scheduled-async redelivery
  // sorts (serial, on the critical path) but not the BSP prefetch sorts
  // (hidden on I/O threads) — an accounting asymmetry, not a real cost
  // difference.
  r.modeled_total_seconds = stats.modeled_work_seconds();
  r.wall_seconds = stats.total_wall_seconds();
  return r;
}

struct PolicyLabel {
  SchedulePolicy policy;
  const char* label;  // metric-name form (underscores)
};

int run(const std::string& out_path) {
  const unsigned scale_small =
      static_cast<unsigned>(env_double("MLVC_BENCH_ASYNC_SCALE_SMALL", 13));
  const unsigned scale_large =
      static_cast<unsigned>(env_double("MLVC_BENCH_ASYNC_SCALE_LARGE", 15));
  const double edge_factor = env_double("MLVC_BENCH_ASYNC_EDGE_FACTOR", 8);
  const int reps = std::max(
      1, static_cast<int>(env_double("MLVC_BENCH_ASYNC_REPS", 2)));

  const PolicyLabel kPolicies[] = {
      {SchedulePolicy::kFifo, "fifo"},
      {SchedulePolicy::kHubDegree, "hub_degree"},
      {SchedulePolicy::kLogBytes, "log_bytes"},
  };

  struct Row {
    std::string metric;
    double bsp, async;
    bool enforced;
  };
  std::vector<Row> rows;
  double gate_rounds_ratio = 0;
  double gate_modeled_ratio = 0;

  std::ofstream out(out_path);
  out << "{\"suite\":\"async\",\"runs\":[";
  bool first = true;

  for (const unsigned scale : {scale_small, scale_large}) {
    graph::RmatParams params;
    params.scale = scale;
    params.edge_factor = edge_factor;
    params.seed = 7;
    const auto csr =
        graph::CsrGraph::from_edge_list(graph::generate_rmat(params));
    std::cout << "R-MAT scale " << scale << ": " << csr.num_vertices()
              << " vertices, " << csr.num_edges() << " edges\n";

    const auto best_of = [&](SchedulePolicy policy) {
      RunResult best = run_policy(csr, policy);
      for (int rep = 1; rep < reps; ++rep) {
        const auto r = run_policy(csr, policy);
        best.modeled_total_seconds =
            std::min(best.modeled_total_seconds, r.modeled_total_seconds);
        best.wall_seconds = std::min(best.wall_seconds, r.wall_seconds);
      }
      return best;
    };
    const RunResult bsp = best_of(SchedulePolicy::kBsp);
    std::cout << "  bsp: " << bsp.effective_rounds << " rounds, modeled "
              << bsp.modeled_total_seconds << "s\n";

    for (const auto& p : kPolicies) {
      const RunResult async = best_of(p.policy);
      std::cout << "  async/" << to_string(p.policy) << ": "
                << async.effective_rounds << " rounds, "
                << async.intervals_scheduled << " chains, modeled "
                << async.modeled_total_seconds << "s\n";
      const std::string prefix =
          "s" + std::to_string(scale) + "_" + p.label + "_";
      // The acceptance pair from the ISSUE: on the skewed large input,
      // hub-degree must cut both effective rounds and modeled time.
      const bool enforced = scale == scale_large &&
                            p.policy == SchedulePolicy::kHubDegree;
      rows.push_back({prefix + "effective_rounds",
                      static_cast<double>(bsp.effective_rounds),
                      static_cast<double>(async.effective_rounds), enforced});
      rows.push_back({prefix + "modeled_seconds", bsp.modeled_total_seconds,
                      async.modeled_total_seconds, enforced});
      rows.push_back({prefix + "wall_seconds", bsp.wall_seconds,
                      async.wall_seconds, false});
      if (enforced) {
        gate_rounds_ratio = async.effective_rounds > 0
                                ? static_cast<double>(bsp.effective_rounds) /
                                      static_cast<double>(
                                          async.effective_rounds)
                                : 0;
        gate_modeled_ratio =
            async.modeled_total_seconds > 0
                ? bsp.modeled_total_seconds / async.modeled_total_seconds
                : 0;
      }
    }
  }

  for (const auto& row : rows) {
    const double ratio = row.async > 0 ? row.bsp / row.async : 0;
    if (!first) out << ',';
    first = false;
    out << "{\"metric\":\"" << row.metric << "\",\"bsp\":" << row.bsp
        << ",\"async\":" << row.async << ",\"ratio\":" << ratio
        << ",\"enforced\":" << (row.enforced ? "true" : "false") << '}';
    std::cout << row.metric << ": bsp " << row.bsp << ", async " << row.async
              << " (" << ratio << "x)"
              << (row.enforced ? "" : "  [not enforced]") << "\n";
  }
  out << "]}\n";
  std::cout << "wrote " << out_path << "\n";

  const double min_rounds_ratio =
      env_double("MLVC_BENCH_ASYNC_MIN_ROUNDS_RATIO", 1.01);
  const double min_ratio = env_double("MLVC_BENCH_ASYNC_MIN_RATIO", 1.0);
  int rc = 0;
  if (gate_rounds_ratio < min_rounds_ratio) {
    std::cerr << "FAIL: async hub-degree effective-rounds ratio "
              << gate_rounds_ratio << "x below the " << min_rounds_ratio
              << "x floor (async must converge in fewer rounds than BSP)\n";
    rc = 1;
  }
  if (gate_modeled_ratio < min_ratio) {
    std::cerr << "FAIL: async hub-degree modeled-time ratio "
              << gate_modeled_ratio << "x below the " << min_ratio
              << "x floor\n";
    rc = 1;
  }
  return rc;
}

}  // namespace
}  // namespace mlvc::bench

int main(int argc, char** argv) {
  return mlvc::bench::run(argc > 1 ? argv[1] : "BENCH_async.json");
}
