// Google-benchmark microbenches for the substrate hot paths: page-accounted
// storage I/O, multi-log append/spill/load, in-memory sort+group, and the
// external sorter. These guard against regressions in the layers every
// engine sits on.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "grafboost/external_sorter.hpp"
#include "graph/generators.hpp"
#include "multilog/multilog_store.hpp"
#include "multilog/record.hpp"
#include "multilog/sort_group.hpp"
#include "ssd/async_io.hpp"
#include "ssd/io_backend.hpp"
#include "ssd/storage.hpp"
#include "ssd/uring_io.hpp"

namespace {

using namespace mlvc;

void BM_StorageAppendRead(benchmark::State& state) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ssd::Blob& blob = storage.create_blob("bench", ssd::IoCategory::kMisc);
  std::vector<char> page(16_KiB, 'x');
  std::uint64_t pages = 0;
  for (auto _ : state) {
    blob.append(page.data(), page.size());
    blob.read(pages * page.size(), page.data(), page.size());
    ++pages;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(pages * page.size() * 2));
}
BENCHMARK(BM_StorageAppendRead);

void BM_MultiLogAppend(benchmark::State& state) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  auto intervals = graph::VertexIntervals::uniform(1u << 20, 1u << 14);
  multilog::MultiLogStore store(storage, "bench", intervals,
                                {.record_size = 8});
  SplitMix64 rng(1);
  struct Rec {
    VertexId dst;
    std::uint32_t payload;
  };
  std::uint64_t n = 0;
  for (auto _ : state) {
    Rec rec{static_cast<VertexId>(rng.next_below(1u << 20)),
            static_cast<std::uint32_t>(n)};
    store.append(rec.dst, &rec);
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MultiLogAppend);

void BM_MultiLogRoundTrip(benchmark::State& state) {
  const std::int64_t messages = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    ssd::TempDir dir;
    ssd::Storage storage(dir.path());
    auto intervals = graph::VertexIntervals::uniform(1u << 16, 1u << 12);
    multilog::MultiLogStore store(storage, "bench", intervals,
                                  {.record_size = 8});
    SplitMix64 rng(7);
    state.ResumeTiming();

    struct Rec {
      VertexId dst;
      std::uint32_t payload;
    };
    for (std::int64_t i = 0; i < messages; ++i) {
      Rec rec{static_cast<VertexId>(rng.next_below(1u << 16)), 0u};
      store.append(rec.dst, &rec);
    }
    store.swap_generations();
    std::vector<std::byte> bytes;
    for (IntervalId i = 0; i < intervals.count(); ++i) {
      store.load_interval(i, bytes);
    }
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_MultiLogRoundTrip)->Arg(100000);

void BM_SortGroup(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  SplitMix64 rng(3);
  std::vector<multilog::Record<std::uint32_t>> base(n);
  for (auto& r : base) {
    r.dst = static_cast<VertexId>(rng.next_below(1u << 18));
    r.payload = 1;
  }
  for (auto _ : state) {
    auto records = base;
    multilog::sort_records(records);
    const auto combined = multilog::combine_sorted(
        records, [](std::uint32_t a, std::uint32_t b) { return a + b; });
    benchmark::DoNotOptimize(combined);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SortGroup)->Arg(1 << 16)->Arg(1 << 20);

// ---- §V.B scatter-vs-comparison sweep --------------------------------------
//
// One fused interval group's raw log: n records, destinations uniform in
// [0, width). The sweep crosses record counts (2^10–2^24) with sparse →
// dense interval widths and combine on/off, one benchmark per grouping
// path, so the counting scatter's win (and the fallback's crossover region)
// is directly visible. Each run logs the path the group actually took as a
// counter (path_scatter = 1 for the counting scatter).
std::vector<std::byte> make_group_log(std::int64_t n, std::int64_t width,
                                      std::uint64_t seed) {
  using Rec = multilog::Record<std::uint32_t>;
  std::vector<std::byte> bytes(static_cast<std::size_t>(n) * sizeof(Rec));
  SplitMix64 rng(seed);
  for (std::int64_t i = 0; i < n; ++i) {
    Rec rec{static_cast<VertexId>(
                rng.next_below(static_cast<std::uint64_t>(width))),
            1u};
    std::memcpy(bytes.data() + static_cast<std::size_t>(i) * sizeof(Rec),
                &rec, sizeof(Rec));
  }
  return bytes;
}

void sort_group_path_bench(benchmark::State& state, SortGroupPath policy) {
  const std::int64_t n = state.range(0);
  const std::int64_t width = state.range(1);
  const bool combine = state.range(2) != 0;
  const auto bytes = make_group_log(n, width, 3);
  const auto span = std::span<const std::byte>(bytes);
  const auto end = static_cast<VertexId>(width);
  SortGroupPath taken = policy;
  for (auto _ : state) {
    if (combine) {
      auto g = multilog::sort_and_group<std::uint32_t>(
          span, 0, end, policy,
          [](std::uint32_t a, std::uint32_t b) { return a + b; });
      taken = g.path;
      benchmark::DoNotOptimize(g.records.data());
    } else {
      auto g = multilog::sort_and_group<std::uint32_t>(span, 0, end, policy);
      taken = g.path;
      benchmark::DoNotOptimize(g.records.data());
    }
  }
  state.counters["path_scatter"] =
      taken == SortGroupPath::kCountingScatter ? 1 : 0;
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_SortGroupScatter(benchmark::State& state) {
  sort_group_path_bench(state, SortGroupPath::kCountingScatter);
}
void BM_SortGroupComparison(benchmark::State& state) {
  sort_group_path_bench(state, SortGroupPath::kComparisonSort);
}
void BM_SortGroupAuto(benchmark::State& state) {
  sort_group_path_bench(state, SortGroupPath::kAuto);
}

void SortGroupSweep(benchmark::internal::Benchmark* b) {
  for (int ln : {10, 14, 18, 22, 24}) {        // record counts 2^10–2^24
    for (int lw : {ln - 6, ln, ln + 2}) {      // dense → sparse widths
      const int w = std::max(4, lw);
      for (int combine : {0, 1}) {
        b->Args({std::int64_t{1} << ln, std::int64_t{1} << w, combine});
      }
    }
  }
}
BENCHMARK(BM_SortGroupScatter)->Apply(SortGroupSweep);
BENCHMARK(BM_SortGroupComparison)->Apply(SortGroupSweep);
// The auto path at the crossover region, to watch the heuristic choose.
BENCHMARK(BM_SortGroupAuto)
    ->Args({1 << 10, 1 << 16, 0})
    ->Args({1 << 18, 1 << 12, 0})
    ->Args({1 << 18, 1 << 12, 1});

// ---- produce-path scatter contention sweep ----------------------------------
//
// N producer threads hammer one MultiLogStore with random-destination
// appends — the engine's scatter hot path. BM_ScatterAppendLocked is the
// per-record interval-locked path; BM_ScatterAppendStaged batches through
// per-thread staging buffers of the given depth, taking each interval lock
// once per flushed chunk. The sweep crosses thread count × interval count ×
// staging depth; at high contention (8 threads, 64 intervals) staged must
// beat locked by well over 2x. Manual std::threads, so wall time is the
// meaningful clock (UseRealTime).
void scatter_append_bench(benchmark::State& state, std::int64_t depth) {
  const auto threads = static_cast<unsigned>(state.range(0));
  const auto n_intervals = static_cast<VertexId>(state.range(1));
  constexpr std::int64_t kPerThread = 1 << 17;
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  const auto intervals =
      graph::VertexIntervals::uniform(n_intervals * 64, n_intervals);
  multilog::MultiLogStore store(
      storage, "bench", intervals,
      {.record_size = 8,
       .staging_records = static_cast<std::size_t>(depth)});
  // Destinations are pregenerated so the timed region is the append path
  // itself, not the RNG.
  std::vector<std::vector<VertexId>> dsts(threads);
  for (unsigned t = 0; t < threads; ++t) {
    SplitMix64 rng(t + 1);
    dsts[t].reserve(kPerThread);
    for (std::int64_t k = 0; k < kPerThread; ++k) {
      dsts[t].push_back(
          static_cast<VertexId>(rng.next_below(n_intervals * 64)));
    }
  }
  for (auto _ : state) {
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        auto staging = store.make_staging();
        std::uint32_t k = 0;
        for (const VertexId dst : dsts[t]) {
          multilog::append_record_staged<std::uint32_t>(store, staging, dst,
                                                        k++);
        }
        store.flush_staging(staging);
      });
    }
    for (auto& w : workers) w.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * kPerThread);
}

void BM_ScatterAppendLocked(benchmark::State& state) {
  scatter_append_bench(state, 0);
}
void BM_ScatterAppendStaged(benchmark::State& state) {
  scatter_append_bench(state, state.range(2));
}

void ScatterSweepLocked(benchmark::internal::Benchmark* b) {
  for (std::int64_t threads : {1, 2, 4, 8}) {
    for (std::int64_t iv : {4, 64, 512}) b->Args({threads, iv});
  }
  b->UseRealTime();
}
void ScatterSweepStaged(benchmark::internal::Benchmark* b) {
  for (std::int64_t threads : {1, 2, 4, 8}) {
    for (std::int64_t iv : {4, 64, 512}) {
      for (std::int64_t depth : {1, 16, 64}) b->Args({threads, iv, depth});
    }
  }
  b->UseRealTime();
}
BENCHMARK(BM_ScatterAppendLocked)->Apply(ScatterSweepLocked);
BENCHMARK(BM_ScatterAppendStaged)->Apply(ScatterSweepStaged);

// ---- I/O-substrate sweep ----------------------------------------------------
//
// Random reads of a given size at a given queue depth through each backend,
// against one shared 64 MiB blob. BM_IoRandReadThreadPool emulates the
// engine's former substrate — an ssd::AsyncIo pool (4 threads) with one
// future per read, so effective depth is capped by the pool. BM_IoRandReadUring
// issues the whole batch as one read_multi on a kUring storage, which turns
// it into at most `depth` SQEs submitted with a single io_uring_enter. The
// guarded quantity (tools/check_bench_regression.py --suite io) is the
// uring/threadpool throughput ratio per configuration; ISSUE acceptance
// wants >= 1.5x at depth >= 32. Offsets are pregenerated and page-aligned;
// manual batches mean wall time is the meaningful clock (UseRealTime).
struct IoBenchFile {
  static constexpr std::size_t kFileBytes = std::size_t{64} << 20;
  ssd::TempDir dir;
  ssd::Storage storage;
  ssd::Blob* blob;

  IoBenchFile() : storage(dir.path()) {
    blob = &storage.create_blob("io_sweep", ssd::IoCategory::kMisc);
    std::vector<std::uint64_t> chunk((1 << 20) / 8);
    SplitMix64 rng(71);
    for (std::size_t written = 0; written < kFileBytes;
         written += chunk.size() * 8) {
      for (auto& w : chunk) w = rng.next();
      blob->append(chunk.data(), chunk.size() * 8);
    }
  }

  static IoBenchFile& instance() {
    static IoBenchFile f;
    return f;
  }
};

/// `batches` pregenerated offset sets, each `depth` page-aligned offsets in
/// ascending order (read_multi's contract; random pages rarely touch, so
/// coalescing stays honest).
std::vector<std::vector<std::uint64_t>> io_offset_batches(std::size_t batches,
                                                          std::size_t depth,
                                                          std::size_t len) {
  SplitMix64 rng(5);
  const std::uint64_t pages = (IoBenchFile::kFileBytes - len) / 4096;
  std::vector<std::vector<std::uint64_t>> out(batches);
  for (auto& batch : out) {
    batch.reserve(depth);
    for (std::size_t i = 0; i < depth; ++i) {
      batch.push_back(rng.next_below(pages) * 4096);
    }
    std::sort(batch.begin(), batch.end());
  }
  return out;
}

void BM_IoRandReadThreadPool(benchmark::State& state) {
  auto& f = IoBenchFile::instance();
  f.storage.set_io_backend(ssd::IoBackendKind::kThreadPool);
  const std::size_t len = static_cast<std::size_t>(state.range(0)) * 1024;
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  const auto batches = io_offset_batches(64, depth, len);
  std::vector<std::vector<char>> bufs(depth, std::vector<char>(len));
  ssd::AsyncIo io(4);
  std::size_t round = 0;
  for (auto _ : state) {
    const auto& offsets = batches[round++ % batches.size()];
    ssd::IoBatch batch;
    for (std::size_t i = 0; i < depth; ++i) {
      batch.add(io.read(f.blob, offsets[i], bufs[i].data(), len));
    }
    batch.wait();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * depth * len));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * depth));
}

void BM_IoRandReadUring(benchmark::State& state) {
  if (!ssd::UringIo::probe().available) {
    state.SkipWithError(("io_uring unavailable: " +
                         ssd::UringIo::probe().reason).c_str());
    return;
  }
  auto& f = IoBenchFile::instance();
  const std::size_t len = static_cast<std::size_t>(state.range(0)) * 1024;
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  if (f.storage.set_io_backend(ssd::IoBackendKind::kUring,
                               static_cast<unsigned>(depth)) !=
      ssd::IoBackendKind::kUring) {
    state.SkipWithError(f.storage.io_backend_fallback().c_str());
    return;
  }
  const auto batches = io_offset_batches(64, depth, len);
  std::vector<std::vector<char>> bufs(depth, std::vector<char>(len));
  std::size_t round = 0;
  for (auto _ : state) {
    const auto& offsets = batches[round++ % batches.size()];
    std::vector<ssd::ReadOp> ops;
    ops.reserve(depth);
    for (std::size_t i = 0; i < depth; ++i) {
      ops.push_back({offsets[i], bufs[i].data(), len});
    }
    f.blob->read_multi(ops);
  }
  f.storage.set_io_backend(ssd::IoBackendKind::kThreadPool);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * depth * len));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * depth));
}

void IoSweep(benchmark::internal::Benchmark* b) {
  for (std::int64_t kib : {4, 64, 256}) {
    for (std::int64_t depth : {4, 32, 128}) b->Args({kib, depth});
  }
  b->UseRealTime();
}
BENCHMARK(BM_IoRandReadThreadPool)->Apply(IoSweep);
BENCHMARK(BM_IoRandReadUring)->Apply(IoSweep);

void BM_ExternalSorter(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  struct Rec {
    std::uint32_t key;
    std::uint32_t payload;
  };
  for (auto _ : state) {
    state.PauseTiming();
    ssd::TempDir dir;
    ssd::Storage storage(dir.path());
    grafboost::ExternalSorter::Config cfg;
    cfg.record_size = sizeof(Rec);
    cfg.memory_budget_bytes = 256_KiB;
    grafboost::ExternalSorter sorter(storage, "bench", cfg);
    SplitMix64 rng(11);
    state.ResumeTiming();

    for (std::int64_t i = 0; i < n; ++i) {
      Rec rec{static_cast<std::uint32_t>(rng.next_below(1u << 20)),
              static_cast<std::uint32_t>(i)};
      sorter.add(&rec);
    }
    auto stream = sorter.finish();
    Rec rec{};
    std::uint64_t count = 0;
    while (stream->next(&rec)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSorter)->Arg(1 << 18);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    graph::RmatParams p;
    p.scale = 14;
    p.edge_factor = 8;
    p.seed = 5;
    auto edges = graph::generate_rmat(p);
    benchmark::DoNotOptimize(edges.num_edges());
  }
}
BENCHMARK(BM_RmatGeneration);

}  // namespace
