// Google-benchmark microbenches for the substrate hot paths: page-accounted
// storage I/O, multi-log append/spill/load, in-memory sort+group, and the
// external sorter. These guard against regressions in the layers every
// engine sits on.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "grafboost/external_sorter.hpp"
#include "graph/generators.hpp"
#include "multilog/multilog_store.hpp"
#include "multilog/record.hpp"
#include "multilog/sort_group.hpp"
#include "ssd/storage.hpp"

namespace {

using namespace mlvc;

void BM_StorageAppendRead(benchmark::State& state) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ssd::Blob& blob = storage.create_blob("bench", ssd::IoCategory::kMisc);
  std::vector<char> page(16_KiB, 'x');
  std::uint64_t pages = 0;
  for (auto _ : state) {
    blob.append(page.data(), page.size());
    blob.read(pages * page.size(), page.data(), page.size());
    ++pages;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(pages * page.size() * 2));
}
BENCHMARK(BM_StorageAppendRead);

void BM_MultiLogAppend(benchmark::State& state) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  auto intervals = graph::VertexIntervals::uniform(1u << 20, 1u << 14);
  multilog::MultiLogStore store(storage, "bench", intervals,
                                {.record_size = 8});
  SplitMix64 rng(1);
  struct Rec {
    VertexId dst;
    std::uint32_t payload;
  };
  std::uint64_t n = 0;
  for (auto _ : state) {
    Rec rec{static_cast<VertexId>(rng.next_below(1u << 20)),
            static_cast<std::uint32_t>(n)};
    store.append(rec.dst, &rec);
    ++n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MultiLogAppend);

void BM_MultiLogRoundTrip(benchmark::State& state) {
  const std::int64_t messages = state.range(0);
  for (auto _ : state) {
    state.PauseTiming();
    ssd::TempDir dir;
    ssd::Storage storage(dir.path());
    auto intervals = graph::VertexIntervals::uniform(1u << 16, 1u << 12);
    multilog::MultiLogStore store(storage, "bench", intervals,
                                  {.record_size = 8});
    SplitMix64 rng(7);
    state.ResumeTiming();

    struct Rec {
      VertexId dst;
      std::uint32_t payload;
    };
    for (std::int64_t i = 0; i < messages; ++i) {
      Rec rec{static_cast<VertexId>(rng.next_below(1u << 16)), 0u};
      store.append(rec.dst, &rec);
    }
    store.swap_generations();
    std::vector<std::byte> bytes;
    for (IntervalId i = 0; i < intervals.count(); ++i) {
      store.load_interval(i, bytes);
    }
    benchmark::DoNotOptimize(bytes.data());
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_MultiLogRoundTrip)->Arg(100000);

void BM_SortGroup(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  SplitMix64 rng(3);
  std::vector<multilog::Record<std::uint32_t>> base(n);
  for (auto& r : base) {
    r.dst = static_cast<VertexId>(rng.next_below(1u << 18));
    r.payload = 1;
  }
  for (auto _ : state) {
    auto records = base;
    multilog::sort_records(records);
    const auto combined = multilog::combine_sorted(
        records, [](std::uint32_t a, std::uint32_t b) { return a + b; });
    benchmark::DoNotOptimize(combined);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SortGroup)->Arg(1 << 16)->Arg(1 << 20);

void BM_ExternalSorter(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  struct Rec {
    std::uint32_t key;
    std::uint32_t payload;
  };
  for (auto _ : state) {
    state.PauseTiming();
    ssd::TempDir dir;
    ssd::Storage storage(dir.path());
    grafboost::ExternalSorter::Config cfg;
    cfg.record_size = sizeof(Rec);
    cfg.memory_budget_bytes = 256_KiB;
    grafboost::ExternalSorter sorter(storage, "bench", cfg);
    SplitMix64 rng(11);
    state.ResumeTiming();

    for (std::int64_t i = 0; i < n; ++i) {
      Rec rec{static_cast<std::uint32_t>(rng.next_below(1u << 20)),
              static_cast<std::uint32_t>(i)};
      sorter.add(&rec);
    }
    auto stream = sorter.finish();
    Rec rec{};
    std::uint64_t count = 0;
    while (stream->next(&rec)) ++count;
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExternalSorter)->Arg(1 << 18);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    graph::RmatParams p;
    p.scale = 14;
    p.edge_factor = 8;
    p.seed = 5;
    auto edges = graph::generate_rmat(p);
    benchmark::DoNotOptimize(edges.num_edges());
  }
}
BENCHMARK(BM_RmatGeneration);

}  // namespace
