// Figure 9 — edge-log optimizer prediction accuracy.
//
// The paper reports the percentage of inefficiently used pages (>0% and
// <10% utilization) correctly predicted by the history-based scheme —
// on average 34%, lower for fast-converging CDLP/GC, higher for the
// longer-tailed applications. We report the same recall from the
// PageUtilTracker's superstep summaries, aggregated over each run.
#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "apps/pagerank.hpp"
#include "apps/random_walk.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

namespace mlvc::bench {
namespace {

template <core::VertexApp App>
void measure(const Dataset& data, App app, metrics::Table& table) {
  const ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 15};
  const auto stats = run_mlvc(data, app, cfg);
  std::uint64_t inefficient = 0, predicted = 0, edge_log_hits = 0;
  for (const auto& s : stats.supersteps) {
    inefficient += s.pages_inefficient;
    predicted += s.pages_inefficient_predicted;
    edge_log_hits += s.edge_log_hits;
  }
  table.add_row(
      {data.name, app.name(), std::to_string(inefficient),
       std::to_string(predicted),
       format_fixed(inefficient ? 100.0 * predicted / inefficient : 0.0, 1),
       std::to_string(edge_log_hits)});
}

void run() {
  print_header("Figure 9: predicted inefficient pages",
               "history-based prediction catches ~34% of inefficiently "
               "used pages on average; less on fast-converging CDLP/GC");
  metrics::Table table({"dataset", "app", "inefficient_pages",
                        "predicted_correctly", "recall_%", "edge_log_hits"});
  for (const auto& data : {make_cf(), make_yws()}) {
    measure(data, apps::Bfs{.source = 0}, table);
    measure(data, apps::PageRank{}, table);
    measure(data, apps::Cdlp{}, table);
    measure(data, apps::GraphColoring{}, table);
    measure(data, apps::Mis{}, table);
    measure(data, apps::RandomWalk{.source_stride = 100}, table);
  }
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "fig9_predictor");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
