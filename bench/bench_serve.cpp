// Multi-tenant serving sweep: open-loop Poisson query arrivals against one
// RuntimeContext (shared storage, shared admission-controlled page cache),
// swept over worker-pool concurrency. Emits BENCH_serve.json with query
// throughput, p50/p99 latency, and the shared-cache hit rate per level.
//
// The regression guard (check_bench_regression.py --suite serve) compares
// *qps scaling ratios* (qps at concurrency C / qps at concurrency 1), which
// is what the shared-context serving path bought and is far more stable
// across hosts than absolute qps.
//
//   bench_serve [out.json]
//
// Environment:
//   MLVC_BENCH_SERVE_QUERIES      queries per concurrency level (default 96)
//   MLVC_BENCH_SERVE_CONCURRENCY  comma list of levels (default 1,8,32,64)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "core/runtime_context.hpp"
#include "graph/generators.hpp"
#include "ssd/storage.hpp"

namespace mlvc::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct QuerySpec {
  bool is_bfs = true;
  VertexId source = 0;
};

struct LevelResult {
  std::size_t concurrency = 0;
  std::size_t queries = 0;
  double wall_seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double cache_hit_rate = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_bypasses = 0;
};

core::EngineOptions serve_options() {
  core::EngineOptions o;
  o.memory_budget_bytes = 4_MiB;
  o.max_supersteps = 30;
  return o;
}

double run_one(core::RuntimeContext& ctx, graph::StoredCsrGraph& graph,
               const QuerySpec& spec) {
  const auto t0 = Clock::now();
  const auto opts = serve_options();
  if (spec.is_bfs) {
    core::MultiLogVCEngine<apps::Bfs> engine(
        ctx, graph, apps::Bfs{.source = spec.source}, opts);
    ctx.merge_run(engine.run());
  } else {
    core::MultiLogVCEngine<apps::Wcc> engine(ctx, graph, apps::Wcc{}, opts);
    ctx.merge_run(engine.run());
  }
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Open-loop G/G/c: arrivals are drawn from a Poisson process up front and
/// do NOT wait for completions; a free worker takes the next undispatched
/// query, idling until its arrival if it is early. Latency = finish -
/// arrival, so queueing delay under overload is charged to the query.
LevelResult run_level(core::RuntimeContext& ctx, graph::StoredCsrGraph& graph,
                      const std::vector<QuerySpec>& specs,
                      std::size_t concurrency, double offered_qps) {
  std::mt19937_64 rng(42);
  std::exponential_distribution<double> interarrival(offered_qps);
  std::vector<double> arrival_offset(specs.size());
  double t = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    t += interarrival(rng);
    arrival_offset[i] = t;
  }

  const auto hits0 = ctx.shared_cache()->hits();
  const auto miss0 = ctx.shared_cache()->misses();
  const auto byp0 = ctx.shared_cache()->bypasses();

  std::vector<double> latency_ms(specs.size(), 0);
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> failures{0};
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < concurrency; ++w) {
    workers.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= specs.size()) return;
        const auto arrival =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrival_offset[i]));
        std::this_thread::sleep_until(arrival);
        try {
          run_one(ctx, graph, specs[i]);
        } catch (...) {
          failures.fetch_add(1);
          continue;
        }
        latency_ms[i] =
            std::chrono::duration<double, std::milli>(Clock::now() - arrival)
                .count();
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall = std::chrono::duration<double>(Clock::now() - start).count();
  if (failures.load() != 0) {
    std::cerr << "FATAL: " << failures.load() << " queries failed\n";
    std::exit(1);
  }

  LevelResult r;
  r.concurrency = concurrency;
  r.queries = specs.size();
  r.wall_seconds = wall;
  r.qps = static_cast<double>(specs.size()) / wall;
  std::vector<double> sorted = latency_ms;
  std::sort(sorted.begin(), sorted.end());
  r.p50_ms = sorted[sorted.size() / 2];
  r.p99_ms = sorted[std::min(sorted.size() - 1, sorted.size() * 99 / 100)];
  r.cache_hits = ctx.shared_cache()->hits() - hits0;
  r.cache_misses = ctx.shared_cache()->misses() - miss0;
  r.cache_bypasses = ctx.shared_cache()->bypasses() - byp0;
  const double lookups =
      static_cast<double>(r.cache_hits + r.cache_misses + r.cache_bypasses);
  r.cache_hit_rate =
      lookups > 0 ? static_cast<double>(r.cache_hits) / lookups : 0;
  return r;
}

std::vector<QuerySpec> make_specs(std::size_t count, VertexId n_vertices) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<VertexId> pick_source(0, n_vertices - 1);
  std::vector<QuerySpec> specs(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs[i].is_bfs = i % 4 != 3;  // 3:1 bfs:wcc
    specs[i].source = pick_source(rng);
  }
  return specs;
}

std::vector<std::size_t> parse_levels(const char* env) {
  std::vector<std::size_t> levels;
  std::stringstream ss(env != nullptr ? env : "1,8,32,64");
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) levels.push_back(std::stoul(tok));
  }
  return levels;
}

int run(const std::string& out_path) {
  graph::RmatParams params;
  params.scale = 11;
  params.edge_factor = 8;
  params.seed = 99;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(params));

  const char* q_env = std::getenv("MLVC_BENCH_SERVE_QUERIES");
  const std::size_t n_queries =
      q_env != nullptr ? std::stoul(q_env) : std::size_t{96};
  const auto levels = parse_levels(std::getenv("MLVC_BENCH_SERVE_CONCURRENCY"));
  const auto specs = make_specs(n_queries, csr.num_vertices());

  core::RuntimeContextOptions ctx_opts;
  ctx_opts.device.page_size = 4_KiB;
  ctx_opts.shared_cache_bytes = 2_MiB;

  // Calibrate the offered load off a few serial warmup queries in a
  // throwaway context so the Poisson rate tracks this host's service rate
  // (~80% utilization per worker) without warming any measured cache.
  double serial_service_s;
  {
    ssd::TempDir dir("mlvc_bench_serve");
    core::RuntimeContext ctx(dir.path(), ctx_opts);
    graph::StoredCsrGraph stored(
        ctx.storage(), "g", csr,
        core::partition_for_app<apps::Bfs>(csr, serve_options()), {});
    ctx.adopt_graph(stored);
    const std::size_t warmups = std::min<std::size_t>(4, specs.size());
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < warmups; ++i) run_one(ctx, stored, specs[i]);
    serial_service_s =
        std::chrono::duration<double>(Clock::now() - t0).count() /
        static_cast<double>(warmups);
  }

  std::vector<LevelResult> results;
  for (const std::size_t concurrency : levels) {
    // Fresh context per level: cold cache, clean counters, same graph.
    ssd::TempDir dir("mlvc_bench_serve");
    core::RuntimeContext ctx(dir.path(), ctx_opts);
    graph::StoredCsrGraph stored(
        ctx.storage(), "g", csr,
        core::partition_for_app<apps::Bfs>(csr, serve_options()), {});
    ctx.adopt_graph(stored);
    const double offered =
        0.8 * static_cast<double>(concurrency) /
        std::max(serial_service_s, 1e-4);
    const auto r = run_level(ctx, stored, specs, concurrency, offered);
    results.push_back(r);
    std::cout << "concurrency " << r.concurrency << ": " << r.qps
              << " qps, p50 " << r.p50_ms << " ms, p99 " << r.p99_ms
              << " ms, cache hit rate " << r.cache_hit_rate << "\n";
  }

  std::ofstream out(out_path);
  out << "{\"suite\":\"serve\",\"queries_per_level\":" << n_queries
      << ",\"runs\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    if (i != 0) out << ',';
    out << "{\"concurrency\":" << r.concurrency
        << ",\"queries\":" << r.queries
        << ",\"wall_seconds\":" << r.wall_seconds << ",\"qps\":" << r.qps
        << ",\"p50_ms\":" << r.p50_ms << ",\"p99_ms\":" << r.p99_ms
        << ",\"cache_hit_rate\":" << r.cache_hit_rate
        << ",\"cache_hits\":" << r.cache_hits
        << ",\"cache_misses\":" << r.cache_misses
        << ",\"cache_bypasses\":" << r.cache_bypasses << '}';
  }
  out << "]}\n";
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace
}  // namespace mlvc::bench

int main(int argc, char** argv) {
  return mlvc::bench::run(argc > 1 ? argv[1] : "BENCH_serve.json");
}
