// Push-only vs direction-optimizing adaptive execution: BFS, WCC and
// PageRank over a skewed R-MAT graph, comparing the paper's push wave
// (every active edge writes a message-log record and reads it back)
// against the §4e adaptive heuristic that serves dense supersteps by
// streaming the stored in-edge CSR instead. Emits BENCH_direction.json
// with one run entry per (app, metric); ratios are push/adaptive, so
// higher means direction optimization won.
//
// Gates (exit 1 on failure) — the ISSUE acceptance set:
//   - message-log traffic: adaptive must cut kMessageLog bytes (read +
//     written) by >= MLVC_BENCH_DIRECTION_MIN_LOG_RATIO (default 2.0)
//     on BFS and WCC;
//   - modeled work time: adaptive must not be slower than push on BFS,
//     WCC or PageRank (ratio >= MLVC_BENCH_DIRECTION_MIN_RATIO,
//     default 1.0);
//   - results: BFS/WCC values bit-identical across directions, PageRank
//     within 1e-4 per vertex; an adaptive run that silently fell back
//     to push (direction_fallback set) also fails.
// CI additionally gates drift against the committed baseline via
// check_bench_regression.py --suite direction.
//
//   bench_direction [out.json]
//
// Environment:
//   MLVC_BENCH_DIRECTION_SCALE        R-MAT scale (default 13)
//   MLVC_BENCH_DIRECTION_EDGE_FACTOR  edges per vertex (default 8)
//   MLVC_BENCH_DIRECTION_REPS         timing repetitions (default 2;
//                         byte counts are deterministic, time gates use
//                         the minimum across repetitions)
//   MLVC_BENCH_DIRECTION_MIN_LOG_RATIO / MLVC_BENCH_DIRECTION_MIN_RATIO
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "apps/pagerank.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "metrics/json_export.hpp"
#include "ssd/storage.hpp"

namespace mlvc::bench {
namespace {

struct RunResult {
  std::uint64_t log_bytes = 0;  // kMessageLog read + written (physical)
  std::uint64_t intervals_pulled = 0;
  std::uint64_t log_bytes_avoided = 0;
  double modeled_seconds = 0;
  double wall_seconds = 0;
  std::uint64_t values_hash = 0;
  std::vector<double> values;  // for the PageRank tolerance check
  std::string direction;
  std::string fallback;
};

double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

core::EngineOptions bench_options(DirectionMode direction) {
  core::EngineOptions opts;
  // Tight budget so the graph splits into several intervals and the
  // per-interval density heuristic has real choices to make.
  opts.memory_budget_bytes = 1_MiB;
  opts.max_supersteps = 50;
  opts.direction = direction;
  return opts;
}

/// The engine re-applies MLVC_DIRECTION at construction (so the CI
/// adaptive leg can steer whole test binaries); pin it to the mode this
/// run measures so an inherited value cannot skew the comparison.
struct ScopedDirectionEnv {
  explicit ScopedDirectionEnv(DirectionMode m) {
    setenv("MLVC_DIRECTION", std::string(to_string(m)).c_str(), 1);
  }
  ~ScopedDirectionEnv() { unsetenv("MLVC_DIRECTION"); }
};

template <core::VertexApp App>
RunResult run_direction(const graph::CsrGraph& csr, App app,
                        DirectionMode direction, bool keep_values) {
  ScopedDirectionEnv env(direction);
  ssd::TempDir dir("mlvc_bench_direction");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), device);

  const auto opts = bench_options(direction);
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts), {});
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  const auto stats = engine.run();

  RunResult r;
  const auto log = stats.category_bytes(ssd::IoCategory::kMessageLog);
  r.log_bytes = log.bytes_read + log.bytes_written;
  r.intervals_pulled = stats.intervals_pulled();
  r.log_bytes_avoided = stats.log_bytes_avoided();
  r.modeled_seconds = stats.modeled_work_seconds();
  r.wall_seconds = stats.total_wall_seconds();
  r.direction = stats.direction;
  r.fallback = stats.direction_fallback;
  // Streamed FNV-1a; no O(V) values() materialization on the hash path.
  r.values_hash = metrics::kFnv1aSeed;
  engine.for_each_value_chunk([&](VertexId, auto chunk) {
    r.values_hash =
        metrics::fnv1a_append(r.values_hash, chunk.data(), chunk.size_bytes());
    if (keep_values) {
      for (const auto v : chunk) r.values.push_back(static_cast<double>(v));
    }
  });
  return r;
}

struct Row {
  std::string metric;
  double push, adaptive;
  double ratio;  // 0 = informational, skipped by the regression guard
  bool enforced;
};

int run(const std::string& out_path) {
  const unsigned scale =
      static_cast<unsigned>(env_double("MLVC_BENCH_DIRECTION_SCALE", 13));
  const double edge_factor =
      env_double("MLVC_BENCH_DIRECTION_EDGE_FACTOR", 8);
  const int reps = std::max(
      1, static_cast<int>(env_double("MLVC_BENCH_DIRECTION_REPS", 2)));
  const double min_log_ratio =
      env_double("MLVC_BENCH_DIRECTION_MIN_LOG_RATIO", 2.0);
  const double min_ratio = env_double("MLVC_BENCH_DIRECTION_MIN_RATIO", 1.0);
  // Per-vertex drift allowed for PageRank (float sums combine in transpose
  // order under pull, log order under push). The ISSUE's 1e-4 bound is
  // enforced at matrix scale by test_direction; this scale-13 sweep sums
  // ~13x more edges per vertex, so the default allows one more decade.
  const double tolerance = env_double("MLVC_BENCH_DIRECTION_TOLERANCE", 1e-3);

  graph::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 7;
  const auto csr =
      graph::CsrGraph::from_edge_list(graph::generate_rmat(params));
  std::cout << "R-MAT scale " << scale << ": " << csr.num_vertices()
            << " vertices, " << csr.num_edges() << " edges\n";

  std::vector<Row> rows;
  int rc = 0;

  const auto run_app = [&](const std::string& name, auto app,
                           bool exact_values, bool enforce_log) {
    const bool keep_values = !exact_values;
    const auto best_of = [&](DirectionMode mode) {
      RunResult best = run_direction(csr, app, mode, keep_values);
      for (int rep = 1; rep < reps; ++rep) {
        auto r = run_direction(csr, app, mode, /*keep_values=*/false);
        best.modeled_seconds = std::min(best.modeled_seconds,
                                        r.modeled_seconds);
        best.wall_seconds = std::min(best.wall_seconds, r.wall_seconds);
      }
      return best;
    };
    const RunResult push = best_of(DirectionMode::kPush);
    const RunResult adaptive = best_of(DirectionMode::kAdaptive);
    std::cout << "  " << name << "/push: log " << push.log_bytes
              << " B, modeled " << push.modeled_seconds << "s\n"
              << "  " << name << "/adaptive: log " << adaptive.log_bytes
              << " B, modeled " << adaptive.modeled_seconds << "s, "
              << adaptive.intervals_pulled << " intervals pulled, "
              << adaptive.log_bytes_avoided << " log B avoided\n";

    if (!adaptive.fallback.empty() || adaptive.direction != "adaptive") {
      std::cerr << "FAIL: " << name << " adaptive run fell back to "
                << adaptive.direction << " (" << adaptive.fallback << ")\n";
      rc = 1;
    }
    if (exact_values && push.values_hash != adaptive.values_hash) {
      std::cerr << "FAIL: " << name
                << " adaptive values differ from push (hash mismatch)\n";
      rc = 1;
    }
    if (!exact_values) {
      double max_diff = 0;
      for (std::size_t i = 0;
           i < std::min(push.values.size(), adaptive.values.size()); ++i) {
        max_diff = std::max(max_diff,
                            std::abs(push.values[i] - adaptive.values[i]));
      }
      if (push.values.size() != adaptive.values.size() ||
          max_diff > tolerance) {
        std::cerr << "FAIL: " << name << " adaptive values drift "
                  << max_diff << " > " << tolerance << " from push\n";
        rc = 1;
      }
    }

    const double log_ratio =
        adaptive.log_bytes > 0
            ? static_cast<double>(push.log_bytes) /
                  static_cast<double>(adaptive.log_bytes)
            : (push.log_bytes > 0 ? static_cast<double>(push.log_bytes) : 0);
    const double modeled_ratio = adaptive.modeled_seconds > 0
                                     ? push.modeled_seconds /
                                           adaptive.modeled_seconds
                                     : 0;
    rows.push_back({name + "_log_bytes",
                    static_cast<double>(push.log_bytes),
                    static_cast<double>(adaptive.log_bytes), log_ratio,
                    enforce_log});
    rows.push_back({name + "_modeled_seconds", push.modeled_seconds,
                    adaptive.modeled_seconds, modeled_ratio, true});
    rows.push_back({name + "_wall_seconds", push.wall_seconds,
                    adaptive.wall_seconds,
                    adaptive.wall_seconds > 0
                        ? push.wall_seconds / adaptive.wall_seconds
                        : 0,
                    false});
    rows.push_back({name + "_intervals_pulled", 0,
                    static_cast<double>(adaptive.intervals_pulled), 0,
                    false});
    rows.push_back({name + "_log_bytes_avoided", 0,
                    static_cast<double>(adaptive.log_bytes_avoided), 0,
                    false});
    if (enforce_log && log_ratio < min_log_ratio) {
      std::cerr << "FAIL: " << name << " message-log byte ratio " << log_ratio
                << "x below the " << min_log_ratio
                << "x floor (adaptive must cut log traffic)\n";
      rc = 1;
    }
    if (modeled_ratio < min_ratio) {
      std::cerr << "FAIL: " << name << " modeled-time ratio " << modeled_ratio
                << "x below the " << min_ratio
                << "x floor (adaptive must not be slower than push)\n";
      rc = 1;
    }
  };

  run_app("bfs", apps::Bfs{.source = 0}, /*exact_values=*/true,
          /*enforce_log=*/true);
  run_app("wcc", apps::Wcc{}, /*exact_values=*/true, /*enforce_log=*/true);
  run_app("pagerank", apps::PageRank{}, /*exact_values=*/false,
          /*enforce_log=*/false);

  std::ofstream out(out_path);
  out << "{\"suite\":\"direction\",\"runs\":[";
  bool first = true;
  for (const auto& row : rows) {
    if (!first) out << ',';
    first = false;
    out << "{\"metric\":\"" << row.metric << "\",\"push\":" << row.push
        << ",\"adaptive\":" << row.adaptive << ",\"ratio\":" << row.ratio
        << ",\"enforced\":" << (row.enforced ? "true" : "false") << '}';
    std::cout << row.metric << ": push " << row.push << ", adaptive "
              << row.adaptive << " (" << row.ratio << "x)"
              << (row.enforced ? "" : "  [not enforced]") << "\n";
  }
  out << "]}\n";
  std::cout << "wrote " << out_path << "\n";
  return rc;
}

}  // namespace
}  // namespace mlvc::bench

int main(int argc, char** argv) {
  return mlvc::bench::run(argc > 1 ? argv[1] : "BENCH_direction.json");
}
