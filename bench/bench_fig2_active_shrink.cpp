// Figure 2 — active vertices and active edges over supersteps.
//
// The paper runs graph coloring for 15 supersteps on CF and YWS and plots
// the fraction of vertices/edges active per superstep, showing the dramatic
// shrink that motivates CSR + multi-log. We reproduce the same measurement
// from MultiLogVC's per-superstep statistics, plus the frontier density
// (messages produced / total edges) — the signal the §4e direction planner
// extrapolates to decide push vs pull for the next superstep.
#include "apps/coloring.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

int main() {
  using namespace mlvc;
  bench::print_header("Figure 2: active vertices and edges over supersteps",
                      "graph coloring, 15 supersteps, CF and YWS; both "
                      "fractions shrink dramatically after the first few "
                      "supersteps");

  metrics::Table table({"dataset", "superstep", "active_vertex_fraction",
                        "active_edge_fraction", "frontier_density"});
  const bench::ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 15};
  for (const auto& data : {bench::make_cf(), bench::make_yws()}) {
    apps::GraphColoring app;
    const auto stats = bench::run_mlvc(data, app, cfg);
    const double v_total = data.csr.num_vertices();
    const double e_total = static_cast<double>(data.csr.num_edges());
    for (const auto& s : stats.supersteps) {
      table.add_row({data.name, std::to_string(s.superstep),
                     format_fixed(s.active_vertices / v_total, 4),
                     format_fixed(s.edges_activated / e_total, 4),
                     format_fixed(s.messages_produced / e_total, 4)});
    }
  }
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "fig2_active_shrink");
  return 0;
}
