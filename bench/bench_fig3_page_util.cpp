// Figure 3 — fraction of accessed graph pages with under 10% utilization.
//
// The paper measures, across each application's run, how many of the CSR
// adjacency pages that were fetched carried less than 10% useful bytes
// (read amplification; ~32% of pages on average). We aggregate the same
// counter from the MultiLogVC page-utilization tracker, with the edge-log
// optimizer disabled so the measurement reflects raw CSR accesses as in the
// paper's motivation section.
#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "apps/pagerank.hpp"
#include "apps/random_walk.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

namespace mlvc::bench {
namespace {

template <core::VertexApp App>
void measure(const Dataset& data, App app, metrics::Table& table) {
  ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 15};
  core::EngineOptions opts;
  opts.memory_budget_bytes = cfg.memory_budget;
  opts.max_supersteps = cfg.max_supersteps;
  opts.enable_edge_log = false;  // raw CSR accesses, as in the paper's Fig 3
  const auto stats =
      run_mlvc(data, app, cfg, always_continue, &opts);
  std::uint64_t touched = 0, inefficient = 0;
  for (const auto& s : stats.supersteps) {
    touched += s.pages_touched;
    inefficient += s.pages_inefficient;
  }
  table.add_row(
      {data.name, app.name(), std::to_string(touched),
       std::to_string(inefficient),
       format_fixed(touched ? 100.0 * inefficient / touched : 0.0, 1)});
}

void run() {
  print_header("Figure 3: accessed graph pages with <10% utilization",
               "nearly 32% of accessed pages carry >0% and <10% useful "
               "data (average across applications)");
  metrics::Table table({"dataset", "app", "pages_touched",
                        "pages_under_10pct", "fraction_%"});
  for (const auto& data : {make_cf(), make_yws()}) {
    measure(data, apps::Bfs{.source = 0}, table);
    measure(data, apps::PageRank{}, table);
    measure(data, apps::Cdlp{}, table);
    measure(data, apps::GraphColoring{}, table);
    measure(data, apps::Mis{}, table);
    measure(data, apps::RandomWalk{.source_stride = 100}, table);
  }
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "fig3_page_util");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
