// Figure 10 — memory scalability.
//
// The paper scales host memory from 1 GB to 4 GB and 8 GB and shows the
// MIS speedup over GraphChi stays roughly constant, with a 5-10% absolute
// improvement at larger memory. We scale the (already scaled-down) budget
// by the same 1x/4x/8x factors.
#include "apps/mis.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

namespace mlvc::bench {
namespace {

void run() {
  print_header("Figure 10: memory scalability (MIS)",
               "speedup over GraphChi roughly constant as memory grows "
               "1 GB -> 4 GB -> 8 GB (5-10% gain at larger budgets)");
  metrics::Table table({"dataset", "budget", "speedup_vs_graphchi",
                        "mlvc_pages", "graphchi_pages"});
  for (const auto& data : {make_cf(), make_yws()}) {
    for (const std::size_t scale : {1, 4, 8}) {
      ScaledConfig cfg{.memory_budget = scale * 1_MiB, .max_supersteps = 15};
      apps::Mis app;
      const auto mlvc = run_mlvc(data, app, cfg);
      const auto gc = run_graphchi(data, app, cfg);
      table.add_row({data.name, std::to_string(scale) + "x",
                     format_fixed(metrics::speedup(gc, mlvc), 2),
                     std::to_string(mlvc.total_pages()),
                     std::to_string(gc.total_pages())});
    }
  }
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "fig10_memory");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
