// On-disk format v1 vs v2 compression sweep: one BFS run per format over
// the same R-MAT graph, measuring per-layer on-disk traffic (bytes/edge for
// adjacency and message logs) plus static adjacency size and modeled time.
// Emits BENCH_compress.json with one run entry per metric.
//
// Gates (exit 1 on failure):
//   - v2 modeled total time must be <= MLVC_BENCH_COMPRESS_MAX_SLOWDOWN x
//     the v1 time (default 1.10): compression must not buy bytes with time.
// The compression-ratio floor itself (>= 2x on adjacency and message-log
// traffic) is enforced by check_bench_regression.py --suite compress so CI
// also catches drift against the committed baseline.
//
//   bench_compress [out.json]
//
// Environment:
//   MLVC_BENCH_COMPRESS_SCALE     R-MAT scale (default 13)
//   MLVC_BENCH_COMPRESS_EDGE_FACTOR  edges per vertex (default 8)
//   MLVC_BENCH_COMPRESS_MAX_SLOWDOWN  modeled-time gate (default 1.10)
//   MLVC_BENCH_COMPRESS_REPS      timing repetitions per format (default 3;
//                         byte metrics are deterministic, time gates use the
//                         minimum across repetitions to shed scheduler noise)
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "apps/bfs.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "ssd/storage.hpp"

namespace mlvc::bench {
namespace {

struct FormatResult {
  double adjacency_traffic = 0;   // on-disk adjacency bytes moved / edge
  double message_log_traffic = 0; // on-disk log bytes moved / edge
  double adjacency_stored = 0;    // static stored adjacency bytes / edge
  double modeled_total_seconds = 0;
  double wall_seconds = 0;
};

double env_double(const char* name, double def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : def;
}

FormatResult run_format(const graph::CsrGraph& csr, OnDiskFormat format) {
  ssd::TempDir dir("mlvc_bench_compress");
  ssd::DeviceConfig device;
  device.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), device);

  core::EngineOptions opts;
  opts.memory_budget_bytes = 8_MiB;
  opts.max_supersteps = 20;
  opts.on_disk_format = format;

  // Highest-degree source: reaches the giant component, so every superstep
  // pushes real message volume through the logs.
  VertexId source = 0;
  for (VertexId v = 1; v < csr.num_vertices(); ++v) {
    if (csr.out_degree(v) > csr.out_degree(source)) source = v;
  }

  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<apps::Bfs>(csr, opts),
                               {.format = format});
  core::MultiLogVCEngine<apps::Bfs> engine(stored, apps::Bfs{.source = source},
                                           opts);
  const auto stats = engine.run();

  const double edges = static_cast<double>(csr.num_edges());
  const auto adj = stats.category_bytes(ssd::IoCategory::kCsrColIdx);
  const auto log = stats.category_bytes(ssd::IoCategory::kMessageLog);
  std::uint64_t stored_adj = 0;
  for (IntervalId i = 0; i < stored.intervals().count(); ++i) {
    stored_adj += stored.adjacency_stored_bytes(i);
  }

  FormatResult r;
  r.adjacency_traffic =
      static_cast<double>(adj.bytes_read + adj.bytes_written) / edges;
  r.message_log_traffic =
      static_cast<double>(log.bytes_read + log.bytes_written) / edges;
  r.adjacency_stored = static_cast<double>(stored_adj) / edges;
  r.modeled_total_seconds = stats.modeled_total_seconds();
  r.wall_seconds = stats.total_wall_seconds();
  return r;
}

int run(const std::string& out_path) {
  graph::RmatParams params;
  params.scale =
      static_cast<unsigned>(env_double("MLVC_BENCH_COMPRESS_SCALE", 13));
  params.edge_factor = env_double("MLVC_BENCH_COMPRESS_EDGE_FACTOR", 8);
  params.seed = 7;
  const auto csr =
      graph::CsrGraph::from_edge_list(graph::generate_rmat(params));
  std::cout << "R-MAT scale " << params.scale << ": " << csr.num_vertices()
            << " vertices, " << csr.num_edges() << " edges\n";

  const int reps =
      std::max(1, static_cast<int>(env_double("MLVC_BENCH_COMPRESS_REPS", 3)));
  const auto best_of = [&](OnDiskFormat format) {
    FormatResult best = run_format(csr, format);
    for (int rep = 1; rep < reps; ++rep) {
      const auto r = run_format(csr, format);
      best.modeled_total_seconds =
          std::min(best.modeled_total_seconds, r.modeled_total_seconds);
      best.wall_seconds = std::min(best.wall_seconds, r.wall_seconds);
    }
    return best;
  };
  const auto v1 = best_of(OnDiskFormat::kV1);
  const auto v2 = best_of(OnDiskFormat::kV2);

  // metric, v1 value, v2 value, ratio (v1/v2 — higher is better for byte
  // metrics), enforced by the --suite compress geomean gate.
  struct Row {
    const char* metric;
    double v1, v2;
    bool enforced;
  };
  // Enforced metrics are the acceptance criteria: static adjacency bytes per
  // edge (the on-disk footprint) and message-log traffic per edge (logs are
  // transient, so the bytes moved ARE their on-disk size). The adjacency
  // *traffic* ratio is reported but not gated — small random batch reads pay
  // block-granularity decode overhead that shrinks with scale.
  const std::vector<Row> rows = {
      {"adjacency_stored_bytes_per_edge", v1.adjacency_stored,
       v2.adjacency_stored, true},
      {"message_log_traffic_bytes_per_edge", v1.message_log_traffic,
       v2.message_log_traffic, true},
      {"adjacency_traffic_bytes_per_edge", v1.adjacency_traffic,
       v2.adjacency_traffic, false},
      {"modeled_total_seconds", v1.modeled_total_seconds,
       v2.modeled_total_seconds, false},
      {"wall_seconds", v1.wall_seconds, v2.wall_seconds, false},
  };

  std::ofstream out(out_path);
  out << "{\"suite\":\"compress\",\"scale\":" << params.scale
      << ",\"edges\":" << csr.num_edges() << ",\"runs\":[";
  bool first = true;
  for (const auto& row : rows) {
    const double ratio = row.v2 > 0 ? row.v1 / row.v2 : 0;
    if (!first) out << ',';
    first = false;
    out << "{\"metric\":\"" << row.metric << "\",\"v1\":" << row.v1
        << ",\"v2\":" << row.v2 << ",\"ratio\":" << ratio
        << ",\"enforced\":" << (row.enforced ? "true" : "false") << '}';
    std::cout << row.metric << ": v1 " << row.v1 << ", v2 " << row.v2 << " ("
              << ratio << "x)" << (row.enforced ? "" : "  [not enforced]")
              << "\n";
  }
  out << "]}\n";
  std::cout << "wrote " << out_path << "\n";

  const double max_slowdown =
      env_double("MLVC_BENCH_COMPRESS_MAX_SLOWDOWN", 1.10);
  if (v2.modeled_total_seconds > v1.modeled_total_seconds * max_slowdown) {
    std::cerr << "FAIL: v2 modeled time " << v2.modeled_total_seconds
              << "s exceeds " << max_slowdown << "x the v1 time "
              << v1.modeled_total_seconds << "s\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mlvc::bench

int main(int argc, char** argv) {
  return mlvc::bench::run(argc > 1 ? argv[1] : "BENCH_compress.json");
}
