// Ablation study over MultiLogVC's design choices (DESIGN.md §4):
//   - edge-log optimizer on/off (§V.C),
//   - interval fusion on/off (§V.A.2),
//   - combine optimization on/off for combinable apps (§V.D),
//   - predictor history depth N ∈ {0, 1, 2, 4},
//   - pipelined superstep execution on/off, plus single-I/O-thread (§VI).
// Each row reports modeled time and pages relative to the full default
// configuration, on BFS (frontier workload) and CDLP (all-message workload).
#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/mis.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

namespace mlvc::bench {
namespace {

template <core::VertexApp App>
void ablate(const Dataset& data, App app, metrics::Table& table) {
  const ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 15};

  struct Variant {
    const char* name;
    std::function<void(core::EngineOptions&)> tweak;
  };
  const Variant variants[] = {
      {"default", [](core::EngineOptions&) {}},
      {"no_edge_log",
       [](core::EngineOptions& o) { o.enable_edge_log = false; }},
      {"no_fusion",
       [](core::EngineOptions& o) { o.enable_interval_fusion = false; }},
      {"no_combine", [](core::EngineOptions& o) { o.enable_combine = false; }},
      {"predictor_N0",
       [](core::EngineOptions& o) { o.predictor_history = 0; }},
      {"predictor_N2",
       [](core::EngineOptions& o) { o.predictor_history = 2; }},
      {"predictor_N4",
       [](core::EngineOptions& o) { o.predictor_history = 4; }},
      {"no_pipeline",
       [](core::EngineOptions& o) { o.enable_pipeline = false; }},
      {"pipeline_1io", [](core::EngineOptions& o) { o.io_threads = 1; }},
      // §V.B ablation: force the pre-scatter decode + comparison-sort path.
      // Page counts and final values must be identical to the default
      // (counting scatter); only host sort/group time may differ.
      {"comparison_sort",
       [](core::EngineOptions& o) {
         o.sort_group_path = SortGroupPath::kComparisonSort;
       }},
  };

  double base_time = 0;
  std::uint64_t base_pages = 0;
  for (const Variant& variant : variants) {
    core::EngineOptions opts;
    opts.memory_budget_bytes = cfg.memory_budget;
    opts.max_supersteps = cfg.max_supersteps;
    variant.tweak(opts);
    std::uint64_t values_hash = 0;
    const auto stats =
        run_mlvc(data, app, cfg, always_continue, &opts, &values_hash);
    const double t = stats.modeled_total_seconds();
    const std::uint64_t pages = stats.total_pages();
    if (std::string(variant.name) == "default") {
      base_time = t;
      base_pages = pages;
    }
    table.add_row({data.name, app.name(), variant.name, format_fixed(t, 3),
                   std::to_string(pages),
                   format_fixed(base_time > 0 ? t / base_time : 0.0, 3),
                   format_fixed(base_pages > 0
                                    ? static_cast<double>(pages) / base_pages
                                    : 0.0,
                                3),
                   format_fixed(stats.total_wall_seconds(), 3),
                   format_fixed(stats.io_wait_seconds(), 3),
                   format_fixed(stats.sort_group_seconds(), 3),
                   std::to_string(stats.groups_scatter()) + "/" +
                       std::to_string(stats.groups_comparison()),
                   format_hex(values_hash)});
  }
}

void run() {
  print_header("Ablation: MultiLogVC design choices",
               "edge log (§V.C), interval fusion (§V.A.2), combine (§V.D), "
               "predictor depth N (paper: N=1 'proved effective'), "
               "sort-and-group path (§V.B counting scatter vs comparison)");
  metrics::Table table({"dataset", "app", "variant", "modeled_s", "pages",
                        "time_vs_default", "pages_vs_default", "wall_s",
                        "io_wait_s", "sortgrp_s", "grp_scat/cmp",
                        "values_hash"});
  for (const auto& data : {make_cf(), make_yws()}) {
    ablate(data, apps::Bfs{.source = 0}, table);
    ablate(data, apps::Cdlp{}, table);
    // MIS has the recurring-activity pattern (undecided vertices re-run
    // every round) that the edge-log optimizer and predictor target.
    ablate(data, apps::Mis{}, table);
  }
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "ablation");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
