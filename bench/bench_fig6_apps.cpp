// Figure 6 — application performance relative to GraphChi.
//
// PageRank, CDLP, graph coloring, MIS, and random walk, each on CF and
// YWS, 15 supersteps (or convergence), speedup = GraphChi time /
// MultiLogVC time on the primary (modeled-total) metric. Paper averages:
// PR 1.19x, CDLP 1.65x, GC 1.38x, MIS 3.15x, RW 6.00x — i.e. modest wins
// on all-active workloads and large wins when the active set is sparse.
#include "apps/cdlp.hpp"
#include "apps/coloring.hpp"
#include "apps/mis.hpp"
#include "apps/pagerank.hpp"
#include "apps/random_walk.hpp"
#include "bench/harness/bench_common.hpp"
#include "common/format.hpp"

namespace mlvc::bench {
namespace {

template <core::VertexApp App>
void compare(const Dataset& data, App app, const char* paper_avg,
             metrics::Table& table) {
  const ScaledConfig cfg{.memory_budget = 1_MiB, .max_supersteps = 15};
  const auto mlvc = run_mlvc(data, app, cfg);
  const auto gc = run_graphchi(data, app, cfg);
  table.add_row({data.name, app.name(), paper_avg,
                 format_fixed(metrics::speedup(gc, mlvc), 2),
                 format_fixed(metrics::page_ratio(gc, mlvc), 1),
                 std::to_string(mlvc.supersteps.size()),
                 format_fixed(mlvc.modeled_total_seconds(), 3),
                 format_fixed(gc.modeled_total_seconds(), 3)});
}

void run() {
  print_header("Figure 6: application performance relative to GraphChi",
               "paper averages: PR 1.19x, CDLP 1.65x, GC 1.38x, MIS 3.15x, "
               "RW 6.00x");
  metrics::Table table({"dataset", "app", "paper_avg_speedup", "speedup",
                        "page_ratio", "supersteps", "mlvc_seconds",
                        "graphchi_seconds"});
  for (const auto& data : {make_cf(), make_yws()}) {
    compare(data, apps::PageRank{}, "1.19", table);
    compare(data, apps::Cdlp{}, "1.65", table);
    compare(data, apps::GraphColoring{}, "1.38", table);
    compare(data, apps::Mis{}, "3.15", table);
    compare(data, apps::RandomWalk{.source_stride = 1000}, "6.00", table);
  }
  table.print();
  table.write_csv(metrics::csv_dir_from_env(), "fig6_apps");
}

}  // namespace
}  // namespace mlvc::bench

int main() {
  mlvc::bench::run();
  return 0;
}
