// GraFBoost baseline: external sorter unit tests and engine equivalence.
#include <gtest/gtest.h>

#include "apps/bfs.hpp"
#include "apps/coloring.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "grafboost/engine.hpp"
#include "graph/generators.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

struct SortRec {
  std::uint32_t key;
  std::uint32_t payload;
};

TEST(ExternalSorter, SortsAcrossRuns) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  grafboost::ExternalSorter::Config cfg;
  cfg.record_size = sizeof(SortRec);
  cfg.key_offset = 0;
  cfg.memory_budget_bytes = 4096;  // force many runs
  cfg.fan_in = 4;                  // force multi-pass merges
  grafboost::ExternalSorter sorter(storage, "t", cfg);

  SplitMix64 rng(99);
  constexpr std::size_t kN = 20000;
  std::vector<std::uint32_t> keys;
  for (std::size_t i = 0; i < kN; ++i) {
    SortRec rec{static_cast<std::uint32_t>(rng.next_below(5000)),
                static_cast<std::uint32_t>(i)};
    keys.push_back(rec.key);
    sorter.add(&rec);
  }
  EXPECT_GT(sorter.run_count(), cfg.fan_in);

  auto stream = sorter.finish();
  std::sort(keys.begin(), keys.end());
  SortRec rec{};
  std::size_t i = 0;
  while (stream->next(&rec)) {
    ASSERT_LT(i, keys.size());
    EXPECT_EQ(rec.key, keys[i]) << "position " << i;
    ++i;
  }
  EXPECT_EQ(i, keys.size());
}

TEST(ExternalSorter, CombineCollapsesKeys) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  grafboost::ExternalSorter::Config cfg;
  cfg.record_size = sizeof(SortRec);
  cfg.key_offset = 0;
  cfg.memory_budget_bytes = 2048;
  cfg.combine = [](void* acc, const void* other) {
    static_cast<SortRec*>(acc)->payload +=
        static_cast<const SortRec*>(other)->payload;
  };
  grafboost::ExternalSorter sorter(storage, "t", cfg);

  // 100 keys x 50 copies each, payload 1 -> each key sums to 50.
  for (int round = 0; round < 50; ++round) {
    for (std::uint32_t k = 0; k < 100; ++k) {
      SortRec rec{k, 1};
      sorter.add(&rec);
    }
  }
  auto stream = sorter.finish();
  SortRec rec{};
  std::uint32_t expected_key = 0;
  while (stream->next(&rec)) {
    EXPECT_EQ(rec.key, expected_key);
    EXPECT_EQ(rec.payload, 50u);
    ++expected_key;
  }
  EXPECT_EQ(expected_key, 100u);
}

TEST(ExternalSorter, EmptyStream) {
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  grafboost::ExternalSorter::Config cfg;
  cfg.record_size = sizeof(SortRec);
  grafboost::ExternalSorter sorter(storage, "t", cfg);
  auto stream = sorter.finish();
  SortRec rec{};
  EXPECT_FALSE(stream->next(&rec));
  std::uint32_t key;
  EXPECT_FALSE(stream->peek_key(key));
}

// ---- engine-level equivalence ----------------------------------------------

graph::CsrGraph gb_graph() {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.seed = 17;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

template <core::VertexApp App>
std::vector<typename App::Value> run_grafboost(const graph::CsrGraph& csr,
                                               App app, bool use_combine,
                                               Superstep max_steps) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  auto opts = testing_options();
  auto intervals = core::partition_for_app<App>(csr, opts);
  graph::StoredCsrGraph stored(storage, "g", csr, intervals);
  grafboost::GraFBoostOptions gopts;
  gopts.memory_budget_bytes = 2_MiB;
  gopts.max_supersteps = max_steps;
  gopts.use_combine = use_combine;
  grafboost::GraFBoostEngine<App> engine(stored, app, gopts);
  engine.run();
  return engine.values();
}

TEST(GraFBoostEngine, BfsMatchesReference) {
  const auto csr = gb_graph();
  apps::Bfs app{.source = 2};
  const auto got = run_grafboost(csr, app, /*use_combine=*/true, 60);
  const auto expected = reference::bfs_distances(csr, 2);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(got[v], expected[v]) << "vertex " << v;
  }
}

TEST(GraFBoostEngine, PageRankMatchesReference) {
  const auto csr = gb_graph();
  apps::PageRank app;
  app.threshold = 0.1f;
  const auto got = run_grafboost(csr, app, /*use_combine=*/true, 15);
  const auto expected = reference::delta_pagerank(csr, 0.85, 0.1, 15);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_NEAR(got[v], expected[v], 1e-2) << "vertex " << v;
  }
}

TEST(GraFBoostEngine, AdaptedModeRunsColoring) {
  // The paper's adapted-GraFBoost: non-mergeable updates, all messages kept.
  const auto csr = gb_graph();
  apps::GraphColoring app;
  const auto got = run_grafboost(csr, app, /*use_combine=*/false, 300);
  EXPECT_TRUE(reference::coloring_is_valid(csr, got));
}

}  // namespace
}  // namespace mlvc
