// Tests for the extended application set (SSSP, k-core, WCC) across
// engines and against textbook references.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/kcore.hpp"
#include "apps/sssp.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "grafboost/engine.hpp"
#include "graph/generators.hpp"
#include "graphchi/engine.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

graph::CsrGraph weighted_graph(std::uint64_t seed = 51) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = seed;
  auto list = graph::generate_rmat(p);
  // Deterministic positive weights (mirrored edges share a weight because
  // weight is derived from the unordered endpoint pair).
  for (auto& e : list.edges()) {
    const auto lo = std::min(e.src, e.dst), hi = std::max(e.src, e.dst);
    e.weight = 0.1f + static_cast<float>(
                          stream_for(9, lo, hi).next_double());
  }
  return graph::CsrGraph::from_edge_list(list);
}

template <core::VertexApp App>
std::vector<typename App::Value> run_mlvc(const graph::CsrGraph& csr, App app,
                                          Superstep max_steps = 200) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  auto opts = testing_options();
  opts.max_supersteps = max_steps;
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts),
                               {.with_weights = App::kNeedsWeights});
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  engine.run();
  return engine.values();
}

template <core::VertexApp App>
std::vector<typename App::Value> run_grafboost(const graph::CsrGraph& csr,
                                               App app,
                                               Superstep max_steps = 200) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  auto opts = testing_options();
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts),
                               {.with_weights = App::kNeedsWeights});
  grafboost::GraFBoostOptions gopts;
  gopts.memory_budget_bytes = 2_MiB;
  gopts.max_supersteps = max_steps;
  grafboost::GraFBoostEngine<App> engine(stored, app, gopts);
  engine.run();
  return engine.values();
}

template <core::VertexApp App>
std::vector<typename App::Value> run_graphchi(const graph::CsrGraph& csr,
                                              App app,
                                              Superstep max_steps = 200) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  graphchi::GraphChiOptions opts;
  opts.memory_budget_bytes = 2_MiB;
  opts.max_supersteps = max_steps;
  graphchi::GraphChiEngine<App> engine(storage, csr, app, opts);
  engine.run();
  return engine.values();
}

// ---- SSSP -------------------------------------------------------------------

TEST(SsspApp, MatchesDijkstraOnMlvc) {
  const auto csr = weighted_graph();
  apps::Sssp app{.source = 0};
  const auto got = run_mlvc(csr, app);
  const auto expected = reference::dijkstra(csr, 0);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(got[v])) << "vertex " << v;
    } else {
      ASSERT_NEAR(got[v], expected[v], 1e-3) << "vertex " << v;
    }
  }
}

TEST(SsspApp, MatchesDijkstraOnGraFBoost) {
  const auto csr = weighted_graph(52);
  apps::Sssp app{.source = 3};
  const auto got = run_grafboost(csr, app);
  const auto expected = reference::dijkstra(csr, 3);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (!std::isinf(expected[v])) {
      ASSERT_NEAR(got[v], expected[v], 1e-3) << "vertex " << v;
    }
  }
}

TEST(SsspApp, UnweightedGraphDegeneratesToBfs) {
  // All weights 1.0: SSSP distance == hop count.
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = 60;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
  apps::Sssp app{.source = 1};
  const auto got = run_mlvc(csr, app);
  const auto hops = reference::bfs_distances(csr, 1);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (hops[v] != std::numeric_limits<std::uint32_t>::max()) {
      ASSERT_NEAR(got[v], static_cast<float>(hops[v]), 1e-4);
    }
  }
}

// ---- k-core -----------------------------------------------------------------

class KCoreSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KCoreSweep, MatchesPeelingReference) {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.seed = 71;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
  apps::KCore app{.k = GetParam()};
  const auto got = run_mlvc(csr, app);
  const auto expected = reference::kcore_membership(csr, GetParam());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_EQ(got[v].removed == 0, expected[v])
        << "vertex " << v << " k=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, KCoreSweep, ::testing::Values(2, 3, 5, 8, 16));

TEST(KCoreApp, GraphChiAgrees) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 5;
  p.seed = 72;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
  apps::KCore app{.k = 4};
  const auto a = run_mlvc(csr, app);
  const auto b = run_graphchi(csr, app);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_EQ(a[v].removed, b[v].removed) << "vertex " << v;
  }
}

TEST(KCoreApp, CompleteGraphIsItsOwnCore) {
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_complete(10));
  apps::KCore app{.k = 9};
  const auto got = run_mlvc(csr, app);
  for (const auto& v : got) EXPECT_EQ(v.removed, 0);
  apps::KCore too_big{.k = 10};
  const auto none = run_mlvc(csr, too_big);
  for (const auto& v : none) EXPECT_EQ(v.removed, 1);
}

// ---- WCC --------------------------------------------------------------------

TEST(WccApp, MatchesReferenceOnFragmentedGraph) {
  graph::EdgeList list;
  list.set_num_vertices(500);
  SplitMix64 rng(81);
  // Five blobs of 100 vertices.
  for (int b = 0; b < 5; ++b) {
    for (int e = 0; e < 300; ++e) {
      const auto u = b * 100 + static_cast<VertexId>(rng.next_below(100));
      const auto v = b * 100 + static_cast<VertexId>(rng.next_below(100));
      if (u != v) list.add(u, v);
    }
  }
  list.set_num_vertices(500);
  list.make_undirected();
  const auto csr = graph::CsrGraph::from_edge_list(list);
  apps::Wcc app;
  const auto got = run_mlvc(csr, app);
  const auto expected = reference::wcc_labels(csr);
  EXPECT_EQ(got, expected);
}

TEST(WccApp, AllEnginesAgree) {
  graph::RmatParams p;
  p.scale = 8;
  p.edge_factor = 4;
  p.seed = 82;
  const auto csr = graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
  apps::Wcc app;
  const auto a = run_mlvc(csr, app);
  const auto b = run_graphchi(csr, app);
  const auto c = run_grafboost(csr, app);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a, reference::wcc_labels(csr));
}

}  // namespace
}  // namespace mlvc
