// Tests for the edge-log optimizer storage (§V.C).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "multilog/edge_log.hpp"

namespace mlvc::multilog {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

TEST(EdgeLog, RoundTripAcrossGenerations) {
  Env env;
  EdgeLog log(env.storage, "el", {});
  const std::vector<VertexId> adj = {1, 5, 9, 200};
  EXPECT_TRUE(log.log_edges(42, adj));
  // Not visible until the generation swap (it is data *for* next superstep).
  std::vector<VertexId> out;
  EXPECT_FALSE(log.load_edges(42, out, nullptr));
  log.swap_generations();
  EXPECT_TRUE(log.contains(42));
  EXPECT_TRUE(log.load_edges(42, out, nullptr));
  EXPECT_EQ(out, adj);
}

TEST(EdgeLog, MissIsCounted) {
  Env env;
  EdgeLog log(env.storage, "el", {});
  std::vector<VertexId> out;
  EXPECT_FALSE(log.load_edges(7, out, nullptr));
  EXPECT_EQ(log.miss_count(), 1u);
  EXPECT_EQ(log.hit_count(), 0u);
}

TEST(EdgeLog, WeightsTravelWithEdges) {
  Env env;
  EdgeLog log(env.storage, "el", {.with_weights = true});
  const std::vector<VertexId> adj = {3, 4};
  const std::vector<float> w = {1.5f, 2.5f};
  EXPECT_TRUE(log.log_edges(1, adj, w));
  log.swap_generations();
  std::vector<VertexId> out_adj;
  std::vector<float> out_w;
  EXPECT_TRUE(log.load_edges(1, out_adj, &out_w));
  EXPECT_EQ(out_adj, adj);
  EXPECT_EQ(out_w, w);
}

TEST(EdgeLog, SpillsLargeEntriesAndReadsBack) {
  Env env;
  EdgeLog log(env.storage, "el", {});
  SplitMix64 rng(5);
  std::vector<std::vector<VertexId>> expected(200);
  for (VertexId v = 0; v < 200; ++v) {
    expected[v].resize(1 + rng.next_below(300));
    for (auto& x : expected[v]) {
      x = static_cast<VertexId>(rng.next_below(100000));
    }
    EXPECT_TRUE(log.log_edges(v, expected[v]));
  }
  log.swap_generations();
  const auto pages_before =
      env.storage.stats().snapshot()[ssd::IoCategory::kEdgeLog];
  EXPECT_GT(pages_before.pages_written, 0u);  // definitely spilled
  std::vector<VertexId> out;
  for (VertexId v = 0; v < 200; ++v) {
    ASSERT_TRUE(log.load_edges(v, out, nullptr)) << "vertex " << v;
    EXPECT_EQ(out, expected[v]);
  }
  EXPECT_EQ(log.hit_count(), 200u);
}

TEST(EdgeLog, DoubleLoggingIsIdempotent) {
  Env env;
  EdgeLog log(env.storage, "el", {});
  const std::vector<VertexId> adj = {1, 2};
  EXPECT_TRUE(log.log_edges(9, adj));
  EXPECT_TRUE(log.log_edges(9, adj));  // second call is a no-op
  EXPECT_EQ(log.produced_vertices(), 1u);
  EXPECT_EQ(log.produced_edges(), 2u);
}

TEST(EdgeLog, BudgetCapDeclinesGracefully) {
  Env env;
  EdgeLog log(env.storage, "el", {.with_weights = false,
                                  .buffer_budget_bytes = 2048});
  std::vector<VertexId> adj(64);
  bool declined = false;
  for (VertexId v = 0; v < 1000; ++v) {
    if (!log.log_edges(v, adj)) {
      declined = true;
      break;
    }
  }
  EXPECT_TRUE(declined);
  // Whatever was accepted still reads back.
  log.swap_generations();
  std::vector<VertexId> out;
  EXPECT_TRUE(log.load_edges(0, out, nullptr));
  EXPECT_EQ(out.size(), 64u);
}

TEST(EdgeLog, GenerationSwapDropsOldEntries) {
  Env env;
  EdgeLog log(env.storage, "el", {});
  EXPECT_TRUE(log.log_edges(1, std::vector<VertexId>{2}));
  log.swap_generations();
  EXPECT_TRUE(log.contains(1));
  log.swap_generations();  // entry from two generations ago is gone
  EXPECT_FALSE(log.contains(1));
}

TEST(EdgeLog, EmptyAdjacencyIsLoggable) {
  Env env;
  EdgeLog log(env.storage, "el", {});
  EXPECT_TRUE(log.log_edges(3, {}));
  log.swap_generations();
  std::vector<VertexId> out = {99};
  EXPECT_TRUE(log.load_edges(3, out, nullptr));
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace mlvc::multilog
