// Tests for core components: the vertex value store, the message range
// view, and the graph loader unit (page coalescing, edge-log hits,
// utilization tracking).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/graph_loader.hpp"
#include "core/message_range.hpp"
#include "core/vertex_value_store.hpp"
#include "graph/generators.hpp"

namespace mlvc::core {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

// ---- VertexValueStore ------------------------------------------------------

TEST(VertexValueStore, InitAndAll) {
  Env env;
  VertexValueStore<std::uint32_t> store(
      env.storage, "v", 1000, [](VertexId v) { return v * 2; }, true);
  const auto all = store.all();
  ASSERT_EQ(all.size(), 1000u);
  for (VertexId v = 0; v < 1000; ++v) EXPECT_EQ(all[v], v * 2);
}

TEST(VertexValueStore, GatherScatterRoundTrip) {
  Env env;
  VertexValueStore<float> store(
      env.storage, "v", 500, [](VertexId) { return 0.0f; }, true);
  const std::vector<VertexId> ids = {3, 7, 100, 101, 499};
  std::vector<float> vals = {1, 2, 3, 4, 5};
  store.scatter(ids, vals);
  const auto back = store.gather(ids);
  EXPECT_EQ(back, vals);
  // Untouched vertices keep their init value.
  EXPECT_EQ(store.gather(std::vector<VertexId>{4})[0], 0.0f);
}

TEST(VertexValueStore, CoalescedGatherTouchesFewPages) {
  Env env;
  VertexValueStore<std::uint32_t> store(
      env.storage, "v", 100000, [](VertexId v) { return v; }, true);
  const auto before = env.storage.stats().snapshot();
  // 100 vertices all on the same 4 KiB page (1024 u32 values per page).
  std::vector<VertexId> ids;
  for (VertexId v = 0; v < 100; ++v) ids.push_back(v);
  store.gather(ids);
  const auto diff = env.storage.stats().snapshot() - before;
  EXPECT_EQ(diff[ssd::IoCategory::kVertexValue].pages_read, 1u);

  // 10 vertices far apart cost one page each.
  const auto before2 = env.storage.stats().snapshot();
  ids.clear();
  for (VertexId v = 0; v < 10; ++v) ids.push_back(v * 10000);
  store.gather(ids);
  const auto diff2 = env.storage.stats().snapshot() - before2;
  EXPECT_EQ(diff2[ssd::IoCategory::kVertexValue].pages_read, 10u);
}

TEST(VertexValueStore, InMemoryModeDoesNoIo) {
  Env env;
  VertexValueStore<std::uint32_t> store(
      env.storage, "v", 100, [](VertexId v) { return v; }, false);
  const auto before = env.storage.stats().snapshot();
  const std::vector<VertexId> ids = {1, 50};
  auto vals = store.gather(ids);
  vals[0] = 99;
  store.scatter(ids, vals);
  EXPECT_EQ(env.storage.stats().snapshot().total_pages(),
            before.total_pages());
  EXPECT_EQ(store.gather(std::vector<VertexId>{1})[0], 99u);
}

TEST(VertexValueStore, RangeAccess) {
  Env env;
  VertexValueStore<std::uint32_t> store(
      env.storage, "v", 100, [](VertexId v) { return v; }, true);
  auto range = store.load_range(10, 20);
  ASSERT_EQ(range.size(), 10u);
  EXPECT_EQ(range[0], 10u);
  for (auto& x : range) x += 1000;
  store.store_range(10, range);
  EXPECT_EQ(store.load_range(10, 11)[0], 1010u);
}

// ---- MessageRange ----------------------------------------------------------

TEST(MessageRange, FromArray) {
  const std::vector<int> msgs = {1, 2, 3};
  const auto range = MessageRange<int>::from_array(msgs);
  EXPECT_EQ(range.size(), 3u);
  EXPECT_EQ(range[1], 2);
  int sum = 0;
  for (int m : range) sum += m;
  EXPECT_EQ(sum, 6);
}

TEST(MessageRange, FromRecordsStridesCorrectly) {
  std::vector<multilog::Record<std::uint64_t>> records = {
      {10, 111}, {10, 222}, {10, 333}};
  const auto range = MessageRange<std::uint64_t>::from_records(
      std::span<const multilog::Record<std::uint64_t>>(records));
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[0], 111u);
  EXPECT_EQ(range[2], 333u);
  std::uint64_t sum = 0;
  for (const auto& m : range) sum += m;
  EXPECT_EQ(sum, 666u);
}

TEST(MessageRange, EmptyIsSafe) {
  const MessageRange<int> range;
  EXPECT_TRUE(range.empty());
  for (int m : range) {
    (void)m;
    FAIL() << "empty range iterated";
  }
}

// ---- GraphLoaderUnit -------------------------------------------------------

graph::CsrGraph loader_graph() {
  graph::RmatParams p;
  p.scale = 9;
  p.edge_factor = 6;
  p.seed = 14;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

TEST(GraphLoader, LoadsCorrectAdjacency) {
  Env env;
  const auto csr = loader_graph();
  graph::StoredCsrGraph stored(
      env.storage, "g", csr,
      graph::VertexIntervals::uniform(csr.num_vertices(), 100));
  GraphLoaderUnit loader(stored, nullptr, nullptr, {});

  const IntervalId i = 2;
  std::vector<VertexId> actives;
  for (VertexId v = stored.intervals().begin(i);
       v < stored.intervals().end(i); v += 7) {
    actives.push_back(v);
  }
  AdjacencyBatch batch;
  loader.load(i, actives, batch);
  ASSERT_EQ(batch.spans.size(), actives.size());
  for (std::size_t k = 0; k < actives.size(); ++k) {
    const auto expected = csr.neighbors(actives[k]);
    ASSERT_EQ(batch.spans[k].length, expected.size()) << actives[k];
    for (std::size_t j = 0; j < expected.size(); ++j) {
      EXPECT_EQ(batch.adjacency[batch.spans[k].offset + j], expected[j]);
    }
  }
}

TEST(GraphLoader, SharedPageIsReadOnce) {
  Env env;
  // A chain has degree <= 2; hundreds of consecutive vertices share a page.
  const auto csr =
      graph::CsrGraph::from_edge_list(graph::generate_chain(2000));
  graph::StoredCsrGraph stored(
      env.storage, "g", csr,
      graph::VertexIntervals::uniform(csr.num_vertices(), 2000));
  GraphLoaderUnit loader(stored, nullptr, nullptr, {});

  // 50 consecutive vertices: ~100 edges x 4 B on one page.
  std::vector<VertexId> actives;
  for (VertexId v = 100; v < 150; ++v) actives.push_back(v);
  const auto before = env.storage.stats().snapshot();
  AdjacencyBatch batch;
  loader.load(0, actives, batch);
  const auto diff = env.storage.stats().snapshot() - before;
  EXPECT_LE(diff[ssd::IoCategory::kCsrColIdx].pages_read, 2u);
}

TEST(GraphLoader, EdgeLogHitsBypassCsr) {
  Env env;
  const auto csr = loader_graph();
  graph::StoredCsrGraph stored(
      env.storage, "g", csr,
      graph::VertexIntervals::uniform(csr.num_vertices(), 100));
  multilog::EdgeLog edge_log(env.storage, "el", {});

  const VertexId v = 5;
  const auto nbrs = csr.neighbors(v);
  edge_log.log_edges(v, nbrs);
  edge_log.swap_generations();

  GraphLoaderUnit loader(stored, &edge_log, nullptr, {.use_edge_log = true});
  const auto before = env.storage.stats().snapshot();
  AdjacencyBatch batch;
  loader.load(0, std::vector<VertexId>{v}, batch);
  const auto diff = env.storage.stats().snapshot() - before;
  EXPECT_EQ(batch.edge_log_hits, 1u);
  EXPECT_EQ(batch.from_edge_log[0], 1);
  EXPECT_EQ(diff[ssd::IoCategory::kCsrColIdx].pages_read, 0u);
  ASSERT_EQ(batch.spans[0].length, nbrs.size());
  for (std::size_t j = 0; j < nbrs.size(); ++j) {
    EXPECT_EQ(batch.adjacency[batch.spans[0].offset + j], nbrs[j]);
  }
}

TEST(GraphLoader, TracksPageUtilization) {
  Env env;
  const auto csr = loader_graph();
  graph::StoredCsrGraph stored(
      env.storage, "g", csr,
      graph::VertexIntervals::uniform(csr.num_vertices(), 100));
  multilog::PageUtilTracker tracker(env.storage.page_size(), 0.10);
  GraphLoaderUnit loader(stored, nullptr, &tracker, {});

  // Load one low-degree vertex: its page should register as inefficient.
  VertexId low = 0;
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (csr.out_degree(v) >= 1 && csr.out_degree(v) <= 3) {
      low = v;
      break;
    }
  }
  const IntervalId i = stored.intervals().interval_of(low);
  AdjacencyBatch batch;
  loader.load(i, std::vector<VertexId>{low}, batch);
  EXPECT_GE(batch.start_page_util[0], 0.0);
  EXPECT_LT(batch.start_page_util[0], 0.10);
  const auto summary = tracker.finish_superstep();
  EXPECT_EQ(summary.pages_touched, 1u);
  EXPECT_EQ(summary.pages_inefficient, 1u);
}

TEST(GraphLoader, StructuralOverlayApplied) {
  Env env;
  const auto csr = loader_graph();
  graph::StoredCsrGraph stored(
      env.storage, "g", csr,
      graph::VertexIntervals::uniform(csr.num_vertices(), 100));
  GraphLoaderUnit loader(stored, nullptr, nullptr, {});

  const VertexId v = 7;
  VertexId extra = csr.num_vertices() - 1;
  const auto nbrs = csr.neighbors(v);
  while (std::find(nbrs.begin(), nbrs.end(), extra) != nbrs.end()) --extra;
  stored.buffer_update(
      {graph::StructuralUpdate::Kind::kAddEdge, v, extra, 1.0f});

  AdjacencyBatch batch;
  loader.load(stored.intervals().interval_of(v), std::vector<VertexId>{v},
              batch);
  EXPECT_EQ(batch.spans[0].length, nbrs.size() + 1);
  bool found = false;
  for (std::size_t j = 0; j < batch.spans[0].length; ++j) {
    if (batch.adjacency[batch.spans[0].offset + j] == extra) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(GraphLoader, EmptyActivesNoop) {
  Env env;
  const auto csr = loader_graph();
  graph::StoredCsrGraph stored(
      env.storage, "g", csr,
      graph::VertexIntervals::uniform(csr.num_vertices(), 100));
  GraphLoaderUnit loader(stored, nullptr, nullptr, {});
  AdjacencyBatch batch;
  loader.load(0, {}, batch);
  EXPECT_TRUE(batch.spans.empty());
}

TEST(GraphLoader, ZeroDegreeVertex) {
  Env env;
  graph::EdgeList list;
  list.set_num_vertices(10);
  list.add(0, 1);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  graph::StoredCsrGraph stored(env.storage, "g", csr,
                               graph::VertexIntervals::uniform(10, 10));
  GraphLoaderUnit loader(stored, nullptr, nullptr, {});
  AdjacencyBatch batch;
  loader.load(0, std::vector<VertexId>{5}, batch);
  EXPECT_EQ(batch.spans[0].length, 0u);
}

}  // namespace
}  // namespace mlvc::core
