// Feature-level tests of the MultiLogVC engine: design-knob equivalences
// (edge log, fusion, combine), asynchronous mode, structural updates from
// vertex programs, early-stop callbacks, determinism, and degenerate
// graphs.
#include <gtest/gtest.h>

#include <cstdlib>

#include "apps/bfs.hpp"
#include "apps/cdlp.hpp"
#include "apps/pagerank.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

struct Env {
  ssd::TempDir dir;
  ssd::Storage storage;
  Env() : storage(dir.path(), [] {
            ssd::DeviceConfig d;
            d.page_size = 4_KiB;
            return d;
          }()) {}
};

graph::CsrGraph feature_graph(unsigned scale = 9, std::uint64_t seed = 23) {
  graph::RmatParams p;
  p.scale = scale;
  p.edge_factor = 6;
  p.seed = seed;
  return graph::CsrGraph::from_edge_list(graph::generate_rmat(p));
}

template <core::VertexApp App>
std::pair<std::vector<typename App::Value>, core::RunStats> run_once(
    const graph::CsrGraph& csr, App app, core::EngineOptions opts) {
  Env env;
  auto intervals = core::partition_for_app<App>(csr, opts);
  graph::StoredCsrGraph stored(env.storage, "g", csr, intervals);
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  auto stats = engine.run();
  return {engine.values(), stats};
}

// ---- design-knob equivalence -----------------------------------------------

TEST(EngineFeatures, EdgeLogOnOffSameResults) {
  const auto csr = feature_graph();
  apps::Cdlp app;
  auto on = testing_options();
  auto off = testing_options();
  off.enable_edge_log = false;
  const auto [a, sa] = run_once(csr, app, on);
  const auto [b, sb] = run_once(csr, app, off);
  EXPECT_EQ(a, b);
}

TEST(EngineFeatures, FusionOnOffSameResults) {
  const auto csr = feature_graph();
  apps::Cdlp app;
  auto on = testing_options();
  auto off = testing_options();
  // Force many intervals so fusion actually has work to do.
  on.memory_budget_bytes = 256_KiB;
  off.memory_budget_bytes = 256_KiB;
  off.enable_interval_fusion = false;
  const auto [a, sa] = run_once(csr, app, on);
  const auto [b, sb] = run_once(csr, app, off);
  EXPECT_EQ(a, b);
}

TEST(EngineFeatures, CombineOnOffSameResultsForBfs) {
  const auto csr = feature_graph();
  apps::Bfs app{.source = 1};
  auto on = testing_options();
  auto off = testing_options();
  off.enable_combine = false;
  const auto [a, sa] = run_once(csr, app, on);
  const auto [b, sb] = run_once(csr, app, off);
  EXPECT_EQ(a, b);
  const auto expected = reference::bfs_distances(csr, 1);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(a[v], expected[v]);
  }
}

TEST(EngineFeatures, CombineChangesComputeNotLogTraffic) {
  // In MultiLogVC the combine operator (§V.D) runs *after* the interval log
  // is loaded — unlike GraFBoost, where combining shrinks the on-storage
  // log. So toggling it must leave log record counts identical (and, for a
  // sum-combine app like PageRank, the results equal up to float
  // reassociation).
  const auto csr = feature_graph();
  apps::PageRank app;
  app.threshold = 0.01f;
  auto on = testing_options();
  on.max_supersteps = 5;
  auto off = on;
  off.enable_combine = false;
  const auto [a, sa] = run_once(csr, app, on);
  const auto [b, sb] = run_once(csr, app, off);
  ASSERT_EQ(sa.supersteps.size(), sb.supersteps.size());
  for (std::size_t s = 0; s < sa.supersteps.size(); ++s) {
    EXPECT_EQ(sa.supersteps[s].messages_consumed,
              sb.supersteps[s].messages_consumed);
  }
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_NEAR(a[v], b[v], 1e-3) << "vertex " << v;
  }
}

TEST(EngineFeatures, ScatterStagingDepthsSameResults) {
  // The staging buffers reorder records *across* threads but each vertex
  // still receives the same multiset of messages, so a multiset-insensitive
  // app converges to identical values at any staging depth (0 = the old
  // locked per-record path).
  const auto csr = feature_graph();
  apps::Cdlp app;
  std::vector<std::vector<apps::Cdlp::Value>> results;
  core::RunStats staged_stats;
  for (unsigned depth : {0u, 1u, 64u}) {
    auto opts = testing_options();
    opts.scatter_staging_records = depth;
    auto [values, stats] = run_once(csr, app, opts);
    if (depth == 64) staged_stats = stats;
    results.push_back(std::move(values));
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
  // With staging on, flushes happened and the counter surfaced in stats.
  EXPECT_GT(staged_stats.scatter_flush_count(), 0u);
  EXPECT_GE(staged_stats.scatter_stall_seconds(), 0.0);
}

TEST(EngineFeatures, ScatterStagingPreservesMessageCounts) {
  // Message accounting must not depend on where records sat when counted:
  // per-superstep produced/consumed totals are invariant under staging.
  const auto csr = feature_graph();
  apps::Cdlp app;
  auto locked = testing_options();
  locked.scatter_staging_records = 0;
  auto staged = testing_options();
  staged.scatter_staging_records = 16;
  const auto [a, sa] = run_once(csr, app, locked);
  const auto [b, sb] = run_once(csr, app, staged);
  ASSERT_EQ(sa.supersteps.size(), sb.supersteps.size());
  for (std::size_t s = 0; s < sa.supersteps.size(); ++s) {
    EXPECT_EQ(sa.supersteps[s].messages_produced,
              sb.supersteps[s].messages_produced);
    EXPECT_EQ(sa.supersteps[s].messages_consumed,
              sb.supersteps[s].messages_consumed);
    EXPECT_EQ(sa.supersteps[s].edges_activated,
              sb.supersteps[s].edges_activated);
  }
  // Skip under the MLVC_SCATTER_STAGING override (CI's staging=1 run): it
  // deliberately rewrites both configs, so "locked never flushes" no longer
  // holds — the count/value equalities above are the invariant under test.
  if (std::getenv("MLVC_SCATTER_STAGING") == nullptr) {
    EXPECT_EQ(sa.scatter_flush_count(), 0u);
    EXPECT_GT(sb.scatter_flush_count(), 0u);
  }
}

TEST(EngineFeatures, AsyncModeCorrectWithStaging) {
  // Async drains bypass swap_generations, so the engine must flush staged
  // records before every drain_produce_interval — otherwise messages parked
  // in a staging buffer would be skipped for the interval being drained.
  const auto csr = feature_graph(9, 29);
  apps::Bfs app{.source = 0};
  auto opts = testing_options();
  opts.model = core::ComputationModel::kAsynchronous;
  opts.scatter_staging_records = 8;
  const auto [values, stats] = run_once(csr, app, opts);
  const auto expected = reference::bfs_distances(csr, 0);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(values[v], expected[v]) << "vertex " << v;
  }
}

TEST(EngineFeatures, AdjacencyCacheOnOffSameResults) {
  const auto csr = feature_graph();
  apps::PageRank app;
  app.threshold = 0.01f;
  auto off = testing_options();
  off.max_supersteps = 5;
  auto on = off;
  on.adjacency_cache_bytes = 2_MiB;
  const auto [a, sa] = run_once(csr, app, off);
  const auto [b, sb] = run_once(csr, app, on);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(a[v], b[v]) << "vertex " << v;
  }
  // PageRank re-reads every interval's adjacency each superstep: the cache
  // must score hits, and they must show up in the per-superstep IO stats.
  std::uint64_t hits = 0;
  for (const auto& s : sb.supersteps) hits += s.io.cache_hit_pages;
  EXPECT_GT(hits, 0u);
  std::uint64_t off_hits = 0;
  for (const auto& s : sa.supersteps) off_hits += s.io.cache_hit_pages;
  EXPECT_EQ(off_hits, 0u);
}

TEST(EngineFeatures, DeterministicAcrossRuns) {
  const auto csr = feature_graph();
  apps::Cdlp app;
  const auto [a, sa] = run_once(csr, app, testing_options());
  const auto [b, sb] = run_once(csr, app, testing_options());
  EXPECT_EQ(a, b);
  ASSERT_EQ(sa.supersteps.size(), sb.supersteps.size());
  for (std::size_t s = 0; s < sa.supersteps.size(); ++s) {
    EXPECT_EQ(sa.supersteps[s].active_vertices,
              sb.supersteps[s].active_vertices);
    EXPECT_EQ(sa.supersteps[s].messages_produced,
              sb.supersteps[s].messages_produced);
  }
}

// ---- asynchronous mode (§V.F) ----------------------------------------------

TEST(EngineFeatures, AsyncBfsMatchesReferenceDistances) {
  // Async delivery can only ever deliver messages EARLIER; BFS min-distance
  // is monotone, so final distances are identical.
  const auto csr = feature_graph(9, 29);
  apps::Bfs app{.source = 0};
  auto opts = testing_options();
  opts.model = core::ComputationModel::kAsynchronous;
  const auto [values, stats] = run_once(csr, app, opts);
  const auto expected = reference::bfs_distances(csr, 0);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(values[v], expected[v]) << "vertex " << v;
  }
}

TEST(EngineFeatures, AsyncConvergesNoSlowerThanSync) {
  const auto csr = feature_graph(9, 29);
  apps::Bfs app{.source = 0};
  auto sync_opts = testing_options();
  auto async_opts = testing_options();
  async_opts.model = core::ComputationModel::kAsynchronous;
  const auto [va, sa] = run_once(csr, app, sync_opts);
  const auto [vb, sb] = run_once(csr, app, async_opts);
  EXPECT_LE(sb.supersteps.size(), sa.supersteps.size());
}

// ---- structural updates from vertex programs (§V.E) -------------------------

/// Toy app: the source adds an edge to a chosen far vertex in superstep 0;
/// from superstep 1 it floods BFS-style. If the structural update became
/// visible at superstep 1 (the §V.F contract), the far vertex hears about
/// it directly.
struct EdgeAdder {
  using Value = std::uint32_t;
  using Message = std::uint32_t;
  static constexpr bool kHasCombine = false;
  static constexpr bool kNeedsWeights = false;

  VertexId source = 0;
  VertexId target = 0;

  const char* name() const { return "edge_adder"; }
  Value initial_value(VertexId) const { return 0; }
  bool initially_active(VertexId v) const { return v == source; }

  template <typename Ctx>
  void process(Ctx& ctx, const core::MessageRange<Message>& msgs) const {
    if (ctx.superstep() == 0 && ctx.id() == source) {
      ctx.add_edge(target);
      return;  // stay active; send next superstep over the new edge set
    }
    if (ctx.superstep() == 1 && ctx.id() == source) {
      ctx.send_to_all_neighbors(1);
      ctx.deactivate();
      return;
    }
    for (const Message& m : msgs) {
      ctx.set_value(std::max(ctx.value(), m));
    }
    ctx.deactivate();
  }
};

TEST(EngineFeatures, StructuralAddEdgeDeliversMessages) {
  // A chain 0-1-2-...-99: vertex 0 adds an edge to vertex 99.
  const auto csr =
      graph::CsrGraph::from_edge_list(graph::generate_chain(100));
  Env env;
  auto opts = testing_options();
  opts.max_supersteps = 5;
  EdgeAdder app{.source = 0, .target = 99};
  auto intervals = core::partition_for_app<EdgeAdder>(csr, opts);
  graph::StoredCsrGraph stored(env.storage, "g", csr, intervals);
  core::MultiLogVCEngine<EdgeAdder> engine(stored, app, opts);
  engine.run();
  const auto values = engine.values();
  EXPECT_EQ(values[99], 1u);  // reached via the structurally added edge
  EXPECT_EQ(values[1], 1u);   // and the original neighbor too
  EXPECT_EQ(values[50], 0u);  // mid-chain never messaged
}

// ---- callbacks, degenerate graphs ------------------------------------------

TEST(EngineFeatures, CallbackStopsRun) {
  const auto csr = feature_graph();
  apps::Cdlp app;
  Env env;
  auto opts = testing_options();
  auto intervals = core::partition_for_app<apps::Cdlp>(csr, opts);
  graph::StoredCsrGraph stored(env.storage, "g", csr, intervals);
  core::MultiLogVCEngine<apps::Cdlp> engine(stored, app, opts);
  int steps = 0;
  const auto stats = engine.run_with_callback(
      [&](const core::SuperstepStats&) { return ++steps < 3; });
  EXPECT_EQ(stats.supersteps.size(), 3u);
}

TEST(EngineFeatures, SingleVertexGraph) {
  graph::EdgeList list;
  list.set_num_vertices(1);
  const auto csr = graph::CsrGraph::from_edge_list(list);
  Env env;
  auto opts = testing_options();
  graph::StoredCsrGraph stored(env.storage, "g", csr,
                               graph::VertexIntervals::uniform(1, 1));
  apps::Bfs app{.source = 0};
  core::MultiLogVCEngine<apps::Bfs> engine(stored, app, opts);
  const auto stats = engine.run();
  EXPECT_EQ(engine.values()[0], 0u);
  EXPECT_LE(stats.supersteps.size(), 2u);
}

TEST(EngineFeatures, DisconnectedComponentsStayUnreached) {
  // Two separate chains; BFS from the first must not touch the second.
  graph::EdgeList list;
  list.set_num_vertices(20);
  for (VertexId v = 0; v + 1 < 10; ++v) list.add(v, v + 1);
  for (VertexId v = 10; v + 1 < 20; ++v) list.add(v, v + 1);
  list.make_undirected();
  const auto csr = graph::CsrGraph::from_edge_list(list);
  apps::Bfs app{.source = 0};
  const auto [values, stats] = run_once(csr, app, testing_options());
  EXPECT_EQ(values[9], 9u);
  for (VertexId v = 10; v < 20; ++v) {
    EXPECT_EQ(values[v], apps::Bfs::kUnreached);
  }
}

TEST(EngineFeatures, NoInitialActivesConvergesImmediately) {
  const auto csr = feature_graph(7);
  apps::Bfs app{.source = 0};
  Env env;
  auto opts = testing_options();
  graph::StoredCsrGraph stored(
      env.storage, "g", csr,
      core::partition_for_app<apps::Bfs>(csr, opts));
  // An app whose initially_active is always false: emulate by running BFS
  // then checking the engine loop exit; here we just verify a fully
  // converged run stops early rather than burning max_supersteps.
  core::MultiLogVCEngine<apps::Bfs> engine(stored, app, opts);
  const auto stats = engine.run();
  EXPECT_LT(stats.supersteps.size(), opts.max_supersteps);
}

TEST(EngineFeatures, StatsAreInternallyConsistent) {
  const auto csr = feature_graph();
  apps::Cdlp app;
  const auto [values, stats] = run_once(csr, app, testing_options());
  ASSERT_FALSE(stats.supersteps.empty());
  // Superstep 0 activates everything.
  EXPECT_EQ(stats.supersteps[0].active_vertices, csr.num_vertices());
  EXPECT_EQ(stats.supersteps[0].messages_consumed, 0u);
  // Messages produced at s are consumed at s+1 (synchronous mode, and CDLP
  // never skips an interval).
  for (std::size_t s = 0; s + 1 < stats.supersteps.size(); ++s) {
    EXPECT_EQ(stats.supersteps[s].messages_produced,
              stats.supersteps[s + 1].messages_consumed);
  }
  EXPECT_GT(stats.total_pages_read(), 0u);
  EXPECT_GT(stats.modeled_storage_seconds(), 0.0);
}

// ---- budget sweep property test ---------------------------------------------

struct BudgetCase {
  std::size_t budget;
  std::uint64_t seed;
};

class BudgetSweep : public ::testing::TestWithParam<BudgetCase> {};

TEST_P(BudgetSweep, BfsCorrectUnderAnyBudget) {
  const auto csr = feature_graph(9, GetParam().seed);
  apps::Bfs app{.source = 2};
  auto opts = testing_options();
  opts.memory_budget_bytes = GetParam().budget;
  const auto [values, stats] = run_once(csr, app, opts);
  const auto expected = reference::bfs_distances(csr, 2);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(values[v], expected[v])
        << "vertex " << v << " budget " << GetParam().budget;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, BudgetSweep,
    ::testing::Values(BudgetCase{128_KiB, 1}, BudgetCase{256_KiB, 2},
                      BudgetCase{512_KiB, 3}, BudgetCase{1_MiB, 4},
                      BudgetCase{4_MiB, 5}, BudgetCase{128_KiB, 6},
                      BudgetCase{256_KiB, 7}, BudgetCase{512_KiB, 8}));

}  // namespace
}  // namespace mlvc
