// Interval-granular scheduled execution (core/interval_scheduler.hpp):
// IntervalScheduler pop-order properties, fixed-point equivalence of
// scheduled sync/async runs against BSP and the textbook references,
// determinism of the scheduled execution, the IoBatch drain-on-destruct
// contract, and a crashtest cycle over the async scheduled path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "apps/bfs.hpp"
#include "apps/pagerank_delta.hpp"
#include "apps/sssp.hpp"
#include "apps/wcc.hpp"
#include "core/engine.hpp"
#include "core/interval_scheduler.hpp"
#include "graph/generators.hpp"
#include "ssd/async_io.hpp"
#include "tests/reference.hpp"
#include "tests/test_util.hpp"

namespace mlvc {
namespace {

using core::IntervalScheduler;

// ---- IntervalScheduler pop-order properties ---------------------------------

TEST(IntervalScheduler, FifoPopsInArrivalOrder) {
  IntervalScheduler s(SchedulePolicy::kFifo, 4);
  s.mark_ready(3, /*score=*/100, /*pending_bytes=*/100);
  s.mark_ready(0, 50, 50);
  s.mark_ready(2, 999, 999);
  EXPECT_EQ(s.pop(), 3u);  // arrival order, priorities ignored
  EXPECT_EQ(s.pop(), 0u);
  EXPECT_EQ(s.pop(), 2u);
  EXPECT_EQ(s.pop(), kInvalidInterval);
  EXPECT_EQ(s.pops(), 3u);
  EXPECT_TRUE(s.processed(2));
  EXPECT_FALSE(s.processed(1));
}

TEST(IntervalScheduler, HubDegreeOrdersByScoreWithIdTieBreak) {
  IntervalScheduler s(SchedulePolicy::kHubDegree, 4);
  s.mark_ready(0, 5, 0);
  s.mark_ready(1, 9, 0);
  s.mark_ready(2, 9, 0);  // ties with 1: lower id first
  s.mark_ready(3, 1, 0);
  EXPECT_EQ(s.pop(), 1u);
  EXPECT_EQ(s.pop(), 2u);
  EXPECT_EQ(s.pop(), 0u);
  EXPECT_EQ(s.pop(), 3u);
  EXPECT_EQ(s.pop(), kInvalidInterval);
  // Interval 1 arrived at rank 1 but popped first: reorder depth >= 1.
  EXPECT_GE(s.max_reorder_depth(), 1u);
}

TEST(IntervalScheduler, LogBytesOrdersByPendingVolume) {
  IntervalScheduler s(SchedulePolicy::kLogBytes, 3);
  s.mark_ready(0, 0, 10);
  s.mark_ready(1, 0, 30);
  s.mark_ready(2, 0, 20);
  EXPECT_EQ(s.pop(), 1u);
  EXPECT_EQ(s.pop(), 2u);
  EXPECT_EQ(s.pop(), 0u);
}

TEST(IntervalScheduler, RemarkRefreshesPriorityButNotArrival) {
  // Priority inputs refresh on re-mark...
  IntervalScheduler hub(SchedulePolicy::kHubDegree, 2);
  hub.mark_ready(0, 1, 0);
  hub.mark_ready(1, 5, 0);
  hub.mark_ready(0, 10, 0);  // refreshed: now beats 1
  EXPECT_EQ(hub.pop(), 0u);
  EXPECT_EQ(hub.pop(), 1u);
  // ...but the arrival rank (fifo order) is sticky.
  IntervalScheduler fifo(SchedulePolicy::kFifo, 2);
  fifo.mark_ready(0, 0, 0);
  fifo.mark_ready(1, 0, 0);
  fifo.mark_ready(0, 99, 99);  // re-mark must not move 0 behind 1
  EXPECT_EQ(fifo.pop(), 0u);
  EXPECT_EQ(fifo.pop(), 1u);
}

TEST(IntervalScheduler, PopClearsReadyAndAllowsRequeue) {
  IntervalScheduler s(SchedulePolicy::kFifo, 2);
  s.mark_ready(0, 0, 0);
  EXPECT_TRUE(s.is_ready(0));
  EXPECT_EQ(s.pop(), 0u);
  EXPECT_FALSE(s.is_ready(0));
  EXPECT_TRUE(s.processed(0));
  s.mark_ready(0, 0, 0);  // async-mode requeue after new producer appends
  EXPECT_EQ(s.pop(), 0u);
  EXPECT_EQ(s.pops(), 2u);
}

TEST(IntervalScheduler, QuiesceSeqRoundTrip) {
  IntervalScheduler s(SchedulePolicy::kFifo, 3);
  EXPECT_EQ(s.quiesce_seq(1), 0u);
  s.record_quiesce(1, 42);
  EXPECT_EQ(s.quiesce_seq(1), 42u);
  EXPECT_EQ(s.quiesce_seq(0), 0u);
  s.record_quiesce(1, 43);  // monotone refresh after the next drain
  EXPECT_EQ(s.quiesce_seq(1), 43u);
}

// ---- fixed-point equivalence across policies --------------------------------

// Big enough that the 256 KiB budget yields several intervals, so priority
// ordering and same-wave redelivery actually happen. Weighted so the same
// graph serves the SSSP runs (weight derived from the unordered endpoint
// pair, as in test_apps_extended).
graph::CsrGraph sched_graph() {
  graph::RmatParams p;
  p.scale = 11;
  p.edge_factor = 8;
  p.seed = 98;
  auto list = graph::generate_rmat(p);
  for (auto& e : list.edges()) {
    const auto lo = std::min(e.src, e.dst), hi = std::max(e.src, e.dst);
    e.weight = 0.1f + static_cast<float>(stream_for(9, lo, hi).next_double());
  }
  return graph::CsrGraph::from_edge_list(list);
}

core::EngineOptions sched_options(core::ComputationModel model,
                                  SchedulePolicy policy) {
  auto opts = testing_options();
  opts.memory_budget_bytes = 256_KiB;  // several intervals
  opts.enable_interval_fusion = false;
  opts.max_supersteps = 100;
  opts.model = model;
  opts.schedule_policy = policy;
  return opts;
}

template <core::VertexApp App>
struct SchedRun {
  std::vector<typename App::Value> values;
  core::RunStats stats;
};

template <core::VertexApp App>
SchedRun<App> run_scheduled(const graph::CsrGraph& csr, App app,
                            core::ComputationModel model,
                            SchedulePolicy policy) {
  ssd::TempDir dir;
  ssd::DeviceConfig dev;
  dev.page_size = 4_KiB;
  ssd::Storage storage(dir.path(), dev);
  const auto opts = sched_options(model, policy);
  graph::StoredCsrGraph stored(storage, "g", csr,
                               core::partition_for_app<App>(csr, opts),
                               {.with_weights = App::kNeedsWeights});
  core::MultiLogVCEngine<App> engine(stored, app, opts);
  SchedRun<App> out;
  out.stats = engine.run();
  out.values = engine.values();
  EXPECT_GE(stored.intervals().count(), 2u)
      << "graph too small for scheduling to be exercised";
  return out;
}

struct ScheduleEnvGuard {
  ScheduleEnvGuard() { ::unsetenv("MLVC_SCHEDULE"); }
  ~ScheduleEnvGuard() { ::unsetenv("MLVC_SCHEDULE"); }
};

// Every test below pins schedule_policy explicitly per run, so shield the
// suite from the CI leg that re-runs tier-1 under MLVC_SCHEDULE=hub-degree
// (the env override itself is covered by ScheduleOptions).
class ScheduledExecution : public ::testing::Test {
 private:
  ScheduleEnvGuard guard_;
};

TEST_F(ScheduledExecution, WccReachesReferenceFixpointUnderEveryPolicy) {
  const auto csr = sched_graph();
  const auto expected = reference::wcc_labels(csr);
  const auto bsp = run_scheduled(csr, apps::Wcc{},
                                 core::ComputationModel::kSynchronous,
                                 SchedulePolicy::kBsp);
  ASSERT_EQ(bsp.values, expected);
  for (const auto model : {core::ComputationModel::kSynchronous,
                           core::ComputationModel::kAsynchronous}) {
    for (const auto policy : {SchedulePolicy::kFifo,
                              SchedulePolicy::kHubDegree,
                              SchedulePolicy::kLogBytes}) {
      const auto run = run_scheduled(csr, apps::Wcc{}, model, policy);
      EXPECT_EQ(run.values, expected)
          << to_string(policy) << " under "
          << (model == core::ComputationModel::kAsynchronous ? "async"
                                                             : "sync");
      EXPECT_EQ(run.stats.schedule_policy, to_string(policy));
      EXPECT_GT(run.stats.intervals_scheduled(), 0u);
    }
  }
}

TEST_F(ScheduledExecution, SyncScheduledBfsIsValueIdenticalToBsp) {
  // Ordering-only claim: with next-superstep delivery the schedule changes
  // WHEN an interval's chain runs, never WHAT it is delivered, so any
  // combine-based app lands on bit-identical values.
  const auto csr = sched_graph();
  const auto bsp = run_scheduled(csr, apps::Bfs{.source = 0},
                                 core::ComputationModel::kSynchronous,
                                 SchedulePolicy::kBsp);
  const auto hub = run_scheduled(csr, apps::Bfs{.source = 0},
                                 core::ComputationModel::kSynchronous,
                                 SchedulePolicy::kHubDegree);
  EXPECT_EQ(hub.values, bsp.values);
  // Same wave structure as BSP: every superstep processes every interval
  // whose log is non-empty, just in priority order.
  EXPECT_EQ(hub.stats.effective_rounds(), bsp.stats.effective_rounds());
}

TEST_F(ScheduledExecution, AsyncSsspMatchesDijkstra) {
  // SSSP relaxation is monotone min over per-path sums, so async same-wave
  // redelivery changes the trajectory but not the fixed point.
  const auto csr = sched_graph();
  const auto expected = reference::dijkstra(csr, 0);
  const auto run = run_scheduled(csr, apps::Sssp{.source = 0},
                                 core::ComputationModel::kAsynchronous,
                                 SchedulePolicy::kHubDegree);
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(run.values[v])) << "vertex " << v;
    } else {
      ASSERT_NEAR(run.values[v], expected[v], 1e-3) << "vertex " << v;
    }
  }
}

TEST_F(ScheduledExecution, AsyncDeltaPagerankConvergesNearBsp) {
  // PageRankDelta's residual series is absolutely convergent, so every
  // delivery order lands on the same fixed point up to epsilon truncation
  // and float summation order.
  const auto csr = sched_graph();
  const apps::PageRankDelta app;
  const auto bsp = run_scheduled(csr, app,
                                 core::ComputationModel::kSynchronous,
                                 SchedulePolicy::kBsp);
  double bsp_mass = 0;
  for (const auto& v : bsp.values) bsp_mass += v.rank;
  ASSERT_GT(bsp_mass, 0.0);
  for (const auto policy : {SchedulePolicy::kFifo,
                            SchedulePolicy::kHubDegree}) {
    const auto run = run_scheduled(csr, app,
                                   core::ComputationModel::kAsynchronous,
                                   policy);
    double mass = 0;
    for (VertexId v = 0; v < csr.num_vertices(); ++v) {
      mass += run.values[v].rank;
      EXPECT_TRUE(run.values[v].seeded) << "vertex " << v;
      // Per-vertex: the epsilon truncation bounds how far delivery orders
      // can drift (small absolute slack plus a relative term for hubs).
      ASSERT_NEAR(run.values[v].rank, bsp.values[v].rank,
                  5e-2 + 5e-2 * bsp.values[v].rank)
          << "vertex " << v << " under " << to_string(policy);
    }
    // Aggregate rank mass drifts much less than any single vertex.
    EXPECT_NEAR(mass / bsp_mass, 1.0, 1e-2) << to_string(policy);
  }
}

TEST_F(ScheduledExecution, AsyncRunIsDeterministic) {
  // Static integer priorities + ascending-id tie break + quiesce scan at
  // fixed points make the whole scheduled execution a pure function of the
  // input. Two identical runs must agree bit-for-bit, including the
  // schedule observability counters.
  const auto csr = sched_graph();
  const apps::PageRankDelta app;
  const auto a = run_scheduled(csr, app,
                               core::ComputationModel::kAsynchronous,
                               SchedulePolicy::kHubDegree);
  const auto b = run_scheduled(csr, app,
                               core::ComputationModel::kAsynchronous,
                               SchedulePolicy::kHubDegree);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (VertexId v = 0; v < csr.num_vertices(); ++v) {
    ASSERT_EQ(a.values[v].rank, b.values[v].rank) << "vertex " << v;
  }
  EXPECT_EQ(a.stats.effective_rounds(), b.stats.effective_rounds());
  EXPECT_EQ(a.stats.intervals_scheduled(), b.stats.intervals_scheduled());
  EXPECT_EQ(a.stats.schedule_reorder_depth(),
            b.stats.schedule_reorder_depth());
}

TEST_F(ScheduledExecution, AsyncWccNeedsNoMoreRoundsThanBsp) {
  // Same-wave delivery can only accelerate a monotone min app: every
  // message BSP would deliver next round is delivered no later.
  const auto csr = sched_graph();
  const auto bsp = run_scheduled(csr, apps::Wcc{},
                                 core::ComputationModel::kSynchronous,
                                 SchedulePolicy::kBsp);
  const auto async = run_scheduled(csr, apps::Wcc{},
                                   core::ComputationModel::kAsynchronous,
                                   SchedulePolicy::kHubDegree);
  EXPECT_LE(async.stats.effective_rounds(), bsp.stats.effective_rounds());
}

// ---- MLVC_SCHEDULE env override ---------------------------------------------

TEST(ScheduleOptions, EnvOverrideParsesAndIgnoresJunk) {
  ScheduleEnvGuard guard;
  EXPECT_EQ(core::apply_env_overrides(core::EngineOptions{}).schedule_policy,
            SchedulePolicy::kBsp);
  ::setenv("MLVC_SCHEDULE", "hub-degree", 1);
  EXPECT_EQ(core::apply_env_overrides(core::EngineOptions{}).schedule_policy,
            SchedulePolicy::kHubDegree);
  ::setenv("MLVC_SCHEDULE", "log_bytes", 1);  // underscore spelling
  EXPECT_EQ(core::apply_env_overrides(core::EngineOptions{}).schedule_policy,
            SchedulePolicy::kLogBytes);
  // Unparsable values leave the configured policy alone (same convention as
  // MLVC_IO_BACKEND) rather than aborting every entry point.
  ::setenv("MLVC_SCHEDULE", "zork", 1);
  core::EngineOptions opts;
  opts.schedule_policy = SchedulePolicy::kFifo;
  EXPECT_EQ(core::apply_env_overrides(opts).schedule_policy,
            SchedulePolicy::kFifo);
}

TEST(ScheduleOptions, PolicyStringsRoundTrip) {
  for (const auto p : {SchedulePolicy::kBsp, SchedulePolicy::kFifo,
                       SchedulePolicy::kHubDegree, SchedulePolicy::kLogBytes}) {
    SchedulePolicy back = SchedulePolicy::kBsp;
    EXPECT_TRUE(parse_schedule_policy(to_string(p), &back));
    EXPECT_EQ(back, p);
  }
  SchedulePolicy out = SchedulePolicy::kFifo;
  EXPECT_FALSE(parse_schedule_policy("zork", &out));
  EXPECT_FALSE(parse_schedule_policy(nullptr, &out));
  EXPECT_EQ(out, SchedulePolicy::kFifo);  // untouched on failure
}

// ---- IoBatch drain-on-destruct ----------------------------------------------

TEST(IoBatchDrain, DestructorWaitsForInFlightReads) {
  // A cancelled chain unwinds past its staging buffers; the batch destructor
  // must block until every pool thread stops touching them. With the drain
  // in place the buffer below is fully populated the moment the scope ends
  // — deterministically, not racily.
  ssd::TempDir dir;
  ssd::Storage storage(dir.path());
  ssd::Blob& blob = storage.create_blob("t", ssd::IoCategory::kMisc);
  constexpr std::size_t kPage = 4096, kPages = 64;
  std::vector<char> data(kPage * kPages);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 131 + 17);
  }
  blob.write(0, data.data(), data.size());

  ssd::IoStats stats;
  std::vector<char> buf(data.size(), 0);
  {
    ssd::IoStats::ScopedSink sink(&stats);
    ssd::AsyncIo io(4);
    ssd::IoBatch batch;
    for (std::size_t p = 0; p < kPages; ++p) {
      batch.add(io.read(&blob, p * kPage, buf.data() + p * kPage, kPage));
    }
    EXPECT_EQ(batch.pending(), kPages);
    // No wait(): the destructor must drain before `buf` becomes invalid.
  }
  EXPECT_EQ(std::memcmp(buf.data(), data.data(), data.size()), 0);
  // Every read completed (and stayed attributed to this sink) by the time
  // the batch died.
  EXPECT_EQ(stats.snapshot().total_bytes_read(), data.size());
}

// ---- crashtest over the async scheduled path --------------------------------

TEST_F(ScheduledExecution, CrashtestTornPageRecoversUnderHubDegree) {
  // One victim/recover cycle with the torn-page profile, with every child
  // (clean, victim, recover) running async hub-degree: recovery resumes
  // from the checkpoint and must reconverge to the clean run's values.
  const std::string cmd = std::string(MLVC_TOOL_CRASHTEST) +
                          " --profile torn-page --seed 17 --crash-after 25" +
                          " --schedule hub-degree > /dev/null 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0);
}

}  // namespace
}  // namespace mlvc
